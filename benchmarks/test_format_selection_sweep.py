"""E-SELECT: cost-model format selection vs fixed-1:4 packing.

Two sweeps of :func:`repro.engine.bench.measure_format_selection`:

- **mixed demo, budget 0** (hard gate, also on CI): on the
  mixed-format demo graph, lossless selection must pick each layer's
  pruned format (1:8/1:16 where the weights allow) and beat the
  uniform 1:4 packing on ``plan.weight_bytes()`` while staying
  bit-identical to the dense int8 plan;
- **uniform 1:4 demo, budget sweep** (reported + monotonicity gate):
  raising the per-layer weight-energy budget lets the selector
  re-prune layers to coarser formats — weight bytes must be
  monotonically non-increasing in the budget, with every recorded loss
  inside it.

Results land in ``benchmarks/results/format_selection.txt`` and
machine-readable ``BENCH_format_selection.json``.
"""

import pytest

from repro.engine.bench import measure_format_selection
from repro.sparsity.nm import FORMAT_1_4
from repro.utils.tables import Table

BATCH = 16
BUDGETS = (0.0, 0.2, 0.4, 0.6)


@pytest.fixture(scope="module")
def mixed_result():
    return measure_format_selection(budget=0.0, batch=BATCH, repeats=2)


@pytest.fixture(scope="module")
def sweep_results():
    return {
        budget: measure_format_selection(
            budget=budget, batch=BATCH, repeats=1, base_fmt=FORMAT_1_4
        )
        for budget in BUDGETS
    }


def test_format_selection_table(
    benchmark, record_table, record_bench, mixed_result, sweep_results
):
    benchmark.pedantic(lambda: mixed_result, rounds=1, iterations=1)
    mixed = Table(
        f"Lossless selection vs fixed 1:4 (mixed demo graph, batch {BATCH})",
        ["plan", "weight bytes", "vs fixed", "bit-identical"],
    )
    mixed.add_row(
        plan="dense int8",
        **{
            "weight bytes": mixed_result.dense_weight_bytes,
            "vs fixed": "-",
            "bit-identical": "-",
        },
    )
    mixed.add_row(
        plan="fixed 1:4",
        **{
            "weight bytes": mixed_result.fixed_weight_bytes,
            "vs fixed": "0.0%",
            "bit-identical": "yes",
        },
    )
    mixed.add_row(
        plan="selected (budget 0)",
        **{
            "weight bytes": mixed_result.selected_weight_bytes,
            "vs fixed": f"-{mixed_result.reduction_vs_fixed:.1%}",
            "bit-identical": "yes" if mixed_result.identical else "NO",
        },
    )
    sweep = Table(
        "Budget sweep (uniform 1:4 demo graph): lossy re-pruning",
        ["budget", "weight bytes", "vs fixed 1:4", "max rel dev", "formats"],
    )
    entries = [
        {
            "name": "select_mixed_budget0",
            "batch": mixed_result.batch,
            "qps": mixed_result.throughput,
            "speedup": mixed_result.speedup,
            "weight_bytes": mixed_result.selected_weight_bytes,
            "fixed_weight_bytes": mixed_result.fixed_weight_bytes,
            "dense_weight_bytes": mixed_result.dense_weight_bytes,
            "reduction_vs_fixed": mixed_result.reduction_vs_fixed,
            "bit_identical": mixed_result.identical,
        }
    ]
    for budget, r in sweep_results.items():
        fmts = sorted(
            {fmt for fmt in r.selected_formats.values() if fmt is not None}
        )
        sweep.add_row(
            budget=budget,
            **{
                "weight bytes": r.selected_weight_bytes,
                "vs fixed 1:4": f"{1 - r.selected_weight_bytes / r.fixed_weight_bytes:.1%}",
                "max rel dev": f"{r.max_rel_dev:.2e}",
                "formats": "/".join(fmts) or "dense",
            },
        )
        entries.append(
            {
                "name": f"select_uniform14_budget{budget:g}",
                "batch": r.batch,
                "qps": r.throughput,
                "speedup": r.speedup,
                "budget": budget,
                "weight_bytes": r.selected_weight_bytes,
                "fixed_weight_bytes": r.fixed_weight_bytes,
                "max_rel_dev": r.max_rel_dev,
                "losses_within_budget": r.losses_within_budget,
            }
        )
    record_table("format_selection", mixed.render(), sweep.render())
    record_bench("format_selection", entries)
    assert len(sweep.rows) == len(BUDGETS)


def test_lossless_selection_beats_fixed_14(mixed_result):
    """Hard acceptance gate (mirrors the CI --select-fmt run)."""
    r = mixed_result
    assert r.selected_weight_bytes < r.fixed_weight_bytes
    assert r.identical and r.finite and r.losses_within_budget
    assert r.max_rel_dev == 0.0


def test_budget_sweep_monotone_and_within_budget(sweep_results):
    previous = None
    for budget in BUDGETS:
        r = sweep_results[budget]
        assert r.losses_within_budget, budget
        assert r.finite, budget
        if previous is not None:
            assert r.selected_weight_bytes <= previous, budget
        previous = r.selected_weight_bytes
    # At budget 0 the uniform graph has nothing coarser to pick...
    assert (
        sweep_results[0.0].selected_weight_bytes
        == sweep_results[0.0].fixed_weight_bytes
    )
    # ...and a generous budget must actually buy memory.
    assert (
        sweep_results[BUDGETS[-1]].selected_weight_bytes
        < sweep_results[0.0].selected_weight_bytes
    )
