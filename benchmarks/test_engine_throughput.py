"""E-ENG: batched engine throughput vs the per-sample executor loop.

Times a ResNet-style graph (residual blocks, stride-2 transition with a
1x1 shortcut, size-3/stride-2 pooling) three ways at batch 32: the seed
executor's behaviour (per-call shape derivation and weight prep), a
warm per-sample loop over a cached plan, and one batched call.  The
acceptance bar is >= 3x throughput for the batched plan over the
per-sample executor loop.
"""

import os

import pytest

from repro.engine.bench import measure_throughput, resnet_style_graph
from repro.utils.tables import Table

# Wall-clock ratios are meaningless on noisy shared CI runners; the
# table still gets recorded there, but the hard thresholds only apply
# to local/benchmark runs.
timing_sensitive = pytest.mark.skipif(
    os.environ.get("CI") == "true",
    reason="wall-clock assertions are unreliable on shared CI runners",
)


@pytest.fixture(scope="module")
def result():
    return measure_throughput(resnet_style_graph(), batch=32, repeats=5)


def test_engine_throughput_table(benchmark, record_table, record_bench, result):
    res = benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    table = Table(
        f"Engine throughput on {res.graph_name} ({res.mode}, batch {res.batch})",
        ["path", "latency ms", "samples/s", "speedup"],
    )
    for path, seconds in [
        ("per-sample, per-call prep (seed)", res.uncached_s),
        ("per-sample, cached plan", res.per_sample_s),
        ("batched plan", res.batched_s),
    ]:
        table.add_row(
            path=path,
            **{
                "latency ms": seconds * 1e3,
                "samples/s": res.batch / seconds,
                "speedup": res.uncached_s / seconds,
            },
        )
    record_table("engine_throughput", table.render())
    record_bench(
        "engine",
        [
            {
                "name": "per_sample_uncached",
                "batch": 1,
                "qps": res.uncached_throughput,
                "speedup": 1.0,
            },
            {
                "name": "per_sample_cached_plan",
                "batch": 1,
                "qps": res.per_sample_throughput,
                "speedup": res.uncached_s / res.per_sample_s,
            },
            {
                "name": "batched_plan",
                "batch": res.batch,
                "qps": res.batched_throughput,
                "speedup": res.speedup,
            },
        ],
    )
    assert len(table.rows) == 3


@timing_sensitive
def test_batched_at_least_3x_per_sample_loop(result):
    """Acceptance: batched >= 3x the per-sample executor loop at B=32."""
    assert result.speedup >= 3.0, (
        f"batched speedup {result.speedup:.2f}x < 3x "
        f"(uncached {result.uncached_s * 1e3:.2f} ms, "
        f"batched {result.batched_s * 1e3:.2f} ms)"
    )


@timing_sensitive
def test_batched_beats_warm_per_sample_loop(result):
    """Even with the plan cached, batching must still win clearly."""
    assert result.warm_speedup >= 1.5


@timing_sensitive
def test_plan_cache_amortises_compile(result):
    """The warm loop must beat the seed-style per-call preparation."""
    assert result.uncached_s > result.per_sample_s
