"""S-SRV: dynamic-batched serving vs batch-size-1, and sharded serving.

Two acceptance experiments for the ``repro.serve`` subsystem:

1. the same burst of single-sample requests is served by two servers at
   equal worker count, one with dynamic micro-batching
   (``BatchPolicy(64, 5ms)``) and one degenerate (``BatchPolicy(1, 0)``).
   The bar is >= 3x sustained QPS for the batched server, plus
   bit-identity: every response served through the batching path must
   equal a direct ``InferenceEngine.run`` / ``run_batch`` call on a
   fresh engine, in both float and int8 modes.
2. a mixed-deployment burst (dense int8 + sparse-sw + sparse-isa) is
   served by the sharded ``RouterServer`` at 1/2/4 worker processes and
   by a single-process reference.  Bit-identity and the
   shared-not-replicated weight accounting are asserted everywhere;
   the >= 2.5x QPS-at-4-workers bar additionally needs >= 4 cores and
   a quiet machine (``timing_sensitive``).

Results land in ``results/serve_throughput.txt`` (prose table) and
``results/BENCH_serve.json`` (machine-readable trajectory).
"""

import asyncio
import os

import numpy as np
import pytest

from repro.engine.bench import resnet_style_graph
from repro.engine.engine import InferenceEngine
from repro.serve.batcher import BatchPolicy
from repro.serve.bench import (
    measure_serve_throughput,
    measure_sharded_throughput,
)
from repro.serve.loadgen import generate_inputs, run_loadgen
from repro.serve.server import ModelServer
from repro.utils.rng import make_rng
from repro.utils.tables import Table

# Wall-clock ratios are meaningless on noisy shared CI runners; the
# table still gets recorded there, but the hard thresholds only apply
# to local/benchmark runs.
timing_sensitive = pytest.mark.skipif(
    os.environ.get("CI") == "true",
    reason="wall-clock assertions are unreliable on shared CI runners",
)

REQUESTS = 256
WORKERS = 2
MAX_BATCH = 64

#: BENCH_serve.json is written whole on each record_bench call, so the
#: batching and sharding tests pool their entries here and re-record
#: the union — whichever runs last writes the complete file.
_BENCH_ENTRIES: list[dict] = []


@pytest.fixture(scope="module")
def result():
    return measure_serve_throughput(
        requests=REQUESTS,
        workers=WORKERS,
        max_batch_size=MAX_BATCH,
        repeats=5,
    )


def _quantized_graph(seed: int = 0):
    graph = resnet_style_graph(seed=seed)
    from repro.models.quantize import quantize_graph

    rng = make_rng(seed)
    quantize_graph(
        graph, [rng.normal(size=(12, 12, 3)).astype(np.float32)]
    )
    return graph


def test_serve_throughput_table(benchmark, record_table, record_bench, result):
    res = benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    table = Table(
        f"Serving throughput ({res.mode}, {res.requests} requests, "
        f"{res.workers} workers)",
        ["policy", "mean batch", "latency ms", "qps", "speedup"],
    )
    for policy, seconds, mean_batch in [
        (f"dynamic batching (<= {res.max_batch_size})", res.batched_s,
         res.batched_mean_batch),
        ("batch-size-1", res.batch1_s, res.batch1_mean_batch),
    ]:
        table.add_row(
            policy=policy,
            **{
                "mean batch": mean_batch,
                "latency ms": seconds * 1e3,
                "qps": res.requests / seconds,
                "speedup": res.batch1_s / seconds,
            },
        )
    record_table("serve_throughput", table.render())
    _BENCH_ENTRIES.extend(
        [
            {
                "name": "dynamic_batched",
                "batch": res.max_batch_size,
                "qps": res.batched_qps,
                "speedup": res.speedup,
                "mean_batch": res.batched_mean_batch,
                "workers": res.workers,
            },
            {
                "name": "batch1",
                "batch": 1,
                "qps": res.batch1_qps,
                "speedup": 1.0,
                "mean_batch": res.batch1_mean_batch,
                "workers": res.workers,
            },
        ]
    )
    record_bench("serve", _BENCH_ENTRIES)
    assert len(table.rows) == 2


def test_batching_actually_happened(result):
    """The batched server must have formed real micro-batches."""
    assert result.batched_mean_batch > 2.0
    assert result.batch1_mean_batch == 1.0


@timing_sensitive
def test_batched_serving_at_least_3x_batch1(result):
    """Acceptance: dynamic batching >= 3x batch-size-1 QPS, equal workers."""
    assert result.speedup >= 3.0, (
        f"batched serving speedup {result.speedup:.2f}x < 3x "
        f"(batched {result.batched_qps:.0f} qps, "
        f"batch1 {result.batch1_qps:.0f} qps)"
    )


@pytest.mark.parametrize("mode", ["float", "int8"])
def test_served_responses_bit_identical_to_engine(mode):
    """Acceptance: serving returns exactly what a direct engine run does.

    The loadgen traffic is replayed through a *fresh* engine (no shared
    plan cache with the server) and compared bit-for-bit, per request.
    """
    graph = _quantized_graph()
    requests = 64

    async def serve_all():
        server = ModelServer(
            policy=BatchPolicy(max_batch_size=16, max_wait_ms=2.0),
            workers=WORKERS,
        )
        server.register("m", graph, mode)
        async with server:
            report, outs = await run_loadgen(
                server,
                "m",
                requests=requests,
                qps=20_000.0,
                seed=7,
                collect_outputs=True,
            )
        return report, outs, server.metrics.mean_batch_size()

    report, outs, mean_batch = asyncio.run(serve_all())
    assert report.succeeded == requests
    assert mean_batch > 1.0  # responses crossed the coalescing path
    inputs = generate_inputs(
        (12, 12, 3), requests, seed=7
    )
    direct = InferenceEngine().run_batch(graph, inputs, mode=mode)
    for i in range(requests):
        assert np.array_equal(outs[i], direct[i]), f"request {i} differs"


@pytest.mark.parametrize("mode", ["float", "int8"])
def test_served_batch_requests_bit_identical(mode):
    """Multi-sample requests also come back bit-identical to run_batch."""
    graph = _quantized_graph()
    xs = generate_inputs((12, 12, 3), 6, seed=11)

    async def serve_batch():
        server = ModelServer(policy=BatchPolicy(8, 1.0), workers=1)
        server.register("m", graph, mode)
        async with server:
            return await server.infer("m", xs)

    out = asyncio.run(serve_batch())
    direct = InferenceEngine().run_batch(graph, xs, mode=mode)
    assert np.array_equal(out, direct)


# ---------------------------------------------------------------------------
# Sharded serving: router + worker processes, shared weights
# ---------------------------------------------------------------------------

SHARDED_WORKERS = (1, 2, 4)
SHARDED_MODELS = ("resnet-int8", "resnet-sparse-int8", "resnet-sparse-isa")
SHARDED_REQUESTS = 96


@pytest.fixture(scope="module")
def sharded():
    return measure_sharded_throughput(
        worker_counts=SHARDED_WORKERS,
        models=SHARDED_MODELS,
        requests=SHARDED_REQUESTS,
        repeats=2,
    )


def test_sharded_serve_table(record_table, record_bench, sharded):
    table = Table(
        f"Sharded serving ({len(sharded.models)} mixed deployments, "
        f"{sharded.requests} requests)",
        ["workers", "latency ms", "qps", "speedup", "weight MiB"],
    )
    table.add_row(
        workers="single-process",
        **{
            "latency ms": sharded.single_s * 1e3,
            "qps": sharded.single_qps,
            "speedup": 1.0,
            "weight MiB": sharded.single_weight_bytes / 2**20,
        },
    )
    entries = [
        {
            "name": "sharded_single",
            "batch": sharded.max_batch_size,
            "qps": sharded.single_qps,
            "speedup": 1.0,
            "weight_bytes": sharded.single_weight_bytes,
        }
    ]
    for n in SHARDED_WORKERS:
        table.add_row(
            workers=f"{n} processes",
            **{
                "latency ms": sharded.sharded_s[n] * 1e3,
                "qps": sharded.sharded_qps(n),
                "speedup": sharded.speedup(n),
                "weight MiB": sharded.sharded_weight_bytes[n] / 2**20,
            },
        )
        entries.append(
            {
                "name": f"sharded_w{n}",
                "batch": sharded.max_batch_size,
                "qps": sharded.sharded_qps(n),
                "speedup": sharded.speedup(n),
                "weight_bytes": sharded.sharded_weight_bytes[n],
                "shm_bytes": sharded.shm_payload_bytes[n],
                "identical": sharded.identical[n],
            }
        )
    record_table("sharded_serve", table.render())
    _BENCH_ENTRIES.extend(entries)
    record_bench("serve", _BENCH_ENTRIES)
    assert len(table.rows) == 1 + len(SHARDED_WORKERS)


def test_sharded_responses_bit_identical(sharded):
    """Acceptance (always on): every response from every worker count
    is bit-identical to the single-process reference."""
    assert sharded.all_identical, (
        f"sharded responses diverged from single-process: "
        f"{sharded.identical}"
    )


def test_sharded_weights_shared_not_replicated(sharded):
    """Acceptance (always on): the budget-visible weight bytes stay
    ~flat as replicas are added — one shared copy, not R copies."""
    for n in SHARDED_WORKERS:
        assert (
            sharded.sharded_weight_bytes[n]
            <= 1.1 * sharded.single_weight_bytes
        ), (
            f"{n} workers report {sharded.sharded_weight_bytes[n]} weight "
            f"bytes > 1.1x single-process {sharded.single_weight_bytes}"
        )
        # And the shared segments actually carry the packed payloads.
        assert sharded.shm_payload_bytes[n] > 0


@timing_sensitive
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="QPS scaling across 4 worker processes needs >= 4 cores",
)
def test_sharded_scaling_at_4_workers(sharded):
    """Acceptance: 4 sharded workers >= 2.5x single-process QPS."""
    assert sharded.speedup(4) >= 2.5, (
        f"4-worker sharded speedup {sharded.speedup(4):.2f}x < 2.5x "
        f"(sharded {sharded.sharded_qps(4):.0f} qps, "
        f"single {sharded.single_qps:.0f} qps)"
    )


@pytest.mark.skipif(
    os.environ.get("REPRO_SERVE_SOAK") != "1",
    reason="long soak; opt in with REPRO_SERVE_SOAK=1",
)
def test_sharded_soak_no_drops():
    """Opt-in long soak: >= 100k mixed requests through the sharded
    router with zero rejected/failed requests and a clean drain."""
    from repro.serve.demo import demo_server
    from repro.serve.tcp import snapshot_stats

    requests = int(os.environ.get("REPRO_SERVE_SOAK_REQUESTS", "100000"))

    async def _soak():
        server = demo_server(
            policy=BatchPolicy(64, 2.0),
            max_queue_depth=4096,
            processes=2,
        )
        async with server:
            report, _ = await run_loadgen(
                server,
                list(SHARDED_MODELS),
                requests=requests,
                qps=4000.0,
                seed=3,
                max_in_flight=2048,
            )
            stats = await snapshot_stats(server)
        return report, stats

    report, stats = asyncio.run(_soak())
    assert report.succeeded == requests, (
        f"{report.rejected} rejected / {report.failed} failed "
        f"of {requests}"
    )
    assert stats["queue_depth"] == 0
    assert stats["requests"]["completed"] == requests
