"""E-TAB3 / E-AREA: regenerate Table 3 (SotA comparison).

Literature rows are transcribed constants; the "ours" rows are measured
from the end-to-end ResNet18 deployment, and the area column from the
hardware ledger (5% for xDecimate vs up to 44% for SSSR on an FPU-less
core).
"""

import pytest

from repro.eval.table3 import our_resnet_speedup_ranges, table3_sota
from repro.hw.area import sssr_core, xdecimate_core


def test_table3_table(benchmark, record_table):
    table = benchmark.pedantic(table3_sota, rounds=1, iterations=1)
    assert len(table.rows) == 10
    record_table("table3_sota", table.render())


def test_our_sw_range_brackets_paper(benchmark):
    """Paper row: ResNet18-SW 1.77-3.10x at 87.5-93.75% sparsity."""
    ranges = benchmark.pedantic(our_resnet_speedup_ranges, rounds=1)
    lo, hi = ranges["ResNet18-SW"]
    assert lo == pytest.approx(1.77, rel=0.25)
    assert hi == pytest.approx(3.10, rel=0.25)
    assert lo < hi


def test_our_isa_range_brackets_paper(benchmark):
    """Paper row: ResNet18-ISA 1.77-4.31x at 75-93.75% sparsity."""
    ranges = benchmark.pedantic(our_resnet_speedup_ranges, rounds=1)
    lo, hi = ranges["ResNet18-ISA"]
    assert lo == pytest.approx(1.77, rel=0.25)
    assert hi == pytest.approx(4.31, rel=0.25)


def test_area_overheads(benchmark):
    """xDecimate costs 5% of the core; SSSR up to 44% — ~9x more."""

    def overheads():
        return xdecimate_core().overhead, sssr_core().overhead

    xdec, sssr = benchmark.pedantic(overheads, rounds=1)
    assert xdec == pytest.approx(0.05)
    assert sssr == pytest.approx(0.44)
    assert sssr / xdec > 8
