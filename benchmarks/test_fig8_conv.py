"""E-FIG8-CONV: regenerate the conv half of Fig. 8.

Sweeps C in {32, 64, 128, 256} at K=256 (8x8 spatial, 3x3 filters) over
all eight kernel variants, reporting MAC/cycle and speedup vs the dense
1x2 baseline, and checks the paper's headline claims:

- 1:4 SW-only convolution is *slower* than dense 1x2 (~ +23% cycles);
- 1:16 SW reaches ~2.6x, ISA variants ~1.5x / 2.4x / 3.9x on average;
- performance improves with C (inner loop amortises the im2col).
"""

import numpy as np
import pytest

from repro.eval.fig8 import (
    CONV_CHANNEL_SWEEP,
    average_speedup,
    fig8_conv,
)
from repro.eval.paper_values import FIG8_CONV_AVG_SPEEDUP
from repro.kernels.conv_dense import conv2d_dense
from repro.kernels.conv_sparse import conv2d_sparse
from repro.kernels.shapes import ConvShape
from repro.sparsity.nm import FORMAT_1_8, NMSparseMatrix
from repro.sparsity.pruning import prune_conv_weights
from repro.utils.tables import Table


def test_fig8_conv_table(benchmark, record_table):
    table = benchmark.pedantic(fig8_conv, rounds=1, iterations=1)
    assert len(table.rows) == 8 * len(CONV_CHANNEL_SWEEP)

    comparison = Table(
        "Fig. 8 conv averages: paper vs model",
        ["variant", "fmt", "paper", "model", "error %"],
    )
    for (variant, fmt_name), paper in FIG8_CONV_AVG_SPEEDUP.items():
        got = average_speedup("conv", variant, fmt_name, )
        comparison.add_row(
            variant=variant,
            fmt=fmt_name or "-",
            paper=paper,
            model=got,
            **{"error %": 100 * (got / paper - 1)},
        )
        assert got == pytest.approx(paper, rel=0.15), (variant, fmt_name)
    record_table("fig8_conv", table.render(), comparison.render())


def test_1_4_sw_slower_than_dense(benchmark):
    """Sec. 5.2: the 1:4 SW conv kernel loses to the 1x2 baseline."""
    got = benchmark.pedantic(
        lambda: average_speedup("conv", "sparse-sw", "1:4"), rounds=1
    )
    assert got < 1.0


def test_speedup_grows_with_channels(benchmark):
    """Sec. 5.2: deeper layers amortise the im2col better."""

    def series():
        table = fig8_conv()
        rows = [
            r
            for r in table.rows
            if r["variant"] == "sparse-isa" and r["fmt"] == "1:16"
        ]
        return [r["speedup vs 1x2"] for r in rows]

    speedups = benchmark.pedantic(series, rounds=1)
    assert speedups == sorted(speedups)


def test_isa_beats_sw_at_every_point(benchmark):
    def worst_ratio():
        table = fig8_conv()
        worst = np.inf
        for fmt in ("1:4", "1:8", "1:16"):
            for c in CONV_CHANNEL_SWEEP:
                sw = next(
                    r["MAC/cyc"]
                    for r in table.rows
                    if r["variant"] == "sparse-sw"
                    and r["fmt"] == fmt
                    and r["C"] == c
                )
                isa = next(
                    r["MAC/cyc"]
                    for r in table.rows
                    if r["variant"] == "sparse-isa"
                    and r["fmt"] == fmt
                    and r["C"] == c
                )
                worst = min(worst, isa / sw)
        return worst

    worst = benchmark.pedantic(worst_ratio, rounds=1)
    assert worst > 1.0


def test_conv_kernel_execution_dense_vs_sparse(benchmark):
    """Wall-time of the functional kernels on the Fig. 8 geometry
    (library-level sanity: the sparse path is exercised end to end)."""
    shape = ConvShape(iy=8, ix=8, c=64, k=256)
    rng = np.random.default_rng(0)
    x = rng.integers(-128, 128, (8, 8, 64)).astype(np.int8)
    w = rng.integers(-128, 128, (256, 3, 3, 64)).astype(np.int8)
    wp = prune_conv_weights(w, FORMAT_1_8)
    mat = NMSparseMatrix.from_dense(wp.reshape(256, -1), FORMAT_1_8)

    out_sparse = benchmark(lambda: conv2d_sparse(x, mat, shape, method="dense"))
    out_dense = conv2d_dense(x, wp, shape)
    assert (out_sparse == out_dense).all()
