"""E-ANA: cold-compile cost of the static plan verifier.

`compile_plan` runs the verifier by default (`verify=True`); this
benchmark proves that is affordable.  The verify path adds exactly two
calls around the compile — `check_graph` before binding and
`verify_plan` after — so the overhead is measured directly: time both
calls on the N:M-pruned ResNet18 (the paper's deployment model) and
ratio them against its cold packing-dominated compile, each scored by
the fastest of several repeats with a fresh graph per compile so
neither the plan cache nor the layout intern pool amortises the work.
(Differencing two separate ~400 ms compile runs cannot resolve a
sub-1% effect under run-to-run noise; the direct measurement can.)
The acceptance bar is the <2% overhead docs/analysis.md quotes for
keeping `verify=True` the default.
"""

import os
import time

import pytest

from repro.analyze.plancheck import check_graph, verify_plan
from repro.engine.plan import compile_plan
from repro.models.resnet import resnet18_cifar
from repro.sparsity.nm import FORMAT_1_8
from repro.utils.tables import Table

timing_sensitive = pytest.mark.skipif(
    os.environ.get("CI") == "true",
    reason="wall-clock assertions are unreliable on shared CI runners",
)

COMPILE_REPEATS = 5
VERIFY_REPEATS = 10


def _graph():
    return resnet18_cifar(num_classes=10, fmt=FORMAT_1_8)


@pytest.fixture(scope="module")
def result():
    """(cold compile s, check_graph s, verify_plan s), each min-of-N."""
    # One throwaway verified compile warms imports (numpy ufunc caches,
    # the lazily imported analyze module) out of the timed samples.
    compile_plan(_graph(), "float", sparse=True)

    compiles = []
    plan = graph = None
    for _ in range(COMPILE_REPEATS):
        graph = _graph()
        t0 = time.perf_counter()
        plan = compile_plan(graph, "float", sparse=True, verify=False)
        compiles.append(time.perf_counter() - t0)

    checks, verifies = [], []
    for _ in range(VERIFY_REPEATS):
        t0 = time.perf_counter()
        check_graph(graph, "float", sparse=True)
        checks.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        verify_plan(plan, graph)
        verifies.append(time.perf_counter() - t0)
    return min(compiles), min(checks), min(verifies)


def test_verify_overhead_table(benchmark, record_table, record_bench, result):
    compile_s, check_s, vp_s = benchmark.pedantic(
        lambda: result, rounds=1, iterations=1
    )
    verify_s = check_s + vp_s
    overhead_pct = verify_s / compile_s * 100.0
    table = Table(
        "Cold float sparse ResNet18 compile: plan verification overhead",
        ["stage", "latency ms", "share of compile %"],
    )
    table.add_row(
        stage="compile_plan (verify=False)",
        **{"latency ms": compile_s * 1e3, "share of compile %": 100.0},
    )
    table.add_row(
        stage="check_graph",
        **{
            "latency ms": check_s * 1e3,
            "share of compile %": check_s / compile_s * 100.0,
        },
    )
    table.add_row(
        stage="verify_plan",
        **{
            "latency ms": vp_s * 1e3,
            "share of compile %": vp_s / compile_s * 100.0,
        },
    )
    table.add_row(
        stage="verify=True total overhead",
        **{"latency ms": verify_s * 1e3, "share of compile %": overhead_pct},
    )
    record_table("analyze_overhead", table.render())
    record_bench(
        "analyze",
        [
            {
                "name": "cold_compile_verify_off",
                "batch": 1,
                "qps": 1.0 / compile_s,
                "speedup": 1.0,
            },
            {
                "name": "cold_compile_verify_on",
                "batch": 1,
                "qps": 1.0 / (compile_s + verify_s),
                "speedup": compile_s / (compile_s + verify_s),
            },
        ],
    )
    assert len(table.rows) == 4


@timing_sensitive
def test_verify_overhead_under_2_percent(result):
    """Acceptance: verify=True costs < 2% of a cold ResNet18 compile."""
    compile_s, check_s, vp_s = result
    overhead = (check_s + vp_s) / compile_s
    assert overhead < 0.02, (
        f"verification overhead {overhead * 100:.2f}% >= 2% "
        f"(compile {compile_s * 1e3:.1f} ms, "
        f"check_graph {check_s * 1e3:.2f} ms, "
        f"verify_plan {vp_s * 1e3:.2f} ms)"
    )
