"""E-TAB2-VIT: regenerate the ViT-Small half of Table 2.

Deploys dense and sparse-FFN ViT variants (the paper sparsifies only
the feed-forward FC layers, ~65% of parameters / ~60% of operations)
and compares cycles/memory against the paper's values, plus the
structural claims about where the time goes.
"""

import pytest

from repro.eval.paper_values import TABLE2_VIT
from repro.eval.table2 import table2_vit, vit_reports


@pytest.fixture(scope="module")
def reports():
    return vit_reports()


def test_table2_vit_table(benchmark, record_table, reports):
    table = benchmark.pedantic(table2_vit, rounds=1, iterations=1)
    assert len(table.rows) == len(TABLE2_VIT)
    record_table("table2_vit", table.render())


def test_cycles_within_validation_band(benchmark, reports):
    def worst():
        worst_err = 0.0
        for key, (_, _, paper_mcyc, _) in TABLE2_VIT.items():
            got = reports[key].total_cycles / 1e6
            worst_err = max(worst_err, abs(got / paper_mcyc - 1))
        return worst_err

    assert benchmark.pedantic(worst, rounds=1) < 0.20


def test_memory_within_15_percent(benchmark, reports):
    def worst():
        worst_err = 0.0
        for key, (_, _, _, paper_mb) in TABLE2_VIT.items():
            got = reports[key].weight_memory_mb
            worst_err = max(worst_err, abs(got / paper_mb - 1))
        return worst_err

    assert benchmark.pedantic(worst, rounds=1) < 0.15


def test_every_sparse_vit_beats_dense(benchmark, reports):
    """Table 2: all sparse ViTs outperform the dense baseline, with
    and without the ISA extension."""

    def check():
        dense = reports[("dense", None)].total_cycles
        return all(
            reports[(engine, f)].total_cycles < dense
            for engine in ("sparse-sw", "sparse-isa")
            for f in ("1:4", "1:8", "1:16")
        )

    assert benchmark.pedantic(check, rounds=1)


def test_isa_speedups_match_paper_band(benchmark, reports):
    """Paper: ISA end-to-end speedups 1.43x / 1.61x / 1.81x."""

    def speedups():
        dense = reports[("dense", None)].total_cycles
        return [
            dense / reports[("sparse-isa", f)].total_cycles
            for f in ("1:4", "1:8", "1:16")
        ]

    got = benchmark.pedantic(speedups, rounds=1)
    for ours, paper in zip(got, (1.43, 1.61, 1.81)):
        assert ours == pytest.approx(paper, rel=0.15)


def test_sw_and_isa_share_memory_footprint(benchmark, reports):
    """Table 2 shows identical Mem columns for SW and ISA ViTs: the FC
    ISA layout interleaves offsets without duplicating them."""

    def check():
        return all(
            reports[("sparse-sw", f)].weight_memory_mb
            == pytest.approx(reports[("sparse-isa", f)].weight_memory_mb)
            for f in ("1:4", "1:8", "1:16")
        )

    assert benchmark.pedantic(check, rounds=1)


def test_ffn_dominates_dense_runtime(benchmark, reports):
    """The FFN FC layers carry ~60% of operations and, being
    memory-bound, more than half the dense runtime — which is why
    sparsifying only them still yields 1.8x end to end."""

    def ffn_share():
        report = reports[("dense", None)]
        by_kind = report.cycles_by_kind()
        return by_kind["fc"] / report.total_cycles

    assert benchmark.pedantic(ffn_share, rounds=1) > 0.5
