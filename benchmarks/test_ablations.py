"""Ablation benches for the design choices DESIGN.md calls out.

- Decimate-Im2col vs the two rejected strategies (Sec. 4.1.2);
- offset duplication cost for the ISA conv layout (Sec. 4.1.3);
- format-aware vs naive tiling (Sec. 4.4 item 2);
- interleaved vs split L2 layout (Sec. 4.4 item 3);
- sparse inner-loop unrolling factor (Sec. 4.1.2, last paragraph).
"""

import pytest

from repro.eval.ablations import (
    im2col_strategy_table,
    layout_interleaving_table,
    offset_duplication_table,
    tiling_awareness_table,
    unrolling_table,
)


def test_decimate_im2col_wins(benchmark, record_table):
    table = benchmark.pedantic(im2col_strategy_table, rounds=1, iterations=1)
    record_table("ablation_im2col", table.render())
    ratios = {r["strategy"]: r["vs chosen"] for r in table.rows}
    assert ratios["decimate im2col (paper)"] == 1.0
    assert ratios["sparse im2col"] > 10
    assert ratios["DMA-based copy"] > 10


def test_offset_duplication_overhead_bounded(benchmark, record_table):
    """Duplication costs memory but keeps every ISA reduction >= 62.5%."""
    table = benchmark.pedantic(
        offset_duplication_table, rounds=1, iterations=1
    )
    record_table("ablation_duplication", table.render())
    for row in table.rows:
        assert row["ISA bytes"] > row["SW bytes"]
        assert row["ISA reduction %"] >= 62.5 - 0.01


def test_format_aware_tiling_never_worse(benchmark, record_table):
    table = benchmark.pedantic(tiling_awareness_table, rounds=1, iterations=1)
    record_table("ablation_tiling", table.render())
    assert all(r["DMA setups saved"] >= 0 for r in table.rows)
    assert any(r["DMA setups saved"] > 0 for r in table.rows)


def test_interleaved_layout_halves_transfers(benchmark, record_table):
    table = benchmark.pedantic(
        layout_interleaving_table, rounds=1, iterations=1
    )
    record_table("ablation_layout", table.render())
    for row in table.rows:
        assert row["transfers (split)"] == 2 * row["transfers (interleaved)"]
        assert row["DMA cycles saved"] > 0


def test_unrolling_tradeoff(benchmark, record_table):
    """Higher unrolling lowers instructions/MAC but inflates the im2col
    footprint — U=8 no longer fits the L1 budget that U<=2 enjoys."""
    table = benchmark.pedantic(unrolling_table, rounds=1, iterations=1)
    record_table("ablation_unroll", table.render())
    per_mac = [r["instr per MAC"] for r in table.rows]
    assert per_mac == sorted(per_mac, reverse=True)
    fits = {r["unroll U"]: r["fits with K-tile=64?"] for r in table.rows}
    assert fits[2] == "True"
    assert fits[8] == "False"
