"""E-SPARSE-ISA: ISA-backend vs SW-backend sparse plans at B=32.

For each supported N:M format, prunes the ResNet-style demo graph,
quantises it, and compiles three int8 plans on one engine — dense, the
SW sparse backend, and the ISA-extension emulation backend — then
measures at batch 32:

- **correctness** (hard gate, also on CI): the ISA plan's batched
  output is bit-identical to both the SW sparse plan and the dense
  plan (the ISA only accelerates the decimation, it never changes an
  accumulator);
- **memory** (reported): the ISA layouts' weight bytes — conv layers
  pay for their duplicated offset streams (Sec. 4.1.3), FC layers
  interleave without growing;
- **throughput** (reported, not gated): isa-vs-sw wall-clock of the
  host emulation plans.  Host-side numbers are not MCU speedups — the
  cost model owns those (the same ranking ``backend="auto"`` runs).

One extra run exercises ``backend="auto"`` and records the per-layer
backend split the cost model picked.

Results land in ``benchmarks/results/sparse_isa_throughput.txt`` and
machine-readable ``BENCH_sparse_isa.json``.
"""

import pytest

from repro.engine.bench import measure_sparse_throughput
from repro.sparsity.nm import FORMAT_1_8, SUPPORTED_FORMATS
from repro.utils.tables import Table

BATCH = 32


@pytest.fixture(scope="module")
def results():
    return {
        name: measure_sparse_throughput(fmt, batch=BATCH, repeats=3, backend="isa")
        for name, fmt in SUPPORTED_FORMATS.items()
    }


@pytest.fixture(scope="module")
def auto_result():
    return measure_sparse_throughput(
        FORMAT_1_8, batch=BATCH, repeats=3, backend="auto"
    )


def test_sparse_isa_table(benchmark, record_table, record_bench, results, auto_result):
    res = benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    table = Table(
        f"ISA vs SW sparse int8 plans (pruned demo graph, batch {BATCH})",
        [
            "format",
            "sw ms",
            "isa ms",
            "isa/sw",
            "isa layers",
            "isa weight bytes",
            "dense bytes",
            "bit-identical",
        ],
    )
    entries = []
    for name, r in res.items():
        table.add_row(
            format=name,
            **{
                "sw ms": r.sw_s * 1e3,
                "isa ms": r.sparse_s * 1e3,
                "isa/sw": r.speedup_vs_sw,
                "isa layers": r.backend_layers.get("sparse-isa", 0),
                "isa weight bytes": r.sparse_weight_bytes,
                "dense bytes": r.dense_weight_bytes,
                "bit-identical": r.identical and r.matches_sw,
            },
        )
        entries.append(
            {
                "name": f"sw_plan_{name}",
                "batch": r.batch,
                "qps": r.sw_throughput,
                "speedup": 1.0,
            }
        )
        entries.append(
            {
                "name": f"isa_plan_{name}",
                "batch": r.batch,
                "qps": r.sparse_throughput,
                "speedup": r.speedup_vs_sw,
                "weight_bytes": r.sparse_weight_bytes,
                "dense_weight_bytes": r.dense_weight_bytes,
                "isa_layers": r.backend_layers.get("sparse-isa", 0),
                "nm_layers": r.sparse_layers,
                "bit_identical_to_dense": r.identical,
                "bit_identical_to_sw": r.matches_sw,
            }
        )
    entries.append(
        {
            "name": "auto_plan_1:8",
            "batch": auto_result.batch,
            "qps": auto_result.sparse_throughput,
            "speedup": auto_result.speedup_vs_sw,
            "backend_layers": auto_result.backend_layers,
            "bit_identical_to_dense": auto_result.identical,
            "bit_identical_to_sw": auto_result.matches_sw,
        }
    )
    auto_split = ", ".join(
        f"{n} x {b}" for b, n in sorted(auto_result.backend_layers.items())
    )
    record_table(
        "sparse_isa_throughput",
        table.render(),
        f"auto backend (1:8): {auto_split}; isa/sw wall-clock "
        f"{auto_result.speedup_vs_sw:.2f}x",
    )
    record_bench("sparse_isa", entries)
    assert len(table.rows) == len(SUPPORTED_FORMATS)


def test_isa_plans_bit_identical(results, auto_result):
    """Hard acceptance gate: zero deviation vs dense AND vs sw, every
    format, and under the auto ranking."""
    for name, r in results.items():
        assert r.identical, f"{name}: isa plan deviates from dense"
        assert r.matches_sw, f"{name}: isa plan deviates from sw"
        assert r.max_rel_dev == 0.0, name
    assert auto_result.identical and auto_result.matches_sw


def test_isa_binds_every_eligible_layer(results):
    """Under backend='isa' every modelled N:M layer runs the ISA
    emulation (the demo graph has no odd-K FC fallbacks)."""
    for name, r in results.items():
        assert r.backend_layers.get("sparse-isa", 0) == r.sparse_layers, name


def test_isa_conv_layers_pay_for_duplicated_offsets(results):
    """ISA weight accounting: at least as many bytes as the SW packing
    (duplicated conv offsets), still far below dense."""
    for name, r in results.items():
        sw = measure_sparse_throughput(
            SUPPORTED_FORMATS[name], batch=2, repeats=1, backend="sw"
        )
        assert r.sparse_weight_bytes >= sw.sparse_weight_bytes, name
        assert r.sparse_weight_bytes < r.dense_weight_bytes, name
