"""E-FIG8-FC: regenerate the FC half of Fig. 8.

Sweeps C in {256, 512, 1024, 2048} at K=256 over the seven FC variants
and checks the paper's claims: SW sparse beats dense even at 1:4
(barely — ~2% on average, via reduced weight streaming), 1:8/1:16 SW
reach ~1.6x/2.3x, ISA ~1.8x/2.2x/2.9x, all improving with C.
"""

import numpy as np
import pytest

from repro.eval.fig8 import FC_CHANNEL_SWEEP, average_speedup, fig8_fc
from repro.eval.paper_values import FIG8_FC_AVG_SPEEDUP
from repro.kernels.fc_dense import fc_dense
from repro.kernels.fc_sparse import fc_sparse
from repro.kernels.shapes import FcShape
from repro.sparsity.nm import FORMAT_1_16, NMSparseMatrix
from repro.sparsity.pruning import prune_fc_weights
from repro.utils.tables import Table


def test_fig8_fc_table(benchmark, record_table):
    table = benchmark.pedantic(fig8_fc, rounds=1, iterations=1)
    assert len(table.rows) == 7 * len(FC_CHANNEL_SWEEP)

    comparison = Table(
        "Fig. 8 FC averages: paper vs model",
        ["variant", "fmt", "paper", "model", "error %"],
    )
    for (variant, fmt_name), paper in FIG8_FC_AVG_SPEEDUP.items():
        got = average_speedup("fc", variant, fmt_name)
        comparison.add_row(
            variant=variant,
            fmt=fmt_name or "-",
            paper=paper,
            model=got,
            **{"error %": 100 * (got / paper - 1)},
        )
        assert got == pytest.approx(paper, rel=0.15), (variant, fmt_name)
    record_table("fig8_fc", table.render(), comparison.render())


def test_fc_1_4_sw_marginal_but_positive(benchmark):
    """Sec. 5.2: no inner-loop gain at 1:4, yet slightly faster overall
    thanks to the reduced weight stream (memory-bound layers)."""
    got = benchmark.pedantic(
        lambda: average_speedup("fc", "sparse-sw", "1:4"), rounds=1
    )
    assert 1.0 <= got < 1.2


def test_fc_speedup_grows_with_c(benchmark):
    """Sec. 5.2: the 1:4 SW speedup peaks at the largest geometry."""

    def series():
        table = fig8_fc()
        rows = [
            r
            for r in table.rows
            if r["variant"] == "sparse-sw" and r["fmt"] == "1:4"
        ]
        return [r["speedup vs dense"] for r in rows]

    speedups = benchmark.pedantic(series, rounds=1)
    assert speedups[-1] == max(speedups)


def test_fc_1_16_peak_exceeds_average(benchmark):
    """Sec. 5.2 quotes peaks up to 3.4x at 1:16; the model (calibrated
    on the 2.3x *average*) must show the same peak-at-largest-C shape,
    clearly above the average."""

    def peak():
        table = fig8_fc()
        return max(
            r["speedup vs dense"]
            for r in table.rows
            if r["variant"] == "sparse-sw" and r["fmt"] == "1:16"
        )

    assert benchmark.pedantic(peak, rounds=1) > 2.5


def test_fc_kernel_execution(benchmark):
    """Wall-time of the functional FC kernels at C=2048."""
    shape = FcShape(c=2048, k=256)
    rng = np.random.default_rng(1)
    x = rng.integers(-128, 128, 2048).astype(np.int8)
    w = rng.integers(-128, 128, (256, 2048)).astype(np.int8)
    wp = prune_fc_weights(w, FORMAT_1_16)
    mat = NMSparseMatrix.from_dense(wp, FORMAT_1_16)

    out_sparse = benchmark(lambda: fc_sparse(x, mat, shape))
    assert (out_sparse == fc_dense(x, wp, shape)).all()
