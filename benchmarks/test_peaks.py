"""E-PEAKS: the Sec. 4 analytical peak table, measured on the core model.

The peaks follow from microcode-verified instruction counts; this bench
additionally *executes* each inner loop on the instruction-level core
model and derives MACs/instruction from retired-instruction counters,
checking the quoted numbers end to end.
"""

import numpy as np
import pytest

from repro.eval.peaks import peak_macs_per_instruction, peaks_table
from repro.kernels.micro_runner import run_conv_pair, run_fc_micro
from repro.sparsity.nm import FORMAT_1_8, NMSparseMatrix
from repro.sparsity.pruning import nm_prune


def test_peaks_table(benchmark, record_table):
    table = benchmark.pedantic(peaks_table, rounds=1, iterations=1)
    record_table("peaks", table.render())
    assert len(table.rows) == 15  # 5 dense/shared + 10 sparse entries


@pytest.mark.parametrize(
    "kind,variant,m,expected",
    [
        ("conv", "dense-4x2", None, 2.28),
        ("conv", "dense-1x2", None, 1.60),
        ("conv", "sparse-sw", 8, 0.36),
        ("conv", "sparse-sw", 4, 0.35),
        ("conv", "sparse-isa", 8, 0.66),
        ("fc", "dense", None, 1.60),
        ("fc", "sparse-sw", 8, 0.25),
        ("fc", "sparse-isa", 8, 0.61),
    ],
)
def test_paper_peak_values(benchmark, kind, variant, m, expected):
    got = benchmark.pedantic(
        lambda: peak_macs_per_instruction(kind, variant, m), rounds=1
    )
    assert got == pytest.approx(expected, abs=0.015)


def test_measured_peak_on_core_model(benchmark):
    """Execute the 1:8 ISA conv kernel on the core model: the measured
    MACs/instruction must approach the 0.66 peak as K and R grow."""
    rng = np.random.default_rng(0)
    r = 64 * 8
    buf1 = rng.integers(-128, 128, r).astype(np.int8)
    buf2 = rng.integers(-128, 128, r).astype(np.int8)
    w = nm_prune(rng.integers(-128, 128, (16, r)).astype(np.int8), FORMAT_1_8)
    mat = NMSparseMatrix.from_dense(w, FORMAT_1_8)

    result = benchmark(lambda: run_conv_pair("sparse-isa", mat, buf1, buf2))
    measured = result.stats.macs_per_instruction()
    assert measured == pytest.approx(0.66, abs=0.03)


def test_measured_fc_dense_peak(benchmark):
    rng = np.random.default_rng(1)
    x = rng.integers(-128, 128, 1024).astype(np.int8)
    w = rng.integers(-128, 128, (32, 1024)).astype(np.int8)
    result = benchmark(lambda: run_fc_micro("dense", w, x))
    assert result.stats.macs_per_instruction() == pytest.approx(1.6, abs=0.05)
