"""E-SPARSE-FLOAT: float sparse vs dense plans on the pruned demo model.

The float counterpart of ``test_sparse_engine_throughput.py``.  For
each supported N:M format, prunes the ResNet-style demo graph and
compares the float sparse plan against the dense float plan at
batch 32:

- **correctness** (hard gate, also on CI): the sparse plan's output is
  within the documented tolerance of the dense plan
  (``FLOAT_SPARSE_REL_TOL`` — float gather accumulation differs from
  the BLAS reduction order, so bit-identity is an int8-only contract),
  and no layer silently fell back dense;
- **memory** (hard gate): the plan's compile-time weight bytes equal
  the independently re-packed float32 ``NMSparseMatrix.total_bytes``
  (4-byte values + packed offsets) per layer;
- **throughput** (reported, not gated): host wall-clock of both plans.

Results land in ``benchmarks/results/sparse_float_throughput.txt`` and
machine-readable ``BENCH_sparse_float.json``.
"""

import numpy as np
import pytest

from repro.engine.bench import FLOAT_SPARSE_REL_TOL, measure_sparse_throughput
from repro.sparsity.nm import NMSparseMatrix, SUPPORTED_FORMATS
from repro.utils.tables import Table

BATCH = 32


@pytest.fixture(scope="module")
def results():
    return {
        name: measure_sparse_throughput(fmt, batch=BATCH, repeats=3, mode="float")
        for name, fmt in SUPPORTED_FORMATS.items()
    }


def test_sparse_float_table(benchmark, record_table, record_bench, results):
    res = benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    table = Table(
        f"Sparse vs dense float plans (pruned demo graph, batch {BATCH})",
        [
            "format",
            "dense ms",
            "sparse ms",
            "speedup",
            "N:M layers",
            "gather",
            "weight bytes",
            "dense bytes",
            "mem reduction",
            "max rel dev",
        ],
    )
    entries = []
    for name, r in res.items():
        table.add_row(
            format=name,
            **{
                "dense ms": r.dense_s * 1e3,
                "sparse ms": r.sparse_s * 1e3,
                "speedup": r.speedup,
                "N:M layers": r.sparse_layers,
                "gather": r.gather_layers,
                "weight bytes": r.sparse_weight_bytes,
                "dense bytes": r.dense_weight_bytes,
                "mem reduction": f"{r.memory_reduction:.1%}",
                "max rel dev": f"{r.max_rel_dev:.2e}",
            },
        )
        entries.append(
            {
                "name": f"sparse_float_plan_{name}",
                "batch": r.batch,
                "qps": r.sparse_throughput,
                "speedup": r.speedup,
                "dense_qps": r.dense_throughput,
                "weight_bytes": r.sparse_weight_bytes,
                "dense_weight_bytes": r.dense_weight_bytes,
                "memory_reduction": r.memory_reduction,
                "nm_layers": r.sparse_layers,
                "gather_layers": r.gather_layers,
                "max_rel_dev": r.max_rel_dev,
                "within_tolerance": r.within_tolerance,
            }
        )
    record_table("sparse_float_throughput", table.render())
    record_bench("sparse_float", entries)
    assert len(table.rows) == len(SUPPORTED_FORMATS)


def test_float_plans_within_documented_tolerance(results):
    """Hard acceptance gate: tolerance holds and nothing fell back
    dense, every format."""
    for name, r in results.items():
        assert r.sparse_layers > 0, f"{name}: float plan fell back dense"
        assert r.within_tolerance, (
            f"{name}: deviation {r.max_rel_dev:.3e} exceeds "
            f"{FLOAT_SPARSE_REL_TOL:.0e}"
        )


def test_forced_gather_within_tolerance_every_format():
    """Pin every layer to the decimation kernel so the float gather
    path itself is tolerance-gated per format."""
    for name, fmt in SUPPORTED_FORMATS.items():
        r = measure_sparse_throughput(
            fmt, batch=8, repeats=1, force_method="gather", mode="float"
        )
        assert r.gather_layers == r.sparse_layers > 0, name
        assert r.within_tolerance, f"{name}: forced-gather float deviated"


def test_float_weight_bytes_match_packed_format(results):
    """Compile-time accounting equals the float32 packed layout."""
    for name, r in results.items():
        fmt = SUPPORTED_FORMATS[name]
        total = 0
        for layer, choice in r.kernel_choices.items():
            if choice.fmt is None:
                total += choice.weight_bytes  # dense layer: float32 matrix
                continue
            assert choice.fmt == fmt.name
            w = np.asarray(r.graph.node(layer).attrs["weights"], dtype=np.float32)
            packed = NMSparseMatrix.from_dense(
                w.reshape(w.shape[0], -1), fmt, dtype=np.float32
            )
            assert choice.weight_bytes == packed.total_bytes(), layer
            assert choice.dense_bytes == packed.dense_bytes(), layer
            total += packed.total_bytes()
        assert r.sparse_weight_bytes == total
        assert r.sparse_weight_bytes < r.dense_weight_bytes
