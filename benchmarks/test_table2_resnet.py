"""E-TAB2-RESNET: regenerate the ResNet18 half of Table 2.

Deploys dense (1x2, PULP-NN) and sparse (1:4/1:8/1:16 x SW/ISA)
ResNet18 models end to end and compares MAC/cycle, Mcycles and memory
against the paper.  The dense rows anchored the calibration; the sparse
rows are the model's *validation set* (see EXPERIMENTS.md) and are
checked within a 30% band plus all qualitative orderings.
"""

import pytest

from repro.eval.paper_values import TABLE2_RESNET
from repro.eval.table2 import resnet_reports, table2_resnet


@pytest.fixture(scope="module")
def reports():
    return resnet_reports()


def test_table2_resnet_table(benchmark, record_table, reports):
    table = benchmark.pedantic(table2_resnet, rounds=1, iterations=1)
    assert len(table.rows) == len(TABLE2_RESNET)
    record_table("table2_resnet", table.render())


def test_cycles_within_validation_band(benchmark, reports):
    def worst():
        worst_err = 0.0
        for key, (_, _, paper_mcyc, _) in TABLE2_RESNET.items():
            got = reports[key].total_cycles / 1e6
            worst_err = max(worst_err, abs(got / paper_mcyc - 1))
        return worst_err

    assert benchmark.pedantic(worst, rounds=1) < 0.30


def test_memory_within_10_percent(benchmark, reports):
    def worst():
        worst_err = 0.0
        for key, (_, _, _, paper_mb) in TABLE2_RESNET.items():
            got = reports[key].weight_memory_mb
            worst_err = max(worst_err, abs(got / paper_mb - 1))
        return worst_err

    assert benchmark.pedantic(worst, rounds=1) < 0.10


def test_1_4_sw_loses_to_both_dense_baselines(benchmark, reports):
    """Table 2: the 1:4 SW model is outperformed by 1x2 and PULP-NN."""

    def check():
        sw = reports[("sparse-sw", "1:4")].total_cycles
        return (
            sw > reports[("dense-1x2", None)].total_cycles
            and sw > reports[("dense-4x2", None)].total_cycles
        )

    assert benchmark.pedantic(check, rounds=1)


def test_all_isa_variants_beat_both_dense_baselines(benchmark, reports):
    """Table 2: with xDecimate, every sparse ResNet wins."""

    def check():
        best_dense = min(
            reports[("dense-1x2", None)].total_cycles,
            reports[("dense-4x2", None)].total_cycles,
        )
        return all(
            reports[("sparse-isa", f)].total_cycles < best_dense
            for f in ("1:4", "1:8", "1:16")
        )

    assert benchmark.pedantic(check, rounds=1)


def test_latency_monotone_in_sparsity(benchmark, reports):
    def check():
        for engine in ("sparse-sw", "sparse-isa"):
            cycles = [
                reports[(engine, f)].total_cycles for f in ("1:4", "1:8", "1:16")
            ]
            if cycles != sorted(cycles, reverse=True):
                return False
        return True

    assert benchmark.pedantic(check, rounds=1)


def test_isa_memory_exceeds_sw_memory(benchmark, reports):
    """Sec. 5.3: ISA ResNets need slightly more memory than SW ones
    (duplicated conv offsets)."""

    def check():
        return all(
            reports[("sparse-isa", f)].weight_memory_mb
            > reports[("sparse-sw", f)].weight_memory_mb
            for f in ("1:4", "1:8", "1:16")
        )

    assert benchmark.pedantic(check, rounds=1)


def test_sparsified_convs_carry_97_percent_of_params(benchmark, reports):
    """Sec. 5.3: the pruned (3x3, C>=16) convolutions hold ~97% of the
    model's parameters and ~98% of its MACs."""

    def shares():
        report = reports[("sparse-sw", "1:8")]
        sparse_macs = sum(p.macs for p in report.plans if p.fmt is not None)
        total_macs = sum(p.macs for p in report.plans)

        from repro.models.resnet import resnet18_cifar
        from repro.sparsity.nm import SUPPORTED_FORMATS

        g = resnet18_cifar(fmt=SUPPORTED_FORMATS["1:8"])
        pruned_params = total_params = 0
        for node in g:
            w = node.attrs.get("weights")
            if w is None:
                continue
            total_params += w.size
            if node.op == "conv2d" and w.shape[1] == 3 and w.shape[3] >= 16:
                pruned_params += w.size
        return pruned_params / total_params, sparse_macs / total_macs

    param_share, mac_share = benchmark.pedantic(shares, rounds=1)
    assert param_share > 0.95
    assert mac_share > 0.96
