"""E-ACC: the accuracy-trend experiment behind Table 2's accuracy
columns, reproduced at small scale with SR-STE training.

The claim being checked is qualitative and matches the paper's: mild
N:M patterns (1:4, 1:8) cost little or nothing, 1:16 costs a small but
visible amount, and every trained model's weights genuinely satisfy
their N:M pattern (so they deploy through the sparse kernels).
"""

import pytest

from repro.eval.accuracy import accuracy_trend


@pytest.fixture(scope="module")
def trend():
    return accuracy_trend(epochs=6, seed=0)


def test_accuracy_trend_table(benchmark, record_table, trend):
    table, points = benchmark.pedantic(
        lambda: trend, rounds=1, iterations=1
    )
    record_table("accuracy_trend", table.render())
    assert [p.label for p in points] == ["dense", "1:4", "1:8", "1:16"]


def test_all_models_learn(benchmark, trend):
    _, points = trend
    accs = benchmark.pedantic(lambda: [p.accuracy for p in points], rounds=1)
    chance = 1 / 8
    assert all(a > 3 * chance for a in accs)


def test_mild_sparsity_costs_little(benchmark, trend):
    """1:4 accuracy within a few points of dense (paper: +0.5% — mild
    N:M sparsity can even act as a regulariser and *beat* dense)."""
    _, points = trend
    by_label = benchmark.pedantic(
        lambda: {p.label: p.accuracy for p in points}, rounds=1
    )
    assert by_label["1:4"] >= by_label["dense"] - 0.05


def test_all_degradations_small(benchmark, trend):
    """Paper Table 2: every sparse model lands within ~1.5 accuracy
    points of dense; here we allow 5 at the small synthetic scale."""
    _, points = trend
    by_label = benchmark.pedantic(
        lambda: {p.label: p.accuracy for p in points}, rounds=1
    )
    for label in ("1:4", "1:8", "1:16"):
        assert by_label[label] >= by_label["dense"] - 0.05


def test_trained_weights_are_nm_compliant(benchmark, trend):
    """SR-STE's masked weights must satisfy their N:M pattern exactly —
    the handoff contract to the deployment pipeline."""
    _, points = trend
    flags = benchmark.pedantic(
        lambda: [p.weights_are_nm for p in points if p.label != "dense"],
        rounds=1,
    )
    assert all(flags)
