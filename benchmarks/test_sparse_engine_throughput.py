"""E-SPARSE: sparse vs dense execution plans on the pruned demo model.

For each supported N:M format, prunes the ResNet-style demo graph,
quantises it, compiles the dense and sparse int8 plans on one engine,
and measures at batch 32:

- **correctness** (hard gate, also on CI): the sparse plan's batched
  output is bit-identical to the dense plan's;
- **memory** (hard gate): the sparse plan's compile-time weight bytes
  equal the independently re-packed ``NMSparseMatrix.total_bytes``
  (values + packed offsets) per layer;
- **throughput** (reported, not gated): sparse-vs-dense wall-clock of
  the host plans.  The gather path models the MCU decimation loop in
  vectorised numpy, so host-side speedups are not the paper's MCU
  speedups — the cost model owns those (Fig. 8 / Table 2 benchmarks).

Results land in ``benchmarks/results/sparse_engine_throughput.txt`` and
machine-readable ``BENCH_sparse_engine.json``.
"""

import numpy as np
import pytest

from repro.engine.bench import measure_sparse_throughput
from repro.sparsity.nm import NMSparseMatrix, SUPPORTED_FORMATS
from repro.utils.tables import Table

BATCH = 32


@pytest.fixture(scope="module")
def results():
    return {
        name: measure_sparse_throughput(fmt, batch=BATCH, repeats=3)
        for name, fmt in SUPPORTED_FORMATS.items()
    }


def test_sparse_engine_table(benchmark, record_table, record_bench, results):
    res = benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    table = Table(
        f"Sparse vs dense int8 plans (pruned demo graph, batch {BATCH})",
        [
            "format",
            "dense ms",
            "sparse ms",
            "speedup",
            "N:M layers",
            "gather",
            "weight bytes",
            "dense bytes",
            "mem reduction",
        ],
    )
    entries = []
    for name, r in res.items():
        table.add_row(
            format=name,
            **{
                "dense ms": r.dense_s * 1e3,
                "sparse ms": r.sparse_s * 1e3,
                "speedup": r.speedup,
                "N:M layers": r.sparse_layers,
                "gather": r.gather_layers,
                "weight bytes": r.sparse_weight_bytes,
                "dense bytes": r.dense_weight_bytes,
                "mem reduction": f"{r.memory_reduction:.1%}",
            },
        )
        entries.append(
            {
                "name": f"dense_plan_{name}",
                "batch": r.batch,
                "qps": r.dense_throughput,
                "speedup": 1.0,
                "weight_bytes": r.dense_weight_bytes,
            }
        )
        entries.append(
            {
                "name": f"sparse_plan_{name}",
                "batch": r.batch,
                "qps": r.sparse_throughput,
                "speedup": r.speedup,
                "weight_bytes": r.sparse_weight_bytes,
                "dense_weight_bytes": r.dense_weight_bytes,
                "memory_reduction": r.memory_reduction,
                "nm_layers": r.sparse_layers,
                "gather_layers": r.gather_layers,
                "bit_identical": r.identical,
            }
        )
    record_table("sparse_engine_throughput", table.render())
    record_bench("sparse_engine", entries)
    assert len(table.rows) == len(SUPPORTED_FORMATS)


def test_sparse_plans_bit_identical_to_dense(results):
    """Hard acceptance gate: zero deviation, every format."""
    for name, r in results.items():
        assert r.identical, f"{name}: sparse plan diverged from dense plan"


def test_forced_gather_bit_identical_every_format():
    """The cost model may route layers to scatter-to-dense (which
    shares the dense binding); pin every layer to the gather kernel so
    the decimation path itself is gated per format."""
    for name, fmt in SUPPORTED_FORMATS.items():
        r = measure_sparse_throughput(
            fmt, batch=8, repeats=1, force_method="gather"
        )
        assert r.gather_layers == r.sparse_layers > 0, name
        assert r.identical, f"{name}: forced-gather plan diverged"


def test_sparse_weight_bytes_match_packed_format(results):
    """Compile-time weight accounting equals the N:M packed layout.

    Every sparse layer's recorded bytes are re-derived by independently
    re-packing the layer's quantised weights into an
    :class:`NMSparseMatrix`; the plan-level totals must be their sum.
    """
    for name, r in results.items():
        fmt = SUPPORTED_FORMATS[name]
        assert r.sparse_layers > 0, f"{name}: no layer was routed sparse"
        total = 0
        for layer, choice in r.kernel_choices.items():
            if choice.fmt is None:
                total += choice.weight_bytes  # dense layer: int8 matrix
                continue
            assert choice.fmt == fmt.name
            wq = np.asarray(r.graph.node(layer).attrs["weights_q"])
            packed = NMSparseMatrix.from_dense(wq.reshape(wq.shape[0], -1), fmt)
            assert choice.weight_bytes == packed.total_bytes(), layer
            assert choice.dense_bytes == packed.dense_bytes(), layer
            total += packed.total_bytes()
        assert r.sparse_weight_bytes == total
        assert r.sparse_weight_bytes < r.dense_weight_bytes
