"""E-EXT-*: extension benches (the paper's future work, made concrete).

- energy estimates per kernel variant (Sec. 6 future work);
- per-stage variable sparsity schedules on ResNet18 (Sec. 6);
- unstructured CSR comparator at matched sparsity (Sec. 2.1/3);
- the double-buffering claim behind Sec. 5.2.
"""

import pytest

from repro.eval.extensions import (
    double_buffering_table,
    energy_table,
    mixed_sparsity_table,
    unstructured_comparison_table,
)


def test_energy_table(benchmark, record_table):
    table = benchmark.pedantic(energy_table, rounds=1, iterations=1)
    record_table("ext_energy", table.render())
    rows = {(r["variant"], r["fmt"]): r for r in table.rows}
    # High sparsity + ISA is the most energy-efficient configuration.
    assert rows[("sparse-isa", "1:16")]["vs dense"] > 3.0
    # 1:4 SW costs MORE energy than PULP-NN — mirroring its latency loss.
    assert rows[("sparse-sw", "1:4")]["vs dense"] < 1.0
    # Reduced L2 traffic contributes (paper Sec. 6's expectation).
    assert rows[("sparse-sw", "1:16")]["L2 uJ"] < rows[("dense-4x2", "-")]["L2 uJ"]


def test_mixed_sparsity_schedules(benchmark, record_table):
    table = benchmark.pedantic(mixed_sparsity_table, rounds=1, iterations=1)
    record_table("ext_mixed_sparsity", table.render())
    rows = {r["schedule"]: r for r in table.rows}
    # Every schedule beats dense; the depth-weighted schedule trades a
    # little latency for the smallest memory footprint.
    for name, row in rows.items():
        if name != "dense (PULP-NN)":
            assert row["speedup vs dense"] > 1.0
    assert (
        rows["1:4/1:4/1:16/1:16"]["Mem MB"]
        < rows["uniform 1:8"]["Mem MB"]
    )


def test_unstructured_comparator(benchmark, record_table):
    table = benchmark.pedantic(
        unstructured_comparison_table, rounds=1, iterations=1
    )
    record_table("ext_unstructured", table.render())
    for row in table.rows:
        assert row["N:M SW speedup"] > row["CSR speedup"]
        assert row["N:M ISA speedup"] > row["N:M SW speedup"]
    # Sec. 2.1: at 75% sparsity, unstructured CSR is slower than dense.
    row_75 = table.rows[0]
    assert row_75["CSR speedup"] < 1.0


def test_double_buffering(benchmark, record_table):
    table = benchmark.pedantic(double_buffering_table, rounds=1, iterations=1)
    record_table("ext_double_buffer", table.render())
    rows = {(r["layer"], r["policy"]): r for r in table.rows}
    conv = rows[("conv C=128 K=256", "double-buffered")]
    fc = rows[("fc C=2048 K=256", "double-buffered")]
    # Conv layers are compute-bound: streams vanish behind compute.
    assert conv["transfer/compute"] < 0.1
    assert conv["hidden %"] > 80
    # FC layers are memory-bound: the stream rivals the compute.
    assert fc["transfer/compute"] > 0.5
    # Double-buffering never loses to serialisation.
    for layer in ("conv C=128 K=256", "fc C=2048 K=256"):
        assert (
            rows[(layer, "double-buffered")]["total kcyc"]
            <= rows[(layer, "serialized")]["total kcyc"]
        )
