"""E-ACT-SKIP: activation zero-skipping density sweep on pruned ResNet18.

Activation sparsity is dynamic — it depends on the input, not the
weights — so the skipping fast path must prove two things at once:

- **correctness** (hard gate, also on CI): at *every* density the
  zero-skipping sparse plan's int8 output is bit-identical to the
  plain sparse plan's.  Skipping only elides MACs whose inputs are
  exactly zero, so integer accumulation cannot change a bit.
- **profitability** (gated at the sweep's ends): at density 0.1 the
  skipping plan must be at least 1.3x faster than the plain plan; at
  full density (nothing to skip) the per-batch mask scans must cost at
  most ~5% (speedup >= 0.95) — the margin the cost model's ``auto``
  gate is calibrated around.

The sweep zeroes a growing bottom band of input rows; ResNet18's convs
are bias-free, so the zero band survives ReLU and propagates through
the entire stack, giving the network-wide activation sparsity the
per-layer calibration then measures.  Results land in
``benchmarks/results/act_skip_sweep.txt`` and machine-readable
``BENCH_act_skip.json`` (picked up by the perf-trend gate).
"""

import pytest

from repro.engine.bench import measure_act_skip_sweep
from repro.utils.tables import Table

BATCH = 8
DENSITIES = (1.0, 0.9, 0.75, 0.5, 0.25, 0.1, 0.05)

#: Acceptance gates (ISSUE): >= 1.3x at density 0.1, <= ~5% overhead
#: (>= 0.95x) when there is nothing to skip.
MIN_SPEEDUP_AT_SPARSE = 1.3
MIN_SPEEDUP_AT_DENSE = 0.95


@pytest.fixture(scope="module")
def sweep():
    return measure_act_skip_sweep(
        densities=DENSITIES, batch=BATCH, repeats=3, backend="isa"
    )


def test_act_skip_sweep_table(benchmark, record_table, record_bench, sweep):
    res = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    table = Table(
        f"activation zero-skipping on {res[0].graph_name} "
        f"({res[0].fmt_name}, int8/isa, batch {BATCH})",
        [
            "input density",
            "measured density",
            "plain ms",
            "skip ms",
            "speedup",
            "skip layers",
            "bit-identical",
        ],
    )
    entries = []
    for r in res:
        table.add_row(
            **{
                "input density": r.density,
                "measured density": r.measured_density,
                "plain ms": r.plain_s * 1e3,
                "skip ms": r.skip_s * 1e3,
                "speedup": r.speedup,
                "skip layers": r.skip_layers,
                "bit-identical": r.identical,
            }
        )
        entries.append(
            {
                "name": f"act_skip_d{r.density:g}",
                "batch": r.batch,
                "qps": r.skip_throughput,
                "speedup": r.speedup,
                "plain_qps": r.plain_throughput,
                "input_density": r.density,
                "measured_density": r.measured_density,
                "skip_layers": r.skip_layers,
                "gather_layers": r.gather_layers,
                "bit_identical": r.identical,
            }
        )
    record_table(
        "act_skip_sweep",
        table.render(),
        f"skip-bound layers: {res[0].skip_layers}/{res[0].gather_layers} "
        f"gather layers; speedup at density 0.1: "
        f"{next(r.speedup for r in res if r.density == 0.1):.2f}x",
    )
    record_bench("act_skip", entries)
    assert len(table.rows) == len(DENSITIES)


def test_bit_identical_at_every_density(sweep):
    """Hard acceptance gate: skipping never changes a bit, at any
    density — including the all-dense and almost-all-zero extremes."""
    for r in sweep:
        assert r.identical, f"density {r.density}: skip plan deviates"


def test_skipping_is_bound(sweep):
    """``force`` binds the skip path on every gather layer, and every
    skip-bound choice carries the calibrated density estimate."""
    for r in sweep:
        assert r.skip_layers == r.gather_layers > 0
        assert 0.0 <= r.measured_density <= 1.0


def test_speedup_at_sweep_ends(sweep):
    """Profitability gates: big win when activations are sparse, near
    free when they are not."""
    by_density = {r.density: r for r in sweep}
    assert by_density[0.1].speedup >= MIN_SPEEDUP_AT_SPARSE, (
        f"density 0.1: {by_density[0.1].speedup:.2f}x < "
        f"{MIN_SPEEDUP_AT_SPARSE}x"
    )
    assert by_density[1.0].speedup >= MIN_SPEEDUP_AT_DENSE, (
        f"full density: {by_density[1.0].speedup:.2f}x overhead exceeds "
        f"the {MIN_SPEEDUP_AT_DENSE}x floor"
    )


def test_speedup_grows_with_sparsity(sweep):
    """The sweep's point: less density, more skipped MACs.  Gated
    loosely — adjacent points are monotone within a 20% noise band
    (near-1.0x neighbours jitter by several percent on a shared CI
    host), and the sweep's ends must differ decisively."""
    ordered = sorted(sweep, key=lambda r: r.density, reverse=True)
    for prev, cur in zip(ordered, ordered[1:]):
        assert cur.speedup >= prev.speedup * 0.8, (
            f"speedup fell from {prev.speedup:.2f}x (density "
            f"{prev.density}) to {cur.speedup:.2f}x (density {cur.density})"
        )
    assert ordered[-1].speedup > ordered[0].speedup * 1.2
