"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
asserts its qualitative shape against the paper's reported values, and
writes the rendered table to ``benchmarks/results/`` so EXPERIMENTS.md
can be refreshed from a single run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_table(results_dir):
    """Write a rendered table (and optional notes) to the results dir."""

    def _record(name: str, *blocks: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text("\n\n".join(blocks) + "\n")

    return _record
