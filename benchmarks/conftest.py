"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
asserts its qualitative shape against the paper's reported values, and
writes the rendered table to ``benchmarks/results/`` so EXPERIMENTS.md
can be refreshed from a single run.

Performance benchmarks additionally emit machine-readable
``BENCH_<name>.json`` files next to the prose tables (via
``record_bench``), so the perf trajectory — engine throughput, serving
QPS — can be tracked across PRs by tooling instead of by reading
rendered text.
"""

from __future__ import annotations

import datetime
import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Keys every BENCH_*.json entry must carry (extra keys are welcome).
BENCH_SCHEMA = ("name", "batch", "qps", "speedup", "timestamp")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_table(results_dir):
    """Write a rendered table (and optional notes) to the results dir."""

    def _record(name: str, *blocks: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text("\n\n".join(blocks) + "\n")

    return _record


@pytest.fixture(scope="session")
def record_bench(results_dir):
    """Write perf entries to ``BENCH_<name>.json`` in the results dir.

    Each entry is a dict with at least ``name`` (measurement id),
    ``batch`` (samples per call / policy ceiling), ``qps`` (samples or
    requests per second), and ``speedup`` (vs the entry's stated
    baseline); the fixture stamps ``timestamp`` (UTC ISO-8601) itself.
    """

    def _record(name: str, entries: list[dict]) -> Path:
        stamp = datetime.datetime.now(datetime.timezone.utc).isoformat()
        stamped = []
        for entry in entries:
            entry = {"timestamp": stamp, **entry}
            missing = [key for key in BENCH_SCHEMA if key not in entry]
            if missing:
                raise KeyError(
                    f"bench entry {entry.get('name')!r} missing {missing}"
                )
            stamped.append(entry)
        path = results_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(stamped, indent=2) + "\n")
        return path

    return _record
