"""E-MEM / E-FIG1: format memory comparison and break-even analysis.

Checks the Sec. 2.1/4 numbers: N:M weight-memory reductions (68.75% /
81.25% / 90.62% SW; 62.5% / 75% / 87.5% with duplicated offsets), the
COO/CSR break-even sparsities, and that N:M dominates both coordinate
formats at every supported pattern.
"""

import pytest

from repro.eval.formats import break_even_table, fig1_demo, format_memory_table
from repro.eval.paper_values import MEMORY_REDUCTION_ISA, MEMORY_REDUCTION_SW
from repro.sparsity.nm import SUPPORTED_FORMATS


def test_format_memory_table(benchmark, record_table):
    table = benchmark.pedantic(format_memory_table, rounds=1, iterations=1)
    record_table(
        "memory_formats", table.render(), break_even_table().render()
    )
    for row in table.rows:
        assert row["N:M (SW)"] < row["CSR"] < row["COO"]
        assert row["N:M (SW)"] < row["N:M (ISA conv)"] < row["dense"]


def test_paper_reduction_percentages(benchmark):
    def reductions():
        out = {}
        for name, fmt in SUPPORTED_FORMATS.items():
            out[name] = (
                fmt.weight_memory_reduction(False),
                fmt.weight_memory_reduction(True),
            )
        return out

    got = benchmark.pedantic(reductions, rounds=1)
    for name in SUPPORTED_FORMATS:
        assert got[name][0] == pytest.approx(MEMORY_REDUCTION_SW[name], abs=1e-4)
        assert got[name][1] == pytest.approx(MEMORY_REDUCTION_ISA[name], abs=1e-4)


def test_fig1_patterns(benchmark, record_table):
    """All three Fig. 1 pruning patterns retain exactly 25% density."""
    demo = benchmark.pedantic(fig1_demo, rounds=1)
    lines = []
    for name, mat in demo.items():
        density = (mat != 0).mean()
        lines.append(f"{name}: density {density:.2f}\n{mat}")
        if name != "dense":
            assert density == pytest.approx(0.25)
    record_table("fig1_patterns", *lines)


def test_csr_compression_below_25_percent_at_1_4(benchmark):
    """Sec. 4: CSR yields < 25% compression at 75% sparsity while the
    1:4 N:M format reaches 68.75%."""
    table = benchmark.pedantic(format_memory_table, rounds=1)
    row = next(r for r in table.rows if r["pattern"] == "1:4")
    csr_reduction = 1 - row["CSR"] / row["dense"]
    nm_reduction = 1 - row["N:M (SW)"] / row["dense"]
    assert csr_reduction < 0.25
    assert nm_reduction == pytest.approx(0.6875, abs=0.01)
