"""N:M sparse convolution kernels (paper Sec. 4.1.2 / 4.1.3).

The MCU kernel keeps the dense baseline's *Decimate Im2col* dataflow:
the im2col step is unchanged, and the inner loop selects ("decimates")
from the im2col buffer only the activations matching non-zero weights.
The activation address of the j-th non-zero of a row is
``block(j) * M + offset(j)`` **relative to the im2col buffer** — this is
exactly the gather this module performs, vectorised over output
positions and channels.

Two functional paths are provided (guide idiom: gold reference +
optimised equivalent):

- ``method="gather"`` mirrors the decimation structure index-by-index
  (chunked over K to bound memory);
- ``method="dense"`` scatters the N:M matrix back to dense and uses a
  BLAS matmul — bit-identical output, used for big end-to-end runs.

Both paths exist in an int8 flavour (int32 accumulators — the MCU
maths, exact, so gather and dense are bit-identical) and a float32
flavour (:func:`sparse_matmul_f32_batch`): float accumulation is not
associative, so the float gather path matches the dense GEMM only to
rounding — the tolerance contract is documented in
``docs/sparsity.md``.

The SW-only and ISA-extended kernels compute identical results (the
``xDecimate`` instruction only accelerates the decimation); their
separate latency models live in :mod:`repro.kernels.cost_model`, and
their instruction-level behaviour in :mod:`repro.kernels.microcode`.
"""

from __future__ import annotations

import os

import numpy as np

from repro.kernels.im2col import im2col
from repro.kernels.requant import QuantParams, requantize
from repro.kernels.shapes import ConvShape
from repro.sparsity.nm import NMSparseMatrix

__all__ = [
    "conv2d_sparse",
    "conv2d_acc_sparse",
    "conv2d_f32_sparse",
    "gather_indices",
    "gather_matmul_batch",
    "gather_matmul_batch_masked",
    "k_chunk",
    "set_k_chunk",
    "sparse_matmul_acc",
    "sparse_matmul_acc_batch",
    "sparse_matmul_f32",
    "sparse_matmul_f32_batch",
]

#: Environment variable overriding the gather chunk size per host.
K_CHUNK_ENV = "REPRO_K_CHUNK"

#: Default output channels processed per gather chunk (bounds peak
#: memory of the (B, P, K_chunk, NNZ) gather tensor).
_DEFAULT_K_CHUNK = 32

_k_chunk_override: int | None = None


def k_chunk() -> int:
    """Output channels per gather chunk, resolved per call.

    Precedence: :func:`set_k_chunk` override (the CLI's ``--k-chunk``
    flag) > the ``REPRO_K_CHUNK`` environment variable > the host-keyed
    autotune cache (:mod:`repro.kernels.tuning`, written by
    ``repro engine --autotune-k-chunk``) > the built-in default of 32.
    Smaller chunks bound the peak memory of the ``(B, P, K_chunk, NNZ)``
    gather tensor; larger chunks amortise the per-chunk einsum
    dispatch — the right value is host-dependent, which is why the
    autotuned winner persists per host.  The chunking only groups
    whole output channels, so the result is bit-identical for every
    chunk size.
    """
    if _k_chunk_override is not None:
        return _k_chunk_override
    raw = os.environ.get(K_CHUNK_ENV)
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{K_CHUNK_ENV}={raw!r} is not an integer"
            ) from None
        if value < 1:
            raise ValueError(f"{K_CHUNK_ENV} must be >= 1, got {value}")
        return value
    from repro.kernels.tuning import cached_k_chunk

    tuned = cached_k_chunk()
    if tuned is not None:
        return tuned
    return _DEFAULT_K_CHUNK


def set_k_chunk(value: int | None) -> None:
    """Process-wide gather chunk override; ``None`` resets to env/default."""
    global _k_chunk_override
    if value is not None and value < 1:
        raise ValueError(f"k_chunk must be >= 1, got {value}")
    _k_chunk_override = value


def gather_indices(sparse_w: NMSparseMatrix) -> np.ndarray:
    """Im2col-buffer position of every stored value, shape ``(K, NNZ)``.

    Entry ``[k, j]`` is ``block(j) * M + offset(k, j)`` — the address
    the decimation loop reads for the j-th stored value of output
    channel ``k`` (consecutive stored values advance one block every N
    entries; N=1 for all paper formats).  Computing this once per
    weight matrix hoists the index arithmetic out of the per-call path;
    the execution-plan compiler does exactly that at plan-bind time.
    """
    fmt = sparse_w.fmt
    nnz = sparse_w.values.shape[1]
    block_starts = (np.arange(nnz) // fmt.n) * fmt.m
    return block_starts[None, :] + sparse_w.offsets


def gather_matmul_batch(
    cols: np.ndarray,
    values: np.ndarray,
    gather_idx: np.ndarray,
    out_dtype: np.dtype,
    accum_dtype: np.dtype | None = None,
) -> np.ndarray:
    """Batched decimation core: ``out[b,p,k] = Σ_j cols[b,p,idx[k,j]] * values[k,j]``.

    The vectorised inner loop every sparse execution path shares —
    the SW gather kernel feeds it :func:`gather_indices`, the ISA
    backend (:mod:`repro.kernels.backend`) the indices decoded from its
    duplicated/interleaved OFFSETS streams (padded entries carry value
    0, so their clamped addresses contribute nothing).  ``accum_dtype``
    optionally widens the accumulation (float64 for the tight float
    serving contract); the result is narrowed back to ``out_dtype``.
    """
    cols = np.asarray(cols)
    b, p, _ = cols.shape
    k_total, _ = values.shape
    if gather_idx.shape != values.shape:
        raise ValueError(
            f"gather_idx {gather_idx.shape} != values {values.shape}"
        )
    acc = np.empty((b, p, k_total), dtype=out_dtype)
    accum = np.dtype(accum_dtype if accum_dtype is not None else out_dtype)
    # Gather from the narrow buffer and widen per chunk: only the nnz/R
    # positions the decimation actually reads are touched, and the
    # accumulator footprint stays bounded by the (B, P, kc, nnz) chunk.
    step = k_chunk()
    for k0 in range(0, k_total, step):
        k1 = min(k0 + step, k_total)
        # The fancy-index gather already materialises a fresh chunk, so
        # the widening cast must not copy again when dtypes match
        # (float32 in, float32 accumulators).
        patches = cols[:, :, gather_idx[k0:k1]].astype(
            accum, copy=False
        )  # (B, P, kc, nnz)
        vals = values[k0:k1].astype(accum, copy=False)  # (kc, nnz)
        acc[:, :, k0:k1] = np.einsum("bpkn,kn->bpk", patches, vals)
    return acc


def gather_matmul_batch_masked(
    cols: np.ndarray,
    values: np.ndarray,
    gather_idx: np.ndarray,
    out_dtype: np.dtype,
    accum_dtype: np.dtype | None = None,
    row_mask: np.ndarray | None = None,
) -> np.ndarray:
    """:func:`gather_matmul_batch` skipping rows flagged inactive.

    ``row_mask`` is a ``(B, P)`` bool array; rows marked False are
    promised all-zero by the caller (post-ReLU zero tiles) and their
    MACs are skipped entirely: the active rows are compacted, run
    through the plain gather core, and scattered back into a zeroed
    output.  Because :func:`gather_matmul_batch` reduces each output
    element independently over the NNZ axis, compaction cannot change
    any surviving row's reduction order — active rows are bit-identical
    to the unmasked path, and skipped rows are exact zeros (what the
    unmasked path computes for an all-zero row, up to the sign of
    float ±0.0; the identity contract is ``np.array_equal``, which
    treats them equal).

    ``row_mask=None`` or an all-True mask short-circuits to the plain
    core so a dense batch pays only the mask reduction, never the
    compact/scatter copies.
    """
    if row_mask is None:
        return gather_matmul_batch(
            cols, values, gather_idx, out_dtype, accum_dtype
        )
    cols = np.asarray(cols)
    b, p, r = cols.shape
    row_mask = np.asarray(row_mask, dtype=bool)
    if row_mask.shape != (b, p):
        raise ValueError(
            f"row_mask {row_mask.shape} does not match cols ({b}, {p}, _)"
        )
    flat_mask = row_mask.reshape(b * p)
    if flat_mask.all():
        return gather_matmul_batch(
            cols, values, gather_idx, out_dtype, accum_dtype
        )
    k_total = values.shape[0]
    acc = np.zeros((b, p, k_total), dtype=out_dtype)
    if not flat_mask.any():
        return acc
    active = cols.reshape(b * p, r)[flat_mask][None]  # (1, A, R)
    out_active = gather_matmul_batch(
        active, values, gather_idx, out_dtype, accum_dtype
    )
    acc.reshape(b * p, k_total)[flat_mask] = out_active[0]
    return acc


def _sparse_matmul_batch(
    cols: np.ndarray,
    sparse_w: NMSparseMatrix,
    method: str,
    gather_idx: np.ndarray | None,
    acc_dtype: np.dtype,
    accum_dtype: np.dtype | None = None,
) -> np.ndarray:
    """Shared gather/scatter core for both numeric flavours."""
    cols = np.asarray(cols)
    if cols.ndim != 3 or cols.shape[2] != sparse_w.dense_cols:
        raise ValueError(
            f"cols {cols.shape} incompatible with dense_cols="
            f"{sparse_w.dense_cols}"
        )
    if method == "dense":
        wmat = sparse_w.to_dense().astype(acc_dtype)
        return cols.astype(acc_dtype, copy=False) @ wmat.T

    if method != "gather":
        raise ValueError(f"unknown method {method!r}")
    if gather_idx is None:
        gather_idx = gather_indices(sparse_w)
    return gather_matmul_batch(
        cols, sparse_w.values, gather_idx, acc_dtype, accum_dtype
    )


def sparse_matmul_acc_batch(
    cols: np.ndarray,
    sparse_w: NMSparseMatrix,
    method: str = "gather",
    gather_idx: np.ndarray | None = None,
) -> np.ndarray:
    """Batched int32 accumulators of ``cols @ sparse_w.T``: ``(B, P, K)``.

    Parameters
    ----------
    cols:
        int8 tensor ``(B, P, R)`` — batched im2col rows or FC tokens.
    sparse_w:
        int8 N:M weights with ``dense_cols == R``.
    method:
        "gather" (mirrors the kernel's indexing) or "dense"
        (scatter + BLAS; bit-identical — integer accumulation is exact,
        so reduction order cannot change the result).
    gather_idx:
        Optional precomputed :func:`gather_indices` array; passing it
        skips the per-call index computation (the plan compiler caches
        it per layer).
    """
    if sparse_w.values.dtype != np.int8:
        raise TypeError(
            f"sparse_matmul_acc_batch expects int8 values, got "
            f"{sparse_w.values.dtype} (use sparse_matmul_f32_batch)"
        )
    return _sparse_matmul_batch(
        cols, sparse_w, method, gather_idx, np.dtype(np.int32)
    )


def sparse_matmul_f32_batch(
    cols: np.ndarray,
    sparse_w: NMSparseMatrix,
    method: str = "gather",
    gather_idx: np.ndarray | None = None,
    accum_dtype: np.dtype | str | None = None,
) -> np.ndarray:
    """Batched float32 products of ``cols @ sparse_w.T``: ``(B, P, K)``.

    The float flavour of :func:`sparse_matmul_acc_batch` for
    float-valued :class:`~repro.sparsity.nm.NMSparseMatrix` weights.
    ``method="dense"`` (scatter + BLAS) reproduces the dense float
    kernel bit for bit — the scatter restores the exact float32 weight
    matrix.  ``method="gather"`` accumulates only the NNZ products, in
    decimation order; float addition is not associative, so it matches
    the dense GEMM to rounding, not bit-exactly (tolerance contract in
    ``docs/sparsity.md``).

    ``accum_dtype=np.float64`` widens the gather accumulation (the
    result is still float32): each product is formed and summed in
    double precision, which keeps the decimation-order sum within one
    float32 ulp of the dense GEMM — the opt-in path for serving
    contracts tighter than the default tolerance.
    """
    if sparse_w.values.dtype != np.float32:
        raise TypeError(
            f"sparse_matmul_f32_batch expects float32 values, got "
            f"{sparse_w.values.dtype} (use sparse_matmul_acc_batch)"
        )
    if accum_dtype is not None and np.dtype(accum_dtype) not in (
        np.dtype(np.float32),
        np.dtype(np.float64),
    ):
        raise ValueError(
            f"accum_dtype must be float32 or float64, got {accum_dtype!r}"
        )
    return _sparse_matmul_batch(
        cols,
        sparse_w,
        method,
        gather_idx,
        np.dtype(np.float32),
        np.dtype(accum_dtype) if accum_dtype is not None else None,
    )


def sparse_matmul_f32(
    cols: np.ndarray,
    sparse_w: NMSparseMatrix,
    method: str = "gather",
    gather_idx: np.ndarray | None = None,
) -> np.ndarray:
    """float32 products of ``cols @ sparse_w.T`` for a single sample."""
    cols = np.asarray(cols)
    if cols.ndim != 2 or cols.shape[1] != sparse_w.dense_cols:
        raise ValueError(
            f"cols {cols.shape} incompatible with dense_cols="
            f"{sparse_w.dense_cols}"
        )
    return sparse_matmul_f32_batch(cols[None], sparse_w, method, gather_idx)[0]


def sparse_matmul_acc(
    cols: np.ndarray,
    sparse_w: NMSparseMatrix,
    method: str = "gather",
    gather_idx: np.ndarray | None = None,
) -> np.ndarray:
    """int32 accumulators of ``cols @ sparse_w.T`` via decimation.

    Parameters
    ----------
    cols:
        int8 matrix ``(P, R)`` — im2col rows or FC activations.
    sparse_w:
        N:M weights with ``dense_cols == R``.
    method:
        "gather" (mirrors the kernel's indexing) or "dense"
        (scatter + BLAS; bit-identical).
    gather_idx:
        Optional precomputed :func:`gather_indices` array.
    """
    cols = np.asarray(cols)
    if cols.ndim != 2 or cols.shape[1] != sparse_w.dense_cols:
        raise ValueError(
            f"cols {cols.shape} incompatible with dense_cols="
            f"{sparse_w.dense_cols}"
        )
    return sparse_matmul_acc_batch(cols[None], sparse_w, method, gather_idx)[0]


def _isa_core(sparse_w: NMSparseMatrix, kind: str, out_dtype: np.dtype):
    """One-off ISA-backend core for the functional layer wrappers.

    Lazy import: :mod:`repro.kernels.backend` builds on this module's
    gather core, so the dependency must point that way at import time.
    """
    from repro.kernels.backend import get_backend

    backend = get_backend("sparse-isa")
    return backend.bind(backend.pack(sparse_w, None, kind), out_dtype)


def conv2d_acc_sparse(
    x: np.ndarray,
    sparse_w: NMSparseMatrix,
    shape: ConvShape,
    method: str = "gather",
) -> np.ndarray:
    """int32 accumulators of an N:M sparse conv (before bias/requant).

    ``method="isa"`` routes through the ISA-extension emulation backend
    (duplicated-offset layout, Sec. 4.1.3) — bit-identical to
    ``"gather"``, the decimation indices are the same.
    """
    if sparse_w.rows != shape.k or sparse_w.dense_cols != shape.reduce_dim:
        raise ValueError(
            f"sparse weights ({sparse_w.rows}, {sparse_w.dense_cols}) "
            f"do not match {shape}"
        )
    cols = im2col(x, shape)
    if method == "isa":
        acc = _isa_core(sparse_w, "conv", np.dtype(np.int32))(cols[None])[0]
    else:
        acc = sparse_matmul_acc(cols, sparse_w, method)
    return acc.reshape(shape.oy, shape.ox, shape.k)


def conv2d_sparse(
    x: np.ndarray,
    sparse_w: NMSparseMatrix,
    shape: ConvShape,
    quant: QuantParams | None = None,
    bias: np.ndarray | None = None,
    method: str = "gather",
) -> np.ndarray:
    """N:M sparse int8 convolution with requantised int8 output."""
    acc = conv2d_acc_sparse(x, sparse_w, shape, method)
    return requantize(acc, quant or QuantParams(), bias)


def conv2d_f32_sparse(
    x: np.ndarray,
    sparse_w: NMSparseMatrix,
    shape: ConvShape,
    bias: np.ndarray | None = None,
    method: str = "gather",
) -> np.ndarray:
    """N:M sparse float32 convolution: ``(OY, OX, K)`` float output.

    ``method="isa"`` runs the ISA-extension emulation backend.
    """
    if sparse_w.rows != shape.k or sparse_w.dense_cols != shape.reduce_dim:
        raise ValueError(
            f"sparse weights ({sparse_w.rows}, {sparse_w.dense_cols}) "
            f"do not match {shape}"
        )
    cols = im2col(x, shape)
    if method == "isa":
        out = _isa_core(sparse_w, "conv", np.dtype(np.float32))(cols[None])[0]
    else:
        out = sparse_matmul_f32(cols, sparse_w, method)
    if bias is not None:
        out = out + bias
    return out.reshape(shape.oy, shape.ox, shape.k)
