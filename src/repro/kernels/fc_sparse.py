"""N:M sparse fully-connected kernels (paper Sec. 4.2.2 / 4.2.3).

The SW-only kernel unpacks four NZ offsets and performs one SIMD dot
product per iteration (16 instructions / 4 MACs = 0.25 MACs/instruction).
The ISA-extended kernel keeps the *same* ``xDecimate`` instruction
designed for convolutions by reorganising the offsets offline —
interleaving two consecutive output channels (Fig. 6) — reaching
0.61 dense-equivalent MACs/instruction.

Both variants compute identical results; this module provides the
functional semantics (shared with the conv sparse matmul core), while
latency and instruction-level behaviour live in
:mod:`repro.kernels.cost_model` and :mod:`repro.kernels.microcode`.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.conv_sparse import (
    _isa_core,
    sparse_matmul_acc,
    sparse_matmul_f32,
)
from repro.kernels.fc_dense import _as_tokens
from repro.kernels.requant import QuantParams, requantize
from repro.kernels.shapes import FcShape
from repro.sparsity.nm import NMSparseMatrix

__all__ = ["fc_sparse", "fc_acc_sparse", "fc_f32_sparse"]


def fc_acc_sparse(
    x: np.ndarray,
    sparse_w: NMSparseMatrix,
    shape: FcShape,
    method: str = "gather",
) -> np.ndarray:
    """int32 accumulators of an N:M sparse FC layer ``(T, K)``.

    ``method="isa"`` routes through the ISA-extension emulation backend
    (channel-pair interleaved offsets, Sec. 4.2.3; needs an even K) —
    bit-identical to ``"gather"``.
    """
    if sparse_w.rows != shape.k or sparse_w.dense_cols != shape.c:
        raise ValueError(
            f"sparse weights ({sparse_w.rows}, {sparse_w.dense_cols}) "
            f"do not match {shape}"
        )
    tokens = _as_tokens(x, shape)
    if method == "isa":
        return _isa_core(sparse_w, "fc", np.dtype(np.int32))(tokens[None])[0]
    return sparse_matmul_acc(tokens, sparse_w, method)


def fc_sparse(
    x: np.ndarray,
    sparse_w: NMSparseMatrix,
    shape: FcShape,
    quant: QuantParams | None = None,
    bias: np.ndarray | None = None,
    method: str = "gather",
) -> np.ndarray:
    """N:M sparse int8 FC layer with requantised int8 output ``(T, K)``."""
    acc = fc_acc_sparse(x, sparse_w, shape, method)
    return requantize(acc, quant or QuantParams(), bias)


def fc_f32_sparse(
    x: np.ndarray,
    sparse_w: NMSparseMatrix,
    shape: FcShape,
    bias: np.ndarray | None = None,
    method: str = "gather",
) -> np.ndarray:
    """N:M sparse float32 FC layer: ``(T, K)`` float output.

    The float flavour of :func:`fc_sparse` for float-valued packed
    weights — no requantisation epilogue; ``method="dense"`` is
    bit-identical to the dense float GEMM, ``method="gather"`` (and the
    ISA emulation via ``method="isa"``) matches it to rounding (see
    ``docs/sparsity.md``).
    """
    if sparse_w.rows != shape.k or sparse_w.dense_cols != shape.c:
        raise ValueError(
            f"sparse weights ({sparse_w.rows}, {sparse_w.dense_cols}) "
            f"do not match {shape}"
        )
    tokens = _as_tokens(x, shape)
    if method == "isa":
        out = _isa_core(sparse_w, "fc", np.dtype(np.float32))(tokens[None])[0]
    else:
        out = sparse_matmul_f32(tokens, sparse_w, method)
    if bias is not None:
        out = out + bias
    return out
