"""Kernel variant registry.

Maps variant names to their functional entry points, latency models and
weight layouts, giving the compiler (:mod:`repro.compiler.codegen`) and
the benchmark harness one place to enumerate what the library offers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.cost_model import (
    CostParams,
    CycleBreakdown,
    DEFAULT_PARAMS,
    conv_layer_cycles,
    fc_layer_cycles,
)
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import NMFormat, SUPPORTED_FORMATS

__all__ = [
    "KernelVariant",
    "KERNEL_VARIANTS",
    "variant_for",
    "dense_variant_for",
    "SparseMethodChoice",
    "select_sparse_method",
]


@dataclass(frozen=True)
class KernelVariant:
    """One deployable kernel configuration.

    Attributes
    ----------
    kind:
        "conv" or "fc".
    engine:
        "dense-4x2", "dense-1x2", "dense", "sparse-sw" or "sparse-isa".
    fmt:
        The N:M format for sparse engines, None for dense ones.
    """

    kind: str
    engine: str
    fmt: NMFormat | None = None

    @property
    def name(self) -> str:
        """Display name, e.g. ``"conv/sparse-sw/1:8"``."""
        suffix = f"/{self.fmt.name}" if self.fmt else ""
        return f"{self.kind}/{self.engine}{suffix}"

    @property
    def is_sparse(self) -> bool:
        return self.fmt is not None

    @property
    def needs_isa_extension(self) -> bool:
        """True when deployment requires the xDecimate XFU."""
        return self.engine == "sparse-isa"

    def cycles(
        self,
        shape: ConvShape | FcShape,
        params: CostParams = DEFAULT_PARAMS,
    ) -> CycleBreakdown:
        """Latency of ``shape`` under this variant."""
        if self.kind == "conv":
            if not isinstance(shape, ConvShape):
                raise TypeError(f"{self.name} expects a ConvShape")
            return conv_layer_cycles(shape, self.engine, self.fmt, params)
        if not isinstance(shape, FcShape):
            raise TypeError(f"{self.name} expects an FcShape")
        return fc_layer_cycles(shape, self.engine, self.fmt, params)


def _build_registry() -> dict[str, KernelVariant]:
    variants: list[KernelVariant] = [
        KernelVariant("conv", "dense-4x2"),
        KernelVariant("conv", "dense-1x2"),
        KernelVariant("fc", "dense"),
    ]
    for fmt in SUPPORTED_FORMATS.values():
        for engine in ("sparse-sw", "sparse-isa"):
            variants.append(KernelVariant("conv", engine, fmt))
            variants.append(KernelVariant("fc", engine, fmt))
    return {v.name: v for v in variants}


#: All kernel variants the library ships, keyed by display name.
KERNEL_VARIANTS: dict[str, KernelVariant] = _build_registry()


def variant_for(
    kind: str, engine: str, fmt: NMFormat | None = None
) -> KernelVariant:
    """Look up a variant; raises KeyError with the known names on miss."""
    suffix = f"/{fmt.name}" if fmt else ""
    name = f"{kind}/{engine}{suffix}"
    try:
        return KERNEL_VARIANTS[name]
    except KeyError:
        known = ", ".join(sorted(KERNEL_VARIANTS))
        raise KeyError(f"unknown kernel variant {name!r}; known: {known}") from None


def dense_variant_for(kind: str, shape: ConvShape | FcShape) -> KernelVariant | None:
    """The dense kernel the cost model would deploy for ``shape``.

    Conv prefers the 4x2 schedule when its K%4 constraint holds and
    falls back to 1x2 otherwise; the dense FC kernel needs an even K
    (two channels per visit) and returns None when it cannot apply.
    """
    if kind == "conv":
        engine = "dense-4x2" if shape.k % 4 == 0 else "dense-1x2"
        return variant_for("conv", engine)
    if shape.k % 2:
        return None
    return variant_for("fc", "dense")


@dataclass(frozen=True)
class SparseMethodChoice:
    """Compile-time gather-vs-dense decision for one N:M sparse layer.

    ``method`` is what the execution plan binds: ``"gather"`` runs the
    decimation kernel (sparse weight stream, indexed activation loads),
    ``"dense"`` scatters the packed matrix back to dense once at
    compile time and runs the BLAS path (bit-identical output).  The
    decision compares the MCU latency model of the SW sparse kernel
    against the dense baseline kernel for the same geometry — the same
    trade-off MATCH's lowering makes per layer.
    """

    method: str
    sparse_variant: str
    dense_variant: str | None
    sparse_cycles: float
    dense_cycles: float | None


def select_sparse_method(
    kind: str,
    shape: ConvShape | FcShape,
    fmt: NMFormat,
    params: CostParams = DEFAULT_PARAMS,
) -> SparseMethodChoice:
    """Pick gather vs scatter-to-dense for a sparse layer at compile time.

    Uses :mod:`repro.kernels.cost_model` through the registry: the
    layer is routed to the decimation ("gather") path when the modelled
    sparse-SW kernel is at least as fast as the modelled dense kernel
    for the same shape, and to the compile-time dense scatter
    otherwise.  When no dense kernel can serve the geometry (odd-K FC),
    gather wins by default.
    """
    sparse_v = variant_for(kind, "sparse-sw", fmt)
    sparse_cycles = sparse_v.cycles(shape, params).total
    dense_v = dense_variant_for(kind, shape)
    if dense_v is None:
        return SparseMethodChoice(
            "gather", sparse_v.name, None, sparse_cycles, None
        )
    dense_cycles = dense_v.cycles(shape, params).total
    method = "gather" if sparse_cycles <= dense_cycles else "dense"
    return SparseMethodChoice(
        method, sparse_v.name, dense_v.name, sparse_cycles, dense_cycles
    )
