"""Kernel variant registry.

Maps variant names to their functional entry points, latency models and
weight layouts, giving the compiler (:mod:`repro.compiler.codegen`) and
the benchmark harness one place to enumerate what the library offers.

Three compile-time selectors live here, all driven by the MCU cost
model through the kernel-backend layer (:mod:`repro.kernels.backend`):

- :func:`select_sparse_method` — gather vs scatter-to-dense for a layer
  whose N:M format is already fixed (PR 3);
- :func:`select_backend` (re-exported from the backend module) — which
  *execution backend* (``sparse-isa`` / ``sparse-sw`` / dense scatter)
  runs an N:M layer, the ``"auto"`` engine knob's per-layer ranking;
- :func:`select_format` — *which* N:M format (1:4 / 1:8 / 1:16, or
  dense) to deploy a layer in, under a per-layer accuracy budget — the
  paper's central memory/latency-vs-accuracy trade, run as a
  compile-time search over the candidate formats.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.backend import (
    BackendCandidate,
    BackendChoice,
    get_backend,
    select_backend,
)
from repro.kernels.cost_model import (
    CostParams,
    CycleBreakdown,
    DEFAULT_PARAMS,
    conv_layer_cycles,
    fc_layer_cycles,
    format_energy_loss,
)
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import NMFormat, SUPPORTED_FORMATS

__all__ = [
    "KernelVariant",
    "KERNEL_VARIANTS",
    "variant_for",
    "dense_variant_for",
    "SparseMethodChoice",
    "select_sparse_method",
    "BackendCandidate",
    "BackendChoice",
    "select_backend",
    "FormatCandidate",
    "FormatChoice",
    "select_format",
]


@dataclass(frozen=True)
class KernelVariant:
    """One deployable kernel configuration.

    Attributes
    ----------
    kind:
        "conv" or "fc".
    engine:
        "dense-4x2", "dense-1x2", "dense", "sparse-sw" or "sparse-isa".
    fmt:
        The N:M format for sparse engines, None for dense ones.
    """

    kind: str
    engine: str
    fmt: NMFormat | None = None

    @property
    def name(self) -> str:
        """Display name, e.g. ``"conv/sparse-sw/1:8"``."""
        suffix = f"/{self.fmt.name}" if self.fmt else ""
        return f"{self.kind}/{self.engine}{suffix}"

    @property
    def is_sparse(self) -> bool:
        return self.fmt is not None

    @property
    def needs_isa_extension(self) -> bool:
        """True when deployment requires the xDecimate XFU."""
        return self.engine == "sparse-isa"

    def cycles(
        self,
        shape: ConvShape | FcShape,
        params: CostParams = DEFAULT_PARAMS,
    ) -> CycleBreakdown:
        """Latency of ``shape`` under this variant."""
        if self.kind == "conv":
            if not isinstance(shape, ConvShape):
                raise TypeError(f"{self.name} expects a ConvShape")
            return conv_layer_cycles(shape, self.engine, self.fmt, params)
        if not isinstance(shape, FcShape):
            raise TypeError(f"{self.name} expects an FcShape")
        return fc_layer_cycles(shape, self.engine, self.fmt, params)


def _build_registry() -> dict[str, KernelVariant]:
    variants: list[KernelVariant] = [
        KernelVariant("conv", "dense-4x2"),
        KernelVariant("conv", "dense-1x2"),
        KernelVariant("fc", "dense"),
    ]
    for fmt in SUPPORTED_FORMATS.values():
        for engine in ("sparse-sw", "sparse-isa"):
            variants.append(KernelVariant("conv", engine, fmt))
            variants.append(KernelVariant("fc", engine, fmt))
    return {v.name: v for v in variants}


#: All kernel variants the library ships, keyed by display name.
KERNEL_VARIANTS: dict[str, KernelVariant] = _build_registry()


def variant_for(
    kind: str, engine: str, fmt: NMFormat | None = None
) -> KernelVariant:
    """Look up a variant; raises KeyError with the known names on miss."""
    suffix = f"/{fmt.name}" if fmt else ""
    name = f"{kind}/{engine}{suffix}"
    try:
        return KERNEL_VARIANTS[name]
    except KeyError:
        known = ", ".join(sorted(KERNEL_VARIANTS))
        raise KeyError(f"unknown kernel variant {name!r}; known: {known}") from None


def dense_variant_for(kind: str, shape: ConvShape | FcShape) -> KernelVariant | None:
    """The dense kernel the cost model would deploy for ``shape``.

    Conv prefers the 4x2 schedule when its K%4 constraint holds and
    falls back to 1x2 otherwise; the dense FC kernel needs an even K
    (two channels per visit) and returns None when it cannot apply.
    """
    if kind == "conv":
        engine = "dense-4x2" if shape.k % 4 == 0 else "dense-1x2"
        return variant_for("conv", engine)
    if shape.k % 2:
        return None
    return variant_for("fc", "dense")


@dataclass(frozen=True)
class SparseMethodChoice:
    """Compile-time gather-vs-dense decision for one N:M sparse layer.

    ``method`` is what the execution plan binds: ``"gather"`` runs the
    decimation kernel (sparse weight stream, indexed activation loads),
    ``"dense"`` scatters the packed matrix back to dense once at
    compile time and runs the BLAS path (bit-identical output).  The
    decision compares the MCU latency model of the SW sparse kernel
    against the dense baseline kernel for the same geometry — the same
    trade-off MATCH's lowering makes per layer.
    """

    method: str
    sparse_variant: str
    dense_variant: str | None
    sparse_cycles: float
    dense_cycles: float | None


def select_sparse_method(
    kind: str,
    shape: ConvShape | FcShape,
    fmt: NMFormat,
    params: CostParams = DEFAULT_PARAMS,
) -> SparseMethodChoice:
    """Pick gather vs scatter-to-dense for a sparse layer at compile time.

    Uses :mod:`repro.kernels.cost_model` through the registry: the
    layer is routed to the decimation ("gather") path when the modelled
    sparse-SW kernel is at least as fast as the modelled dense kernel
    for the same shape, and to the compile-time dense scatter
    otherwise.  When no dense kernel can serve the geometry (odd-K FC),
    gather wins by default.
    """
    sparse_v = variant_for(kind, "sparse-sw", fmt)
    sparse_cycles = get_backend("sparse-sw").cost(kind, shape, fmt, params)
    dense_v = dense_variant_for(kind, shape)
    dense_cycles = get_backend("dense").cost(kind, shape, None, params)
    if dense_v is None or dense_cycles is None:
        return SparseMethodChoice(
            "gather", sparse_v.name, None, sparse_cycles, None
        )
    method = "gather" if sparse_cycles <= dense_cycles else "dense"
    return SparseMethodChoice(
        method, sparse_v.name, dense_v.name, sparse_cycles, dense_cycles
    )


@dataclass(frozen=True)
class FormatCandidate:
    """One scored entry of a per-layer format search.

    ``fmt_name`` is ``"dense"`` or an N:M format name.  ``loss`` is the
    relative weight-energy loss of magnitude-pruning the layer to the
    candidate (:func:`repro.kernels.cost_model.format_energy_loss`) —
    exactly 0 when the weights already satisfy the pattern.
    ``weight_bytes`` is the candidate's deployable storage (packed
    values + offsets, or the dense matrix); ``cycles`` the cost model's
    best deployable latency for the geometry (min of the decimation
    kernel and the dense kernel; None when no modelled kernel serves
    it).  ``admissible`` marks candidates whose loss fits the budget.
    """

    fmt_name: str
    loss: float
    weight_bytes: int
    cycles: float | None
    admissible: bool


@dataclass(frozen=True)
class FormatChoice:
    """Result of :func:`select_format` for one layer.

    ``fmt`` is None when dense wins (no sparse candidate fits the
    budget, or the geometry divides no supported block size).  ``loss``
    is the chosen candidate's energy loss: 0.0 means the selection is
    lossless (the weights already satisfied the chosen pattern); a
    positive loss means the layer must be *re-pruned* to the chosen
    format at pack time.  ``candidates`` records the full scored search
    for introspection.
    """

    fmt: NMFormat | None
    loss: float
    weight_bytes: int
    cycles: float | None
    candidates: tuple[FormatCandidate, ...]


def _best_cycles(
    kind: str, shape: ConvShape | FcShape, fmt: NMFormat | None, params: CostParams
) -> float | None:
    """Best modelled deployable latency of ``shape`` at ``fmt``.

    For an N:M format this is the better of the decimation kernel and
    the scatter-to-dense execution (the same pair
    :func:`select_sparse_method` arbitrates); for dense (``fmt=None``)
    it is the dense kernel, or None when none applies (odd-K FC).
    """
    dense_v = dense_variant_for(kind, shape)
    dense_cycles = dense_v.cycles(shape, params).total if dense_v else None
    if fmt is None:
        return dense_cycles
    sparse_cycles = variant_for(kind, "sparse-sw", fmt).cycles(shape, params).total
    if dense_cycles is None:
        return sparse_cycles
    return min(sparse_cycles, dense_cycles)


def select_format(
    kind: str,
    shape: ConvShape | FcShape,
    weights: np.ndarray,
    budget: float = 0.0,
    value_bytes: int = 1,
    params: CostParams = DEFAULT_PARAMS,
) -> FormatChoice:
    """Pick the N:M format (or dense) to deploy one layer in.

    Scores every supported format whose block size divides the layer's
    reduce dimension, plus the dense baseline: the candidate's accuracy
    cost is the relative weight-energy lost by magnitude-pruning to the
    pattern, its memory cost the exact packed storage
    (:meth:`~repro.sparsity.nm.NMFormat.packed_bytes`), its latency the
    cost model's best deployable kernel.  Among candidates whose loss
    fits ``budget``, the smallest ``weight_bytes`` wins (ties broken by
    modelled cycles) — memory is the binding MCU constraint the paper
    optimises (Sec. 2.1); the dense candidate (loss 0) guarantees a
    fallback.

    With the default ``budget=0.0`` the search is **lossless**: only
    patterns the weights already satisfy are admissible, so for int8 the
    compiled plan stays bit-identical to dense.  A positive budget
    allows *re-pruning* the layer to a more compressive format at pack
    time, trading accuracy for memory exactly as the paper's
    deployment-time format sweep does.

    Parameters
    ----------
    kind:
        "conv" or "fc".
    shape:
        The layer geometry (for the latency model).
    weights:
        The 2-D reduce-major weight matrix the kernels consume —
        quantised int8 for int8 plans, float32 for float plans.
    budget:
        Maximum admissible relative weight-energy loss per layer.
    value_bytes:
        Stored value width: 1 for int8, 4 for float32.
    """
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ValueError(f"expected a 2-D weight matrix, got {weights.shape}")
    if budget < 0:
        raise ValueError(f"accuracy budget must be >= 0, got {budget}")
    rows, cols = weights.shape
    dense_cand = FormatCandidate(
        "dense",
        0.0,
        rows * cols * value_bytes,
        _best_cycles(kind, shape, None, params),
        True,
    )
    candidates = [dense_cand]
    dense_matrix = not (weights != 0).any()
    for fmt in sorted(SUPPORTED_FORMATS.values(), key=lambda f: f.m):
        if cols % fmt.m:
            continue
        loss = format_energy_loss(weights, fmt)
        candidates.append(
            FormatCandidate(
                fmt.name,
                loss,
                fmt.packed_bytes(rows, cols, value_bytes),
                _best_cycles(kind, shape, fmt, params),
                # An all-zero matrix trivially satisfies every pattern;
                # lowering it sparse would be legal but pointless (and
                # detect_format agrees), so keep it dense.
                loss <= budget and not dense_matrix,
            )
        )
    admissible = [c for c in candidates if c.admissible]
    best = min(
        admissible,
        key=lambda c: (c.weight_bytes, c.cycles if c.cycles is not None else float("inf")),
    )
    fmt = None if best.fmt_name == "dense" else SUPPORTED_FORMATS[best.fmt_name]
    return FormatChoice(
        fmt, best.loss, best.weight_bytes, best.cycles, tuple(candidates)
    )
