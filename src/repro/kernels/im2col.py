"""The im2col transformation (paper Sec. 4.1.1).

PULP-NN performs a *partial* im2col: for each pair of spatially
contiguous output positions, the two receptive fields are copied into
two 1-D buffers of length ``FY*FX*C``, ordered ``(fy, fx, c)`` — the
same order as one flattened weight filter.  The functional kernels here
materialise the full im2col matrix at once (vectorised equivalent of
running the partial im2col for every pair); the cost model accounts for
the per-pair copy the MCU actually performs.

The L1 footprint of the two per-core buffers,
``FX*FY*C*2*N_CORES`` bytes, is the quantity MATCH's tiling engine must
budget for (Sec. 4.1.1).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.shapes import ConvShape

__all__ = ["im2col", "im2col_buffer_bytes", "im2col_copy_cycles"]


def im2col(x: np.ndarray, shape: ConvShape) -> np.ndarray:
    """Build the im2col matrix of ``x``.

    Parameters
    ----------
    x:
        Input activations, int8, shape ``(IY, IX, C)``.
    shape:
        Layer geometry; ``x`` must match its input dims.

    Returns
    -------
    np.ndarray
        int8 array of shape ``(OY*OX, FY*FX*C)``; row ``oy*OX + ox``
        holds the receptive field of output ``(oy, ox)`` flattened in
        ``(fy, fx, c)`` order.  Padding positions contribute zeros
        (symmetric quantisation keeps the pad value at 0).
    """
    x = np.asarray(x)
    if x.shape != (shape.iy, shape.ix, shape.c):
        raise ValueError(f"input {x.shape} does not match {shape}")
    padded = np.zeros(
        (shape.iy + 2 * shape.p, shape.ix + 2 * shape.p, shape.c), dtype=x.dtype
    )
    padded[shape.p : shape.p + shape.iy, shape.p : shape.p + shape.ix] = x
    # Gather windows: out[oy, ox, fy, fx, c] = padded[oy*s+fy, ox*s+fx, c]
    oy_idx = np.arange(shape.oy) * shape.s
    ox_idx = np.arange(shape.ox) * shape.s
    fy_idx = np.arange(shape.fy)
    fx_idx = np.arange(shape.fx)
    rows = oy_idx[:, None, None, None] + fy_idx[None, None, :, None]
    cols = ox_idx[None, :, None, None] + fx_idx[None, None, None, :]
    windows = padded[rows, cols]  # (OY, OX, FY, FX, C)
    return windows.reshape(shape.oy * shape.ox, shape.reduce_dim)


def im2col_buffer_bytes(shape: ConvShape, n_cores: int = 8) -> int:
    """L1 bytes consumed by the per-core im2col double buffers."""
    return shape.reduce_dim * 2 * n_cores


def im2col_copy_cycles(shape: ConvShape, cycles_per_byte: float = 0.75) -> float:
    """Cycles for one partial im2col (two patches) on one core.

    The copy moves ``2*FY*FX*C`` bytes; filter rows are C-contiguous in
    HWC so the bulk moves as word loads/stores (2 instructions per 4
    bytes = 0.5 cycles/byte) plus row address arithmetic and padding
    handling, absorbed into ``cycles_per_byte``.
    """
    return 2 * shape.reduce_dim * cycles_per_byte
