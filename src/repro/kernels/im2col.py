"""The im2col transformation (paper Sec. 4.1.1).

PULP-NN performs a *partial* im2col: for each pair of spatially
contiguous output positions, the two receptive fields are copied into
two 1-D buffers of length ``FY*FX*C``, ordered ``(fy, fx, c)`` — the
same order as one flattened weight filter.  The functional kernels here
materialise the full im2col matrix at once (vectorised equivalent of
running the partial im2col for every pair); the cost model accounts for
the per-pair copy the MCU actually performs.

The L1 footprint of the two per-core buffers,
``FX*FY*C*2*N_CORES`` bytes, is the quantity MATCH's tiling engine must
budget for (Sec. 4.1.1).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.shapes import ConvShape

__all__ = [
    "im2col",
    "im2col_active_rows",
    "im2col_batch",
    "im2col_buffer_bytes",
    "im2col_copy_cycles",
]


def im2col(x: np.ndarray, shape: ConvShape) -> np.ndarray:
    """Build the im2col matrix of ``x``.

    Parameters
    ----------
    x:
        Input activations of any dtype (int8 on the MCU, float32 for
        the reference float path), shape ``(IY, IX, C)``.
    shape:
        Layer geometry; ``x`` must match its input dims.

    Returns
    -------
    np.ndarray
        Array of ``x.dtype`` and shape ``(OY*OX, FY*FX*C)``; row
        ``oy*OX + ox`` holds the receptive field of output ``(oy, ox)``
        flattened in ``(fy, fx, c)`` order.  Padding positions
        contribute zeros (symmetric quantisation keeps the pad value
        at 0).
    """
    x = np.asarray(x)
    if x.shape != (shape.iy, shape.ix, shape.c):
        raise ValueError(f"input {x.shape} does not match {shape}")
    return im2col_batch(x[None], shape)[0]


def im2col_batch(x: np.ndarray, shape: ConvShape) -> np.ndarray:
    """Batched :func:`im2col`: ``(B, IY, IX, C)`` -> ``(B, OY*OX, FY*FX*C)``.

    One padded copy and one strided window view serve the whole batch
    (the final reshape materialises the columns in a single pass);
    per-row semantics are exactly those of :func:`im2col`.
    """
    x = np.asarray(x)
    if x.ndim != 4 or x.shape[1:] != (shape.iy, shape.ix, shape.c):
        raise ValueError(f"batched input {x.shape} does not match {shape}")
    b = x.shape[0]
    padded = np.zeros(
        (b, shape.iy + 2 * shape.p, shape.ix + 2 * shape.p, shape.c),
        dtype=x.dtype,
    )
    padded[:, shape.p : shape.p + shape.iy, shape.p : shape.p + shape.ix] = x
    # Window view: view[b, oy, ox, fy, fx, c] = padded[b, oy*s+fy, ox*s+fx, c]
    sb, sy, sx, sc = padded.strides
    windows = np.lib.stride_tricks.as_strided(
        padded,
        shape=(b, shape.oy, shape.ox, shape.fy, shape.fx, shape.c),
        strides=(sb, sy * shape.s, sx * shape.s, sy, sx, sc),
    )
    return windows.reshape(b, shape.oy * shape.ox, shape.reduce_dim)


def im2col_active_rows(active_map: np.ndarray, shape: ConvShape) -> np.ndarray:
    """Reduce a spatial activity map to per-im2col-row activity.

    ``active_map`` is a ``(B, IY, IX)`` bool array marking input
    positions with at least one non-zero channel (the channel reduction
    of a post-ReLU tensor).  The result is ``(B, OY*OX)`` bool: row
    ``oy*OX + ox`` is True iff any position of its receptive field is
    active.  Rows marked False therefore correspond to all-zero im2col
    rows, exactly the rows an activation-skipping kernel may drop.

    The reduction reuses the padded/strided-window construction of
    :func:`im2col_batch` on the 1-byte map instead of the ``C``-channel
    activations — ``FY*FX`` bools per output position rather than
    ``FY*FX*C`` values, which is what makes mask extraction cheap
    enough to be worth gating on in the cost model.
    """
    active_map = np.asarray(active_map, dtype=bool)
    if active_map.ndim != 3 or active_map.shape[1:] != (shape.iy, shape.ix):
        raise ValueError(
            f"activity map {active_map.shape} does not match {shape}"
        )
    b = active_map.shape[0]
    padded = np.zeros(
        (b, shape.iy + 2 * shape.p, shape.ix + 2 * shape.p), dtype=bool
    )
    padded[:, shape.p : shape.p + shape.iy, shape.p : shape.p + shape.ix] = (
        active_map
    )
    sb, sy, sx = padded.strides
    windows = np.lib.stride_tricks.as_strided(
        padded,
        shape=(b, shape.oy, shape.ox, shape.fy, shape.fx),
        strides=(sb, sy * shape.s, sx * shape.s, sy, sx),
    )
    return windows.any(axis=(3, 4)).reshape(b, shape.oy * shape.ox)


def im2col_buffer_bytes(shape: ConvShape, n_cores: int = 8) -> int:
    """L1 bytes consumed by the per-core im2col double buffers."""
    return shape.reduce_dim * 2 * n_cores


def im2col_copy_cycles(shape: ConvShape, cycles_per_byte: float = 0.75) -> float:
    """Cycles for one partial im2col (two patches) on one core.

    The copy moves ``2*FY*FX*C`` bytes; filter rows are C-contiguous in
    HWC so the bulk moves as word loads/stores (2 instructions per 4
    bytes = 0.5 cycles/byte) plus row address arithmetic and padding
    handling, absorbed into ``cycles_per_byte``.
    """
    return 2 * shape.reduce_dim * cycles_per_byte
