"""Drivers that execute the microcoded kernels on the core model.

These assemble a memory image (weights, packed offsets, activation
buffers, output region), run the :mod:`repro.kernels.microcode` program
on a :class:`repro.hw.cpu.Core`, and decode the int32 accumulators —
giving instruction-level ground truth for both functional equivalence
(against the numpy kernels) and cycle counts (for the cost model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.cpu import Core, ExecStats, PipelineModel
from repro.kernels import microcode as mc
from repro.sparsity.nm import NMFormat, NMSparseMatrix

__all__ = [
    "MemoryImage",
    "run_conv_pair",
    "run_fc_micro",
    "run_conv_layer_micro",
    "run_requant_micro",
]


class MemoryImage:
    """A simple bump allocator over a byte-addressable memory."""

    def __init__(self, size: int = 1 << 20) -> None:
        self.mem = np.zeros(size, dtype=np.uint8)
        self._cursor = 0

    def alloc(self, nbytes: int, align: int = 4) -> int:
        """Reserve ``nbytes`` (zero-filled) and return the base address."""
        self._cursor = (self._cursor + align - 1) // align * align
        addr = self._cursor
        self._cursor += nbytes
        if self._cursor > self.mem.size:
            raise MemoryError(
                f"memory image exhausted ({self._cursor} > {self.mem.size})"
            )
        return addr

    def place(self, arr: np.ndarray, align: int = 4) -> int:
        """Copy an int8/uint8 array into memory, return its address."""
        raw = np.ascontiguousarray(arr).view(np.uint8).reshape(-1)
        addr = self.alloc(raw.size, align)
        self.mem[addr : addr + raw.size] = raw
        return addr

    def read_i32(self, addr: int, count: int) -> np.ndarray:
        """Read ``count`` little-endian int32 words."""
        raw = self.mem[addr : addr + 4 * count]
        return raw.view("<i4").copy()


@dataclass
class MicroResult:
    """Output of one microcoded kernel run."""

    acc: np.ndarray  # int32 accumulators; shape depends on the kernel
    stats: ExecStats


def run_conv_pair(
    variant: str,
    weights: np.ndarray | NMSparseMatrix,
    buf1: np.ndarray,
    buf2: np.ndarray,
    pipeline: PipelineModel | None = None,
) -> MicroResult:
    """Run one conv output pair (all K channels) on the core model.

    Parameters
    ----------
    variant:
        "dense-1x2", "dense-4x2", "sparse-sw" or "sparse-isa".
    weights:
        Dense int8 ``(K, R)`` matrix for dense variants, or an
        :class:`NMSparseMatrix` for sparse ones.
    buf1, buf2:
        The two im2col buffers, int8 ``(R,)``.

    Returns
    -------
    MicroResult
        ``acc`` has shape ``(2, K)``: accumulators for the two output
        positions.
    """
    buf1 = np.asarray(buf1, dtype=np.int8)
    buf2 = np.asarray(buf2, dtype=np.int8)
    r = buf1.size
    if buf2.size != r:
        raise ValueError("im2col buffers must have equal length")
    img = MemoryImage()

    if variant.startswith("dense"):
        wmat = np.asarray(weights, dtype=np.int8)
        k = wmat.shape[0]
        if wmat.shape != (k, r):
            raise ValueError(f"weights {wmat.shape} do not match R={r}")
        w_addr = img.place(wmat)
        b1_addr = img.place(buf1)
        b2_addr = img.place(buf2)
        out_addr = img.alloc(8 * k)
        if variant == "dense-1x2":
            prog = mc.conv_pair_dense_1x2(k, r, w_addr, b1_addr, b2_addr, out_addr)
        elif variant == "dense-4x2":
            prog = mc.conv_pair_dense_4x2(k, r, w_addr, b1_addr, b2_addr, out_addr)
        else:
            raise ValueError(f"unknown dense variant {variant!r}")
    else:
        if not isinstance(weights, NMSparseMatrix):
            raise TypeError("sparse variants need an NMSparseMatrix")
        mat = weights
        if mat.dense_cols != r:
            raise ValueError(f"sparse weights dense_cols != R={r}")
        k = mat.rows
        engine = "sw" if variant == "sparse-sw" else "isa"
        if variant == "sparse-sw":
            vals, offs, nnz_pad = mc.pack_sparse_rows_sw(mat)
        elif variant == "sparse-isa":
            vals, offs, nnz_pad = mc.pack_sparse_rows_isa_conv(mat)
        else:
            raise ValueError(f"unknown variant {variant!r}")
        slack = mc.buffer_slack_bytes(mat.fmt, engine)
        w_addr = img.place(vals)
        off_addr = img.place(offs)
        b1_addr = img.alloc(r + slack)
        img.mem[b1_addr : b1_addr + r] = buf1.view(np.uint8)
        b2_addr = img.alloc(r + slack)
        img.mem[b2_addr : b2_addr + r] = buf2.view(np.uint8)
        out_addr = img.alloc(8 * k)
        if variant == "sparse-sw":
            prog = mc.conv_pair_sparse_sw(
                mat.fmt, k, nnz_pad, w_addr, off_addr, b1_addr, b2_addr, out_addr
            )
        else:
            prog = mc.conv_pair_sparse_isa(
                mat.fmt, k, nnz_pad, w_addr, off_addr, b1_addr, b2_addr, out_addr
            )

    core = Core(img.mem, pipeline=pipeline)
    stats = core.run(prog)
    raw = img.read_i32(out_addr, 2 * k)
    if variant == "dense-4x2":
        # Stored per 4-channel group in (channel, position) order.
        acc = raw.reshape(k // 4, 4, 2).transpose(2, 0, 1).reshape(2, k)
    else:
        acc = raw.reshape(k, 2).T
    return MicroResult(acc=acc.copy(), stats=stats)


def run_fc_micro(
    variant: str,
    weights: np.ndarray | NMSparseMatrix,
    x: np.ndarray,
    pipeline: PipelineModel | None = None,
) -> MicroResult:
    """Run one FC layer (single input vector) on the core model.

    Parameters
    ----------
    variant:
        "dense", "sparse-sw" or "sparse-isa".
    weights:
        Dense int8 ``(K, C)`` or an :class:`NMSparseMatrix`.
    x:
        int8 input vector ``(C,)``.

    Returns
    -------
    MicroResult
        ``acc`` has shape ``(K,)``.
    """
    x = np.asarray(x, dtype=np.int8)
    c = x.size
    img = MemoryImage()

    if variant == "dense":
        wmat = np.asarray(weights, dtype=np.int8)
        k = wmat.shape[0]
        if wmat.shape != (k, c):
            raise ValueError(f"weights {wmat.shape} do not match C={c}")
        w_addr = img.place(wmat)
        b_addr = img.place(x)
        out_addr = img.alloc(4 * k)
        prog = mc.fc_dense_program(k, c, w_addr, b_addr, out_addr)
    else:
        if not isinstance(weights, NMSparseMatrix):
            raise TypeError("sparse variants need an NMSparseMatrix")
        mat = weights
        if mat.dense_cols != c:
            raise ValueError(f"sparse weights dense_cols != C={c}")
        k = mat.rows
        engine = "sw" if variant == "sparse-sw" else "isa"
        if variant == "sparse-sw":
            vals, offs, nnz_pad = mc.pack_sparse_rows_sw(mat)
        elif variant == "sparse-isa":
            vals, offs, nnz_pad = mc.pack_sparse_rows_isa_fc(mat)
        else:
            raise ValueError(f"unknown variant {variant!r}")
        slack = mc.buffer_slack_bytes(mat.fmt, engine)
        w_addr = img.place(vals)
        off_addr = img.place(offs)
        b_addr = img.alloc(c + slack)
        img.mem[b_addr : b_addr + c] = x.view(np.uint8)
        out_addr = img.alloc(4 * k)
        if variant == "sparse-sw":
            prog = mc.fc_sparse_sw_program(
                mat.fmt, k, nnz_pad, w_addr, off_addr, b_addr, out_addr
            )
        else:
            prog = mc.fc_sparse_isa_program(
                mat.fmt, k, nnz_pad, w_addr, off_addr, b_addr, out_addr
            )

    core = Core(img.mem, pipeline=pipeline)
    stats = core.run(prog)
    acc = img.read_i32(out_addr, k)
    return MicroResult(acc=acc, stats=stats)


def run_conv_layer_micro(
    variant: str,
    weights: np.ndarray | NMSparseMatrix,
    x: np.ndarray,
    shape,
    pipeline: PipelineModel | None = None,
) -> MicroResult:
    """Run a *whole* conv layer on the core model, pair by pair.

    The partial im2col feeds each output pair's buffers (exactly the
    PULP-NN flow); the per-pair kernel program then produces the int32
    accumulators.  Statistics accumulate over all pairs, so the result
    carries full-layer instruction/cycle counts on one core.

    Returns ``acc`` of shape ``(OY, OX, K)``.
    """
    from repro.kernels.im2col import im2col

    cols = im2col(np.asarray(x, dtype=np.int8), shape)  # (P, R)
    p = cols.shape[0]
    k = weights.rows if isinstance(weights, NMSparseMatrix) else weights.shape[0]
    acc = np.zeros((p, k), dtype=np.int32)
    total = ExecStats()
    for pair_start in range(0, p, 2):
        buf1 = cols[pair_start]
        # An odd trailing position recomputes the same patch twice; the
        # second result is discarded (the MCU kernel's tail handling).
        buf2 = cols[min(pair_start + 1, p - 1)]
        res = run_conv_pair(variant, weights, buf1, buf2, pipeline)
        acc[pair_start] = res.acc[0]
        if pair_start + 1 < p:
            acc[pair_start + 1] = res.acc[1]
        total.instructions += res.stats.instructions
        total.stalls += res.stats.stalls
        total.op_counts.update(res.stats.op_counts)
    return MicroResult(acc=acc.reshape(shape.oy, shape.ox, k), stats=total)


def run_requant_micro(
    acc: np.ndarray,
    multiplier: int,
    shift: int,
    zero_point: int = 0,
    pipeline: PipelineModel | None = None,
) -> MicroResult:
    """Run the requantisation microcode over int32 accumulators.

    Returns ``acc`` as the int8 outputs (stored as int8 array).
    """
    from repro.kernels import microcode as mc

    acc = np.ascontiguousarray(acc, dtype=np.int32).reshape(-1)
    img = MemoryImage()
    in_addr = img.place(acc.view(np.uint8))
    out_addr = img.alloc(acc.size)
    prog = mc.requant_program(
        acc.size, in_addr, out_addr, multiplier, shift, zero_point
    )
    core = Core(img.mem, pipeline=pipeline)
    stats = core.run(prog)
    out = img.mem[out_addr : out_addr + acc.size].view(np.int8).copy()
    return MicroResult(acc=out, stats=stats)
