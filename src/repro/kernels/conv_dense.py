"""Dense convolution kernels (the PULP-NN baselines, Sec. 4.1.1).

Two baselines share this functional implementation and differ only in
their inner-loop schedule, which the cost model accounts for:

- **4x2 (PULP-NN)**: 4 output channels x 2 spatial positions per inner
  iteration; 14 instructions / 32 MACs = 2.28 MACs/instruction peak.
- **1x2**: 1 output channel x 2 spatial positions; 5 instructions /
  8 MACs = 1.6 MACs/instruction peak.  This is the schedule the sparse
  kernels inherit (the 4-channel unrolling is impossible under N:M
  sparsity because channels stop sharing activation positions).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.im2col import im2col
from repro.kernels.requant import QuantParams, requantize
from repro.kernels.shapes import ConvShape

__all__ = ["conv2d_dense", "conv2d_acc_dense"]


def conv2d_acc_dense(
    x: np.ndarray, weights: np.ndarray, shape: ConvShape
) -> np.ndarray:
    """int32 accumulators of a dense conv (before bias/requant).

    Parameters
    ----------
    x:
        int8 input, ``(IY, IX, C)``.
    weights:
        int8 weights, ``(K, FY, FX, C)``.
    shape:
        Layer geometry (validated against both arrays).

    Returns
    -------
    np.ndarray
        int32 array ``(OY, OX, K)``.
    """
    weights = np.asarray(weights)
    if weights.shape != (shape.k, shape.fy, shape.fx, shape.c):
        raise ValueError(f"weights {weights.shape} do not match {shape}")
    cols = im2col(x, shape).astype(np.int32)  # (P, R)
    wmat = weights.reshape(shape.k, shape.reduce_dim).astype(np.int32)
    acc = cols @ wmat.T  # (P, K)
    return acc.reshape(shape.oy, shape.ox, shape.k)


def conv2d_dense(
    x: np.ndarray,
    weights: np.ndarray,
    shape: ConvShape,
    quant: QuantParams | None = None,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """Dense int8 convolution with requantised int8 output.

    Functionally identical for the 4x2 and 1x2 schedules (they compute
    the same sums in a different order); their latency difference lives
    in :mod:`repro.kernels.cost_model`.
    """
    acc = conv2d_acc_dense(x, weights, shape)
    return requantize(acc, quant or QuantParams(), bias)
