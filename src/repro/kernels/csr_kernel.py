"""Unstructured-sparsity comparator: a CSR-based FC/matmul kernel.

The paper's Secs. 2.1 and 3 argue that *unstructured* sparse kernels on
MCUs (Trommer et al.'s dCSR; classic CSR row kernels) pay heavy decode
overheads and index memory, so N:M wins at moderate sparsity.  This
module implements the comparator so the claim is measurable instead of
cited:

- a functional CSR row-kernel (gather activations by column index,
  multiply-accumulate — no SIMD, since lanes cannot be filled from
  arbitrary columns without packing overhead);
- its inner-loop cost on the MCU model: per non-zero, one 16-bit index
  load, one activation byte load, one weight byte load and one MAC —
  5 instructions/NZ vs the N:M kernels' ~4 instructions per 4 NZ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hw.cluster import ClusterConfig, VEGA_CLUSTER
from repro.kernels.cost_model import CostParams, CycleBreakdown, DEFAULT_PARAMS
from repro.kernels.shapes import FcShape
from repro.sparsity.csr import CSRMatrix

__all__ = ["fc_acc_csr", "csr_fc_layer_cycles", "CSR_INSTR_PER_NZ"]

#: Inner-loop instructions per non-zero of the CSR row kernel:
#: index load (lhu), activation load (lbu, index-addressed), weight
#: load (lbu), MAC, and the amortised loop/row bookkeeping.
CSR_INSTR_PER_NZ = 5.0


def fc_acc_csr(x: np.ndarray, csr: CSRMatrix) -> np.ndarray:
    """int32 accumulators of ``x @ csr.T`` via row-wise CSR traversal.

    The loop structure mirrors the MCU kernel: for each output row,
    walk its (value, column) pairs and gather-multiply-accumulate.
    """
    x = np.asarray(x)
    if x.ndim == 1:
        x = x[None, :]
    if x.shape[1] != csr.shape[1]:
        raise ValueError(f"input dim {x.shape[1]} != matrix cols {csr.shape[1]}")
    out = np.zeros((x.shape[0], csr.shape[0]), dtype=np.int32)
    x32 = x.astype(np.int32)
    for row in range(csr.shape[0]):
        vals, cols = csr.row(row)
        if vals.size:
            out[:, row] = x32[:, cols] @ vals.astype(np.int32)
    return out


def csr_fc_layer_cycles(
    shape: FcShape,
    sparsity: float,
    index_bits: int = 16,
    params: CostParams = DEFAULT_PARAMS,
    cluster: ClusterConfig = VEGA_CLUSTER,
) -> CycleBreakdown:
    """Latency of an FC layer with an unstructured CSR kernel.

    Parameters
    ----------
    shape:
        Layer geometry.
    sparsity:
        Fraction of zero weights (uniform, unstructured).
    index_bits:
        Column-index width (16 for "reasonably sized layers", Sec. 4).

    The model mirrors :func:`repro.kernels.cost_model.fc_layer_cycles`:
    per-channel traversal parallelised over K, serialized weight
    streaming (values + indices + row pointers), and the shared fixed
    overheads — only the inner loop and the stream size differ.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    nnz_per_row = shape.c * (1.0 - sparsity)
    # Scalar loop: no SIMD lanes to fill, plus the same per-load TCDM
    # contention the N:M kernels pay (3 loads per NZ).
    iter_cycles = CSR_INSTR_PER_NZ + params.load_contention * 3
    per_channel = params.channel_setup + nnz_per_row * iter_cycles
    units_per_core = math.ceil(shape.k / cluster.n_cores)
    span = units_per_core * per_channel + cluster.barrier_cycles

    stream_bytes = shape.k * nnz_per_row * (8 + index_bits) / 8 + shape.k * 2
    dma_cycles = 40 + stream_bytes / params.fc_stream_bandwidth

    per_token = CycleBreakdown(
        compute=units_per_core * nnz_per_row * iter_cycles,
        im2col=0.0,
        overhead=span
        - units_per_core * nnz_per_row * iter_cycles
        + params.fc_fixed_overhead,
        dma=dma_cycles,
        macs=shape.k * shape.c,
    )
    return per_token.scaled(shape.tokens)
