"""Per-layer output requantisation (PULP-NN's quantisation stage).

Every kernel accumulates in int32 and maps back to int8 through
``clip(round((acc + bias) * multiplier >> shift) + zero_point)``.
Symmetric per-tensor quantisation (zero_point = 0) is used throughout,
matching the Brevitas int8 configuration of the paper's models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.fixedpoint import requantize_int32

__all__ = ["QuantParams", "requantize"]


@dataclass(frozen=True)
class QuantParams:
    """Requantisation parameters of one layer.

    Attributes
    ----------
    multiplier:
        Positive integer scale.
    shift:
        Arithmetic right shift (round-half-up).
    zero_point:
        Output zero point (0 for symmetric quantisation).
    signed:
        int8 output when True, uint8 when False.
    """

    multiplier: int = 1
    shift: int = 0
    zero_point: int = 0
    signed: bool = True

    def __post_init__(self) -> None:
        if self.multiplier <= 0:
            raise ValueError(f"multiplier must be positive, got {self.multiplier}")
        if self.shift < 0 or self.shift > 31:
            raise ValueError(f"shift out of range: {self.shift}")

    @classmethod
    def from_scale(cls, scale: float, bits: int = 16) -> "QuantParams":
        """Fixed-point approximation of a real rescale factor.

        Finds ``multiplier / 2**shift ~= scale`` with a ``bits``-wide
        multiplier, the standard integer-only inference recipe.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        shift = 0
        while scale * (1 << (shift + 1)) < (1 << (bits - 1)) and shift < 31:
            shift += 1
        multiplier = max(1, int(round(scale * (1 << shift))))
        return cls(multiplier=multiplier, shift=shift)

    @property
    def scale(self) -> float:
        """The real rescale factor this parameter pair approximates."""
        return self.multiplier / (1 << self.shift)


def requantize(
    acc: np.ndarray,
    params: QuantParams,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """Apply bias addition and requantisation to int32 accumulators.

    ``bias`` broadcasts along the last (channel) axis when provided.
    """
    acc = np.asarray(acc, dtype=np.int64)
    if bias is not None:
        acc = acc + np.asarray(bias, dtype=np.int64)
    return requantize_int32(
        acc,
        params.multiplier,
        params.shift,
        params.zero_point,
        params.signed,
    )
