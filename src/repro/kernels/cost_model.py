"""Analytical layer-latency model (the GVSoC substitute).

Composes microcode-verified inner-loop cycle counts with the structural
overheads of the PULP deployment — im2col, per-channel setup and
requantisation, output-pair loop, 8-core parallelisation, DMA tile
movement — into per-layer cycle estimates for every kernel variant.

Model structure (per conv layer)::

    pairs      = ceil(OY*OX / 2)                   # 2 outputs per visit
    pair_cost  = im2col + sum over K of channel_cost + pair_setup
    channel    = ch_setup + iters * iter_cycles + 2 * requant
    layer      = ceil(pairs / n_cores) * pair_cost + barrier
                 + layer_setup + visible_dma

``iter_cycles`` is the microcode instruction count (verified by
:mod:`tests.kernels.test_microcode_counts`) plus a *scatter penalty*
``gamma * M`` for the sparse kernels, modelling TCDM bank conflicts of
the byte-granular decimated loads, whose footprint spreads over ``4*M``
bytes per iteration.  ``gamma`` and the handful of overhead constants
below are calibrated against the paper's reported single-layer average
speedups (see ``examples/calibrate_cost_model.py`` and EXPERIMENTS.md);
all *structure* comes from the kernel code, not the fit.

Convolution weight streams are double-buffered (visible cost: one DMA
setup per tile); FC weight streams are exposed — the paper identifies
them as a dominant latency component of the memory-bound FC layers
(Sec. 5.2) — so their full transfer time is added serially.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.hw.cluster import ClusterConfig, VEGA_CLUSTER
from repro.hw.memory import DmaModel, MemoryHierarchy, VEGA_MEMORY
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import NMFormat
from repro.sparsity.pruning import nm_prune_mask

__all__ = [
    "CostParams",
    "CycleBreakdown",
    "DEFAULT_PARAMS",
    "act_skip_density_cutoff",
    "act_skip_profitable",
    "format_energy_loss",
    "iter_cycles",
    "iter_equiv_macs",
    "variant_supported",
    "weight_stream_bytes",
    "conv_layer_cycles",
    "fc_layer_cycles",
]

def format_energy_loss(weights, fmt: NMFormat) -> float:
    """Relative weight-energy loss of magnitude-pruning to ``fmt``.

    The format selector's accuracy proxy: ``1 - ||prune(W)||² / ||W||²``
    for the standard keep-N-largest-per-M-block criterion.  Exactly 0
    when the matrix already satisfies the pattern (the selection is then
    lossless and the compiled plan stays bit-identical to dense for
    int8); an all-zero matrix is defined as lossless.  Accuracy drop on
    a task correlates with, but is not equal to, this energy loss — the
    budget is a *proxy* knob, calibrated per model (Sec. 2.1 prunes
    offline and reports the resulting task accuracy).
    """
    weights = np.asarray(weights, dtype=np.float64)
    total = float(np.square(weights).sum())
    if total == 0.0:
        return 0.0
    kept = float(np.square(weights[nm_prune_mask(weights, fmt)]).sum())
    return 1.0 - kept / total


#: Inner-loop cycles per iteration on an unloaded core: instruction
#: counts from the paper's Fig. 4/5 (the 1:4 entries amortise the
#: shared OFFSETS-word load over its 4- or 2-iteration group).
INNER_ITER_CYCLES: dict[tuple[str, str, int], float] = {
    ("conv", "dense-4x2", 0): 14.0,
    ("conv", "dense-1x2", 0): 5.0,
    ("conv", "sparse-sw", 4): 23.5,
    ("conv", "sparse-sw", 8): 22.0,
    ("conv", "sparse-sw", 16): 22.0,
    ("conv", "sparse-isa", 4): 11.5,
    ("conv", "sparse-isa", 8): 12.0,
    ("conv", "sparse-isa", 16): 12.0,
    ("fc", "dense", 0): 5.0,
    ("fc", "sparse-sw", 4): 17.5,
    ("fc", "sparse-sw", 8): 16.0,
    ("fc", "sparse-sw", 16): 16.0,
    ("fc", "sparse-isa", 4): 12.5,
    ("fc", "sparse-isa", 8): 13.0,
    ("fc", "sparse-isa", 16): 13.0,
}


#: Memory-access instructions per inner iteration (for the TCDM
#: contention term): every load arbitrates for one of the shared L1
#: banks against the other 7 cores.
LOADS_PER_ITER: dict[tuple[str, str, int], int] = {
    ("conv", "dense-4x2", 0): 6,
    ("conv", "dense-1x2", 0): 3,
    ("conv", "sparse-sw", 4): 10,
    ("conv", "sparse-sw", 8): 10,
    ("conv", "sparse-sw", 16): 10,
    ("conv", "sparse-isa", 4): 10,
    ("conv", "sparse-isa", 8): 10,
    ("conv", "sparse-isa", 16): 10,
    ("fc", "dense", 0): 3,
    ("fc", "sparse-sw", 4): 6,
    ("fc", "sparse-sw", 8): 6,
    ("fc", "sparse-sw", 16): 6,
    ("fc", "sparse-isa", 4): 11,
    ("fc", "sparse-isa", 8): 11,
    ("fc", "sparse-isa", 16): 11,
}


@dataclass(frozen=True)
class CostParams:
    """Calibration constants of the latency model.

    The starred parameters are fitted: the sparse-kernel constants
    against the paper's single-layer averages (Fig. 8 text), the
    ``load_contention`` term against the *dense* end-to-end baselines
    of Table 2 (66.63 / 49.71 Mcycles for ResNet18) — leaving the
    sparse Table 2 rows as an untouched validation set.  Everything
    else follows from kernel structure.
    """

    #: * extra cycles per sparse-SW conv inner iteration and per unit of
    #: M — TCDM bank conflicts of 8 byte loads scattered over 4*M bytes.
    gamma_sw_conv: float = 0.85
    #: * same for the ISA conv kernels (xDecimate loads byte-wise too).
    gamma_isa_conv: float = 0.50
    #: * scatter penalty for the FC kernels; larger because FC buffers
    #: span the full C range (no im2col locality).
    gamma_sw_fc: float = 0.80
    #: * scatter penalty for the ISA FC kernels.
    gamma_isa_fc: float = 1.00
    #: * im2col copy cost per byte moved (byte-granular edge handling,
    #: padding tests and address arithmetic dominate the word copies).
    im2col_cycles_per_byte: float = 3.0
    #: * extra per-iteration cost of the 4x2 kernel: its four parallel
    #: weight streams hit the same TCDM banks in lockstep.
    dense_4x2_extra: float = 2.7
    #: * DMA bandwidth seen by exposed FC weight streams (bytes/cycle).
    fc_stream_bandwidth: float = 8.0
    #: * per-FC-invocation fixed cost (runtime marshalling, activation
    #: staging, barriers, requant tail) — dominates small geometries.
    fc_fixed_overhead: float = 8000.0
    #: * TCDM bank-conflict stall per load instruction with 8 active
    #: cores on the shared L1 (anchored on the dense Table 2 rows).
    load_contention: float = 0.65
    #: extra cycles per dense inner iteration (residual contention).
    dense_extra: float = 0.3
    #: requantisation + store per output element (mul/add/shift/clip/sb).
    requant_per_output: float = 8.0
    #: per-channel prologue (acc init, buffer rewinds).
    channel_setup: float = 5.0
    #: per-4-channel-group prologue of the 4x2 kernel.
    group_setup: float = 16.0
    #: per output-pair overhead (loop bookkeeping, pointer updates).
    pair_setup: float = 25.0
    #: per-layer fixed cost (kernel launch, argument marshalling).
    layer_setup: float = 1200.0
    #: L1 bytes available to a double-buffered weight tile.
    weight_tile_bytes: int = 32 * 1024
    #: cycles per byte of activation-skipping bookkeeping: the zero-map
    #: reduction per im2col row plus the compaction/scatter copies of
    #: surviving rows (SparCE-style zero-tile skipping).
    act_mask_cycles_per_byte: float = 1.0
    #: minimum predicted relative saving before activation skipping is
    #: enabled — hysteresis so a noisy calibration density estimate near
    #: break-even cannot flip a layer into a net-loss configuration.
    act_skip_margin: float = 0.10


DEFAULT_PARAMS = CostParams()


@dataclass(frozen=True)
class CycleBreakdown:
    """Per-layer latency decomposition.

    All cycle figures are cluster-level (the span across 8 cores).
    ``macs`` counts *dense-equivalent* MACs, matching the paper's
    MAC/cycle reporting convention.
    """

    compute: float
    im2col: float
    overhead: float
    dma: float
    macs: int

    @property
    def total(self) -> float:
        return self.compute + self.im2col + self.overhead + self.dma

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.total if self.total else 0.0

    def scaled(self, factor: float) -> "CycleBreakdown":
        """Uniformly scale all components (token batching)."""
        return CycleBreakdown(
            compute=self.compute * factor,
            im2col=self.im2col * factor,
            overhead=self.overhead * factor,
            dma=self.dma * factor,
            macs=int(self.macs * factor),
        )


def variant_supported(
    kind: str,
    variant: str,
    shape: ConvShape | FcShape,
    fmt: NMFormat | None = None,
) -> bool:
    """Whether ``(kind, variant, fmt)`` can deploy on ``shape``.

    The geometry constraints the kernels impose, in one place — the
    backend layer (:mod:`repro.kernels.backend`) consults this instead
    of re-deriving them: the 4x2 dense conv schedule needs K % 4 == 0,
    the dense and ISA FC kernels process channel *pairs* (even K, the
    ISA one because its OFFSETS stream interleaves two channels), and
    the sparse kernels are modelled only for the paper's 1:M formats.
    """
    if variant.startswith("dense"):
        if kind == "conv":
            return variant != "dense-4x2" or shape.k % 4 == 0
        return shape.k % 2 == 0
    if fmt is None or fmt.n != 1:
        return False
    if (kind, variant, fmt.m) not in INNER_ITER_CYCLES:
        return False
    if kind == "fc" and variant == "sparse-isa" and shape.k % 2:
        return False
    return True


def _check_variant(kind: str, variant: str, fmt: NMFormat | None) -> int:
    """Validate a (kind, variant, fmt) combination; return M (0 = dense)."""
    if variant.startswith("dense"):
        return 0
    if fmt is None:
        raise ValueError(f"{variant} requires an NMFormat")
    if fmt.n != 1:
        raise ValueError(
            f"the MCU kernels support only 1:M formats, got {fmt.name}"
        )
    key = (kind, variant, fmt.m)
    if key not in INNER_ITER_CYCLES:
        raise ValueError(f"unsupported kernel combination {key}")
    return fmt.m


def iter_cycles(
    kind: str, variant: str, fmt: NMFormat | None, params: CostParams
) -> float:
    """Effective inner-iteration cycles including the scatter penalty."""
    m = _check_variant(kind, variant, fmt)
    base = INNER_ITER_CYCLES[(kind, variant, m)]
    base += params.load_contention * LOADS_PER_ITER[(kind, variant, m)]
    if variant == "sparse-sw":
        gamma = params.gamma_sw_conv if kind == "conv" else params.gamma_sw_fc
        return base + gamma * m
    if variant == "sparse-isa":
        gamma = params.gamma_isa_conv if kind == "conv" else params.gamma_isa_fc
        return base + gamma * m
    if variant == "dense-4x2":
        return base + params.dense_extra + params.dense_4x2_extra
    return base + params.dense_extra


def iter_equiv_macs(kind: str, variant: str, fmt: NMFormat | None) -> int:
    """Dense-equivalent MACs retired per inner iteration."""
    if kind == "conv":
        if variant == "dense-4x2":
            return 32
        if variant == "dense-1x2":
            return 8
        return 8 * fmt.m  # 4 NZ x 2 positions
    if variant == "dense":
        return 8
    if variant == "sparse-sw":
        return 4 * fmt.m  # 4 NZ x 1 channel
    return 8 * fmt.m  # 4 NZ x 2 channels


def weight_stream_bytes(
    kind: str,
    variant: str,
    k: int,
    reduce_dim: int,
    fmt: NMFormat | None,
) -> float:
    """Bytes of weights (+ packed indices) streamed from L2 per pass.

    The ISA conv layout duplicates indices (Sec. 4.1.3); the ISA FC
    layout interleaves them without duplication (Sec. 4.2.3).
    """
    if variant.startswith("dense"):
        return float(k * reduce_dim)
    duplicate = variant == "sparse-isa" and kind == "conv"
    return k * reduce_dim * fmt.bits_per_dense_weight(duplicate) / 8.0


# ----------------------------------------------------------------------
# Activation zero-skipping (dynamic sparsity)
# ----------------------------------------------------------------------


def act_skip_density_cutoff(
    kind: str,
    shape: ConvShape | FcShape,
    fmt: NMFormat | None,
    variant: str = "sparse-sw",
    params: CostParams = DEFAULT_PARAMS,
) -> float:
    """Break-even activation row density for zero-skipping on a layer.

    Skipping trades the full per-row channel loop of every all-zero
    im2col row (or FC token) against fixed bookkeeping: a zero-map
    reduction over every row plus compaction/scatter copies of the
    surviving rows.  With per-row compute ``W``, per-row mask cost
    ``O`` and per-*active*-row copy cost ``S``, a batch of row density
    ``d`` costs ``O + d*(W + S)`` skipped versus ``W`` plain, so
    skipping saves at least ``act_skip_margin`` of the plain cost iff

        d <= ((1 - margin) * W - O) / (W + S)

    The returned cutoff is that bound clamped to ``[0, 1]``; layers
    whose rows are too cheap (tiny reduce dims) get a cutoff of 0 and
    are never skipped.  Only the gather variants are modelled — the
    dense scatter path never skips (BLAS reassociates, which would
    break the bit-identity contract under row compaction).
    """
    if not variant.startswith("sparse"):
        return 0.0
    m = _check_variant(kind, variant, fmt)
    r = shape.reduce_dim if kind == "conv" else shape.c
    k = shape.k
    it = iter_cycles(kind, variant, fmt, params)
    rq = params.requant_per_output
    nnz = math.ceil(r / m)
    iters = math.ceil(nnz / 4)
    if kind == "conv":
        ch_setup = params.channel_setup + (1 if variant == "sparse-isa" else 0)
        per_row = k * (ch_setup + iters * it + 2 * rq) / 2.0
        mask_bytes = shape.fy * shape.fx  # window-reduced spatial map
    else:
        per_unit = params.channel_setup + iters * it + rq
        units = k if variant == "sparse-sw" else k / 2.0
        per_row = units * per_unit
        mask_bytes = r  # token zero-test scans the reduce dim
    mask_cost = mask_bytes * params.act_mask_cycles_per_byte
    copy_cost = (r + k) * params.act_mask_cycles_per_byte
    cutoff = ((1.0 - params.act_skip_margin) * per_row - mask_cost) / (
        per_row + copy_cost
    )
    return min(1.0, max(0.0, cutoff))


def act_skip_profitable(
    kind: str,
    shape: ConvShape | FcShape,
    fmt: NMFormat | None,
    density: float,
    variant: str = "sparse-sw",
    params: CostParams = DEFAULT_PARAMS,
) -> bool:
    """Whether zero-skipping pays off at the given activation density.

    ``density`` is the fraction of im2col rows (conv) or tokens (fc)
    with at least one non-zero entry — a calibration-batch estimate at
    compile time, the measured batch value at runtime.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density!r}")
    return density <= act_skip_density_cutoff(
        kind, shape, fmt, variant, params
    )


# ----------------------------------------------------------------------
# Convolution layers
# ----------------------------------------------------------------------


def conv_layer_cycles(
    shape: ConvShape,
    variant: str,
    fmt: NMFormat | None = None,
    params: CostParams = DEFAULT_PARAMS,
    cluster: ClusterConfig = VEGA_CLUSTER,
    memory: MemoryHierarchy = VEGA_MEMORY,
) -> CycleBreakdown:
    """Latency of one conv layer under a kernel variant.

    ``variant``: "dense-4x2" | "dense-1x2" | "sparse-sw" | "sparse-isa"
    (sparse variants additionally take the :class:`NMFormat`).
    """
    m = _check_variant("conv", variant, fmt)
    r = shape.reduce_dim
    it = iter_cycles("conv", variant, fmt, params)
    rq = params.requant_per_output

    if variant == "dense-4x2":
        if shape.k % 4:
            raise ValueError("dense-4x2 requires K % 4 == 0")
        iters = math.ceil(r / 4)
        group_cost = params.group_setup + iters * it + 8 * rq
        k_loop = (shape.k // 4) * group_cost
    else:
        if variant == "dense-1x2":
            iters = math.ceil(r / 4)
        else:
            nnz = math.ceil(r / m)
            iters = math.ceil(nnz / 4)
        ch_setup = params.channel_setup + (1 if variant == "sparse-isa" else 0)
        k_loop = shape.k * (ch_setup + iters * it + 2 * rq)

    im2col_pair = 2 * r * params.im2col_cycles_per_byte
    pair_cost = im2col_pair + k_loop + params.pair_setup
    pairs = math.ceil(shape.oy * shape.ox / 2)
    pairs_per_core = math.ceil(pairs / cluster.n_cores)
    span = pairs_per_core * pair_cost + cluster.barrier_cycles

    # Weight tiles are double-buffered: only the per-tile DMA setup and
    # the input/output tile programming are visible (Sec. 5.2).
    wbytes = weight_stream_bytes("conv", variant, shape.k, r, fmt)
    n_wtiles = max(1, math.ceil(wbytes / params.weight_tile_bytes))
    visible_dma = (n_wtiles + 2) * memory.dma.setup_cycles

    im2col_total = pairs_per_core * im2col_pair
    overhead = (
        pairs_per_core * params.pair_setup
        + cluster.barrier_cycles
        + params.layer_setup
    )
    compute = span - pairs_per_core * im2col_pair - pairs_per_core * params.pair_setup - cluster.barrier_cycles
    return CycleBreakdown(
        compute=compute,
        im2col=im2col_total,
        overhead=overhead,
        dma=visible_dma,
        macs=shape.macs,
    )


# ----------------------------------------------------------------------
# Fully-connected layers
# ----------------------------------------------------------------------


def fc_layer_cycles(
    shape: FcShape,
    variant: str,
    fmt: NMFormat | None = None,
    params: CostParams = DEFAULT_PARAMS,
    cluster: ClusterConfig = VEGA_CLUSTER,
    memory: MemoryHierarchy = VEGA_MEMORY,
) -> CycleBreakdown:
    """Latency of one FC layer under a kernel variant.

    ``variant``: "dense" | "sparse-sw" | "sparse-isa".  Weight streams
    are exposed (serial with compute): FC layers are memory-bound and
    the paper attributes their sparse speedups at low sparsity mostly
    to the reduced weight traffic (Sec. 5.2).  ``shape.tokens > 1``
    repeats the whole invocation per token, matching the deployment's
    per-token lowering of transformer FC layers.
    """
    m = _check_variant("fc", variant, fmt)
    c = shape.c
    it = iter_cycles("fc", variant, fmt, params)
    rq = params.requant_per_output

    if variant == "sparse-sw":
        # One channel per iteration visit.
        nnz = math.ceil(c / m)
        iters = math.ceil(nnz / 4)
        unit_cost = params.channel_setup + iters * it + rq
        units = shape.k
    else:
        # Dense and ISA process two channels per visit.
        if shape.k % 2:
            raise ValueError("FC kernels require an even K")
        if variant == "dense":
            iters = math.ceil(c / 4)
        else:
            nnz = math.ceil(c / m)
            iters = math.ceil(nnz / 4)
        unit_cost = params.channel_setup + 2 + iters * it + 2 * rq
        units = shape.k // 2

    units_per_core = math.ceil(units / cluster.n_cores)
    span = units_per_core * unit_cost + cluster.barrier_cycles

    wbytes = weight_stream_bytes("fc", variant, shape.k, c, fmt)
    stream = DmaModel(
        bandwidth_bytes_per_cycle=params.fc_stream_bandwidth,
        setup_cycles=memory.dma.setup_cycles,
    )
    dma_cycles = stream.cycles(wbytes) + stream.cycles(c + shape.k)

    per_token = CycleBreakdown(
        compute=units_per_core * iters * it,
        im2col=0.0,
        overhead=span - units_per_core * iters * it + params.fc_fixed_overhead,
        dma=dma_cycles,
        macs=shape.k * c,
    )
    return per_token.scaled(shape.tokens)
