"""The paper's kernel library: dense baselines and N:M sparse kernels.

Layout conventions (matching PULP-NN and the paper):

- activations are HWC int8: input ``(IY, IX, C)``, output ``(OY, OX, K)``;
- conv weights are ``(K, FY, FX, C)`` int8, flattened row-major to
  ``K x (FY*FX*C)`` — the same order as the im2col buffer;
- FC weights are ``(K, C)`` int8; FC activations ``(C,)`` or ``(T, C)``
  for token batches;
- accumulation in int32, per-layer requantisation back to int8.

Each kernel family exposes a functional ``execute`` (numpy, bit-exact
against the naive reference) and a ``cycles`` cost model; the
instruction-level ground truth lives in :mod:`repro.kernels.microcode`.
"""

from repro.kernels.shapes import ConvShape, FcShape
from repro.kernels.requant import QuantParams, requantize
from repro.kernels.im2col import im2col, im2col_buffer_bytes
from repro.kernels.conv_dense import conv2d_dense
from repro.kernels.conv_sparse import (
    conv2d_f32_sparse,
    conv2d_sparse,
    k_chunk,
    set_k_chunk,
)
from repro.kernels.fc_dense import fc_dense
from repro.kernels.fc_sparse import fc_f32_sparse, fc_sparse
from repro.kernels.registry import (
    KernelVariant,
    KERNEL_VARIANTS,
    select_format,
    variant_for,
)

__all__ = [
    "ConvShape",
    "FcShape",
    "QuantParams",
    "requantize",
    "im2col",
    "im2col_buffer_bytes",
    "conv2d_dense",
    "conv2d_sparse",
    "conv2d_f32_sparse",
    "fc_dense",
    "fc_sparse",
    "fc_f32_sparse",
    "k_chunk",
    "set_k_chunk",
    "KernelVariant",
    "KERNEL_VARIANTS",
    "select_format",
    "variant_for",
]
