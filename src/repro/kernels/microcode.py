"""Instruction-level kernels (microcode) for the core model.

Each builder emits the exact inner loops of Figs. 4 and 5 of the paper,
wrapped in the per-channel scaffolding needed to run whole (small)
layers on :class:`repro.hw.cpu.Core`.  They serve two purposes:

1. **Instruction-count ground truth** — the inner-loop body lengths must
   equal the paper's numbers (dense 4x2: 14, dense 1x2: 5, sparse SW:
   22 for 1:8/1:16 and 23 for 1:4, sparse ISA: 12; FC dense: 5, FC
   sparse SW: 16, FC sparse ISA: 13).  ``INNER_BODY_LENGTH`` records
   them and tests assert the emitted bodies match.
2. **Functional cross-validation** — running the microcode on the core
   model (including the behavioural xDecimate XFU) must produce the
   same int32 accumulators as the numpy kernels.

Programs compute raw int32 accumulators (requantisation is a separate,
kernel-independent stage, unit-tested on its own); outputs are stored
as interleaved words that :mod:`repro.kernels.micro_runner` decodes.

Weight/offset layout helpers (`pack_*`) pad each channel's non-zeros to
the kernel's consumption granularity; padded entries carry value 0, so
the extra decimated loads multiply by zero and do not affect results
(the im2col buffers are over-allocated to keep those loads in bounds).
"""

from __future__ import annotations

import numpy as np

from repro.hw.isa import Asm, Program
from repro.sparsity.nm import NMFormat, NMSparseMatrix
from repro.utils.bitpack import pack_bits

__all__ = [
    "INNER_BODY_LENGTH",
    "requant_program",
    "conv_pair_dense_1x2",
    "conv_pair_dense_4x2",
    "conv_pair_sparse_sw",
    "conv_pair_sparse_isa",
    "fc_dense_program",
    "fc_sparse_sw_program",
    "fc_sparse_isa_program",
    "pad_unit",
    "pack_sparse_rows_sw",
    "pack_sparse_rows_isa_conv",
    "pack_sparse_rows_isa_fc",
    "buffer_slack_bytes",
]

# -- register map (shared across all kernels) ---------------------------
Z = 0
PW0, PW1, PW2, PW3 = 1, 2, 3, 4
WBASE = 5
POFF = 6
POUT = 7
PB1, PB2 = 8, 9
B1CUR, B2CUR = 10, 11
BBASE = 10  # FC kernels reuse B1CUR as the single-buffer base
VA0, VA1, VA2, VA3 = 12, 13, 14, 15
VA = VA0
VB1, VB2 = 16, 17
ACC = list(range(18, 26))  # up to 8 accumulators (4x2 kernel)
ACC1, ACC2 = ACC[0], ACC[1]
SHIFT = 26
T0, T1, T2, T3 = 27, 28, 29, 30
TOFF = 31
TMP = 25  # scratch for the 1:4 crumb-group shift

#: Paper inner-loop instruction counts (Sec. 4.1 / 4.2).
INNER_BODY_LENGTH = {
    ("conv", "dense-4x2"): 14,
    ("conv", "dense-1x2"): 5,
    ("conv", "sparse-sw", 4): 23,
    ("conv", "sparse-sw", 8): 22,
    ("conv", "sparse-sw", 16): 22,
    ("conv", "sparse-isa", 4): 11,  # + shared offsets-word load -> 11.5/iter
    ("conv", "sparse-isa", 8): 12,
    ("conv", "sparse-isa", 16): 12,
    ("fc", "dense"): 5,
    ("fc", "sparse-sw", 4): 17,  # crumb unpack needs the srl/addi pair
    ("fc", "sparse-sw", 8): 16,
    ("fc", "sparse-sw", 16): 16,
    ("fc", "sparse-isa", 4): 12,  # + shared offsets-word load -> 12.5/iter
    ("fc", "sparse-isa", 8): 13,
    ("fc", "sparse-isa", 16): 13,
}


def _ins_imm(lane: int, disp: int) -> int:
    """Encode the ``lbu_ins`` immediate: byte lane + address displacement."""
    return (disp << 2) | lane


# ======================================================================
# Layout helpers
# ======================================================================


def pad_unit(fmt: NMFormat, engine: str, kind: str) -> int:
    """Non-zeros-per-channel padding granularity for a kernel family.

    The unit is the number of stored values one fully-unrolled inner
    step consumes: 4 for nibble-based kernels, 16 for the SW 1:4 conv
    kernel (one 32-bit OFFSETS word = 16 crumbs), 8 for the ISA 1:4
    kernels (one word = 16 duplicated crumbs = 8 pairs).
    """
    if engine == "sw":
        return 16 if fmt.m == 4 else 4
    if engine == "isa":
        return 8 if fmt.m == 4 else 4
    raise ValueError(f"unknown engine {engine!r}")


def _padded(mat: NMSparseMatrix, unit: int) -> tuple[np.ndarray, np.ndarray, int]:
    """Pad values/offsets rows to a multiple of ``unit`` (zeros).

    Values keep the matrix's dtype: int8 for the microcoded kernels,
    float32 when the emulation backend packs a float-serving layout
    (padded entries are zero either way, so the extra decimated loads
    never change a result).
    """
    k, nnz = mat.values.shape
    nnz_pad = ((nnz + unit - 1) // unit) * unit
    values = np.zeros((k, nnz_pad), dtype=mat.values.dtype)
    offsets = np.zeros((k, nnz_pad), dtype=np.uint8)
    values[:, :nnz] = mat.values
    offsets[:, :nnz] = mat.offsets
    return values, offsets, nnz_pad


def pack_sparse_rows_sw(
    mat: NMSparseMatrix,
) -> tuple[np.ndarray, np.ndarray, int]:
    """SW layout: padded values + row-major packed offsets.

    Returns ``(values_bytes, offsets_bytes, nnz_pad)`` where values are
    flattened ``K * nnz_pad`` int8 and offsets are packed at
    ``fmt.offset_bits`` per entry, each row padded independently so a
    channel's offsets start byte-aligned.
    """
    values, offsets, nnz_pad = _padded(mat, pad_unit(mat.fmt, "sw", "any"))
    packed = np.concatenate(
        [pack_bits(row, mat.fmt.offset_bits) for row in offsets]
    )
    return values.reshape(-1), packed, nnz_pad


def pack_sparse_rows_isa_conv(
    mat: NMSparseMatrix,
) -> tuple[np.ndarray, np.ndarray, int]:
    """ISA conv layout: offsets duplicated entry-by-entry (Sec. 4.1.3)."""
    values, offsets, nnz_pad = _padded(mat, pad_unit(mat.fmt, "isa", "conv"))
    dup = np.repeat(offsets, 2, axis=1)
    packed = np.concatenate([pack_bits(row, mat.fmt.offset_bits) for row in dup])
    return values.reshape(-1), packed, nnz_pad


def pack_sparse_rows_isa_fc(
    mat: NMSparseMatrix,
) -> tuple[np.ndarray, np.ndarray, int]:
    """ISA FC layout: channel-pair interleaved offsets (Sec. 4.2.3).

    Rows 2p and 2p+1 are merged into one offsets stream
    ``o0_ch2p, o0_ch2p+1, o1_ch2p, o1_ch2p+1, ...``.
    """
    if mat.rows % 2:
        raise ValueError("ISA FC layout needs an even channel count")
    values, offsets, nnz_pad = _padded(mat, pad_unit(mat.fmt, "isa", "fc"))
    pairs = offsets.reshape(mat.rows // 2, 2, nnz_pad)
    inter = pairs.transpose(0, 2, 1).reshape(mat.rows // 2, 2 * nnz_pad)
    packed = np.concatenate(
        [pack_bits(row, mat.fmt.offset_bits) for row in inter]
    )
    return values.reshape(-1), packed, nnz_pad


def buffer_slack_bytes(fmt: NMFormat, engine: str) -> int:
    """Extra zeroed bytes required past each activation buffer.

    Padded (value = 0) entries decimate blocks beyond the real reduce
    dimension; the buffer must own that address range so the loads stay
    in bounds.  The worst case is one full padding unit of blocks.
    """
    return pad_unit(fmt, engine, "any") * fmt.m


# ======================================================================
# Requantisation stage (shared by all kernels)
# ======================================================================


def requant_program(
    n: int,
    in_addr: int,
    out_addr: int,
    multiplier: int,
    shift: int,
    zero_point: int = 0,
) -> Program:
    """PULP-NN-style output quantisation: int32 -> int8.

    Per output: ``clip(((acc * mult + round) >> shift) + zp)`` — load,
    multiply, round-add, arithmetic shift, zero-point add, two clip
    branches, store.  The ~8-instruction straight-line cost per output
    is what the cost model's ``requant_per_output`` parameter encodes.
    """
    if shift < 0:
        raise ValueError("shift must be non-negative")
    a = Asm()
    a.li(PW0, in_addr)
    a.li(POUT, out_addr)
    a.li(T1, multiplier)
    a.li(T2, 127)
    a.li(T3, -128 & 0xFFFFFFFF)
    a.lp_setup(n, "end")
    a.lw(VA, PW0, post=4)
    a.mul(T0, VA, T1)
    if shift > 0:
        a.addi(T0, T0, 1 << (shift - 1))
        a.srai(T0, T0, shift)
    else:
        a.addi(T0, T0, 0)
        a.srai(T0, T0, 0)
    a.addi(T0, T0, zero_point)
    a.blt(T0, T2, "no_hi")
    a.mv(T0, T2)
    a.label("no_hi")
    a.bge(T0, T3, "no_lo")
    a.mv(T0, T3)
    a.label("no_lo")
    a.sb(T0, POUT, post=1)
    a.label("end")
    a.halt()
    return a.build()


# ======================================================================
# Convolution kernels (one output pair, all K channels)
# ======================================================================


def conv_pair_dense_1x2(
    k: int, r: int, w_addr: int, b1_addr: int, b2_addr: int, out_addr: int
) -> Program:
    """Dense 1x2 conv kernel for one output pair (Fig. 4, left).

    Inner body: ``lw vA | lw vB1 | lw vB2 | sdotp | sdotp`` — 5
    instructions, 8 MACs.  Stores int32 ``acc1, acc2`` per channel.
    """
    if r % 4:
        raise ValueError(f"reduce dim {r} must be a multiple of 4")
    a = Asm()
    a.li(PW0, w_addr)
    a.li(POUT, out_addr)
    a.lp_setup(k, "k_end")
    a.li(ACC1, 0)
    a.li(ACC2, 0)
    a.li(PB1, b1_addr)
    a.li(PB2, b2_addr)
    a.lp_setup(r // 4, "inner_end")
    a.lw(VA, PW0, post=4)
    a.lw(VB1, PB1, post=4)
    a.lw(VB2, PB2, post=4)
    a.sdotp(ACC1, VA, VB1)
    a.sdotp(ACC2, VA, VB2)
    a.label("inner_end")
    a.sw(ACC1, POUT, post=4)
    a.sw(ACC2, POUT, post=4)
    a.label("k_end")
    a.halt()
    return a.build()


def conv_pair_dense_4x2(
    k: int, r: int, w_addr: int, b1_addr: int, b2_addr: int, out_addr: int
) -> Program:
    """PULP-NN dense 4x2 conv kernel for one output pair (Fig. 2).

    Inner body: 4 weight loads + 2 activation loads + 8 SIMD dot
    products — 14 instructions, 32 MACs.  K must be a multiple of 4.
    Stores, per channel group, int32 ``acc(k+i, pos_j)`` in
    ``(i, j)``-major order.
    """
    if r % 4:
        raise ValueError(f"reduce dim {r} must be a multiple of 4")
    if k % 4:
        raise ValueError(f"output channels {k} must be a multiple of 4")
    a = Asm()
    a.li(WBASE, w_addr)
    a.li(POUT, out_addr)
    a.lp_setup(k // 4, "g_end")
    a.mv(PW0, WBASE)
    a.addi(PW1, WBASE, r)
    a.addi(PW2, WBASE, 2 * r)
    a.addi(PW3, WBASE, 3 * r)
    a.addi(WBASE, WBASE, 4 * r)
    for acc in ACC:
        a.li(acc, 0)
    a.li(PB1, b1_addr)
    a.li(PB2, b2_addr)
    a.lp_setup(r // 4, "inner_end")
    a.lw(VA0, PW0, post=4)
    a.lw(VA1, PW1, post=4)
    a.lw(VA2, PW2, post=4)
    a.lw(VA3, PW3, post=4)
    a.lw(VB1, PB1, post=4)
    a.lw(VB2, PB2, post=4)
    for i, va in enumerate((VA0, VA1, VA2, VA3)):
        a.sdotp(ACC[2 * i], va, VB1)
        a.sdotp(ACC[2 * i + 1], va, VB2)
    a.label("inner_end")
    for acc in ACC:
        a.sw(acc, POUT, post=4)
    a.label("g_end")
    a.halt()
    return a.build()


def _sw_unpack_and_load(a: Asm, m: int, fc: bool) -> None:
    """Shared nibble unpack + decimated-load sequence of the SW kernels.

    Emits, for j in 0..3: ``srli tj | andi tj | lbu_ins vB1 [| lbu_ins
    vB2]`` with the block displacement ``j*M`` folded into the load.
    The schedule interleaves unpack and loads so no load-use pair is
    adjacent (the measured stall count on the core model is 0).
    """
    for j, t in enumerate((T0, T1, T2, T3)):
        a.srli(t, TOFF, 4 * j)
        a.andi(t, t, 0xF)
        a.lbu_ins(VB1, B1CUR, t, _ins_imm(j, j * m))
        if not fc:
            a.lbu_ins(VB2, B2CUR, t, _ins_imm(j, j * m))


def conv_pair_sparse_sw(
    fmt: NMFormat,
    k: int,
    nnz_pad: int,
    w_addr: int,
    off_addr: int,
    b1_addr: int,
    b2_addr: int,
    out_addr: int,
) -> Program:
    """SW-only N:M sparse conv kernel for one output pair (Fig. 4, center).

    Inner body: 22 instructions for 1:8 / 1:16 (1 offsets load, 8 index
    unpack, 8 decimated loads, 2 address updates, 1 weight load, 2 SIMD
    dot products), 23 for 1:4 (amortised offsets word load outside, two
    extra unpack steps inside).  8 MACs per iteration.
    """
    m = fmt.m
    unit = pad_unit(fmt, "sw", "conv")
    if nnz_pad % unit:
        raise ValueError(f"nnz_pad {nnz_pad} not a multiple of {unit}")
    a = Asm()
    a.li(PW0, w_addr)
    a.li(POFF, off_addr)
    a.li(POUT, out_addr)
    a.lp_setup(k, "k_end")
    a.li(ACC1, 0)
    a.li(ACC2, 0)
    a.li(B1CUR, b1_addr)
    a.li(B2CUR, b2_addr)
    if m in (8, 16):
        a.lp_setup(nnz_pad // 4, "inner_end")
        a.lhu(TOFF, POFF, post=2)
        a.lw(VA, PW0, post=4)  # scheduled early: breaks the lhu load-use pair
        _sw_unpack_and_load(a, m, fc=False)
        a.addi(B1CUR, B1CUR, 4 * m)
        a.addi(B2CUR, B2CUR, 4 * m)
        a.sdotp(ACC1, VA, VB1)
        a.sdotp(ACC2, VA, VB2)
        a.label("inner_end")
    else:  # m == 4: one OFFSETS word feeds four unrolled iterations
        a.lp_setup(nnz_pad // 16, "group_end")
        a.lw(TOFF, POFF, post=4)
        a.li(SHIFT, 0)
        for _ in range(4):
            a.srl(TMP, TOFF, SHIFT)
            a.addi(SHIFT, SHIFT, 8)
            a.lw(VA, PW0, post=4)
            for j, t in enumerate((T0, T1, T2, T3)):
                a.srli(t, TMP, 2 * j)
                a.andi(t, t, 0x3)
                a.lbu_ins(VB1, B1CUR, t, _ins_imm(j, j * m))
                a.lbu_ins(VB2, B2CUR, t, _ins_imm(j, j * m))
            a.addi(B1CUR, B1CUR, 4 * m)
            a.addi(B2CUR, B2CUR, 4 * m)
            a.sdotp(ACC1, VA, VB1)
            a.sdotp(ACC2, VA, VB2)
        a.label("group_end")
    a.sw(ACC1, POUT, post=4)
    a.sw(ACC2, POUT, post=4)
    a.label("k_end")
    a.halt()
    return a.build()


def conv_pair_sparse_isa(
    fmt: NMFormat,
    k: int,
    nnz_pad: int,
    w_addr: int,
    off_addr: int,
    b1_addr: int,
    b2_addr: int,
    out_addr: int,
) -> Program:
    """ISA-extended N:M sparse conv kernel (Fig. 4, right).

    Inner body: 12 instructions (1 offsets word, 1 weight word, 8
    xDecimate, 2 SIMD dot products) for 1:8 / 1:16; for 1:4 one offsets
    word covers two iterations (16 duplicated crumbs), averaging 11.5.
    The csr is cleared at the end of each output channel.
    """
    m = fmt.m
    unit = pad_unit(fmt, "isa", "conv")
    if nnz_pad % unit:
        raise ValueError(f"nnz_pad {nnz_pad} not a multiple of {unit}")
    a = Asm()
    a.li(PW0, w_addr)
    a.li(POFF, off_addr)
    a.li(POUT, out_addr)
    a.li(PB1, b1_addr)
    a.li(PB2, b2_addr)
    a.lp_setup(k, "k_end")
    a.li(ACC1, 0)
    a.li(ACC2, 0)

    def iteration() -> None:
        a.lw(VA, PW0, post=4)
        for _ in range(4):
            a.xdec(VB1, PB1, TOFF, m)
            a.xdec(VB2, PB2, TOFF, m)
        a.sdotp(ACC1, VA, VB1)
        a.sdotp(ACC2, VA, VB2)

    if m in (8, 16):
        a.lp_setup(nnz_pad // 4, "inner_end")
        a.lw(TOFF, POFF, post=4)
        iteration()
        a.label("inner_end")
    else:  # m == 4: one word of 16 duplicated crumbs feeds two iterations
        a.lp_setup(nnz_pad // 8, "group_end")
        a.lw(TOFF, POFF, post=4)
        iteration()
        iteration()
        a.label("group_end")
    a.xdec_clear()
    a.sw(ACC1, POUT, post=4)
    a.sw(ACC2, POUT, post=4)
    a.label("k_end")
    a.halt()
    return a.build()


# ======================================================================
# Fully-connected kernels (single input vector, all K channels)
# ======================================================================


def fc_dense_program(
    k: int, c: int, w_addr: int, b_addr: int, out_addr: int
) -> Program:
    """Dense FC kernel, 2-channel unrolling (Fig. 5, left).

    Inner body: ``lw vB | lw vA1 | lw vA2 | sdotp | sdotp`` — 5
    instructions, 8 MACs.  K must be even, C a multiple of 4.
    """
    if c % 4:
        raise ValueError(f"input size {c} must be a multiple of 4")
    if k % 2:
        raise ValueError(f"output size {k} must be even")
    a = Asm()
    a.li(WBASE, w_addr)
    a.li(POUT, out_addr)
    a.lp_setup(k // 2, "pair_end")
    a.mv(PW0, WBASE)
    a.addi(PW1, WBASE, c)
    a.addi(WBASE, WBASE, 2 * c)
    a.li(ACC1, 0)
    a.li(ACC2, 0)
    a.li(PB1, b_addr)
    a.lp_setup(c // 4, "inner_end")
    a.lw(VB1, PB1, post=4)
    a.lw(VA0, PW0, post=4)
    a.lw(VA1, PW1, post=4)
    a.sdotp(ACC1, VA0, VB1)
    a.sdotp(ACC2, VA1, VB1)
    a.label("inner_end")
    a.sw(ACC1, POUT, post=4)
    a.sw(ACC2, POUT, post=4)
    a.label("pair_end")
    a.halt()
    return a.build()


def fc_sparse_sw_program(
    fmt: NMFormat,
    k: int,
    nnz_pad: int,
    w_addr: int,
    off_addr: int,
    b_addr: int,
    out_addr: int,
) -> Program:
    """SW-only N:M sparse FC kernel (Fig. 5, center).

    Inner body: 16 instructions, 4 MACs (one output channel per
    iteration — no unrolling, since channels share no input positions).
    Only 1:8 and 1:16 use the nibble path; 1:4 reuses the conv-style
    crumb group structure with a single destination buffer.
    """
    m = fmt.m
    unit = pad_unit(fmt, "sw", "fc")
    if nnz_pad % unit:
        raise ValueError(f"nnz_pad {nnz_pad} not a multiple of {unit}")
    a = Asm()
    a.li(PW0, w_addr)
    a.li(POFF, off_addr)
    a.li(POUT, out_addr)
    a.lp_setup(k, "k_end")
    a.li(ACC1, 0)
    a.li(B1CUR, b_addr)
    if m in (8, 16):
        a.lp_setup(nnz_pad // 4, "inner_end")
        a.lhu(TOFF, POFF, post=2)
        a.lw(VA, PW0, post=4)
        _sw_unpack_and_load(a, m, fc=True)
        a.addi(B1CUR, B1CUR, 4 * m)
        a.sdotp(ACC1, VA, VB1)
        a.label("inner_end")
    else:
        a.lp_setup(nnz_pad // 16, "group_end")
        a.lw(TOFF, POFF, post=4)
        a.li(SHIFT, 0)
        for _ in range(4):
            a.srl(TMP, TOFF, SHIFT)
            a.addi(SHIFT, SHIFT, 8)
            a.lw(VA, PW0, post=4)
            for j, t in enumerate((T0, T1, T2, T3)):
                a.srli(t, TMP, 2 * j)
                a.andi(t, t, 0x3)
                a.lbu_ins(VB1, B1CUR, t, _ins_imm(j, j * m))
            a.addi(B1CUR, B1CUR, 4 * m)
            a.sdotp(ACC1, VA, VB1)
        a.label("group_end")
    a.sw(ACC1, POUT, post=4)
    a.label("k_end")
    a.halt()
    return a.build()


def fc_sparse_isa_program(
    fmt: NMFormat,
    k: int,
    nnz_pad: int,
    w_addr: int,
    off_addr: int,
    b_addr: int,
    out_addr: int,
) -> Program:
    """ISA-extended N:M sparse FC kernel (Fig. 5, right / Fig. 6).

    Two output channels per iteration via the channel-interleaved
    OFFSETS stream; 13 instructions, 8 MACs for 1:8 / 1:16.  The same
    xDecimate flavour as convolutions is used — alternate executions
    fill vB1 (even channel) and vB2 (odd channel) from a single buffer.
    """
    m = fmt.m
    unit = pad_unit(fmt, "isa", "fc")
    if nnz_pad % unit:
        raise ValueError(f"nnz_pad {nnz_pad} not a multiple of {unit}")
    if k % 2:
        raise ValueError(f"output size {k} must be even")
    a = Asm()
    a.li(WBASE, w_addr)
    a.li(POFF, off_addr)
    a.li(POUT, out_addr)
    a.li(PB1, b_addr)
    a.lp_setup(k // 2, "pair_end")
    a.mv(PW0, WBASE)
    a.addi(PW1, WBASE, nnz_pad)
    a.addi(WBASE, WBASE, 2 * nnz_pad)
    a.li(ACC1, 0)
    a.li(ACC2, 0)

    def iteration() -> None:
        a.lw(VA0, PW0, post=4)
        a.lw(VA1, PW1, post=4)
        for _ in range(4):
            a.xdec(VB1, PB1, TOFF, m)
            a.xdec(VB2, PB1, TOFF, m)
        a.sdotp(ACC1, VA0, VB1)
        a.sdotp(ACC2, VA1, VB2)

    if m in (8, 16):
        a.lp_setup(nnz_pad // 4, "inner_end")
        a.lw(TOFF, POFF, post=4)
        iteration()
        a.label("inner_end")
    else:
        a.lp_setup(nnz_pad // 8, "group_end")
        a.lw(TOFF, POFF, post=4)
        iteration()
        iteration()
        a.label("group_end")
    a.xdec_clear()
    a.sw(ACC1, POUT, post=4)
    a.sw(ACC2, POUT, post=4)
    a.label("pair_end")
    a.halt()
    return a.build()
