"""Dense fully-connected kernel (PULP-NN baseline, Sec. 4.2.1).

The inner loop is unrolled by 2 over the K dimension (no weight reuse
exists in FC layers): 5 instructions / 8 MACs = 1.6 MACs/instruction
peak.  Multicore parallelisation splits K across cores.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.requant import QuantParams, requantize
from repro.kernels.shapes import FcShape

__all__ = ["fc_dense", "fc_acc_dense"]


def _as_tokens(x: np.ndarray, shape: FcShape) -> np.ndarray:
    """Normalise input to ``(T, C)``; accepts ``(C,)`` when T == 1."""
    x = np.asarray(x)
    if x.ndim == 1:
        x = x[None, :]
    if x.shape != (shape.tokens, shape.c):
        raise ValueError(f"input {x.shape} does not match {shape}")
    return x


def fc_acc_dense(
    x: np.ndarray, weights: np.ndarray, shape: FcShape
) -> np.ndarray:
    """int32 accumulators of a dense FC layer (before bias/requant).

    Parameters
    ----------
    x:
        int8 input, ``(C,)`` or ``(T, C)``.
    weights:
        int8 weights, ``(K, C)``.
    shape:
        Layer geometry.

    Returns
    -------
    np.ndarray
        int32 array ``(T, K)``.
    """
    weights = np.asarray(weights)
    if weights.shape != (shape.k, shape.c):
        raise ValueError(f"weights {weights.shape} do not match {shape}")
    tokens = _as_tokens(x, shape)
    return tokens.astype(np.int32) @ weights.astype(np.int32).T


def fc_dense(
    x: np.ndarray,
    weights: np.ndarray,
    shape: FcShape,
    quant: QuantParams | None = None,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """Dense int8 FC layer with requantised int8 output ``(T, K)``."""
    acc = fc_acc_dense(x, weights, shape)
    return requantize(acc, quant or QuantParams(), bias)
