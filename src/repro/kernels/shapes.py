"""Layer geometry descriptors (paper Table 1 notation).

========  =============================================
symbol    meaning
========  =============================================
IX / IY   input width / height
C         input channels
OX / OY   output width / height
K         output channels
FX / FY   filter width / height
S / P     stride / padding
========  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ConvShape", "FcShape"]


@dataclass(frozen=True)
class ConvShape:
    """Geometry of a 2-D convolution layer."""

    iy: int
    ix: int
    c: int
    k: int
    fy: int = 3
    fx: int = 3
    s: int = 1
    p: int = 1

    def __post_init__(self) -> None:
        if min(self.iy, self.ix, self.c, self.k, self.fy, self.fx, self.s) < 1:
            raise ValueError(f"non-positive dimension in {self}")
        if self.p < 0:
            raise ValueError(f"negative padding in {self}")
        if (self.iy + 2 * self.p) < self.fy or (self.ix + 2 * self.p) < self.fx:
            raise ValueError(f"filter larger than padded input in {self}")

    @property
    def oy(self) -> int:
        """Output height."""
        return (self.iy + 2 * self.p - self.fy) // self.s + 1

    @property
    def ox(self) -> int:
        """Output width."""
        return (self.ix + 2 * self.p - self.fx) // self.s + 1

    @property
    def reduce_dim(self) -> int:
        """Length of the flattened reduce axis (FY*FX*C); the im2col
        buffer length and the dense weight-matrix column count."""
        return self.fy * self.fx * self.c

    @property
    def macs(self) -> int:
        """Dense multiply-accumulates for the full layer."""
        return self.oy * self.ox * self.k * self.reduce_dim

    @property
    def n_outputs(self) -> int:
        """Total output elements."""
        return self.oy * self.ox * self.k

    def weight_bytes_dense(self) -> int:
        """Dense int8 weight storage."""
        return self.k * self.reduce_dim

    def input_bytes(self) -> int:
        """Input activation storage (int8 HWC)."""
        return self.iy * self.ix * self.c

    def output_bytes(self) -> int:
        """Output activation storage (int8 HWC)."""
        return self.oy * self.ox * self.k


@dataclass(frozen=True)
class FcShape:
    """Geometry of a fully-connected layer (optionally token-batched).

    ``tokens > 1`` models transformer feed-forward layers where the
    same weights apply to every token of the sequence.
    """

    c: int
    k: int
    tokens: int = 1

    def __post_init__(self) -> None:
        if min(self.c, self.k, self.tokens) < 1:
            raise ValueError(f"non-positive dimension in {self}")

    @property
    def reduce_dim(self) -> int:
        """Length of the reduce axis (C)."""
        return self.c

    @property
    def macs(self) -> int:
        """Dense multiply-accumulates for the full layer."""
        return self.tokens * self.k * self.c

    @property
    def n_outputs(self) -> int:
        """Total output elements."""
        return self.tokens * self.k

    def weight_bytes_dense(self) -> int:
        """Dense int8 weight storage."""
        return self.k * self.c

    def input_bytes(self) -> int:
        """Input activation storage."""
        return self.tokens * self.c

    def output_bytes(self) -> int:
        """Output activation storage."""
        return self.tokens * self.k
