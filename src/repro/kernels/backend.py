"""Pluggable kernel execution backends (dense / sparse-sw / sparse-isa).

The execution-plan compiler (:mod:`repro.engine.plan`) binds each
conv/dense layer through one of three :class:`KernelBackend` objects
instead of special-casing sparse dispatch inline:

- :class:`DenseBackend` — the plain GEMM over a (possibly
  scattered-back-to-dense) weight matrix;
- :class:`SparseSwBackend` — the software decimation path: logical N:M
  ``values`` + per-row gather indices, exactly the layout the SW-only
  MCU kernels consume (paper Sec. 4.1.2 / 4.2.2);
- :class:`SparseIsaBackend` — the hardware-extension path: weights are
  packed into the **ISA layouts** (conv offsets duplicated entry by
  entry for the ``xDecimate`` double-buffer unroll, Sec. 4.1.3; FC
  offsets channel-pair interleaved, Sec. 4.2.3 / Fig. 6) and executed
  by a vectorised emulation that *decodes those packed streams back*
  into decimation addresses — so a packing bug breaks execution loudly
  instead of being papered over by the logical offsets.  Per-element
  semantics match the :mod:`repro.kernels.microcode` programs run on
  the core model (cross-checked in
  ``tests/kernels/test_backend_micro_crosscheck.py``), and int8 results
  are bit-identical to the SW path: the ISA only accelerates the
  decimation, it never changes an accumulator.

Every backend implements the same small protocol:

- ``pack(weights, fmt, kind)`` → :class:`PackedLayout` (the
  compile-time weight image plus the decoded gather plan);
- ``bind(layout, out_dtype)`` → a batched core callable
  ``(B, P, R) cols → (B, P, K) accumulators``;
- ``cost(kind, shape, fmt)`` → modelled MCU cycles (None when the
  backend cannot serve the geometry).

:func:`select_backend` is the compile-time selector the ``"auto"``
engine knob runs: it ranks the deployable backends by modelled cycles
and returns the full scored candidate list for introspection.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.kernels import microcode as mc
from repro.kernels.conv_sparse import (
    gather_indices,
    gather_matmul_batch_masked,
)
from repro.kernels.cost_model import (
    CostParams,
    DEFAULT_PARAMS,
    conv_layer_cycles,
    fc_layer_cycles,
    variant_supported,
)
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import NMFormat, NMSparseMatrix, SUPPORTED_FORMATS

__all__ = [
    "BACKEND_KNOBS",
    "PackedLayout",
    "KernelBackend",
    "DenseBackend",
    "SparseSwBackend",
    "SparseIsaBackend",
    "BACKENDS",
    "get_backend",
    "BackendCandidate",
    "BackendChoice",
    "select_backend",
    "layout_interning",
    "intern_layout",
]

#: Values the plan-level ``backend=`` knob accepts: pin the SW engine,
#: pin the ISA engine, or let the cost model rank them per layer.
BACKEND_KNOBS = ("sw", "isa", "auto")


@dataclass(frozen=True)
class PackedLayout:
    """One layer's compile-time weight image under a backend.

    ``values`` is the kernel-order value array — the logical
    ``(K, NNZ)`` non-zeros for the SW backend, the padded
    ``(K, nnz_pad)`` array for the ISA backend, the dense ``(K, R)``
    matrix for the dense backend.  ``packed_offsets`` is the OFFSETS
    byte stream the corresponding MCU kernel consumes (None for
    dense), ``gather_idx`` the decoded per-value decimation addresses
    (None for dense; padded entries are clamped in-range and carry
    value 0).  ``weight_bytes`` is the deployable storage of this
    layout — values plus packed offsets, with the conv ISA layout
    paying for its duplicated indices.
    """

    backend: str
    layout: str  # "dense" | "sw" | "isa-conv" | "isa-fc"
    matrix: NMSparseMatrix | None
    values: np.ndarray
    packed_offsets: np.ndarray | None
    gather_idx: np.ndarray | None
    nnz_pad: int
    weight_bytes: int
    #: Set when the layout's storage was interned into a shared-weight
    #: store (sharded serving); None for ordinary private layouts.
    shared_key: str | None = None


# -- layout interning (sharded serving hook) ----------------------------
#
# The plan compiler calls intern_layout() on every packed layout it
# binds; with no active store that is the identity, so the engine layer
# never depends on repro.serve.  The serving registry activates a store
# (repro.serve.shm.SharedWeightStore or anything with the same
# ``intern_layout(key, layout)`` / ``intern(key, arrays)`` duck type)
# around compilation via layout_interning().

_INTERN_STATE = threading.local()


def _active_interner():
    return getattr(_INTERN_STATE, "value", None)


@contextmanager
def layout_interning(store, prefix: str):
    """Route layouts packed inside the block through ``store``.

    ``prefix`` namespaces the store keys (one deployment's compile uses
    one prefix, derived from the engine plan-cache key).  Thread-local
    and re-entrant: the innermost activation wins, and plan compilation
    is already serialised per engine.
    """
    prev = _active_interner()
    _INTERN_STATE.value = (store, prefix)
    try:
        yield store
    finally:
        _INTERN_STATE.value = prev


def intern_layout(subkey: str, layout: PackedLayout) -> PackedLayout:
    """Intern one packed layout under the active store (identity if none)."""
    active = _active_interner()
    if active is None:
        return layout
    store, prefix = active
    return store.intern_layout(f"{prefix}/{subkey}", layout)


def _intern_derived(layout: PackedLayout, tag: str, build):
    """Intern a bind-time derived array (e.g. the dense transposed copy).

    Only layouts that were themselves interned (``shared_key`` set)
    share their derived arrays — the key extends the layout's own, so
    attaching workers resolve the same segment.
    """
    active = _active_interner()
    if active is None or layout.shared_key is None:
        return build()
    store, _ = active
    return store.intern(f"{layout.shared_key}#{tag}", {tag: build()})[tag]


def _as_matrix(
    weights: np.ndarray | NMSparseMatrix, fmt: NMFormat | None
) -> NMSparseMatrix:
    if isinstance(weights, NMSparseMatrix):
        return weights
    if fmt is None:
        raise ValueError("packing a dense matrix sparse requires an NMFormat")
    weights = np.asarray(weights)
    return NMSparseMatrix.from_dense(weights, fmt, dtype=weights.dtype)


class KernelBackend:
    """Protocol base: pack a layer's weights, bind its batched core."""

    name: str = "?"

    def supports(
        self,
        kind: str,
        shape: ConvShape | FcShape,
        fmt: NMFormat | None,
    ) -> bool:
        """Whether this backend can execute ``(kind, shape, fmt)``."""
        raise NotImplementedError

    def pack(
        self,
        weights: np.ndarray | NMSparseMatrix,
        fmt: NMFormat | None,
        kind: str = "conv",
    ) -> PackedLayout:
        """Build the compile-time weight image for one layer."""
        raise NotImplementedError

    def bind(
        self,
        layout: PackedLayout,
        out_dtype: np.dtype | type,
        accum_dtype: np.dtype | str | None = None,
    ) -> Callable[[np.ndarray], np.ndarray]:
        """A batched ``(B, P, R) -> (B, P, K)`` accumulator core."""
        raise NotImplementedError

    def cost(
        self,
        kind: str,
        shape: ConvShape | FcShape,
        fmt: NMFormat | None,
        params: CostParams = DEFAULT_PARAMS,
    ) -> float | None:
        """Modelled MCU cycles, or None when the geometry is unserved."""
        raise NotImplementedError

    # Shared helper: cycle model lookup for a concrete variant name.
    @staticmethod
    def _cycles(
        kind: str,
        variant: str,
        shape: ConvShape | FcShape,
        fmt: NMFormat | None,
        params: CostParams,
    ) -> float:
        if kind == "conv":
            return conv_layer_cycles(shape, variant, fmt, params).total
        return fc_layer_cycles(shape, variant, fmt, params).total


class DenseBackend(KernelBackend):
    """Plain GEMM over the dense weight matrix.

    Also serves scatter-to-dense sparse layers: packing an
    :class:`NMSparseMatrix` scatters it back once at compile time
    (bit-identical — the scatter restores the exact matrix), while
    ``weight_bytes`` keeps the *packed* accounting, since the packed
    layout is still what a deployment ships.
    """

    name = "dense"

    def supports(self, kind, shape, fmt) -> bool:
        return self.cost(kind, shape, None) is not None

    def pack(self, weights, fmt=None, kind="conv") -> PackedLayout:
        if isinstance(weights, NMSparseMatrix):
            dense = weights.to_dense()
            matrix: NMSparseMatrix | None = weights
            weight_bytes = weights.total_bytes()
        else:
            dense = np.asarray(weights)
            matrix = None
            weight_bytes = dense.size * dense.itemsize
        return PackedLayout(
            backend=self.name,
            layout="dense",
            matrix=matrix,
            values=dense,
            packed_offsets=None,
            gather_idx=None,
            nnz_pad=0,
            weight_bytes=weight_bytes,
        )

    def bind(self, layout, out_dtype, accum_dtype=None):
        out_dtype = np.dtype(out_dtype)
        # The transposed/widened GEMM operand is derived at bind time;
        # under sharded serving it is interned like the layout arrays so
        # replicas share the copy the kernel actually multiplies.
        w_t = _intern_derived(
            layout,
            f"wT-{out_dtype.name}",
            lambda: np.ascontiguousarray(layout.values.T.astype(out_dtype)),
        )

        def core(cols: np.ndarray) -> np.ndarray:
            return np.matmul(cols.astype(out_dtype, copy=False), w_t)

        return core

    def cost(self, kind, shape, fmt, params=DEFAULT_PARAMS):
        # fmt is ignored: the dense kernel's latency does not depend on
        # the sparsity pattern it scattered away.
        if kind == "conv":
            variant = (
                "dense-4x2"
                if variant_supported(kind, "dense-4x2", shape)
                else "dense-1x2"
            )
        else:
            if not variant_supported(kind, "dense", shape):
                return None
            variant = "dense"
        return self._cycles(kind, variant, shape, None, params)


class SparseSwBackend(KernelBackend):
    """The software decimation path (paper Sec. 4.1.2 / 4.2.2).

    Packs the logical N:M layout (values + per-value offsets at
    ``fmt.offset_bits``) and hoists the decimation addresses
    (:func:`repro.kernels.conv_sparse.gather_indices`) out of the
    per-call path — exactly the binding execution plans used before the
    backend layer existed, moved behind the interface.
    """

    name = "sparse-sw"

    def supports(self, kind, shape, fmt) -> bool:
        return fmt is not None

    def pack(self, weights, fmt=None, kind="conv") -> PackedLayout:
        matrix = _as_matrix(weights, fmt)
        nnz = matrix.values.shape[1]
        return PackedLayout(
            backend=self.name,
            layout="sw",
            matrix=matrix,
            values=matrix.values,
            packed_offsets=matrix.packed_offsets(),
            gather_idx=gather_indices(matrix),
            nnz_pad=nnz,
            weight_bytes=matrix.total_bytes(),
        )

    def bind(self, layout, out_dtype, accum_dtype=None):
        out_dtype = np.dtype(out_dtype)
        values, idx = layout.values, layout.gather_idx

        def core(
            cols: np.ndarray, row_mask: np.ndarray | None = None
        ) -> np.ndarray:
            # row_mask (activation zero-skipping) marks all-zero im2col
            # rows/tokens; the masked core compacts, gathers, scatters —
            # bit-identical, see gather_matmul_batch_masked.
            return gather_matmul_batch_masked(
                cols, values, idx, out_dtype, accum_dtype, row_mask
            )

        return core

    def cost(self, kind, shape, fmt, params=DEFAULT_PARAMS):
        if fmt is None or fmt.name not in SUPPORTED_FORMATS:
            return None  # the MCU model covers the paper's formats only
        return self._cycles(kind, "sparse-sw", shape, fmt, params)


class SparseIsaBackend(KernelBackend):
    """The hardware-extension path (paper Sec. 4.1.3 / 4.2.3).

    ``pack`` emits the ISA offset streams through the layout builders in
    :mod:`repro.kernels.microcode` (the same builders the micro-runner
    programs consume): conv offsets are duplicated entry by entry —
    ``xDecimate`` advances its block pointer only every second
    execution, once per im2col buffer of the output pair — and FC
    offsets of channel pairs are interleaved so the conv instruction
    flavour serves FC layers unchanged.  The emulation then *decodes*
    the packed stream back (verifying duplication / de-interleaving via
    :meth:`~repro.sparsity.nm.NMSparseMatrix.from_packed`) into padded
    decimation addresses; padded tail entries carry value 0 and their
    addresses are clamped in-range, mirroring the slack bytes the MCU
    kernels over-allocate past each activation buffer.
    """

    name = "sparse-isa"

    def supports(self, kind, shape, fmt) -> bool:
        # xDecimate handles the paper's 1:M formats; the interleaved FC
        # layout additionally merges channel pairs (Fig. 6, even K) —
        # both constraints live in the cost model's support predicate.
        if fmt is None or fmt.name not in SUPPORTED_FORMATS:
            return False
        return variant_supported(kind, "sparse-isa", shape, fmt)

    def pack(self, weights, fmt=None, kind="conv") -> PackedLayout:
        matrix = _as_matrix(weights, fmt)
        fmt = matrix.fmt
        if fmt.name not in SUPPORTED_FORMATS:
            raise ValueError(
                f"sparse-isa supports formats {sorted(SUPPORTED_FORMATS)}, "
                f"got {fmt.name}"
            )
        if kind == "conv":
            flat, packed, nnz_pad = mc.pack_sparse_rows_isa_conv(matrix)
            layout_name = "isa-conv"
            weight_bytes = matrix.total_bytes(duplicate_offsets=True)
        elif kind == "fc":
            if matrix.rows % 2:
                raise ValueError(
                    "the ISA FC layout interleaves channel pairs and "
                    f"needs an even K, got {matrix.rows}"
                )
            flat, packed, nnz_pad = mc.pack_sparse_rows_isa_fc(matrix)
            layout_name = "isa-fc"
            # Interleaving permutes the offsets, it does not grow them.
            weight_bytes = matrix.total_bytes()
        else:
            raise ValueError(f"unknown layer kind {kind!r}")
        values = flat.reshape(matrix.rows, nnz_pad)
        # Round-trip the stream: the emulation must run off what the
        # layout actually encodes, not off the logical offsets it was
        # built from — a packing bug fails here, at compile time.
        decoded = NMSparseMatrix.from_packed(
            values, packed, fmt, matrix.dense_cols, matrix.rows, layout_name
        )
        if not (
            np.array_equal(decoded.values, matrix.values)
            and np.array_equal(decoded.offsets, matrix.offsets)
        ):
            raise RuntimeError(
                f"{layout_name} stream did not round-trip the packed "
                "matrix (layout builder / decoder disagree)"
            )
        nnz = matrix.values.shape[1]
        offsets_pad = np.zeros((matrix.rows, nnz_pad), dtype=np.int64)
        offsets_pad[:, :nnz] = decoded.offsets
        block_starts = (np.arange(nnz_pad) // fmt.n) * fmt.m
        # Padded entries address blocks past the reduce dimension (the
        # MCU buffers own that slack); values there are 0, so clamping
        # the emulation's addresses in-range cannot change a result.
        gather_idx = np.minimum(
            block_starts[None, :] + offsets_pad, matrix.dense_cols - 1
        )
        return PackedLayout(
            backend=self.name,
            layout=layout_name,
            matrix=matrix,
            values=values,
            packed_offsets=packed,
            gather_idx=gather_idx,
            nnz_pad=nnz_pad,
            weight_bytes=weight_bytes,
        )

    def bind(self, layout, out_dtype, accum_dtype=None):
        out_dtype = np.dtype(out_dtype)
        values, idx = layout.values, layout.gather_idx

        def core(
            cols: np.ndarray, row_mask: np.ndarray | None = None
        ) -> np.ndarray:
            # Same skipping semantics as the SW core: the ISA stream only
            # changes how addresses were decoded, not what a row sums.
            return gather_matmul_batch_masked(
                cols, values, idx, out_dtype, accum_dtype, row_mask
            )

        return core

    def cost(self, kind, shape, fmt, params=DEFAULT_PARAMS):
        if not self.supports(kind, shape, fmt):
            return None
        return self._cycles(kind, "sparse-isa", shape, fmt, params)


#: The backend registry, keyed by backend name.
BACKENDS: dict[str, KernelBackend] = {
    b.name: b for b in (DenseBackend(), SparseSwBackend(), SparseIsaBackend())
}


def get_backend(name: str) -> KernelBackend:
    """Look up a backend; raises KeyError with the known names on miss."""
    try:
        return BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise KeyError(f"unknown backend {name!r}; known: {known}") from None


@dataclass(frozen=True)
class BackendCandidate:
    """One scored entry of a per-layer backend ranking."""

    backend: str
    cycles: float | None
    supported: bool


@dataclass(frozen=True)
class BackendChoice:
    """Result of :func:`select_backend` for one N:M layer.

    ``backend`` is the winner of the modelled-cycle ranking —
    ``"sparse-isa"``, ``"sparse-sw"``, or ``"dense"`` (scatter the
    packed matrix back and run the dense kernel).  Ties prefer the ISA
    engine, then SW, then dense — the same order the paper's deployment
    flow privileges hardware support.  ``candidates`` records the full
    scored ranking for introspection and tests.
    """

    backend: str
    cycles: float | None
    candidates: tuple[BackendCandidate, ...]

    def cycles_of(self, backend: str) -> float | None:
        for cand in self.candidates:
            if cand.backend == backend:
                return cand.cycles
        return None


#: Tie-break preference of the auto ranking (lower wins on equal cycles).
_AUTO_PREFERENCE = {"sparse-isa": 0, "sparse-sw": 1, "dense": 2}


def select_backend(
    kind: str,
    shape: ConvShape | FcShape,
    fmt: NMFormat,
    params: CostParams = DEFAULT_PARAMS,
    allow: tuple[str, ...] = ("sparse-isa", "sparse-sw", "dense"),
) -> BackendChoice:
    """Rank the deployable backends for one N:M layer by modelled cycles.

    The ``"auto"`` engine knob's per-layer decision: every backend in
    ``allow`` that supports the geometry is scored with its own
    :meth:`KernelBackend.cost`, and the cheapest wins (ties broken by
    ISA > SW > dense preference).  At least one sparse backend always
    supports a paper-format layer, so the choice never comes back
    empty-handed.
    """
    candidates = []
    for name in allow:
        backend = get_backend(name)
        fmt_arg = None if name == "dense" else fmt
        cycles = backend.cost(kind, shape, fmt_arg, params)
        candidates.append(
            BackendCandidate(name, cycles, cycles is not None)
        )
    scored = [c for c in candidates if c.cycles is not None]
    if not scored:
        raise ValueError(
            f"no backend in {allow} supports ({kind}, {fmt.name}, {shape})"
        )
    best = min(
        scored, key=lambda c: (c.cycles, _AUTO_PREFERENCE.get(c.backend, 9))
    )
    return BackendChoice(best.backend, best.cycles, tuple(candidates))
