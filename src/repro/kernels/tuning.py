"""Host-keyed persistence for autotuned kernel knobs (advisory).

``repro engine --autotune-k-chunk`` sweeps the gather chunk size and
finds the host's best value; this module remembers the winner in a
small JSON cache so later plan compilations on the same host start from
it instead of the built-in default.  Strictly advisory: the chunk size
only groups whole output channels, so a stale or wrong cache entry can
cost performance, never correctness (the bit-identity invariant of
:func:`repro.kernels.conv_sparse.gather_matmul_batch` is unchanged).

The cache lives at ``~/.cache/repro/tuning.json`` (override with the
``REPRO_TUNING_CACHE`` environment variable; tests point it at a tmp
path) and is keyed by a host fingerprint, so one shared home directory
across heterogeneous machines keeps per-host winners.  Reads are
memoized per (path, mtime); a corrupt or unreadable file is treated as
empty — tuning must never take a process down.
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone
from pathlib import Path

__all__ = [
    "TUNING_CACHE_ENV",
    "tuning_cache_path",
    "host_key",
    "cached_k_chunk",
    "save_k_chunk",
    "invalidate_cache",
]

#: Environment variable overriding the cache file location.
TUNING_CACHE_ENV = "REPRO_TUNING_CACHE"

#: Memoized (path, mtime_ns) -> parsed cache dict.
_READ_CACHE: dict[tuple[str, int], dict] = {}


def tuning_cache_path() -> Path:
    """Resolved cache file location (env override > XDG-style default)."""
    override = os.environ.get(TUNING_CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "tuning.json"


def host_key() -> str:
    """Fingerprint separating hosts that share a cache file."""
    return f"{platform.node() or 'unknown'}:{platform.machine() or '?'}"


def invalidate_cache() -> None:
    """Drop the memoized reads (tests, or after an external edit)."""
    _READ_CACHE.clear()


def _load() -> dict:
    path = tuning_cache_path()
    try:
        mtime = path.stat().st_mtime_ns
    except OSError:
        return {}
    memo_key = (str(path), mtime)
    cached = _READ_CACHE.get(memo_key)
    if cached is not None:
        return cached
    try:
        data = json.loads(path.read_text())
        if not isinstance(data, dict):
            data = {}
    except (OSError, ValueError):
        data = {}
    _READ_CACHE.clear()  # keep only the current (path, mtime)
    _READ_CACHE[memo_key] = data
    return data


def cached_k_chunk() -> int | None:
    """This host's persisted gather-chunk winner, or None."""
    entry = _load().get("k_chunk", {})
    if not isinstance(entry, dict):
        return None
    record = entry.get(host_key())
    if not isinstance(record, dict):
        return None
    value = record.get("value")
    if isinstance(value, int) and value >= 1:
        return value
    return None


def save_k_chunk(value: int) -> Path:
    """Persist the autotune winner for this host; returns the path."""
    if value < 1:
        raise ValueError(f"k_chunk must be >= 1, got {value}")
    path = tuning_cache_path()
    data = _load()
    # Re-read uncached in case another process wrote since the memo.
    try:
        fresh = json.loads(path.read_text())
        if isinstance(fresh, dict):
            data = fresh
    except (OSError, ValueError):
        pass
    entry = data.setdefault("k_chunk", {})
    if not isinstance(entry, dict):
        entry = data["k_chunk"] = {}
    entry[host_key()] = {
        "value": int(value),
        "saved_at": datetime.now(timezone.utc).isoformat(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)
    invalidate_cache()
    return path
