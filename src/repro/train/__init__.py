"""Training substrate for the accuracy-trend experiments.

The paper trains its benchmark networks with the combined
training-and-pruning scheme of Zhou et al. (2021) — N:M masks refreshed
from weight magnitudes every step, with the SR-STE (sparse-refined
straight-through estimator) gradient.  Full CIFAR-scale training is out
of scope offline; this package reproduces the *mechanism* and the
accuracy *trend* (dense ~ 1:4 >= 1:8 >= 1:16, small drops) at small
scale on a synthetic dataset:

- :mod:`repro.train.autograd` — minimal reverse-mode autodiff on numpy;
- :mod:`repro.train.nn` — layers, losses, SGD;
- :mod:`repro.train.srste` — the SR-STE sparse parameterisation;
- :mod:`repro.train.data` — deterministic synthetic image classes;
- :mod:`repro.train.trainer` — the training/eval loop.
"""

from repro.train.autograd import Tensor
from repro.train.nn import (
    Module,
    Linear,
    Conv2d,
    ReLU,
    AvgPool2x2,
    Flatten,
    Sequential,
    cross_entropy,
    SGD,
)
from repro.train.srste import SparseLinear, SparseConv2d
from repro.train.data import make_synthetic_dataset
from repro.train.trainer import train_model, evaluate

__all__ = [
    "Tensor",
    "Module",
    "Linear",
    "Conv2d",
    "ReLU",
    "AvgPool2x2",
    "Flatten",
    "Sequential",
    "cross_entropy",
    "SGD",
    "SparseLinear",
    "SparseConv2d",
    "make_synthetic_dataset",
    "train_model",
    "evaluate",
]
