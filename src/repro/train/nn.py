"""Neural-network layers, loss and optimiser over the autograd core."""

from __future__ import annotations

import numpy as np

from repro.train.autograd import Tensor
from repro.utils.rng import make_rng

__all__ = [
    "Module",
    "Linear",
    "Conv2d",
    "ReLU",
    "AvgPool2x2",
    "Flatten",
    "Sequential",
    "cross_entropy",
    "SGD",
]


class Module:
    """Base class: parameter collection + callable forward."""

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for value in vars(self).values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Dense layer ``y = x W^T + b`` with He initialisation."""

    def __init__(self, in_features: int, out_features: int, seed=None) -> None:
        rng = make_rng(seed)
        std = np.sqrt(2.0 / in_features)
        self.weight = Tensor(
            rng.normal(0, std, size=(out_features, in_features)),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        wt = self.weight.transpose((1, 0))
        return x.matmul(wt) + self.bias

    @property
    def weight_matrix(self) -> Tensor:
        """The (K, C) matrix the sparse wrapper masks."""
        return self.weight


class Conv2d(Module):
    """3x3-style convolution on (N, H, W, C), stride 1, via im2col.

    The gather index for im2col is precomputed per input geometry and
    the backward pass scatter-adds through it (col2im).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        pad: int = 1,
        seed=None,
    ) -> None:
        rng = make_rng(seed)
        std = np.sqrt(2.0 / (kernel * kernel * in_channels))
        self.weight = Tensor(
            rng.normal(
                0, std, size=(out_channels, kernel, kernel, in_channels)
            ),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True)
        self.kernel = kernel
        self.pad = pad
        self._index_cache: dict[tuple[int, int, int], np.ndarray] = {}

    def _gather_index(self, hp: int, wp: int, c: int) -> np.ndarray:
        key = (hp, wp, c)
        if key not in self._index_cache:
            oh, ow = hp - self.kernel + 1, wp - self.kernel + 1
            flat = np.arange(hp * wp * c).reshape(hp, wp, c)
            rows = []
            for oy in range(oh):
                for ox in range(ow):
                    patch = flat[
                        oy : oy + self.kernel, ox : ox + self.kernel, :
                    ]
                    rows.append(patch.reshape(-1))
            self._index_cache[key] = np.stack(rows)  # (P, R)
        return self._index_cache[key]

    def forward(self, x: Tensor) -> Tensor:
        n, h, w, c = x.shape
        padded = x.pad_hw(self.pad)
        hp, wp = h + 2 * self.pad, w + 2 * self.pad
        index = self._gather_index(hp, wp, c)
        cols = padded.im2col_conv(index, (hp, wp, c))  # (N, P, R)
        k = self.weight.shape[0]
        wmat = self.weight.reshape(k, -1).transpose((1, 0))  # (R, K)
        out = cols.matmul(wmat) + self.bias  # (N, P, K)
        oh = hp - self.kernel + 1
        ow = wp - self.kernel + 1
        return out.reshape(n, oh, ow, k)

    @property
    def weight_matrix(self) -> Tensor:
        return self.weight


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class AvgPool2x2(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.avgpool2x2()


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        n = x.shape[0]
        return x.reshape(n, -1)


class Sequential(Module):
    def __init__(self, *layers: Module) -> None:
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of (N, K) logits against int labels."""
    log_probs = logits.log_softmax()
    n, k = log_probs.shape
    onehot = np.zeros((n, k))
    onehot[np.arange(n), labels] = -1.0 / n
    return (log_probs * Tensor(onehot)).sum()


class SGD:
    """Momentum SGD over a parameter list."""

    def __init__(
        self, params: list[Tensor], lr: float = 0.1, momentum: float = 0.9
    ) -> None:
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v += p.grad
            p.data -= self.lr * v
