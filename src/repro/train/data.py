"""Deterministic synthetic image dataset (the offline CIFAR substitute).

Each class is a random smooth prototype image; samples are the class
prototype plus structured noise (random per-sample gain, shift and
pixel noise).  Difficulty is controlled by the noise level, so the
accuracy-trend experiments can sit in a regime where model capacity
matters — which is what makes the dense-vs-N:M ordering observable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["SyntheticDataset", "make_synthetic_dataset"]


@dataclass
class SyntheticDataset:
    """Train/test split of synthetic images.

    Attributes
    ----------
    x_train, x_test:
        float arrays (N, H, W, C) in roughly [-1, 1].
    y_train, y_test:
        int labels.
    """

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    @property
    def n_classes(self) -> int:
        return int(self.y_train.max()) + 1


def _smooth(rng: np.random.Generator, h: int, w: int, c: int) -> np.ndarray:
    """A random low-frequency image (sum of a few 2-D cosines)."""
    yy, xx = np.meshgrid(np.linspace(0, 1, h), np.linspace(0, 1, w), indexing="ij")
    img = np.zeros((h, w, c))
    for _ in range(4):
        fy, fx = rng.uniform(0.5, 3.0, size=2)
        phase = rng.uniform(0, 2 * np.pi, size=c)
        amp = rng.uniform(0.3, 1.0, size=c)
        img += amp * np.cos(
            2 * np.pi * (fy * yy + fx * xx)[..., None] + phase
        )
    return img / np.abs(img).max()


def make_synthetic_dataset(
    n_classes: int = 10,
    n_train: int = 512,
    n_test: int = 256,
    hw: int = 16,
    channels: int = 3,
    noise: float = 0.8,
    seed: int = 0,
) -> SyntheticDataset:
    """Generate a deterministic synthetic classification dataset.

    Parameters
    ----------
    n_classes, n_train, n_test:
        Dataset sizes.
    hw:
        Image height and width.
    channels:
        Image channels.
    noise:
        Pixel-noise standard deviation relative to signal (higher =
        harder task).
    seed:
        Generator seed — identical seeds give identical datasets.
    """
    rng = make_rng(seed)
    prototypes = np.stack(
        [_smooth(rng, hw, hw, channels) for _ in range(n_classes)]
    )

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, n_classes, size=n)
        gain = rng.uniform(0.7, 1.3, size=(n, 1, 1, 1))
        images = gain * prototypes[labels]
        images = images + noise * rng.normal(size=images.shape)
        return images.astype(np.float64), labels

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return SyntheticDataset(x_train, y_train, x_test, y_test)
