"""Minimal reverse-mode automatic differentiation on numpy arrays.

Just enough machinery for the small CNN/MLP experiments of
:mod:`repro.train`: broadcast-aware add/mul, matmul, relu, im2col-based
convolution (gradient via col2im), pooling by reshape, log-softmax.
Gradients accumulate in ``Tensor.grad``; ``backward()`` runs a
topological sweep from the loss.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor"]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with an autodiff tape.

    Parameters
    ----------
    data:
        Array (float64 internally for numeric stability at small scale).
    requires_grad:
        Track operations for the backward pass.
    """

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = requires_grad
        self.grad: np.ndarray | None = None
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()

    # -- plumbing ---------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def _make(self, data, parents, backward) -> "Tensor":
        out = Tensor(data, requires_grad=any(p.requires_grad for p in parents))
        if out.requires_grad:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self) -> None:
        """Backpropagate from this (scalar) tensor."""
        if self.data.size != 1:
            raise ValueError("backward() requires a scalar loss")
        topo: list[Tensor] = []
        seen: set[int] = set()

        def visit(t: Tensor) -> None:
            if id(t) in seen or not t.requires_grad:
                return
            seen.add(id(t))
            for p in t._parents:
                visit(p)
            topo.append(t)

        visit(self)
        self.grad = np.ones_like(self.data)
        for t in reversed(topo):
            if t._backward is not None:
                t._backward(t.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(g):
            self._accumulate(_unbroadcast(g, self.shape))
            other._accumulate(_unbroadcast(g, other.shape))

        return self._make(self.data + other.data, (self, other), backward)

    def __mul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(g):
            self._accumulate(_unbroadcast(g * other.data, self.shape))
            other._accumulate(_unbroadcast(g * self.data, other.shape))

        return self._make(self.data * other.data, (self, other), backward)

    def __neg__(self) -> "Tensor":
        def backward(g):
            self._accumulate(-g)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product; ``self`` may carry leading batch axes, while
        ``other`` must be a plain 2-D matrix (the layer-weight case)."""
        if other.data.ndim != 2:
            raise ValueError("matmul expects a 2-D right operand")

        def backward(g):
            self._accumulate(g @ other.data.T)
            # Contract every leading axis of self against g.
            a2 = self.data.reshape(-1, self.data.shape[-1])
            g2 = g.reshape(-1, g.shape[-1])
            other._accumulate(a2.T @ g2)

        return self._make(self.data @ other.data, (self, other), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g):
            self._accumulate(g * mask)

        return self._make(self.data * mask, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        orig = self.shape

        def backward(g):
            self._accumulate(g.reshape(orig))

        return self._make(self.data.reshape(*shape), (self,), backward)

    def transpose(self, axes: tuple[int, ...]) -> "Tensor":
        inverse = tuple(np.argsort(axes))

        def backward(g):
            self._accumulate(g.transpose(inverse))

        return self._make(self.data.transpose(axes), (self,), backward)

    def sum(self) -> "Tensor":
        def backward(g):
            self._accumulate(np.full_like(self.data, float(g)))

        return self._make(self.data.sum(), (self,), backward)

    def mean(self) -> "Tensor":
        n = self.data.size

        def backward(g):
            self._accumulate(np.full_like(self.data, float(g) / n))

        return self._make(self.data.mean(), (self,), backward)

    def avgpool2x2(self) -> "Tensor":
        """2x2 average pooling over (N, H, W, C)."""
        n, h, w, c = self.shape
        view = self.data.reshape(n, h // 2, 2, w // 2, 2, c)
        out = view.mean(axis=(2, 4))

        def backward(g):
            expanded = (
                np.repeat(np.repeat(g, 2, axis=1), 2, axis=2) / 4.0
            )
            self._accumulate(expanded)

        return self._make(out, (self,), backward)

    def log_softmax(self) -> "Tensor":
        """Row-wise log-softmax over the last axis of (N, K)."""
        shifted = self.data - self.data.max(axis=-1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        out = shifted - log_z

        def backward(g):
            softmax = np.exp(out)
            self._accumulate(g - softmax * g.sum(axis=-1, keepdims=True))

        return self._make(out, (self,), backward)

    def im2col_conv(self, cols_index: np.ndarray, in_shape) -> "Tensor":
        """Gather (N, P, R) im2col windows from padded (N, Hp, Wp, C).

        ``cols_index`` is a precomputed flat gather index into one
        padded sample; the backward pass scatter-adds into it (col2im).
        """
        n = self.shape[0]
        flat = self.data.reshape(n, -1)
        out = flat[:, cols_index.reshape(-1)].reshape(
            n, *cols_index.shape
        )

        def backward(g):
            grad_flat = np.zeros_like(flat)
            np.add.at(
                grad_flat,
                (slice(None), cols_index.reshape(-1)),
                g.reshape(n, -1),
            )
            self._accumulate(grad_flat.reshape(self.shape))

        return self._make(out, (self,), backward)

    def pad_hw(self, p: int) -> "Tensor":
        """Zero-pad the H and W axes of (N, H, W, C)."""
        if p == 0:
            return self
        n, h, w, c = self.shape

        def backward(g):
            self._accumulate(g[:, p : p + h, p : p + w, :])

        padded = np.pad(self.data, ((0, 0), (p, p), (p, p), (0, 0)))
        return self._make(padded, (self,), backward)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Tensor(shape={self.shape}, grad={self.requires_grad})"
