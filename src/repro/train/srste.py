"""SR-STE sparse training (Zhou et al., 2021 — the paper's Sec. 5.1
training scheme).

Every forward pass recomputes the N:M magnitude mask and multiplies it
into the weights; the backward pass applies the *sparse-refined
straight-through estimator*::

    grad(w) = grad(w_masked)            # STE: pass through the mask
              + lambda_w * (1 - mask) * w   # decay the pruned weights

so pruned weights keep receiving signal (they can re-enter the mask)
while being pulled toward zero.  At convergence the masked weights are
exactly N:M sparse and can be handed to the deployment pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.sparsity.nm import NMFormat
from repro.sparsity.pruning import nm_prune_mask
from repro.train.autograd import Tensor
from repro.train.nn import Conv2d, Linear, Module

__all__ = ["srste_mask", "SparseLinear", "SparseConv2d"]


def srste_mask(weight: Tensor, fmt: NMFormat, lambda_w: float = 2e-4) -> Tensor:
    """Apply the N:M mask with SR-STE gradients.

    The mask is recomputed from current magnitudes on the *last axis*
    of the weight's 2-D (K, R) view — conv weights are flattened the
    same way the kernels and the pruning helpers flatten them.
    """
    shape = weight.shape
    flat = weight.data.reshape(shape[0], -1)
    mask = nm_prune_mask(flat, fmt).reshape(shape).astype(np.float64)

    def backward(g):
        weight._accumulate(g + lambda_w * (1.0 - mask) * weight.data)

    out = Tensor(
        weight.data * mask, requires_grad=weight.requires_grad
    )
    if out.requires_grad:
        out._parents = (weight,)
        out._backward = backward
    return out


class SparseLinear(Module):
    """A :class:`Linear` trained under an N:M constraint."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        fmt: NMFormat,
        lambda_w: float = 2e-4,
        seed=None,
    ) -> None:
        if in_features % fmt.m:
            raise ValueError(
                f"in_features {in_features} not a multiple of M={fmt.m}"
            )
        self.inner = Linear(in_features, out_features, seed=seed)
        self.fmt = fmt
        self.lambda_w = lambda_w

    def forward(self, x: Tensor) -> Tensor:
        masked = srste_mask(self.inner.weight, self.fmt, self.lambda_w)
        return x.matmul(masked.transpose((1, 0))) + self.inner.bias

    def dense_weight(self) -> np.ndarray:
        """The trained weights with the final mask applied — N:M sparse."""
        flat = self.inner.weight.data.reshape(self.inner.weight.shape[0], -1)
        mask = nm_prune_mask(flat, self.fmt)
        return (flat * mask).reshape(self.inner.weight.shape)


class SparseConv2d(Module):
    """A :class:`Conv2d` trained under an N:M constraint."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        fmt: NMFormat,
        kernel: int = 3,
        pad: int = 1,
        lambda_w: float = 2e-4,
        seed=None,
    ) -> None:
        if (kernel * kernel * in_channels) % fmt.m:
            raise ValueError(
                f"reduce dim {kernel * kernel * in_channels} not a "
                f"multiple of M={fmt.m}"
            )
        self.inner = Conv2d(in_channels, out_channels, kernel, pad, seed=seed)
        self.fmt = fmt
        self.lambda_w = lambda_w

    def forward(self, x: Tensor) -> Tensor:
        masked = srste_mask(self.inner.weight, self.fmt, self.lambda_w)
        n = x.shape[0]
        padded = x.pad_hw(self.inner.pad)
        hp = x.shape[1] + 2 * self.inner.pad
        wp = x.shape[2] + 2 * self.inner.pad
        c = x.shape[3]
        index = self.inner._gather_index(hp, wp, c)
        cols = padded.im2col_conv(index, (hp, wp, c))
        k = masked.shape[0]
        out = cols.matmul(masked.reshape(k, -1).transpose((1, 0)))
        out = out + self.inner.bias
        oh = hp - self.inner.kernel + 1
        ow = wp - self.inner.kernel + 1
        return out.reshape(n, oh, ow, k)

    def dense_weight(self) -> np.ndarray:
        flat = self.inner.weight.data.reshape(self.inner.weight.shape[0], -1)
        mask = nm_prune_mask(flat, self.fmt)
        return (flat * mask).reshape(self.inner.weight.shape)
