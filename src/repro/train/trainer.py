"""Training / evaluation loop for the accuracy-trend experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.train.autograd import Tensor
from repro.train.data import SyntheticDataset
from repro.train.nn import Module, SGD, cross_entropy
from repro.utils.rng import make_rng

__all__ = ["TrainResult", "train_model", "evaluate"]


@dataclass
class TrainResult:
    """Outcome of one training run."""

    model: Module
    train_losses: list[float] = field(default_factory=list)
    test_accuracy: float = 0.0


def evaluate(model: Module, x: np.ndarray, y: np.ndarray, batch: int = 128) -> float:
    """Top-1 accuracy of ``model`` on (x, y)."""
    correct = 0
    for i in range(0, len(x), batch):
        logits = model(Tensor(x[i : i + batch])).data
        correct += int((logits.argmax(axis=1) == y[i : i + batch]).sum())
    return correct / len(x)


def train_model(
    model: Module,
    data: SyntheticDataset,
    epochs: int = 10,
    batch: int = 64,
    lr: float = 0.05,
    momentum: float = 0.9,
    seed: int = 0,
) -> TrainResult:
    """SGD training with per-epoch shuffling; returns final test accuracy."""
    rng = make_rng(seed)
    opt = SGD(model.parameters(), lr=lr, momentum=momentum)
    result = TrainResult(model=model)
    n = len(data.x_train)
    for _ in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        n_batches = 0
        for i in range(0, n, batch):
            idx = order[i : i + batch]
            logits = model(Tensor(data.x_train[idx]))
            loss = cross_entropy(logits, data.y_train[idx])
            opt.zero_grad()
            loss.backward()
            opt.step()
            epoch_loss += float(loss.data)
            n_batches += 1
        result.train_losses.append(epoch_loss / max(1, n_batches))
    result.test_accuracy = evaluate(model, data.x_test, data.y_test)
    return result
