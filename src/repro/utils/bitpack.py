"""Sub-byte packing helpers used by the N:M offset arrays.

The paper stores the relative index of each non-zero weight inside its
M-sized block using ``ceil(log2(M))`` bits, rounded up to a power of two:
2-bit fields ("crumbs") for M=4 and 4-bit fields ("nibbles") for M=8 and
M=16.  These helpers pack/unpack little-endian within each byte, matching
the shift-and-mask unpacking of the C kernels (``extractOffset``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_nibbles",
    "unpack_nibbles",
    "pack_crumbs",
    "unpack_crumbs",
    "pack_bits",
    "unpack_bits",
]


def pack_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Pack unsigned integers of ``width`` bits into a uint8 array.

    Fields are packed little-endian within each byte: the first value
    occupies the least-significant bits of the first byte, exactly as the
    kernels' ``extractOffset`` expects (shift right by ``i*width``, mask).

    Parameters
    ----------
    values:
        1-D array of unsigned integers, each ``< 2**width``.
    width:
        Field width in bits; must divide 8.

    Returns
    -------
    np.ndarray
        uint8 array of length ``ceil(len(values) * width / 8)``.
    """
    if width not in (1, 2, 4, 8):
        raise ValueError(f"width must divide 8, got {width}")
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("pack_bits expects a 1-D array")
    if values.size and (values.min() < 0 or values.max() >= (1 << width)):
        raise ValueError(f"values out of range for {width}-bit fields")
    per_byte = 8 // width
    n = values.size
    padded = np.zeros(((n + per_byte - 1) // per_byte) * per_byte, dtype=np.uint32)
    padded[:n] = values.astype(np.uint32)
    groups = padded.reshape(-1, per_byte)
    shifts = (np.arange(per_byte, dtype=np.uint32) * width).astype(np.uint32)
    packed = (groups << shifts).sum(axis=1, dtype=np.uint32)
    return packed.astype(np.uint8)


def unpack_bits(packed: np.ndarray, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`.

    Parameters
    ----------
    packed:
        uint8 array produced by :func:`pack_bits`.
    width:
        Field width in bits; must divide 8.
    count:
        Number of fields to recover (trailing pad fields are discarded).
    """
    if width not in (1, 2, 4, 8):
        raise ValueError(f"width must divide 8, got {width}")
    packed = np.asarray(packed, dtype=np.uint8)
    per_byte = 8 // width
    shifts = (np.arange(per_byte, dtype=np.uint8) * width).astype(np.uint8)
    mask = np.uint8((1 << width) - 1)
    fields = (packed[:, None] >> shifts) & mask
    flat = fields.reshape(-1)
    if count > flat.size:
        raise ValueError(f"requested {count} fields, only {flat.size} packed")
    return flat[:count].astype(np.uint8)


def pack_nibbles(values: np.ndarray) -> np.ndarray:
    """Pack 4-bit fields (used by 1:8 and 1:16 offset arrays)."""
    return pack_bits(values, 4)


def unpack_nibbles(packed: np.ndarray, count: int) -> np.ndarray:
    """Unpack 4-bit fields packed by :func:`pack_nibbles`."""
    return unpack_bits(packed, 4, count)


def pack_crumbs(values: np.ndarray) -> np.ndarray:
    """Pack 2-bit fields (used by 1:4 offset arrays)."""
    return pack_bits(values, 2)


def unpack_crumbs(packed: np.ndarray, count: int) -> np.ndarray:
    """Unpack 2-bit fields packed by :func:`pack_crumbs`."""
    return unpack_bits(packed, 2, count)
