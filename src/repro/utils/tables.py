"""Small plain-text / markdown table renderer for the experiment harness.

Every evaluation module (:mod:`repro.eval`) reports its results as a
:class:`Table`, so benchmark output looks like the rows of the paper's
tables and the series of its figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["Table", "format_si", "render_markdown"]


def format_si(value: float, unit: str = "", precision: int = 2) -> str:
    """Format a value with an SI magnitude suffix (k, M, G).

    >>> format_si(975_230_000, "cyc")
    '975.23 Mcyc'
    """
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= factor:
            return f"{value / factor:.{precision}f} {suffix}{unit}".rstrip()
    return f"{value:.{precision}f} {unit}".rstrip()


@dataclass
class Table:
    """A column-ordered table with uniform rows.

    Attributes
    ----------
    title:
        Heading printed above the table (e.g. ``"Table 2 (ResNet18)"``).
    columns:
        Column names, in display order.
    rows:
        One dict per row; missing keys render as ``-``.
    """

    title: str
    columns: Sequence[str]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row given as keyword arguments keyed by column name."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """Return one column as a list (missing cells become None)."""
        if name not in self.columns:
            raise KeyError(name)
        return [row.get(name) for row in self.rows]

    def _cell(self, row: dict[str, Any], col: str) -> str:
        value = row.get(col)
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    def render(self) -> str:
        """Render as an aligned plain-text table."""
        cells = [[self._cell(r, c) for c in self.columns] for r in self.rows]
        widths = [
            max(len(c), *(len(row[i]) for row in cells)) if cells else len(c)
            for i, c in enumerate(self.columns)
        ]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        sep = "-" * len(header)
        body = [
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells
        ]
        return "\n".join([self.title, sep, header, sep, *body, sep])

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_markdown(table: Table) -> str:
    """Render a :class:`Table` as GitHub-flavoured markdown."""
    head = "| " + " | ".join(table.columns) + " |"
    rule = "|" + "|".join("---" for _ in table.columns) + "|"
    rows = [
        "| " + " | ".join(table._cell(r, c) for c in table.columns) + " |"
        for r in table.rows
    ]
    return "\n".join([f"**{table.title}**", "", head, rule, *rows])
