"""Deterministic RNG construction.

Every stochastic component of the library (weight init, synthetic data,
pruning tie-breaks) takes an explicit seed and builds its generator here,
so experiments are reproducible bit-for-bit across runs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged) so helper
    functions can be composed without reseeding, an int seed, or None
    for an OS-entropy generator (only used interactively, never inside
    the experiment harness).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
