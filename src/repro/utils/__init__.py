"""Shared utilities: bit packing, fixed-point arithmetic, table rendering.

These helpers underpin the sparse-format encoders (:mod:`repro.sparsity`),
the hardware model (:mod:`repro.hw`) and the kernel library
(:mod:`repro.kernels`).
"""

from repro.utils.bitpack import (
    pack_nibbles,
    unpack_nibbles,
    pack_crumbs,
    unpack_crumbs,
    pack_bits,
    unpack_bits,
)
from repro.utils.fixedpoint import (
    clip_int8,
    clip_uint8,
    to_int8,
    to_uint8,
    requantize_int32,
    saturating_round_shift,
)
from repro.utils.tables import Table, format_si, render_markdown
from repro.utils.rng import make_rng

__all__ = [
    "pack_nibbles",
    "unpack_nibbles",
    "pack_crumbs",
    "unpack_crumbs",
    "pack_bits",
    "unpack_bits",
    "clip_int8",
    "clip_uint8",
    "to_int8",
    "to_uint8",
    "requantize_int32",
    "saturating_round_shift",
    "Table",
    "format_si",
    "render_markdown",
    "make_rng",
]
