"""Fixed-point arithmetic helpers shared by the int8 kernels.

All inference-time arithmetic in the reproduced kernels follows the
PULP-NN convention: int8 (or uint8) operands, int32 accumulators, and a
requantisation step (multiply by an integer scale, round, arithmetic
shift right, clip) that maps accumulators back to 8 bits at the end of
each output computation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "INT8_MIN",
    "INT8_MAX",
    "UINT8_MAX",
    "clip_int8",
    "clip_uint8",
    "to_int8",
    "to_uint8",
    "saturating_round_shift",
    "requantize_int32",
]

INT8_MIN = -128
INT8_MAX = 127
UINT8_MAX = 255


def clip_int8(x: np.ndarray) -> np.ndarray:
    """Saturate an integer array to the int8 range, returned as int8."""
    return np.clip(x, INT8_MIN, INT8_MAX).astype(np.int8)


def clip_uint8(x: np.ndarray) -> np.ndarray:
    """Saturate an integer array to the uint8 range, returned as uint8."""
    return np.clip(x, 0, UINT8_MAX).astype(np.uint8)


def to_int8(x: np.ndarray) -> np.ndarray:
    """Round-to-nearest-even and saturate a float array to int8."""
    return clip_int8(np.rint(np.asarray(x)).astype(np.int64))


def to_uint8(x: np.ndarray) -> np.ndarray:
    """Round-to-nearest-even and saturate a float array to uint8."""
    return clip_uint8(np.rint(np.asarray(x)).astype(np.int64))


def saturating_round_shift(acc: np.ndarray, shift: int) -> np.ndarray:
    """Arithmetic right shift with round-half-up, as an int64 array.

    Mirrors the ``(acc + (1 << (shift-1))) >> shift`` idiom of the C
    kernels.  ``shift == 0`` is the identity.
    """
    acc = np.asarray(acc, dtype=np.int64)
    if shift < 0:
        raise ValueError(f"shift must be non-negative, got {shift}")
    if shift == 0:
        return acc
    return (acc + (1 << (shift - 1))) >> shift


def requantize_int32(
    acc: np.ndarray,
    multiplier: int,
    shift: int,
    zero_point: int = 0,
    signed: bool = True,
) -> np.ndarray:
    """Requantise int32 accumulators to 8 bits.

    Computes ``clip(((acc * multiplier) >> shift rounded) + zero_point)``
    which is the per-layer output stage of every kernel in the library
    (PULP-NN's ``pulp_nn_quant`` equivalent).

    Parameters
    ----------
    acc:
        int32 accumulator array.
    multiplier:
        Positive integer scale applied before shifting.
    shift:
        Arithmetic right-shift amount (rounding half-up).
    zero_point:
        Output zero point added after shifting.
    signed:
        Clip to int8 when True, uint8 when False.
    """
    if multiplier <= 0:
        raise ValueError(f"multiplier must be positive, got {multiplier}")
    scaled = np.asarray(acc, dtype=np.int64) * np.int64(multiplier)
    shifted = saturating_round_shift(scaled, shift) + np.int64(zero_point)
    return clip_int8(shifted) if signed else clip_uint8(shifted)
