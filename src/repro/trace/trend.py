"""Perf-trend bookkeeping: merge BENCH_*.json into TREND.json and gate.

The benchmark harness (``benchmarks/conftest.py``) emits one
``BENCH_<experiment>.json`` per perf benchmark — a JSON array of
entries carrying at least ``name`` / ``batch`` / ``qps`` / ``speedup``
/ ``timestamp``.  Those files are overwritten per run, so on their own
they hold a single point per series.  This module accumulates them
into ``benchmarks/results/TREND.json``:

.. code-block:: json

    {
      "version": 1,
      "series": {
        "<experiment>/<entry-name>": [
          {"timestamp": "...", "qps": 123.4, "batch": 32,
           "speedup": 5.6, "meta": {"...": "extra entry keys"}},
          ...
        ]
      }
    }

Series are keyed ``<experiment>/<entry-name>`` (the BENCH file stem
minus the ``BENCH_`` prefix, then the entry's measurement id); points
are deduplicated by timestamp and kept sorted, so re-merging the same
results directory is idempotent.  Every key of a BENCH entry beyond
the core schema lands in the point's ``meta`` — the run metadata the
series is keyed by (worker counts, mean batch, weight bytes, ...).

``evaluate_trend`` is the ``repro perfgate`` CI gate: each series'
latest QPS is compared against the median of its trailing ``window``
prior points; a drop of more than ``threshold_pct`` percent fails the
gate.  Series with a single point pass trivially (no baseline yet).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from statistics import median

__all__ = [
    "TREND_VERSION",
    "DEFAULT_THRESHOLD_PCT",
    "DEFAULT_WINDOW",
    "SeriesVerdict",
    "load_trend",
    "save_trend",
    "merge_bench_results",
    "evaluate_trend",
]

TREND_VERSION = 1

#: Allowed QPS drop (percent) vs the trailing baseline before the gate
#: fails.  Generous on purpose: BENCH numbers come from whatever
#: machine ran the benchmarks, and the gate must catch real
#: regressions (kernel slowdowns, lost batching) without tripping on
#: scheduler noise.
DEFAULT_THRESHOLD_PCT = 30.0

#: Trailing points the baseline median is computed over.
DEFAULT_WINDOW = 5

#: BENCH entry keys with dedicated TREND point fields; everything else
#: is run metadata and lands in ``meta``.
_CORE_KEYS = frozenset(("name", "batch", "qps", "speedup", "timestamp"))


def load_trend(path: str | Path) -> dict:
    """Load TREND.json, or an empty trend when the file is absent."""
    path = Path(path)
    if not path.exists():
        return {"version": TREND_VERSION, "series": {}}
    with open(path) as fh:
        trend = json.load(fh)
    if not isinstance(trend, dict) or "series" not in trend:
        raise ValueError(f"{path} is not a TREND.json payload")
    return trend


def save_trend(trend: dict, path: str | Path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(trend, fh, indent=2, sort_keys=True)
        fh.write("\n")


def merge_bench_results(trend: dict, results_dir: str | Path) -> int:
    """Fold every ``BENCH_*.json`` under ``results_dir`` into ``trend``.

    Returns the number of new points appended.  Points are
    deduplicated per series by timestamp (the bench harness stamps one
    UTC ISO timestamp per run), so merging an already-recorded results
    directory adds nothing.
    """
    series = trend.setdefault("series", {})
    trend.setdefault("version", TREND_VERSION)
    added = 0
    for path in sorted(Path(results_dir).glob("BENCH_*.json")):
        experiment = path.stem[len("BENCH_"):]
        with open(path) as fh:
            entries = json.load(fh)
        if not isinstance(entries, list):
            raise ValueError(f"{path} is not a list of bench entries")
        for entry in entries:
            missing = _CORE_KEYS - entry.keys()
            if missing:
                raise ValueError(
                    f"{path}: entry {entry.get('name')!r} is missing "
                    f"{sorted(missing)}"
                )
            key = f"{experiment}/{entry['name']}"
            points = series.setdefault(key, [])
            if any(p["timestamp"] == entry["timestamp"] for p in points):
                continue
            points.append(
                {
                    "timestamp": entry["timestamp"],
                    "qps": float(entry["qps"]),
                    "batch": entry["batch"],
                    "speedup": entry["speedup"],
                    "meta": {
                        k: v for k, v in entry.items() if k not in _CORE_KEYS
                    },
                }
            )
            points.sort(key=lambda p: p["timestamp"])
            added += 1
    return added


@dataclass(frozen=True)
class SeriesVerdict:
    """One series' gate outcome.

    ``baseline_qps`` / ``change_pct`` are ``None`` when the series has
    a single point (nothing to compare against — passes trivially).
    ``change_pct`` is signed: negative means the latest point is
    slower than the baseline.
    """

    series: str
    points: int
    latest_qps: float
    baseline_qps: float | None
    change_pct: float | None
    regressed: bool


def evaluate_trend(
    trend: dict,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    window: int = DEFAULT_WINDOW,
) -> list[SeriesVerdict]:
    """Gate every series: latest vs trailing-median baseline."""
    if threshold_pct <= 0:
        raise ValueError("threshold_pct must be > 0")
    if window < 1:
        raise ValueError("window must be >= 1")
    verdicts: list[SeriesVerdict] = []
    for key in sorted(trend.get("series", {})):
        points = trend["series"][key]
        if not points:
            continue
        latest = float(points[-1]["qps"])
        prior = [float(p["qps"]) for p in points[:-1][-window:]]
        if not prior:
            verdicts.append(
                SeriesVerdict(key, len(points), latest, None, None, False)
            )
            continue
        baseline = float(median(prior))
        change = (
            (latest - baseline) / baseline * 100.0 if baseline > 0 else 0.0
        )
        regressed = baseline > 0 and latest < baseline * (
            1.0 - threshold_pct / 100.0
        )
        verdicts.append(
            SeriesVerdict(key, len(points), latest, baseline, change, regressed)
        )
    return verdicts
