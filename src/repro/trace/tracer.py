"""Chrome-tracing instrumentation: ring-buffered span/counter capture.

:class:`Tracer` records Trace Event Format events — the JSON consumed
by ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ —
into a bounded, thread-safe ring buffer.  One tracer instance is
threaded through the whole stack (engine → plan → serving), so a
single timeline shows plan compiles, per-layer kernel spans with
backend/format attribution, batcher flushes, queue-wait and execution
spans, and queue-depth counters.

Event vocabulary (the subset of the Trace Event Format we emit):

- ``ph: "B"/"E"`` — synchronous duration spans, strictly nested per
  ``(pid, tid)``.  Used only inside single-threaded synchronous code
  (plan execution, plan compilation), where nesting holds by
  construction.
- ``ph: "b"/"e"`` — async spans matched by ``(cat, id, name)``.  Used
  for request-scoped intervals that cross tasks/threads (queue wait,
  micro-batch execution, router pipe round-trips).  Ids are qualified
  with the emitting pid so worker-process events never collide with
  the router's after the buffers are merged.
- ``ph: "C"`` — counter samples (queue depth).
- ``ph: "i"`` — instant events (batcher flushes, plan-cache hits).
- ``ph: "M"`` — metadata (``process_name`` per pid), so each worker
  process renders as its own named track.

Timestamps are wall-clock microseconds (``time.time_ns() // 1000``):
unlike ``perf_counter``, the epoch is shared across processes, which
is what lets the router splice worker-process buffers into one
timeline at drain.

Overhead contract: the *disabled* path is free.  Call sites hold a
plain attribute (``tracer``) that is ``None`` by default and branch on
it — no tracer object, no span object, no allocation on the hot path
(guarded by a tracemalloc micro-check in ``tests/trace``).  A
constructed tracer can also be switched off (``enabled=False``), in
which case :meth:`span` returns a shared no-op context manager.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import sys
import threading
import time
from collections import deque
from datetime import datetime, timezone
from typing import Any, Iterable

__all__ = [
    "Tracer",
    "trace_span",
    "run_manifest",
    "validate_trace",
]


def _now_us() -> int:
    return time.time_ns() // 1_000


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live B/E span; emits on enter/exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_args")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        self._tracer._emit(
            {
                "ph": "B",
                "name": self._name,
                "cat": self._cat,
                "ts": _now_us(),
                "pid": self._tracer.pid,
                "tid": threading.get_native_id(),
                "args": self._args or {},
            }
        )
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._emit(
            {
                "ph": "E",
                "name": self._name,
                "cat": self._cat,
                "ts": _now_us(),
                "pid": self._tracer.pid,
                "tid": threading.get_native_id(),
            }
        )
        return False


class Tracer:
    """Thread-safe ring buffer of Chrome Trace Event Format events.

    ``capacity`` bounds memory: the buffer keeps the most recent
    events (oldest are dropped silently — a trace is a diagnostic
    artifact, not an audit log).  ``process_name`` emits a
    ``process_name`` metadata event up front so the emitting process
    renders as a named track.
    """

    def __init__(
        self,
        capacity: int = 250_000,
        enabled: bool = True,
        process_name: str | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.enabled = enabled
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._events: deque[dict] = deque(maxlen=capacity)
        self._dropped = 0
        if process_name is not None:
            self.meta_process(process_name)

    # -- event intake ---------------------------------------------------

    def _emit(self, event: dict) -> None:
        with self._lock:
            if len(self._events) == self._events.maxlen:
                self._dropped += 1
            self._events.append(event)

    def span(self, name: str, cat: str = "", args: dict | None = None):
        """Context manager recording a synchronous B/E span.

        Use only where nesting per thread is guaranteed (synchronous
        code); request-scoped intervals that cross tasks belong in
        :meth:`begin_async` / :meth:`end_async`.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, args)

    def begin_async(
        self, name: str, id: int | str, cat: str = "serve", args: dict | None = None
    ) -> None:
        """Open an async span; match with :meth:`end_async` on the same
        ``(cat, id, name)``.  The id is qualified with this tracer's
        pid so merged multi-process timelines never collide."""
        if not self.enabled:
            return
        self._emit(
            {
                "ph": "b",
                "name": name,
                "cat": cat,
                "id": f"{self.pid}.{id}",
                "ts": _now_us(),
                "pid": self.pid,
                "tid": threading.get_native_id(),
                "args": args or {},
            }
        )

    def end_async(
        self, name: str, id: int | str, cat: str = "serve", args: dict | None = None
    ) -> None:
        if not self.enabled:
            return
        self._emit(
            {
                "ph": "e",
                "name": name,
                "cat": cat,
                "id": f"{self.pid}.{id}",
                "ts": _now_us(),
                "pid": self.pid,
                "tid": threading.get_native_id(),
                "args": args or {},
            }
        )

    def instant(
        self, name: str, cat: str = "", args: dict | None = None
    ) -> None:
        """Record a zero-duration marker (thread-scoped)."""
        if not self.enabled:
            return
        self._emit(
            {
                "ph": "i",
                "name": name,
                "cat": cat,
                "s": "t",
                "ts": _now_us(),
                "pid": self.pid,
                "tid": threading.get_native_id(),
                "args": args or {},
            }
        )

    def counter(self, name: str, values: dict[str, float]) -> None:
        """Record a counter sample, e.g. ``counter("queue_depth",
        {"samples": 12})`` — renders as a stacked area track."""
        if not self.enabled:
            return
        self._emit(
            {
                "ph": "C",
                "name": name,
                "ts": _now_us(),
                "pid": self.pid,
                "tid": threading.get_native_id(),
                "args": {k: float(v) for k, v in values.items()},
            }
        )

    def meta_process(self, name: str, pid: int | None = None) -> None:
        """Name a process track (defaults to this tracer's pid)."""
        if not self.enabled:
            return
        self._emit(
            {
                "ph": "M",
                "name": "process_name",
                "pid": self.pid if pid is None else int(pid),
                "tid": 0,
                "args": {"name": name},
            }
        )

    def meta_thread(self, name: str, tid: int | None = None) -> None:
        """Name a thread track within this tracer's process."""
        if not self.enabled:
            return
        self._emit(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": self.pid,
                "tid": threading.get_native_id() if tid is None else int(tid),
                "args": {"name": name},
            }
        )

    # -- buffer management ----------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer since construction."""
        with self._lock:
            return self._dropped

    def events(self) -> list[dict]:
        """A snapshot copy of the buffered events (oldest first)."""
        with self._lock:
            return list(self._events)

    def drain(self) -> list[dict]:
        """Atomically take (and clear) the buffered events.

        This is how worker processes ship their buffers to the router
        at shutdown: the returned list is pickle/JSON-safe and is
        spliced into the parent's buffer with :meth:`extend`.
        """
        with self._lock:
            events = list(self._events)
            self._events.clear()
            return events

    def extend(self, events: Iterable[dict]) -> None:
        """Splice foreign events (e.g. a worker process's drained
        buffer) into this buffer.  Events keep their own pid/tid, so
        they land on their own tracks in the merged timeline."""
        with self._lock:
            for event in events:
                if len(self._events) == self._events.maxlen:
                    self._dropped += 1
                self._events.append(event)

    # -- export ----------------------------------------------------------

    def to_chrome(self, manifest: dict | None = None) -> dict:
        """The JSON-object trace: ``{"traceEvents": [...], ...}``.

        Events are sorted by timestamp (metadata first) so merged
        multi-process buffers render deterministically; ``otherData``
        carries the run manifest.
        """
        events = self.events()
        events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0)))
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": manifest or {},
        }

    def write(self, path: str, manifest: dict | None = None) -> int:
        """Write the Chrome-tracing JSON to ``path``; returns the
        number of events written."""
        payload = self.to_chrome(manifest=manifest)
        with open(path, "w") as fh:
            json.dump(payload, fh)
            fh.write("\n")
        return len(payload["traceEvents"])


def trace_span(
    tracer: Tracer | None, name: str, cat: str = "", args: dict | None = None
):
    """``tracer.span(...)`` tolerant of ``tracer=None`` (disabled)."""
    if tracer is None or not tracer.enabled:
        return _NULL_SPAN
    return tracer.span(name, cat=cat, args=args)


def run_manifest(extra: dict | None = None) -> dict:
    """Reproducibility metadata stamped into traces and stats dumps.

    Identifies the run (UTC timestamp, host, platform, interpreter,
    numpy, pid, argv) so a trace or TREND point can be traced back to
    the machine and command that produced it.
    """
    try:
        import numpy as np

        numpy_version = np.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep
        numpy_version = None
    manifest = {
        "created": datetime.now(timezone.utc).isoformat(),
        "host": socket.gethostname(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": numpy_version,
        "pid": os.getpid(),
        "argv": list(sys.argv),
    }
    if extra:
        manifest.update(extra)
    return manifest


# -- validation -----------------------------------------------------------

_REQUIRED_BY_PH = {
    "B": ("name", "ts", "pid", "tid"),
    "E": ("ts", "pid", "tid"),
    "b": ("name", "ts", "pid", "tid", "id", "cat"),
    "e": ("name", "ts", "pid", "tid", "id", "cat"),
    "i": ("name", "ts", "pid", "tid"),
    "C": ("name", "ts", "pid", "tid", "args"),
    "M": ("name", "pid", "args"),
}


def validate_trace(payload: Any) -> list[str]:
    """Schema/balance checks over a trace payload; returns problems.

    Accepts the JSON-object form (``{"traceEvents": [...]}``) or a
    bare event array.  Checks per-event required fields, strict B/E
    nesting per ``(pid, tid)`` (an ``E`` must close the innermost open
    ``B`` of the same name), async b/e pairing per ``(cat, id,
    name)``, and numeric counter values.  An empty list means the
    trace is well-formed.
    """
    problems: list[str] = []
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return ["payload has no 'traceEvents' list"]
    elif isinstance(payload, list):
        events = payload
    else:
        return [f"payload must be a dict or list, got {type(payload).__name__}"]

    stacks: dict[tuple, list[str]] = {}
    open_async: dict[tuple, int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in _REQUIRED_BY_PH:
            problems.append(f"event {i} has unknown ph {ph!r}")
            continue
        for key in _REQUIRED_BY_PH[ph]:
            if key not in ev:
                problems.append(f"event {i} (ph {ph}) is missing {key!r}")
        if "ts" in _REQUIRED_BY_PH[ph] and not isinstance(
            ev.get("ts"), (int, float)
        ):
            problems.append(f"event {i} has non-numeric ts")
            continue
        if ph == "B":
            stacks.setdefault((ev.get("pid"), ev.get("tid")), []).append(
                ev.get("name", "")
            )
        elif ph == "E":
            stack = stacks.get((ev.get("pid"), ev.get("tid")), [])
            if not stack:
                problems.append(f"event {i}: E without an open B")
            else:
                opened = stack.pop()
                name = ev.get("name")
                if name is not None and name != opened:
                    problems.append(
                        f"event {i}: E({name!r}) does not close the "
                        f"innermost open B({opened!r}) — spans not nested"
                    )
        elif ph == "b":
            key = (ev.get("cat"), ev.get("id"), ev.get("name"))
            open_async[key] = open_async.get(key, 0) + 1
        elif ph == "e":
            key = (ev.get("cat"), ev.get("id"), ev.get("name"))
            if open_async.get(key, 0) < 1:
                problems.append(f"event {i}: async e without matching b {key}")
            else:
                open_async[key] -= 1
        elif ph == "C":
            args = ev.get("args", {})
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"event {i}: counter args must be numeric")
    for (pid, tid), stack in stacks.items():
        if stack:
            problems.append(
                f"unbalanced B/E on pid={pid} tid={tid}: "
                f"{len(stack)} spans never closed ({stack[-1]!r} innermost)"
            )
    for key, n in open_async.items():
        if n:
            problems.append(f"async span {key} opened {n}x without close")
    return problems
