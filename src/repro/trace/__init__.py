"""Trace-level observability: chrome-tracing timelines and perf trends.

Two halves:

- :mod:`repro.trace.tracer` — the :class:`Tracer` ring buffer and
  Chrome Trace Event Format emission, threaded through the engine and
  serving layers (``InferenceEngine(trace=...)``,
  ``ModelServer(tracer=...)``, ``RouterServer(tracer=...)``, the
  ``--trace`` CLI flags).  Open the written JSON in
  `Perfetto <https://ui.perfetto.dev>`_ or ``chrome://tracing``.
- :mod:`repro.trace.trend` — the perf-regression bookkeeping behind
  ``repro perfgate``: BENCH_*.json results accumulate into
  ``benchmarks/results/TREND.json`` and each series' latest QPS is
  gated against its trailing baseline.

See ``docs/observability.md`` for the full story.
"""

from repro.trace.tracer import (
    Tracer,
    run_manifest,
    trace_span,
    validate_trace,
)

__all__ = [
    "Tracer",
    "run_manifest",
    "trace_span",
    "validate_trace",
]
