"""Functional graph execution.

Two modes:

- ``mode="float"``: plain float32 forward pass — the reference the
  quantised path is compared against.
- ``mode="int8"``: simulated integer deployment.  Conv/dense nodes with
  quantisation metadata (``weights_q``, ``w_scale``, ``act_scale`` from
  :mod:`repro.models.quantize`) quantise their input, run the int8
  kernel arithmetic (int32 accumulation — the same maths the microcoded
  kernels perform), and dequantise.  Everything else (normalisation,
  softmax, GELU) runs in float, matching how the paper's toolchain
  delegates those ops to dedicated integer kernels whose numerics are
  not the subject of the evaluation.

The executor is deliberately batch-free: one sample at a time, shapes
exactly as the IR records them.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.ir import Graph, Node
from repro.kernels.im2col import im2col
from repro.kernels.shapes import ConvShape

__all__ = ["execute_graph"]


def _gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2 / np.pi) * (x + 0.044715 * x**3)))


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    e = np.exp(x - x.max(axis=axis, keepdims=True))
    return e / e.sum(axis=axis, keepdims=True)


def _quantize_act(x: np.ndarray, scale: float) -> np.ndarray:
    q = np.rint(x / scale)
    return np.clip(q, -128, 127).astype(np.int32)


def _conv_shape(node: Node, in_shape: tuple[int, ...]) -> ConvShape:
    w = node.attrs["weights"]
    return ConvShape(
        iy=in_shape[0],
        ix=in_shape[1],
        c=w.shape[3],
        k=w.shape[0],
        fy=w.shape[1],
        fx=w.shape[2],
        s=node.attrs["s"],
        p=node.attrs["p"],
    )


def _run_conv(node: Node, x: np.ndarray, mode: str) -> np.ndarray:
    shape = _conv_shape(node, x.shape)
    bias = node.attrs.get("bias")
    if mode == "int8" and "weights_q" in node.attrs:
        wq = node.attrs["weights_q"].reshape(shape.k, -1)
        a_scale = node.attrs["act_scale"]
        w_scale = node.attrs["w_scale"]
        xq = _quantize_act(x, a_scale).astype(np.int8)
        cols = im2col(xq, shape).astype(np.int32)
        acc = cols @ wq.astype(np.int32).T
        out = acc.astype(np.float64) * (a_scale * w_scale)
    else:
        w = node.attrs["weights"].reshape(shape.k, -1)
        # float path reuses the same im2col to keep numerics comparable
        padded = np.zeros(
            (shape.iy + 2 * shape.p, shape.ix + 2 * shape.p, shape.c),
            dtype=np.float64,
        )
        padded[shape.p : shape.p + shape.iy, shape.p : shape.p + shape.ix] = x
        oy_idx = np.arange(shape.oy) * shape.s
        ox_idx = np.arange(shape.ox) * shape.s
        rows = oy_idx[:, None, None, None] + np.arange(shape.fy)[None, None, :, None]
        cols_ix = (
            ox_idx[None, :, None, None] + np.arange(shape.fx)[None, None, None, :]
        )
        cols = padded[rows, cols_ix].reshape(shape.oy * shape.ox, -1)
        out = cols @ w.T
    if bias is not None:
        out = out + bias
    return out.reshape(shape.oy, shape.ox, shape.k).astype(np.float32)


def _run_dense(node: Node, x: np.ndarray, mode: str) -> np.ndarray:
    bias = node.attrs.get("bias")
    if mode == "int8" and "weights_q" in node.attrs:
        wq = node.attrs["weights_q"]
        a_scale = node.attrs["act_scale"]
        w_scale = node.attrs["w_scale"]
        xq = _quantize_act(x, a_scale)
        acc = xq @ wq.astype(np.int32).T
        out = acc.astype(np.float64) * (a_scale * w_scale)
    else:
        out = x @ node.attrs["weights"].T
    if bias is not None:
        out = out + bias
    return out.astype(np.float32)


def _run_attention(node: Node, x: np.ndarray) -> np.ndarray:
    t, d = x.shape
    heads = node.attrs["heads"]
    hd = d // heads
    q = x @ node.attrs["wq"].T
    k = x @ node.attrs["wk"].T
    v = x @ node.attrs["wv"].T

    def split(m):
        return m.reshape(t, heads, hd).transpose(1, 0, 2)

    qh, kh, vh = split(q), split(k), split(v)
    scores = qh @ kh.transpose(0, 2, 1) / np.sqrt(hd)
    attn = _softmax(scores, axis=-1)
    ctx = (attn @ vh).transpose(1, 0, 2).reshape(t, d)
    return (ctx @ node.attrs["wo"].T).astype(np.float32)


def execute_graph(
    graph: Graph,
    x: np.ndarray,
    mode: str = "float",
    return_acts: bool = False,
):
    """Run a forward pass; returns the output node's activation.

    Parameters
    ----------
    graph:
        The model graph (validated).
    x:
        Input activation matching the input node's shape.
    mode:
        "float" or "int8" (see module docstring).
    return_acts:
        Also return the dict of all intermediate activations (used by
        the quantisation calibration pass).
    """
    if mode not in ("float", "int8"):
        raise ValueError(f"unknown mode {mode!r}")
    graph.validate()
    acts: dict[str, np.ndarray] = {}
    for node in graph:
        if node.op == "input":
            if tuple(x.shape) != tuple(node.attrs["shape"]):
                raise ValueError(
                    f"input shape {x.shape} != declared {node.attrs['shape']}"
                )
            acts[node.name] = x.astype(np.float32)
            continue
        src = acts[node.inputs[0]]
        if node.op == "conv2d":
            out = _run_conv(node, src, mode)
        elif node.op == "dense":
            out = _run_dense(node, src, mode)
        elif node.op == "relu":
            out = np.maximum(src, 0.0)
        elif node.op == "gelu":
            out = _gelu(src)
        elif node.op == "add":
            out = src + acts[node.inputs[1]]
        elif node.op in ("maxpool", "avgpool"):
            size, stride = node.attrs["size"], node.attrs["stride"]
            iy, ix, c = src.shape
            oy, ox = iy // stride, ix // stride
            view = src[: oy * stride, : ox * stride].reshape(
                oy, stride, ox, stride, c
            )
            out = view.max(axis=(1, 3)) if node.op == "maxpool" else view.mean(
                axis=(1, 3)
            )
        elif node.op == "global_avgpool":
            out = src.mean(axis=(0, 1))
        elif node.op == "layernorm":
            mu = src.mean(axis=-1, keepdims=True)
            var = src.var(axis=-1, keepdims=True)
            out = (src - mu) / np.sqrt(var + 1e-5)
            out = out * node.attrs["gamma"] + node.attrs["beta"]
        elif node.op == "attention":
            out = _run_attention(node, src)
        elif node.op == "flatten":
            out = src.reshape(-1)
        elif node.op == "tokens":
            oy, ox, c = src.shape
            out = src.reshape(oy * ox, c)
        elif node.op == "token_mean":
            out = src.mean(axis=0)
        else:
            raise ValueError(f"cannot execute op {node.op!r}")
        acts[node.name] = out.astype(np.float32)
    if return_acts:
        return acts[graph.output], acts
    return acts[graph.output]
