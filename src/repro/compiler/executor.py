"""Functional graph execution — compatibility wrapper over the engine.

Execution lives in :mod:`repro.engine`: graphs are compiled once into a
batched :class:`~repro.engine.ExecutionPlan` (pre-validated topology,
pre-reshaped / pre-quantised weights, per-node kernels bound at compile
time) and served by an :class:`~repro.engine.InferenceEngine` that
caches plans per ``(graph, mode)``.  This module keeps the historical
one-sample :func:`execute_graph` entry point, delegating to the
process-wide default engine so repeated calls on the same graph reuse
the compiled plan instead of re-deriving shapes and re-quantising
weights on every forward pass.

Two numeric modes:

- ``mode="float"``: plain float32 forward pass — the reference the
  quantised path is compared against.  Conv GEMMs now accumulate in
  float32 end to end (the seed executor quietly upcast the conv path
  to float64 before casting back); reference outputs shift by ordinary
  float32 rounding on large reduce dims.
- ``mode="int8"``: simulated integer deployment.  Conv/dense nodes with
  quantisation metadata (``weights_q``, ``w_scale``, ``act_scale`` from
  :mod:`repro.models.quantize`) quantise their input to int8, run the
  int8 kernel arithmetic (int32 accumulation — the same maths the
  microcoded kernels perform), and dequantise.  Everything else
  (normalisation, softmax, GELU) runs in float, matching how the
  paper's toolchain delegates those ops to dedicated integer kernels
  whose numerics are not the subject of the evaluation.

``x`` may be a single sample shaped exactly as the IR records, or a
batch with one extra leading axis; batched inputs produce batched
outputs, bit-identical to the per-sample results (see
:mod:`repro.engine.plan`).  Pass an explicit ``engine`` to isolate plan
caches (e.g. in tests).
"""

from __future__ import annotations

import numpy as np

from repro.compiler.ir import Graph
from repro.engine import InferenceEngine, get_default_engine

__all__ = ["execute_graph"]


def execute_graph(
    graph: Graph,
    x: np.ndarray,
    mode: str = "float",
    return_acts: bool = False,
    engine: InferenceEngine | None = None,
):
    """Run a forward pass; returns the output node's activation.

    Parameters
    ----------
    graph:
        The model graph (validated at plan-compile time).
    x:
        Input activation matching the input node's shape, or a
        ``(B, ...)`` batch of such inputs.
    mode:
        "float" or "int8" (see module docstring).
    return_acts:
        Also return the dict of all intermediate activations (used by
        the quantisation calibration pass).
    engine:
        Engine whose plan cache to use; defaults to the process-wide
        engine from :func:`repro.engine.get_default_engine`.

    Plans snapshot weights at compile time.  Re-quantising via
    :func:`repro.models.quantize.quantize_graph` is detected
    automatically, but mutating ``node.attrs`` by hand (e.g. swapping
    ``weights`` in place) requires
    :meth:`repro.engine.InferenceEngine.invalidate` — the seed executor
    re-read weights on every call; the cached plan does not.
    """
    engine = engine or get_default_engine()
    return engine.run(graph, x, mode=mode, return_acts=return_acts)
