"""Format-aware L1 tiling (paper Sec. 4.4, feature 2).

The tiling engine splits a layer so one tile's working set fits the
128 kB L1 scratchpad: an input activation slab, an output slab, a
(double-buffered) weight slab and the per-core im2col buffers.  The
paper's modification is a one-liner with large consequences: the bits
accounted per weight reflect the sparse storage format — e.g. 3 bits
per dense-equivalent weight for 1:4 with replicated indices — so sparse
layers fit larger tiles, fewer DMA rounds, and better L1 utilisation.

The search here mirrors that structure: tile over output channels (K)
first — weights dominate — then over output rows if activations still
do not fit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.memory import MemoryHierarchy, VEGA_MEMORY
from repro.kernels.im2col import im2col_buffer_bytes
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import NMFormat

__all__ = ["TileSolution", "tile_conv", "tile_fc", "bits_per_weight"]


def bits_per_weight(
    fmt: NMFormat | None, engine: str, kind: str, format_aware: bool = True
) -> float:
    """Storage bits per dense-equivalent weight for a kernel config.

    With ``format_aware=False`` the tiler assumes 8 bits regardless of
    format — the ablation baseline the paper's modification replaces.
    """
    if fmt is None or not format_aware:
        return 8.0
    duplicate = engine == "sparse-isa" and kind == "conv"
    return fmt.bits_per_dense_weight(duplicate)


@dataclass(frozen=True)
class TileSolution:
    """A feasible L1 tiling of one layer.

    Attributes
    ----------
    k_tile:
        Output channels per tile.
    oy_tile:
        Output rows per tile (conv only; equals OY when unsplit).
    n_tiles:
        Total tile count.
    tile_bytes:
        L1 working set of one tile (including double-buffered weights
        and im2col buffers).
    weight_tile_bytes:
        Bytes of one weight tile as streamed from L2 (values+indices).
    """

    k_tile: int
    oy_tile: int
    n_tiles: int
    tile_bytes: int
    weight_tile_bytes: int

    @property
    def dma_setups(self) -> int:
        """Weight-tile DMA transactions with the interleaved layout."""
        return self.n_tiles


def _conv_tile_bytes(
    shape: ConvShape, k_tile: int, oy_tile: int, wbits: float, n_cores: int
) -> tuple[int, int]:
    """(L1 working set, weight tile bytes) of a candidate conv tile."""
    # Input rows needed for oy_tile output rows.
    iy_tile = min(shape.iy, (oy_tile - 1) * shape.s + shape.fy)
    in_bytes = iy_tile * shape.ix * shape.c
    out_bytes = oy_tile * shape.ox * k_tile
    w_bytes = math.ceil(k_tile * shape.reduce_dim * wbits / 8)
    im2col = im2col_buffer_bytes(shape, n_cores)
    # Weights and activations are double-buffered.
    total = 2 * (in_bytes + out_bytes + w_bytes) + im2col
    return total, w_bytes


def tile_conv(
    shape: ConvShape,
    fmt: NMFormat | None = None,
    engine: str = "dense-4x2",
    memory: MemoryHierarchy = VEGA_MEMORY,
    n_cores: int = 8,
    format_aware: bool = True,
) -> TileSolution:
    """Find an L1-feasible conv tiling (largest K tile, then rows).

    Raises
    ------
    ValueError
        If even a single-channel single-row tile exceeds L1 (the layer
        cannot be deployed on this hierarchy).
    """
    wbits = bits_per_weight(fmt, engine, "conv", format_aware)
    l1 = memory.l1.size_bytes
    k_candidates = [k for k in range(shape.k, 0, -1) if shape.k % k == 0]
    oy_candidates = [o for o in range(shape.oy, 0, -1) if shape.oy % o == 0]
    for k_tile in k_candidates:
        for oy_tile in oy_candidates:
            total, w_bytes = _conv_tile_bytes(
                shape, k_tile, oy_tile, wbits, n_cores
            )
            if total <= l1:
                n_tiles = (shape.k // k_tile) * (shape.oy // oy_tile)
                return TileSolution(k_tile, oy_tile, n_tiles, total, w_bytes)
    raise ValueError(f"layer {shape} does not fit L1 even at minimal tiling")


def tile_fc(
    shape: FcShape,
    fmt: NMFormat | None = None,
    engine: str = "dense",
    memory: MemoryHierarchy = VEGA_MEMORY,
    format_aware: bool = True,
) -> TileSolution:
    """Find an L1-feasible FC tiling over output neurons."""
    wbits = bits_per_weight(fmt, engine, "fc", format_aware)
    l1 = memory.l1.size_bytes
    for k_tile in (k for k in range(shape.k, 0, -1) if shape.k % k == 0):
        w_bytes = math.ceil(k_tile * shape.c * wbits / 8)
        total = 2 * w_bytes + shape.c + k_tile
        if total <= l1:
            return TileSolution(
                k_tile=k_tile,
                oy_tile=1,
                n_tiles=shape.k // k_tile,
                tile_bytes=total,
                weight_tile_bytes=w_bytes,
            )
    raise ValueError(f"layer {shape} does not fit L1 even at minimal tiling")
