"""End-to-end deployment: compile a graph and price the full network.

``deploy`` runs pattern recognition, lowering and costing over a model
graph and aggregates the per-layer plans into the metrics Table 2
reports: total cycles, dense-equivalent MAC/cycle, and weight memory.
Reports serialise to JSON for downstream tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.compiler.codegen import CompileConfig, LayerPlan, lower_graph
from repro.compiler.ir import Graph
from repro.compiler.patterns import annotate_sparsity
from repro.utils.tables import Table

__all__ = ["DeploymentReport", "deploy"]


@dataclass
class DeploymentReport:
    """Aggregated deployment metrics of one compiled network.

    ``macs`` counts dense-equivalent MACs (the paper's convention), so
    MAC/cycle figures for sparse variants exceed the hardware's dense
    peak exactly as in Table 2.
    """

    graph_name: str
    config: CompileConfig
    plans: list[LayerPlan] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(p.cycles for p in self.plans)

    @property
    def total_macs(self) -> int:
        return sum(p.macs for p in self.plans)

    @property
    def macs_per_cycle(self) -> float:
        return self.total_macs / self.total_cycles if self.total_cycles else 0.0

    @property
    def weight_memory_bytes(self) -> float:
        return sum(p.weight_bytes for p in self.plans)

    @property
    def weight_memory_mb(self) -> float:
        return self.weight_memory_bytes / (1024 * 1024)

    def cycles_by_kind(self) -> dict[str, float]:
        """Cycle totals split by plan kind (conv / fc / fallback)."""
        out: dict[str, float] = {}
        for p in self.plans:
            out[p.kind] = out.get(p.kind, 0.0) + p.cycles
        return out

    def speedup_vs(self, baseline: "DeploymentReport") -> float:
        """Latency ratio baseline/this (>1 = this one is faster)."""
        return baseline.total_cycles / self.total_cycles

    def to_json(self) -> str:
        """Serialise the report (summary + per-layer plans) to JSON."""
        payload = {
            "graph": self.graph_name,
            "summary": {
                "total_cycles": self.total_cycles,
                "total_macs": self.total_macs,
                "macs_per_cycle": self.macs_per_cycle,
                "weight_memory_bytes": self.weight_memory_bytes,
            },
            "layers": [
                {
                    "name": p.node_name,
                    "op": p.op,
                    "kind": p.kind,
                    "kernel": p.variant,
                    "format": p.fmt.name if p.fmt else None,
                    "macs": p.macs,
                    "cycles": p.cycles,
                    "weight_bytes": p.weight_bytes,
                    "n_tiles": p.tiles.n_tiles if p.tiles else None,
                }
                for p in self.plans
            ],
        }
        return json.dumps(payload, indent=2)

    def layer_table(self) -> Table:
        """Per-layer plan summary."""
        table = Table(
            f"Deployment of {self.graph_name}",
            ["layer", "op", "kernel", "fmt", "MMACs", "Mcycles", "MAC/cyc"],
        )
        for p in self.plans:
            if p.macs == 0 and p.cycles == 0:
                continue
            table.add_row(
                layer=p.node_name,
                op=p.op,
                kernel=p.variant,
                fmt=p.fmt.name if p.fmt else "-",
                MMACs=p.macs / 1e6,
                Mcycles=p.cycles / 1e6,
                **{"MAC/cyc": p.macs / p.cycles if p.cycles else 0.0},
            )
        return table


def deploy(graph: Graph, config: CompileConfig | None = None) -> DeploymentReport:
    """Compile and price ``graph`` under ``config``.

    Runs the Sec. 4.4 pipeline: sparsity pattern recognition, kernel
    selection, format-aware tiling, and cost aggregation.
    """
    config = config or CompileConfig()
    graph.validate()
    annotate_sparsity(graph)
    plans = lower_graph(graph, config)
    return DeploymentReport(graph_name=graph.name, config=config, plans=plans)
