"""MATCH-like DNN compiler (paper Sec. 4.4).

A deliberately compact reimplementation of the three MATCH features the
paper adds, over a small graph IR:

1. **Pattern recognition** (:mod:`repro.compiler.patterns`): conv/FC
   nodes whose weights satisfy a supported N:M pattern are annotated
   with their format, steering them to the sparse kernels.
2. **Format-aware tiling** (:mod:`repro.compiler.tiling`): the L1 tile
   search accounts for the true bits-per-dense-weight of each format
   (e.g. 3 bits for 1:4 with replicated offsets).
3. **Interleaved weight storage** (:mod:`repro.compiler.layout`):
   each weight tile is stored in L2 as values followed by packed
   indices so one DMA transaction moves both.

:mod:`repro.compiler.codegen` lowers an annotated graph to kernel
invocations; :mod:`repro.compiler.deploy` executes the plan against the
cost model (and, optionally, functionally) producing the end-to-end
numbers of Table 2.
"""

from repro.compiler.ir import Graph, Node
from repro.compiler.patterns import detect_format, annotate_sparsity
from repro.compiler.tiling import TileSolution, tile_conv, tile_fc
from repro.compiler.layout import WeightTileLayout, build_interleaved_tiles
from repro.compiler.codegen import CompileConfig, LayerPlan, lower_graph
from repro.compiler.deploy import DeploymentReport, deploy
from repro.compiler.executor import execute_graph

__all__ = [
    "Graph",
    "Node",
    "detect_format",
    "annotate_sparsity",
    "TileSolution",
    "tile_conv",
    "tile_fc",
    "WeightTileLayout",
    "build_interleaved_tiles",
    "CompileConfig",
    "LayerPlan",
    "lower_graph",
    "DeploymentReport",
    "deploy",
    "execute_graph",
]
