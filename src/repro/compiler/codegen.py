"""Lowering: annotated graph -> kernel invocation plan.

For every compute node the generator picks a kernel variant (sparse
kernels when a pattern was recognised and sparsity is enabled; the
PULP-NN 4x2 dense conv otherwise, falling back to 1x2 when K is not a
multiple of 4), runs the format-aware tiler, and prices the layer with
the cost model.  Non-MATCH ops (attention internals, normalisation,
activations, pooling) are planned as Deeploy-style fallback kernels —
mirroring the paper's ViT deployment, which splits layers between MATCH
and Deeploy (Sec. 5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.compiler.ir import Graph, Node
from repro.compiler.tiling import TileSolution, tile_conv, tile_fc
from repro.kernels.cost_model import (
    CostParams,
    CycleBreakdown,
    DEFAULT_PARAMS,
    conv_layer_cycles,
    fc_layer_cycles,
    weight_stream_bytes,
)
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import NMFormat

__all__ = ["CompileConfig", "LayerPlan", "DeeployModel", "lower_graph"]


@dataclass(frozen=True)
class DeeployModel:
    """Latency constants of the fallback (Deeploy) kernels.

    Cluster-level figures for the 8-core target: GEMM throughput for
    attention matmuls, and per-element costs for the integer softmax /
    layernorm / GELU kernels.  Calibrated once against the paper's
    dense ViT end-to-end figure (Table 2), then held fixed across all
    sparsity variants (attention is never sparsified).
    """

    gemm_macs_per_cycle: float = 9.0
    softmax_cycles_per_elem: float = 18.0
    layernorm_cycles_per_elem: float = 18.0
    gelu_cycles_per_elem: float = 18.0
    elementwise_cycles_per_elem: float = 0.25
    pool_cycles_per_elem: float = 1.0
    node_setup_cycles: float = 2000.0


@dataclass(frozen=True)
class CompileConfig:
    """Compilation options.

    Attributes
    ----------
    use_sparse:
        Lower pattern-matched layers to sparse kernels.
    use_isa:
        Use the xDecimate kernels (requires the XFU) instead of SW-only.
    dense_conv_variant:
        Baseline conv kernel ("dense-4x2" = PULP-NN or "dense-1x2").
    format_aware_tiling:
        Account true bits/weight in the tiler (Sec. 4.4 feature 2).
    interleaved_layout:
        Weights+indices interleaved per tile in L2 (feature 3).
    """

    use_sparse: bool = True
    use_isa: bool = False
    dense_conv_variant: str = "dense-4x2"
    format_aware_tiling: bool = True
    interleaved_layout: bool = True
    cost_params: CostParams = DEFAULT_PARAMS
    deeploy: DeeployModel = DeeployModel()


@dataclass
class LayerPlan:
    """One node's lowering decision and price."""

    node_name: str
    op: str
    kind: str  # "conv" | "fc" | "fallback"
    variant: str  # kernel engine or fallback kernel name
    fmt: NMFormat | None
    macs: int
    cycles: float
    weight_bytes: float
    tiles: TileSolution | None = None
    breakdown: CycleBreakdown | None = None


def _plan_conv(node: Node, cfg: CompileConfig) -> LayerPlan:
    w = node.attrs["weights"]
    k, fy, fx, c = w.shape
    oy, ox, _ = node.out_shape
    iy, ix, cin = node.attrs.get("in_shape", (0, 0, c))
    shape = ConvShape(
        iy=node.attrs["in_hw"][0],
        ix=node.attrs["in_hw"][1],
        c=c,
        k=k,
        fy=fy,
        fx=fx,
        s=node.attrs["s"],
        p=node.attrs["p"],
    )
    fmt = node.attrs.get("sparse_fmt") if cfg.use_sparse else None
    if fmt is not None:
        variant = "sparse-isa" if cfg.use_isa else "sparse-sw"
    else:
        variant = cfg.dense_conv_variant
        if variant == "dense-4x2" and k % 4:
            variant = "dense-1x2"
    tiles = tile_conv(
        shape, fmt, variant, format_aware=cfg.format_aware_tiling
    )
    breakdown = conv_layer_cycles(shape, variant, fmt, cfg.cost_params)
    extra_dma = 0.0
    if not cfg.interleaved_layout and fmt is not None:
        # Separate value/index arenas double the weight DMA transactions.
        extra_dma = tiles.n_tiles * 40.0
    wbytes = weight_stream_bytes("conv", variant, k, shape.reduce_dim, fmt)
    return LayerPlan(
        node_name=node.name,
        op=node.op,
        kind="conv",
        variant=variant,
        fmt=fmt,
        macs=shape.macs,
        cycles=breakdown.total + extra_dma,
        weight_bytes=wbytes,
        tiles=tiles,
        breakdown=breakdown,
    )


def _plan_dense(node: Node, cfg: CompileConfig) -> LayerPlan:
    w = node.attrs["weights"]
    k, c = w.shape
    tokens = int(np.prod(node.out_shape[:-1])) if len(node.out_shape) > 1 else 1
    shape = FcShape(c=c, k=k, tokens=tokens)
    fmt = node.attrs.get("sparse_fmt") if cfg.use_sparse else None
    if fmt is not None:
        variant = "sparse-isa" if cfg.use_isa else "sparse-sw"
        if variant == "sparse-isa" and k % 2:
            variant = "sparse-sw"
    else:
        variant = "dense"
    tiles = tile_fc(shape, fmt, variant, format_aware=cfg.format_aware_tiling)
    breakdown = fc_layer_cycles(shape, variant, fmt, cfg.cost_params)
    extra_dma = 0.0
    if not cfg.interleaved_layout and fmt is not None:
        extra_dma = tokens * tiles.n_tiles * 40.0
    wbytes = weight_stream_bytes("fc", variant, k, c, fmt)
    return LayerPlan(
        node_name=node.name,
        op=node.op,
        kind="fc",
        variant=variant,
        fmt=fmt,
        macs=shape.macs,
        cycles=breakdown.total + extra_dma,
        weight_bytes=wbytes,
        tiles=tiles,
        breakdown=breakdown,
    )


def _plan_fallback(node: Node, cfg: CompileConfig) -> LayerPlan:
    """Deeploy-style cost for ops MATCH does not accelerate."""
    d = cfg.deeploy
    elems = int(np.prod(node.out_shape))
    macs = 0
    wbytes = 0.0
    if node.op == "attention":
        t, dim = node.out_shape
        heads = node.attrs["heads"]
        proj_macs = 4 * t * dim * dim
        attn_macs = 2 * t * t * dim
        macs = proj_macs + attn_macs
        softmax = heads * t * t * d.softmax_cycles_per_elem
        cycles = macs / d.gemm_macs_per_cycle + softmax + d.node_setup_cycles
        wbytes = 4 * dim * dim
    elif node.op == "layernorm":
        cycles = elems * d.layernorm_cycles_per_elem + d.node_setup_cycles
    elif node.op == "gelu":
        cycles = elems * d.gelu_cycles_per_elem + d.node_setup_cycles
    elif node.op in ("relu", "add"):
        cycles = elems * d.elementwise_cycles_per_elem + d.node_setup_cycles
    elif node.op in ("maxpool", "avgpool", "global_avgpool", "token_mean"):
        cycles = elems * d.pool_cycles_per_elem + d.node_setup_cycles
    elif node.op in ("input", "flatten", "tokens"):
        cycles = 0.0
    else:
        raise ValueError(f"no lowering for op {node.op!r}")
    return LayerPlan(
        node_name=node.name,
        op=node.op,
        kind="fallback",
        variant="deeploy",
        fmt=None,
        macs=macs,
        cycles=cycles,
        weight_bytes=wbytes,
    )


def lower_graph(graph: Graph, cfg: CompileConfig | None = None) -> list[LayerPlan]:
    """Lower every node of an annotated graph to a :class:`LayerPlan`.

    Conv nodes need their input spatial dims; the generator fills them
    from the producer's output shape.
    """
    cfg = cfg or CompileConfig()
    plans: list[LayerPlan] = []
    for node in graph:
        if node.op == "conv2d":
            src_shape = graph.node(node.inputs[0]).out_shape
            node.attrs["in_hw"] = (src_shape[0], src_shape[1])
            plans.append(_plan_conv(node, cfg))
        elif node.op == "dense":
            plans.append(_plan_dense(node, cfg))
        else:
            plans.append(_plan_fallback(node, cfg))
    return plans
