"""Graph intermediate representation.

A :class:`Graph` is an ordered collection of named :class:`Node` ops in
topological order (builders append nodes after their inputs).  Weights
live in ``node.attrs`` as numpy arrays; activation shapes are inferred
on construction for the ops the models use.

Supported ops
-------------
``input``        placeholder; attrs: ``shape``
``conv2d``       attrs: weights (K, FY, FX, C) float, bias (K,), s, p
``dense``        attrs: weights (K, C) float, bias (K,), ``tokens``
``relu``         elementwise
``gelu``         elementwise
``add``          two inputs, elementwise
``maxpool``      attrs: size, stride (``size``-sized windows stepped by
                 ``stride``, HWC; edge windows are clipped)
``global_avgpool``  NHWC -> C vector
``layernorm``    attrs: gamma, beta (last-dim normalisation)
``attention``    attrs: wq, wk, wv, wo (D, D), heads; token-major input
``flatten``      collapse to 1-D
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

__all__ = ["Node", "Graph"]

_ELEMENTWISE = {"relu", "gelu"}


@dataclass
class Node:
    """One operation in the graph.

    Attributes
    ----------
    name:
        Unique identifier within the graph.
    op:
        Operation kind (see module docstring).
    inputs:
        Names of producer nodes.
    attrs:
        Op-specific attributes (weights, strides, ...).
    out_shape:
        Inferred activation shape produced by this node.
    """

    name: str
    op: str
    inputs: list[str] = field(default_factory=list)
    attrs: dict[str, Any] = field(default_factory=dict)
    out_shape: tuple[int, ...] = ()


class Graph:
    """A topologically ordered DNN graph with single-output nodes."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.nodes: dict[str, Node] = {}
        self.output: str | None = None

    # -- construction ---------------------------------------------------

    def _add(self, node: Node) -> str:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node {node.name!r}")
        for dep in node.inputs:
            if dep not in self.nodes:
                raise ValueError(
                    f"node {node.name!r} references unknown input {dep!r}"
                )
        self.nodes[node.name] = node
        self.output = node.name
        return node.name

    def _src(self, name: str) -> Node:
        """Look up a producer node, with a builder-friendly error."""
        try:
            return self.nodes[name]
        except KeyError:
            raise ValueError(f"unknown input node {name!r}") from None

    def add_input(self, name: str, shape: tuple[int, ...]) -> str:
        """Add the graph input placeholder."""
        return self._add(Node(name, "input", [], {"shape": shape}, shape))

    def add_conv2d(
        self,
        name: str,
        src: str,
        weights: np.ndarray,
        bias: np.ndarray | None = None,
        s: int = 1,
        p: int = 1,
    ) -> str:
        """Add a conv2d; input/weight channel agreement is validated."""
        iy, ix, c = self._src(src).out_shape
        k, fy, fx, wc = weights.shape
        if wc != c:
            raise ValueError(
                f"{name}: weight channels {wc} != input channels {c}"
            )
        oy = (iy + 2 * p - fy) // s + 1
        ox = (ix + 2 * p - fx) // s + 1
        attrs = {"weights": weights, "bias": bias, "s": s, "p": p}
        return self._add(Node(name, "conv2d", [src], attrs, (oy, ox, k)))

    def add_dense(
        self,
        name: str,
        src: str,
        weights: np.ndarray,
        bias: np.ndarray | None = None,
    ) -> str:
        """Add a dense (FC) layer over the last input dimension."""
        in_shape = self._src(src).out_shape
        k, c = weights.shape
        if in_shape[-1] != c:
            raise ValueError(f"{name}: weight cols {c} != input dim {in_shape[-1]}")
        out_shape = (*in_shape[:-1], k)
        attrs = {"weights": weights, "bias": bias}
        return self._add(Node(name, "dense", [src], attrs, out_shape))

    def add_elementwise(self, name: str, op: str, src: str) -> str:
        if op not in _ELEMENTWISE:
            raise ValueError(f"not an elementwise op: {op}")
        return self._add(
            Node(name, op, [src], {}, self._src(src).out_shape)
        )

    def add_add(self, name: str, a: str, b: str) -> str:
        sa, sb = self._src(a).out_shape, self._src(b).out_shape
        if sa != sb:
            raise ValueError(f"{name}: shape mismatch {sa} vs {sb}")
        return self._add(Node(name, "add", [a, b], {}, sa))

    def add_maxpool(self, name: str, src: str, size: int = 2, stride: int = 2) -> str:
        iy, ix, c = self._src(src).out_shape
        out = (iy // stride, ix // stride, c)
        return self._add(
            Node(name, "maxpool", [src], {"size": size, "stride": stride}, out)
        )

    def add_avgpool(self, name: str, src: str, size: int = 2, stride: int = 2) -> str:
        iy, ix, c = self._src(src).out_shape
        out = (iy // stride, ix // stride, c)
        return self._add(
            Node(name, "avgpool", [src], {"size": size, "stride": stride}, out)
        )

    def add_global_avgpool(self, name: str, src: str) -> str:
        _, _, c = self._src(src).out_shape
        return self._add(Node(name, "global_avgpool", [src], {}, (c,)))

    def add_layernorm(
        self, name: str, src: str, gamma: np.ndarray, beta: np.ndarray
    ) -> str:
        shape = self._src(src).out_shape
        return self._add(
            Node(name, "layernorm", [src], {"gamma": gamma, "beta": beta}, shape)
        )

    def add_attention(
        self,
        name: str,
        src: str,
        wq: np.ndarray,
        wk: np.ndarray,
        wv: np.ndarray,
        wo: np.ndarray,
        heads: int,
    ) -> str:
        t, d = self._src(src).out_shape
        for label, w in (("wq", wq), ("wk", wk), ("wv", wv), ("wo", wo)):
            if w.shape != (d, d):
                raise ValueError(f"{name}: {label} must be ({d}, {d})")
        if d % heads:
            raise ValueError(f"{name}: dim {d} not divisible by {heads} heads")
        attrs = {"wq": wq, "wk": wk, "wv": wv, "wo": wo, "heads": heads}
        return self._add(Node(name, "attention", [src], attrs, (t, d)))

    def add_flatten(self, name: str, src: str) -> str:
        shape = self._src(src).out_shape
        flat = int(np.prod(shape))
        return self._add(Node(name, "flatten", [src], {}, (flat,)))

    def add_tokens(self, name: str, src: str) -> str:
        """Reshape an (H, W, C) map into (H*W, C) token-major form."""
        iy, ix, c = self._src(src).out_shape
        return self._add(Node(name, "tokens", [src], {}, (iy * ix, c)))

    def add_token_mean(self, name: str, src: str) -> str:
        """Mean over the token axis: (T, C) -> (C,)."""
        _, c = self._src(src).out_shape
        return self._add(Node(name, "token_mean", [src], {}, (c,)))

    # -- traversal --------------------------------------------------------

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes.values())

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def compute_nodes(self) -> list[Node]:
        """Nodes carrying MACs (conv2d / dense / attention)."""
        return [n for n in self if n.op in ("conv2d", "dense", "attention")]

    def validate(self) -> None:
        """Check topological consistency (inputs precede consumers)."""
        seen: set[str] = set()
        for node in self:
            for dep in node.inputs:
                if dep not in seen:
                    raise ValueError(
                        f"node {node.name!r} consumes {dep!r} before definition"
                    )
            seen.add(node.name)
        if self.output is None:
            raise ValueError("empty graph")
