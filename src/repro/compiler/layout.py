"""Interleaved L2 weight storage (paper Sec. 4.4, feature 3).

For a layer tiled over K output channels, MATCH stores each tile's
compressed weights immediately followed by the corresponding packed
indices, so a single DMA transaction fetches both.  The alternative —
separate value and index arenas — needs two transactions per tile
(one per arena), doubling DMA setup costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.memory import DmaModel
from repro.kernels import microcode as mc
from repro.sparsity.nm import NMSparseMatrix

__all__ = ["WeightTileLayout", "build_interleaved_tiles", "dma_cycles_for_layout"]


@dataclass(frozen=True)
class WeightTileLayout:
    """L2 image of one layer's weights, tiled over output channels.

    Attributes
    ----------
    tiles:
        One byte blob per K-tile; with the interleaved policy each blob
        is ``values || packed offsets`` for that tile's channels.
    interleaved:
        Whether values and indices share each blob (one DMA transfer)
        or live in separate arenas (two transfers per tile).
    """

    tiles: list[np.ndarray]
    interleaved: bool

    @property
    def total_bytes(self) -> int:
        return int(sum(t.size for t in self.tiles))

    @property
    def transfers_per_tile(self) -> int:
        return 1 if self.interleaved else 2

    @property
    def total_transfers(self) -> int:
        # Each blob is one DMA transaction; the non-interleaved layout
        # already stores two blobs per K-tile.
        return len(self.tiles)


def build_interleaved_tiles(
    mat: NMSparseMatrix,
    k_tile: int,
    engine: str = "sparse-sw",
    interleaved: bool = True,
    kind: str = "conv",
) -> WeightTileLayout:
    """Build the L2 byte image of an N:M layer's weights.

    Parameters
    ----------
    mat:
        The layer's sparse weights.
    k_tile:
        Channels per tile; must divide the channel count.
    engine:
        "sparse-sw" or "sparse-isa" — selects the offsets encoding
        (plain vs the ISA streams of Sec. 4.1.3/4.2.3).
    interleaved:
        Interleave values and offsets per tile (the paper's policy), or
        keep them separate (ablation baseline).
    kind:
        "conv" or "fc".  Only the ISA engine distinguishes them:
        conv tiles carry the duplicated-offset stream, FC tiles the
        channel-pair interleaved stream (so ``k_tile`` must be even —
        a pair's shared OFFSETS words cannot straddle two tiles).
    """
    if mat.rows % k_tile:
        raise ValueError(f"k_tile {k_tile} does not divide K={mat.rows}")
    if kind not in ("conv", "fc"):
        raise ValueError(f"unknown layer kind {kind!r}")
    # Offsets stream rows: one per channel, except the ISA FC layout
    # which merges channel pairs into one interleaved stream row.
    stream_rows = mat.rows
    if engine == "sparse-sw":
        vals, offs, nnz_pad = mc.pack_sparse_rows_sw(mat)
    elif engine == "sparse-isa":
        if kind == "fc":
            if k_tile % 2:
                raise ValueError(
                    "ISA FC tiles interleave channel pairs; "
                    f"k_tile must be even, got {k_tile}"
                )
            vals, offs, nnz_pad = mc.pack_sparse_rows_isa_fc(mat)
            stream_rows = mat.rows // 2
        else:
            vals, offs, nnz_pad = mc.pack_sparse_rows_isa_conv(mat)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    off_row_bytes = len(offs) // stream_rows
    vals = vals.view(np.uint8).reshape(mat.rows, -1)
    offs = offs.reshape(stream_rows, off_row_bytes)
    rows_per_tile = k_tile * stream_rows // mat.rows
    tiles = []
    for k0 in range(0, mat.rows, k_tile):
        v = vals[k0 : k0 + k_tile].reshape(-1)
        s0 = k0 * stream_rows // mat.rows
        o = offs[s0 : s0 + rows_per_tile].reshape(-1)
        if interleaved:
            tiles.append(np.concatenate([v, o]))
        else:
            # Separate arenas: values and offsets are distinct blobs,
            # each needing its own DMA transaction per tile.
            tiles.append(v)
            tiles.append(o)
    return WeightTileLayout(tiles=tiles, interleaved=interleaved)


def dma_cycles_for_layout(layout: WeightTileLayout, dma: DmaModel) -> float:
    """Total DMA time to stream every tile of a layout once."""
    if layout.interleaved:
        return sum(dma.cycles(t.size) for t in layout.tiles)
    total = 0.0
    for tile in layout.tiles:
        total += dma.cycles(tile.size)
    return total
