"""Sparsity pattern recognition (paper Sec. 4.4, feature 1).

MATCH's first compilation step associates graph patterns with
acceleration targets.  The paper extends the PULP conv/FC patterns with
a constraint on the weight *values*: if every M-block of a layer's
(quantised) weight matrix holds at most N non-zeros, the layer can be
lowered to the corresponding N:M sparse kernel.

``detect_format`` returns the most compressive supported format a
weight matrix satisfies (1:16 ⊂ 1:8 ⊂ 1:4, so the largest M wins);
``annotate_sparsity`` runs it over a whole graph, storing the result in
``node.attrs["sparse_fmt"]``.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.ir import Graph, Node
from repro.sparsity.nm import NMFormat, SUPPORTED_FORMATS
from repro.sparsity.stats import is_nm_sparse

__all__ = ["detect_format", "annotate_sparsity", "sparsity_report"]

#: Formats ordered most-compressive first.
_FORMATS_BY_M = sorted(
    SUPPORTED_FORMATS.values(), key=lambda f: f.m, reverse=True
)


def _weight_matrix(node: Node) -> np.ndarray | None:
    """The 2-D reduce-major weight view the kernels consume."""
    if node.op == "conv2d":
        w = node.attrs["weights"]
        return np.asarray(w).reshape(w.shape[0], -1)
    if node.op == "dense":
        return np.asarray(node.attrs["weights"])
    return None


def detect_format(weights: np.ndarray) -> NMFormat | None:
    """Most compressive supported N:M format ``weights`` satisfies.

    Returns None for dense (or unsupported-pattern) matrices and for
    reduce dimensions not divisible by the block size.  Fully-zero
    matrices are treated as dense — lowering them to a sparse kernel
    would be legal but pointless.
    """
    weights = np.asarray(weights)
    if weights.ndim != 2 or not weights.size or not (weights != 0).any():
        return None
    for fmt in _FORMATS_BY_M:
        if weights.shape[1] % fmt.m == 0 and is_nm_sparse(weights, fmt):
            return fmt
    return None


def annotate_sparsity(graph: Graph) -> Graph:
    """Annotate conv2d/dense nodes with their detected format (in place).

    Uses the *quantised* weights when present (``attrs["weights_q"]``,
    set by the quantisation pass) since those are what the kernels see;
    otherwise the float weights' zero pattern.

    An explicitly pre-set ``node.attrs["sparse_fmt"]`` is **never**
    clobbered: callers can force a specific format on a layer (as long
    as the weights satisfy it — the packer validates), or force a layer
    dense by pre-setting ``sparse_fmt`` to None.
    """
    for node in graph:
        if "sparse_fmt" in node.attrs:
            continue  # explicit caller override — keep it
        mat = None
        if "weights_q" in node.attrs:
            w = node.attrs["weights_q"]
            mat = np.asarray(w).reshape(w.shape[0], -1)
        else:
            mat = _weight_matrix(node)
        if mat is None:
            continue
        node.attrs["sparse_fmt"] = detect_format(mat)
    return graph


def sparsity_report(graph: Graph) -> list[tuple[str, str, str]]:
    """(node, op, format-or-'dense') rows for annotated graphs."""
    rows = []
    for node in graph:
        if node.op not in ("conv2d", "dense"):
            continue
        fmt = node.attrs.get("sparse_fmt")
        rows.append((node.name, node.op, fmt.name if fmt else "dense"))
    return rows
