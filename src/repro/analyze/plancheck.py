"""Static plan verification: prove plan invariants without executing.

Two entry points mirror the two halves of a compile:

- :func:`check_graph` walks a :class:`~repro.compiler.ir.Graph` *before*
  any weight is packed: abstract shape inference re-derives every op's
  output shape and compares it to the recorded one, int8 quantisation
  metadata is checked for dtype/scale consistency, and N:M sparsity
  annotations are proven legal for each layer's geometry — so an
  illegal ``1:16`` on a too-narrow FC is a structured diagnostic here
  instead of a ``ValueError`` deep inside ``NMSparseMatrix.from_dense``
  (or an IndexError under traffic).

- :func:`verify_plan` inspects a compiled
  :class:`~repro.engine.plan.ExecutionPlan`: every packed layout's
  gather/ISA offsets are proven in-bounds from its
  :class:`~repro.sparsity.nm.NMSparseMatrix` metadata, kernel-choice
  variants are re-checked against
  :func:`repro.kernels.cost_model.variant_supported`, and the byte
  accounting must agree end to end — packed layout bytes ==
  :class:`~repro.engine.plan.KernelChoice` bytes == the plan's reported
  ``weight_bytes()`` (== the shared-memory segment sizes under sharded
  serving, and <= ``max_weight_bytes`` when a budget is given).

:func:`check_cache_keys` closes the third gap: the plan-cache key must
cover every plan-affecting compile knob.  ``engine/plan.py`` declares
the knob registry (:data:`~repro.engine.plan.PLAN_KNOBS`); this check
fails if a ``compile_plan`` parameter is undeclared, or if a declared
key-relevant knob's probe configurations collapse to the same cache
key — the mechanical version of the PR-5 ``+acc64`` key-bug review.

All checks emit :class:`~repro.analyze.diagnostics.Diagnostic` records;
none of them executes a kernel or allocates more than metadata.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.analyze.diagnostics import ERROR, WARNING, Diagnostic
from repro.kernels.cost_model import variant_supported
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import NMFormat, SUPPORTED_FORMATS

if TYPE_CHECKING:
    from repro.compiler.ir import Graph, Node
    from repro.engine.plan import ExecutionPlan

__all__ = [
    "PLAN_RULES",
    "check_graph",
    "verify_plan",
    "check_cache_keys",
    "check_model",
]

#: Rule catalog: id -> one-line invariant (docs/analysis.md holds the
#: full rationale per rule).
PLAN_RULES = {
    "plan-shape": (
        "abstract shape inference agrees with every node's recorded "
        "out_shape and all op preconditions hold"
    ),
    "plan-quant": (
        "int8 quantisation metadata is complete and consistent "
        "(int8 weights_q matching the float weights, positive finite "
        "scales)"
    ),
    "plan-sparse-format": (
        "every N:M sparsity annotation is legal for its layer's "
        "geometry (reduce dim divisible by M, known method overrides)"
    ),
    "plan-kernel-choice": (
        "each bound kernel variant passes variant_supported for its "
        "layer geometry and format"
    ),
    "plan-offset-bounds": (
        "packed gather/ISA offsets are provably in-bounds from the "
        "NMSparseMatrix metadata"
    ),
    "plan-bytes": (
        "packed layout bytes == kernel-choice bytes == plan "
        "weight_bytes() == shared-memory segment sizes"
    ),
    "plan-budget": "the plan fits the deployment's max_weight_bytes",
    "plan-cache-key": (
        "every plan-affecting compile knob is declared and reaches the "
        "plan-cache key"
    ),
    "plan-act-skip": (
        "activation-skip metadata is consistent: a skip-bound kernel "
        "choice is gather-bound under an enabled plan knob and carries "
        "a density estimate in [0, 1]; non-skip choices carry none"
    ),
}


# -- abstract shape inference -------------------------------------------


def _pool_shape(in_shape, node) -> tuple[int, ...] | str:
    if len(in_shape) != 3:
        return f"expects an (H, W, C) input, got {in_shape}"
    iy, ix, c = in_shape
    stride = node.attrs.get("stride")
    if not stride or stride < 1:
        return f"stride must be >= 1, got {stride!r}"
    return (iy // stride, ix // stride, c)


def _infer_shape(node: "Node", in_shapes) -> tuple[int, ...] | str | None:
    """Re-derive ``node``'s output shape from its producers' shapes.

    Returns the inferred shape tuple, an error string when an op
    precondition is violated, or None for an op the engine cannot
    compile (reported as its own diagnostic).
    """
    op = node.op
    if op == "input":
        return tuple(node.attrs["shape"])
    x = in_shapes[0]
    if op == "conv2d":
        if len(x) != 3:
            return f"expects an (H, W, C) input, got {x}"
        iy, ix, c = x
        w = np.asarray(node.attrs["weights"])
        if w.ndim != 4:
            return f"weights must be (K, FY, FX, C), got {w.shape}"
        k, fy, fx, wc = w.shape
        if wc != c:
            return f"weight channels {wc} != input channels {c}"
        s, p = node.attrs.get("s", 1), node.attrs.get("p", 1)
        oy = (iy + 2 * p - fy) // s + 1
        ox = (ix + 2 * p - fx) // s + 1
        if oy < 1 or ox < 1:
            return (
                f"kernel {fy}x{fx} stride {s} pad {p} collapses the "
                f"{iy}x{ix} map to {oy}x{ox}"
            )
        return (oy, ox, k)
    if op == "dense":
        w = np.asarray(node.attrs["weights"])
        if w.ndim != 2:
            return f"weights must be (K, C), got {w.shape}"
        k, c = w.shape
        if x[-1] != c:
            return f"weight cols {c} != input dim {x[-1]}"
        return (*x[:-1], k)
    if op in ("relu", "gelu"):
        return x
    if op == "add":
        if in_shapes[0] != in_shapes[1]:
            return f"input shapes differ: {in_shapes[0]} vs {in_shapes[1]}"
        return x
    if op in ("maxpool", "avgpool"):
        return _pool_shape(x, node)
    if op == "global_avgpool":
        if len(x) != 3:
            return f"expects an (H, W, C) input, got {x}"
        return (x[2],)
    if op == "layernorm":
        gamma = np.asarray(node.attrs["gamma"])
        if gamma.shape != (x[-1],):
            return f"gamma shape {gamma.shape} != last dim ({x[-1]},)"
        return x
    if op == "attention":
        if len(x) != 2:
            return f"expects a (T, D) token input, got {x}"
        t, d = x
        heads = node.attrs.get("heads", 0)
        if heads < 1 or d % heads:
            return f"dim {d} not divisible by {heads} heads"
        for key in ("wq", "wk", "wv", "wo"):
            w = np.asarray(node.attrs[key])
            if w.shape != (d, d):
                return f"{key} shape {w.shape} != ({d}, {d})"
        return (t, d)
    if op == "flatten":
        return (int(np.prod(x)),)
    if op == "tokens":
        if len(x) != 3:
            return f"expects an (H, W, C) input, got {x}"
        return (x[0] * x[1], x[2])
    if op == "token_mean":
        if len(x) != 2:
            return f"expects a (T, C) token input, got {x}"
        return (x[1],)
    return None


def _reduce_dim(node: "Node") -> int:
    """Flattened reduce dimension the N:M pattern runs over."""
    w = np.asarray(node.attrs["weights"])
    return int(np.prod(w.shape[1:]))


def _check_quant(node: "Node", out: list[Diagnostic]) -> None:
    """int8 metadata consistency for one conv/dense node."""
    attrs = node.attrs
    present = [k for k in ("weights_q", "w_scale", "act_scale") if k in attrs]
    if not present:
        return  # unquantised nodes keep the documented float fallback
    missing = [
        k for k in ("weights_q", "w_scale", "act_scale") if k not in attrs
    ]
    if missing:
        out.append(
            Diagnostic(
                "plan-quant",
                ERROR,
                node.name,
                f"partial int8 metadata: has {present}, missing {missing}",
                hint="quantize_graph attaches all three together",
            )
        )
        return
    wq = np.asarray(attrs["weights_q"])
    w = np.asarray(attrs["weights"])
    if wq.dtype != np.int8:
        out.append(
            Diagnostic(
                "plan-quant",
                ERROR,
                node.name,
                f"weights_q dtype {wq.dtype} is not int8 — the integer "
                "kernels accumulate int8 x int8 into int32",
                hint="re-quantise; float scales never reach the kernel",
            )
        )
    if wq.shape != w.shape:
        out.append(
            Diagnostic(
                "plan-quant",
                ERROR,
                node.name,
                f"weights_q shape {wq.shape} != weights shape {w.shape}",
            )
        )
    for key in ("w_scale", "act_scale"):
        scale = float(attrs[key])
        if not np.isfinite(scale) or scale <= 0:
            out.append(
                Diagnostic(
                    "plan-quant",
                    ERROR,
                    node.name,
                    f"{key} must be a positive finite float, got {scale!r}",
                    hint="a zero/NaN scale makes dequantisation undefined",
                )
            )


def _check_sparse_annotations(node: "Node", out: list[Diagnostic]) -> None:
    """N:M annotation legality for one conv/dense node (sparse plans)."""
    method = node.attrs.get("sparse_method")
    if method is not None and method not in ("gather", "dense"):
        out.append(
            Diagnostic(
                "plan-sparse-format",
                ERROR,
                node.name,
                f"unknown sparse_method override {method!r}",
                hint="expected 'gather' or 'dense'",
            )
        )
    if "sparse_fmt" not in node.attrs:
        return
    fmt = node.attrs["sparse_fmt"]
    if fmt is None:
        return  # an explicit None forces the layer dense — always legal
    if not isinstance(fmt, NMFormat):
        out.append(
            Diagnostic(
                "plan-sparse-format",
                ERROR,
                node.name,
                f"sparse_fmt must be an NMFormat or None, got {type(fmt).__name__}",
            )
        )
        return
    r = _reduce_dim(node)
    if r % fmt.m:
        out.append(
            Diagnostic(
                "plan-sparse-format",
                ERROR,
                node.name,
                f"format {fmt.name} cannot pack the layer: reduce dim "
                f"{r} is not a multiple of M={fmt.m}",
                hint=(
                    "drop the annotation (the layer stays dense) or pick "
                    "a format whose M divides the reduce dimension"
                ),
            )
        )
        return
    if fmt.name not in SUPPORTED_FORMATS:
        out.append(
            Diagnostic(
                "plan-sparse-format",
                WARNING,
                node.name,
                f"format {fmt.name} is outside the paper set "
                f"({', '.join(sorted(SUPPORTED_FORMATS))}): it runs via "
                "the SW gather but is unmodelled by the cost model",
            )
        )


def check_graph(
    graph: "Graph",
    mode: str = "float",
    sparse: bool = False,
    select_fmt: bool = False,
    accuracy_budget: float = 0.0,
    backend: str = "sw",
    accum_dtype: str | None = None,
    act_skip: str = "off",
) -> list[Diagnostic]:
    """Pre-compile static checks over ``graph`` for one knob setting.

    Runs abstract shape inference over every node (``plan-shape``),
    int8 metadata consistency in int8 mode (``plan-quant``), and — for
    sparse plans — N:M annotation legality (``plan-sparse-format``).
    Pure metadata walk: no weight is packed, no kernel is bound.
    """
    # shape-neutral knobs
    del select_fmt, accuracy_budget, backend, accum_dtype, act_skip
    out: list[Diagnostic] = []
    known: dict[str, tuple[int, ...]] = {}
    for node in graph:
        in_shapes = []
        resolvable = True
        for dep in node.inputs:
            if dep not in known:
                resolvable = False  # graph.validate() reports topology
                break
            in_shapes.append(known[dep])
        recorded = tuple(node.out_shape)
        known[node.name] = recorded
        if not resolvable:
            continue
        inferred = _infer_shape(node, in_shapes)
        if inferred is None:
            out.append(
                Diagnostic(
                    "plan-shape",
                    ERROR,
                    node.name,
                    f"the engine cannot compile op {node.op!r}",
                    hint="see repro.compiler.ir for the supported op set",
                )
            )
            continue
        if isinstance(inferred, str):
            out.append(
                Diagnostic("plan-shape", ERROR, node.name, inferred)
            )
            continue
        if inferred != recorded:
            out.append(
                Diagnostic(
                    "plan-shape",
                    ERROR,
                    node.name,
                    f"recorded out_shape {recorded} != inferred {inferred} "
                    f"for op {node.op!r}",
                    hint=(
                        "the graph was mutated after construction; "
                        "rebuild it through the Graph builders"
                    ),
                )
            )
            continue
        known[node.name] = inferred
        if node.op in ("conv2d", "dense"):
            if mode == "int8":
                _check_quant(node, out)
            if sparse:
                _check_sparse_annotations(node, out)
    return out


# -- compiled-plan checks ------------------------------------------------


def _layer_shape(plan: "ExecutionPlan", name: str) -> ConvShape | FcShape | None:
    return plan.conv_shapes.get(name) or plan.fc_shapes.get(name)


def _check_layout_bounds(
    name: str, layout, out: list[Diagnostic]
) -> None:
    """Offset/gather in-bounds proof for one packed layout."""
    matrix = layout.matrix
    if matrix is not None:
        fmt = matrix.fmt
        offsets = np.asarray(matrix.offsets)
        expected = matrix.dense_cols // fmt.m * fmt.n
        if offsets.shape != matrix.values.shape or (
            offsets.ndim != 2 or offsets.shape[1] != expected
        ):
            out.append(
                Diagnostic(
                    "plan-offset-bounds",
                    ERROR,
                    name,
                    f"packed arrays inconsistent: values "
                    f"{matrix.values.shape}, offsets {offsets.shape}, "
                    f"expected (*, {expected}) for {fmt.name} over "
                    f"{matrix.dense_cols} dense cols",
                )
            )
            return
        if offsets.size and int(offsets.max()) >= fmt.m:
            out.append(
                Diagnostic(
                    "plan-offset-bounds",
                    ERROR,
                    name,
                    f"offset {int(offsets.max())} escapes its "
                    f"M={fmt.m} block — the gather would read a "
                    "neighbouring block's weight",
                    hint="the packed stream is corrupt; re-pack from dense",
                )
            )
    if layout.gather_idx is not None and layout.gather_idx.size:
        gi = layout.gather_idx
        lo, hi = int(gi.min()), int(gi.max())
        limit = matrix.dense_cols if matrix is not None else None
        if lo < 0 or (limit is not None and hi >= limit):
            out.append(
                Diagnostic(
                    "plan-offset-bounds",
                    ERROR,
                    name,
                    f"gather addresses span [{lo}, {hi}] but the dense "
                    f"reduce dimension is {limit} — out-of-bounds "
                    "activation reads at run time",
                    hint="the decoded gather stream is corrupt",
                )
            )


def _expected_layout_bytes(layout) -> int | None:
    """Deployable bytes the layout *should* report, from its matrix."""
    matrix = layout.matrix
    if matrix is None:
        return None
    return matrix.total_bytes(
        duplicate_offsets=(layout.layout == "isa-conv")
    )


def verify_plan(
    plan: "ExecutionPlan",
    graph: "Graph | None" = None,
    store=None,
    max_weight_bytes: int | None = None,
) -> list[Diagnostic]:
    """Post-compile static checks over a bound :class:`ExecutionPlan`.

    Validates, without executing a single step: kernel-choice legality
    against the layer geometry (``plan-kernel-choice``), packed
    offset/gather bounds from the recorded layouts
    (``plan-offset-bounds``), and byte-accounting consistency between
    layouts, kernel choices, the plan total, and — when ``store`` (a
    :class:`~repro.serve.shm.SharedWeightStore`) is given — the shared
    segments backing the layouts (``plan-bytes``).  With
    ``max_weight_bytes`` set, the plan must fit it (``plan-budget``).

    ``graph`` enables an extra cross-check that every conv/dense node
    has a recorded kernel choice.
    """
    out: list[Diagnostic] = []
    layouts = getattr(plan, "_layouts", {})
    for name, choice in plan.kernel_choices.items():
        shape = _layer_shape(plan, name)
        fmt = SUPPORTED_FORMATS.get(choice.fmt) if choice.fmt else None
        # Registered variant display names are "kind/engine[/fmt]"
        # ("conv/dense-4x2", "conv/sparse-sw/1:8"); the support
        # predicate takes the bare engine name.
        variant = None
        if choice.variant:
            parts = choice.variant.split("/")
            variant = parts[1] if len(parts) > 1 else parts[0]
        if (
            shape is not None
            and variant is not None
            and (variant.startswith("dense") or fmt is not None)
            and not variant_supported(choice.kind, variant, shape, fmt)
        ):
            out.append(
                Diagnostic(
                    "plan-kernel-choice",
                    ERROR,
                    name,
                    f"variant {choice.variant!r} ({choice.kind}, format "
                    f"{choice.fmt}) is not supported for the layer "
                    "geometry",
                    hint="variant_supported() is the single source of truth",
                )
            )
        plan_knob = getattr(plan, "act_skip", "off")
        if choice.act_skip:
            if choice.method != "gather" or choice.backend not in (
                "sparse-sw",
                "sparse-isa",
            ):
                out.append(
                    Diagnostic(
                        "plan-act-skip",
                        ERROR,
                        name,
                        f"act_skip is bound on a {choice.method!r} choice "
                        f"(backend {choice.backend!r}) — skipping is a "
                        "gather-kernel fast path only",
                    )
                )
            if plan_knob == "off":
                out.append(
                    Diagnostic(
                        "plan-act-skip",
                        ERROR,
                        name,
                        "kernel choice carries act_skip but the plan knob "
                        "is 'off'",
                    )
                )
            if choice.act_density is None or not (
                0.0 <= choice.act_density <= 1.0
            ):
                out.append(
                    Diagnostic(
                        "plan-act-skip",
                        ERROR,
                        name,
                        f"act_density estimate {choice.act_density!r} is "
                        "not a density in [0, 1]",
                        hint="calibrate_act_density() stamps the estimate",
                    )
                )
        elif choice.act_density is not None:
            out.append(
                Diagnostic(
                    "plan-act-skip",
                    ERROR,
                    name,
                    f"act_density {choice.act_density!r} recorded on a "
                    "choice that is not skip-bound",
                )
            )
        layout = layouts.get(name)
        if layout is None:
            continue
        _check_layout_bounds(name, layout, out)
        if layout.weight_bytes != choice.weight_bytes:
            out.append(
                Diagnostic(
                    "plan-bytes",
                    ERROR,
                    name,
                    f"packed layout reports {layout.weight_bytes} weight "
                    f"bytes but the kernel choice recorded "
                    f"{choice.weight_bytes}",
                )
            )
        expected = _expected_layout_bytes(layout)
        if expected is not None and layout.weight_bytes != expected:
            out.append(
                Diagnostic(
                    "plan-bytes",
                    ERROR,
                    name,
                    f"layout {layout.layout!r} reports "
                    f"{layout.weight_bytes} bytes but its N:M metadata "
                    f"packs to {expected}",
                )
            )
    if graph is not None:
        for node in graph:
            if (
                node.op in ("conv2d", "dense")
                and node.name not in plan.kernel_choices
            ):
                out.append(
                    Diagnostic(
                        "plan-bytes",
                        ERROR,
                        node.name,
                        "conv/dense node has no recorded kernel choice — "
                        "its bytes are missing from the plan accounting",
                    )
                )
    if layouts and set(layouts) == set(plan.kernel_choices):
        layout_total = sum(lo.weight_bytes for lo in layouts.values())
        if layout_total != plan.weight_bytes():
            out.append(
                Diagnostic(
                    "plan-bytes",
                    ERROR,
                    plan.graph_name,
                    f"packed layouts total {layout_total} bytes but "
                    f"plan.weight_bytes() reports {plan.weight_bytes()}",
                )
            )
    if store is not None:
        for name, layout in layouts.items():
            if layout.shared_key is None:
                continue
            seg = store.segment_bytes(layout.shared_key)
            if seg is None:
                out.append(
                    Diagnostic(
                        "plan-bytes",
                        ERROR,
                        name,
                        f"layout claims shared segment "
                        f"{layout.shared_key!r} but the store has no "
                        "such segment",
                    )
                )
                continue
            needed = sum(
                arr.nbytes
                for arr in (
                    layout.values,
                    layout.packed_offsets,
                    layout.gather_idx,
                )
                if arr is not None
            )
            if seg < needed:
                out.append(
                    Diagnostic(
                        "plan-bytes",
                        ERROR,
                        name,
                        f"shared segment {layout.shared_key!r} holds "
                        f"{seg} bytes but the layout's run-time arrays "
                        f"need {needed}",
                    )
                )
    if (
        max_weight_bytes is not None
        and plan.weight_bytes() > max_weight_bytes
    ):
        out.append(
            Diagnostic(
                "plan-budget",
                ERROR,
                plan.graph_name,
                f"plan needs {plan.weight_bytes()} weight bytes but the "
                f"budget is {max_weight_bytes}",
                hint=(
                    "raise max_weight_bytes, pick a more compressive "
                    "format, or unregister another deployment"
                ),
            )
        )
    return out


# -- cache-key completeness ----------------------------------------------


def check_cache_keys(
    key_fn=None, knobs=None, compile_fn=None
) -> list[Diagnostic]:
    """Prove the plan-cache key covers every plan-affecting knob.

    Three obligations, all reported under ``plan-cache-key``:

    1. every ``compile_plan`` parameter (except the graph and the
       ``verify`` toggle, which never changes the produced plan) is
       declared in :data:`~repro.engine.plan.PLAN_KNOBS`;
    2. every *key-relevant* knob's declared probe pair maps to two
       **distinct** cache keys under ``key_fn`` — a knob that changes
       the plan but not the key silently serves the wrong plan from
       cache (the historical ``+acc64`` bug class);
    3. every *key-neutral* knob declares why it may stay out of the key.

    The defaults check the real registry against the real
    ``_plan_key``; tests inject broken ``key_fn``/``knobs`` to prove
    the check bites.
    """
    if key_fn is None:
        from repro.engine.engine import _plan_key

        key_fn = _plan_key
    if knobs is None:
        from repro.engine.plan import PLAN_KNOBS

        knobs = PLAN_KNOBS
    if compile_fn is None:
        from repro.engine.plan import compile_plan

        compile_fn = compile_plan
    out: list[Diagnostic] = []
    declared = {k.name for k in knobs}
    params = [
        p
        for p in inspect.signature(compile_fn).parameters
        if p not in ("graph", "verify")
    ]
    for p in params:
        if p not in declared:
            out.append(
                Diagnostic(
                    "plan-cache-key",
                    ERROR,
                    f"compile_plan({p})",
                    f"parameter {p!r} is not declared in PLAN_KNOBS — "
                    "the verifier cannot prove it reaches the cache key",
                    hint=(
                        "declare it in repro.engine.plan.PLAN_KNOBS with "
                        "a probe pair (key-relevant) or a reason "
                        "(key-neutral)"
                    ),
                )
            )
    for knob in knobs:
        if not knob.key_relevant:
            if not knob.reason:
                out.append(
                    Diagnostic(
                        "plan-cache-key",
                        ERROR,
                        knob.name,
                        "key-neutral knob declares no justification",
                        hint="explain why two settings may share a plan",
                    )
                )
            continue
        if not knob.probes:
            out.append(
                Diagnostic(
                    "plan-cache-key",
                    ERROR,
                    knob.name,
                    "key-relevant knob declares no probe pair — "
                    "distinctness cannot be proven",
                )
            )
            continue
        a, b = knob.probes
        key_a, key_b = key_fn(**a), key_fn(**b)
        if key_a == key_b:
            out.append(
                Diagnostic(
                    "plan-cache-key",
                    ERROR,
                    knob.name,
                    f"knob does not reach the plan-cache key: probe "
                    f"settings {a} and {b} both map to {key_a!r} — the "
                    "cache would serve one knob setting's plan for the "
                    "other",
                    hint="extend _plan_key to encode the knob",
                )
            )
    return out


# -- whole-model convenience --------------------------------------------


def check_model(
    graph: "Graph",
    mode: str = "float",
    sparse: bool = False,
    select_fmt: bool = False,
    accuracy_budget: float = 0.0,
    backend: str = "sw",
    accum_dtype: str | None = None,
    act_skip: str = "off",
    max_weight_bytes: int | None = None,
) -> list[Diagnostic]:
    """Graph checks + a verified compile for one knob configuration.

    The ``repro check`` CLI's per-configuration unit: run
    :func:`check_graph`; when it is error-free actually compile (with
    the in-line verifier off — :func:`verify_plan` runs explicitly so
    *all* diagnostics are collected instead of raising on the first).
    """
    diags = check_graph(
        graph,
        mode=mode,
        sparse=sparse,
        select_fmt=select_fmt,
        accuracy_budget=accuracy_budget,
        backend=backend,
        accum_dtype=accum_dtype,
        act_skip=act_skip,
    )
    if any(d.severity == ERROR for d in diags):
        return diags
    from repro.engine.plan import compile_plan

    plan = compile_plan(
        graph,
        mode,
        sparse=sparse,
        select_fmt=select_fmt,
        accuracy_budget=accuracy_budget,
        backend=backend,
        accum_dtype=accum_dtype,
        act_skip=act_skip,
        verify=False,
    )
    diags.extend(
        verify_plan(plan, graph, max_weight_bytes=max_weight_bytes)
    )
    return diags


def iter_rules() -> Iterable[tuple[str, str]]:
    """(rule id, invariant) pairs, catalog order."""
    return tuple(PLAN_RULES.items())
