"""Structured diagnostics shared by the plan verifier and the linter.

Every check in :mod:`repro.analyze` reports through the same record —
a :class:`Diagnostic` names the violated rule, where it fired (a layer
name for plan checks, ``file:line`` for lint findings), what is wrong,
and how to fix it.  Tooling (the ``repro check`` / ``repro lint`` CLI,
CI) renders or serialises the records; nothing in here prints.

:class:`PlanVerificationError` is the typed rejection the compile and
serving layers raise when error-severity plan diagnostics survive: it
derives from :class:`ValueError` (an invalid plan configuration *is* a
value error, and pre-verifier callers caught exactly that) and carries
a stable ``code`` so the serving wire protocol can transport it like
any other typed serve error.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ERROR",
    "WARNING",
    "Diagnostic",
    "PlanVerificationError",
    "errors_only",
]

#: Severity levels.  ``error`` diagnostics fail ``repro check`` /
#: ``repro lint`` and make the plan verifier raise; ``warning``
#: diagnostics are reported but do not gate.
ERROR = "error"
WARNING = "warning"
_SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a plan-verifier or lint rule.

    Attributes
    ----------
    rule:
        Stable rule identifier (``plan-*`` for the verifier, lint rule
        ids otherwise) — the key into the docs/analysis.md catalog and
        the ``# repro: allow(<rule>)`` suppression syntax.
    severity:
        ``"error"`` or ``"warning"``.
    where:
        Locus of the finding: a graph/layer name for plan checks,
        ``path:line`` for lint findings.
    message:
        What invariant is violated, with the observed values.
    hint:
        How to fix it (may be empty).
    """

    rule: str
    severity: str
    where: str
    message: str
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"severity must be one of {_SEVERITIES}, got {self.severity!r}"
            )

    def format(self) -> str:
        """One-line human rendering: ``where: severity [rule] message``."""
        line = f"{self.where}: {self.severity} [{self.rule}] {self.message}"
        if self.hint:
            line += f" (hint: {self.hint})"
        return line

    def to_json(self) -> dict:
        """JSON-safe dict (the ``--json`` CLI output shape)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "where": self.where,
            "message": self.message,
            "hint": self.hint,
        }


def errors_only(diagnostics) -> list[Diagnostic]:
    """The error-severity subset, in report order."""
    return [d for d in diagnostics if d.severity == ERROR]


class PlanVerificationError(ValueError):
    """A plan (or its graph) failed static verification.

    Raised by :func:`repro.engine.plan.compile_plan` (``verify=True``)
    and by serving registration before a bad deployment can take
    traffic.  ``diagnostics`` holds the error-severity records behind
    the rejection; ``code`` is the stable wire identifier the serving
    error protocol transports (see :mod:`repro.serve.errors`).
    """

    code = "plan_verification"
    #: Class-level fallback: wire-decoded twins carry only the detail
    #: string, so attribute access stays safe on the receiving side.
    diagnostics: tuple[Diagnostic, ...] = ()

    def __init__(self, diagnostics=(), detail: str | None = None):
        self.diagnostics = tuple(diagnostics)
        if detail is None:
            detail = "; ".join(d.format() for d in self.diagnostics) or (
                "plan verification failed"
            )
        super().__init__(detail)
