"""Static analysis for the repro stack: plan verification + linting.

Two pillars, one diagnostic vocabulary (see
:mod:`repro.analyze.diagnostics`):

- :mod:`repro.analyze.plancheck` proves plan invariants — shapes,
  quantisation metadata, N:M format legality, packed offset bounds,
  byte accounting, cache-key completeness — without executing a plan.
  ``compile_plan(verify=True)`` (the default) and
  ``ModelRegistry.register`` run it; ``repro check`` is the CLI.
- :mod:`repro.analyze.lint` enforces project invariants over the
  source tree; ``repro lint`` is the CLI.

The full rule catalog lives in ``docs/analysis.md``.
"""

from repro.analyze.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    PlanVerificationError,
    errors_only,
)
from repro.analyze.lint import LINT_RULES, lint_file, lint_paths
from repro.analyze.plancheck import (
    PLAN_RULES,
    check_cache_keys,
    check_graph,
    check_model,
    verify_plan,
)

__all__ = [
    "ERROR",
    "WARNING",
    "Diagnostic",
    "PlanVerificationError",
    "errors_only",
    "LINT_RULES",
    "lint_file",
    "lint_paths",
    "PLAN_RULES",
    "check_cache_keys",
    "check_graph",
    "check_model",
    "verify_plan",
]
