"""AST-based project-invariant linter over ``src/repro``.

The rules encode the repo's cross-cutting conventions — the things a
reviewer has to re-check on every PR because no tool enforces them:

- ``tracer-guard``: every tracer call site is guarded by a
  ``tracer is None`` comparison in the enclosing function.  The tracer
  is optional everywhere (PR 7's discipline); an unguarded call is an
  ``AttributeError`` on the first untraced request.
- ``serve-typed-errors``: code under ``serve/`` raises only the typed
  errors of :mod:`repro.serve.errors` (plus validation/transport
  exceptions) — anything else crosses the TCP/pipe boundary as an
  opaque ``serve_error`` and loses its contract.
- ``trace-walltime``: inside :mod:`repro.trace`, wall-clock reads go
  through ``_now_us`` only, so every span shares one clock.
- ``mutable-default``: no mutable default arguments.
- ``bare-except``: no bare ``except:`` — it swallows
  ``KeyboardInterrupt``/``SystemExit`` in serving loops.
- ``kernel-loop-alloc``: no ndarray allocation inside the registered
  kernel inner-loop functions' ``for``/``while`` bodies — per-iteration
  allocation is exactly the overhead the batched kernels exist to
  avoid.

Findings are :class:`~repro.analyze.diagnostics.Diagnostic` records
(``where`` is ``path:line``).  A finding is suppressed by
``# repro: allow(<rule>[, <rule>...])`` on the flagged line or the
line above it — suppressions are deliberate, grep-able exemptions.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable

from repro.analyze.diagnostics import ERROR, Diagnostic

__all__ = [
    "LINT_RULES",
    "LintRule",
    "lint_file",
    "lint_paths",
    "parse_suppressions",
]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """``# repro: allow(...)`` comments as a line -> rule-ids map."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _ALLOW_RE.search(line)
        if m:
            out[lineno] = {
                r.strip() for r in m.group(1).split(",") if r.strip()
            }
    return out


def _src(node: ast.AST) -> str | None:
    """Dotted source of a Name/Attribute chain (None when not one)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _src(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


class LintRule:
    """One project invariant.

    Subclasses set ``id``/``description`` and implement
    :meth:`check`, returning raw findings; the driver applies
    suppressions.
    """

    id = ""
    description = ""

    def check(
        self, tree: ast.Module, path: str
    ) -> list[Diagnostic]:  # pragma: no cover - interface
        raise NotImplementedError

    def _finding(self, path: str, node: ast.AST, message: str, hint: str = ""):
        return Diagnostic(
            self.id, ERROR, f"{path}:{node.lineno}", message, hint
        )


# -- tracer-guard --------------------------------------------------------

#: The Tracer surface (repro.trace.tracer.Tracer) — a call to any of
#: these on a receiver named ``tracer``/``_tracer`` is a trace site.
_TRACER_METHODS = frozenset(
    {
        "span",
        "instant",
        "counter",
        "begin_async",
        "end_async",
        "meta_process",
        "meta_thread",
        "write",
        "drain",
        "extend",
    }
)


class TracerGuardRule(LintRule):
    """Tracer calls must sit in a function that None-checks the tracer.

    A receiver counts as a tracer when its final attribute is named
    ``tracer`` or ``_tracer`` (covers ``tracer``, ``self.tracer``,
    ``self._tracer``, ``plan._tracer``).  The guard is any
    ``<receiver> is None`` / ``is not None`` comparison in the
    innermost enclosing function — if-guards, early returns, and
    conditional expressions all qualify.  :func:`trace_span` carries
    the guard internally and needs none at the call site.
    """

    id = "tracer-guard"
    description = (
        "tracer method calls must be guarded by a `tracer is None` "
        "check in the enclosing function"
    )

    def check(self, tree, path):
        spans: list[tuple[int, int]] = []
        compares: list[tuple[str, int]] = []
        calls: list[tuple[str, ast.Call]] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                spans.append((node.lineno, node.end_lineno or node.lineno))
            elif isinstance(node, ast.Compare):
                if len(node.ops) == 1 and isinstance(
                    node.ops[0], (ast.Is, ast.IsNot)
                ):
                    left = _src(node.left)
                    right = node.comparators[0]
                    if left and isinstance(right, ast.Constant) and right.value is None:
                        compares.append((left, node.lineno))
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr not in _TRACER_METHODS:
                    continue
                recv = _src(node.func.value)
                if recv and recv.rsplit(".", 1)[-1] in ("tracer", "_tracer"):
                    calls.append((recv, node))

        def innermost(line: int) -> tuple[int, int] | None:
            best = None
            for lo, hi in spans:
                if lo <= line <= hi:
                    if best is None or (hi - lo) < (best[1] - best[0]):
                        best = (lo, hi)
            return best

        out = []
        for recv, call in calls:
            span = innermost(call.lineno)
            if span is not None:
                in_scope = lambda line: span[0] <= line <= span[1]
            else:  # module-level call: module-level guards only
                in_scope = lambda line: innermost(line) is None
            guarded = any(
                r == recv and in_scope(line) for r, line in compares
            )
            if not guarded:
                out.append(
                    self._finding(
                        path,
                        call,
                        f"tracer call `{recv}.{call.func.attr}(...)` has no "
                        f"`{recv} is None` guard in the enclosing function",
                        hint=(
                            "guard with `if <tracer> is not None:` or use "
                            "repro.trace.tracer.trace_span, which is "
                            "None-tolerant"
                        ),
                    )
                )
        return out


# -- serve-typed-errors --------------------------------------------------

#: Builtins that must never cross the serving wire: they decode as the
#: generic ``serve_error`` and drop the typed contract.
_UNTYPED_RAISES = frozenset(
    {
        "RuntimeError",
        "Exception",
        "BaseException",
        "KeyError",
        "IndexError",
        "AttributeError",
        "LookupError",
        "ArithmeticError",
        "ZeroDivisionError",
        "SystemError",
        "StopIteration",
    }
)


class ServeTypedErrorsRule(LintRule):
    """``serve/`` raises typed errors only.

    Allowed: the :mod:`repro.serve.errors` family (and anything not in
    the builtin denylist — project classes are assumed typed),
    ``ValueError``/``TypeError`` (argument validation happens before a
    request exists), the ``OSError`` family (transport errors — the
    framing layer maps them), bare re-raises, and raising a caught
    exception variable.
    """

    id = "serve-typed-errors"
    description = (
        "code under serve/ may only raise typed serve errors across "
        "the TCP/pipe boundary"
    )

    def applies(self, path: str) -> bool:
        return "/serve/" in path.replace("\\", "/")

    def check(self, tree, path):
        if not self.applies(path):
            return []
        out = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = _src(target)
            if name is None:
                continue
            bare = name.rsplit(".", 1)[-1]
            if not isinstance(exc, ast.Call) and bare[:1].islower():
                continue  # `raise err` — re-raising a caught variable
            if bare in _UNTYPED_RAISES:
                out.append(
                    self._finding(
                        path,
                        node,
                        f"`raise {bare}` in serve/ — decodes as the "
                        "opaque `serve_error` on the client side",
                        hint=(
                            "raise a typed error from repro.serve.errors "
                            "(subclass ServeError and register it in "
                            "_WIRE_ERRORS if none fits)"
                        ),
                    )
                )
        return out


# -- trace-walltime ------------------------------------------------------

_WALLCLOCK = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
    }
)


class TraceWalltimeRule(LintRule):
    """``trace/`` reads the wall clock only inside ``_now_us``.

    Span/instant timestamps must share one clock; a second
    ``time.time()`` call site in the trace layer silently skews
    timelines between events.
    """

    id = "trace-walltime"
    description = (
        "inside repro.trace, wall-clock reads are confined to _now_us"
    )

    def applies(self, path: str) -> bool:
        return "/trace/" in path.replace("\\", "/")

    def check(self, tree, path):
        if not self.applies(path):
            return []
        sanctioned: list[tuple[int, int]] = []
        for node in ast.walk(tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == "_now_us"
            ):
                sanctioned.append(
                    (node.lineno, node.end_lineno or node.lineno)
                )
        out = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_clock = (
                isinstance(func, ast.Attribute)
                and func.attr in _WALLCLOCK
                and _src(func.value) == "time"
            ) or (isinstance(func, ast.Name) and func.id in _WALLCLOCK)
            if not is_clock:
                continue
            if any(lo <= node.lineno <= hi for lo, hi in sanctioned):
                continue
            out.append(
                self._finding(
                    path,
                    node,
                    "wall-clock read outside _now_us — span timestamps "
                    "must come from the single sanctioned clock",
                    hint="call _now_us() (or take the timestamp as input)",
                )
            )
        return out


# -- mutable-default -----------------------------------------------------


class MutableDefaultRule(LintRule):
    """No mutable default arguments anywhere in the tree."""

    id = "mutable-default"
    description = "no mutable default arguments ([], {}, set())"

    def check(self, tree, path):
        out = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(
                    default, (ast.List, ast.Dict, ast.Set)
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set", "bytearray")
                )
                if mutable:
                    out.append(
                        self._finding(
                            path,
                            default,
                            f"mutable default argument in {node.name}() — "
                            "shared across every call",
                            hint="default to None and construct inside",
                        )
                    )
        return out


# -- bare-except ---------------------------------------------------------


class BareExceptRule(LintRule):
    """No bare ``except:`` clauses."""

    id = "bare-except"
    description = "no bare except: clauses"

    def check(self, tree, path):
        out = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                out.append(
                    self._finding(
                        path,
                        node,
                        "bare `except:` also swallows KeyboardInterrupt "
                        "and SystemExit",
                        hint="catch Exception (or something narrower)",
                    )
                )
        return out


# -- kernel-loop-alloc ---------------------------------------------------

#: The registered kernel inner-loop functions, per module basename.
#: These are the hot paths the cost model prices; allocating inside
#: their loops is per-iteration overhead the MCU kernels do not pay.
KERNEL_HOT_FUNCTIONS: dict[str, frozenset[str]] = {
    "conv_sparse.py": frozenset(
        {
            "gather_matmul_batch",
            "_sparse_matmul_batch",
            "sparse_matmul_acc_batch",
            "sparse_matmul_f32_batch",
            "sparse_matmul_acc",
            "sparse_matmul_f32",
        }
    ),
    "fc_dense.py": frozenset({"fc_acc_dense", "fc_dense"}),
    "csr_kernel.py": frozenset({"fc_acc_csr"}),
    "im2col.py": frozenset({"im2col", "im2col_batch"}),
}

_ALLOC_FUNCS = frozenset(
    {
        "zeros",
        "empty",
        "ones",
        "full",
        "zeros_like",
        "empty_like",
        "ones_like",
        "full_like",
        "array",
        "arange",
        "concatenate",
        "stack",
        "tile",
        "repeat",
    }
)


class KernelLoopAllocRule(LintRule):
    """No ndarray allocation inside kernel inner-loop bodies.

    Scoped to the declared hot functions (:data:`KERNEL_HOT_FUNCTIONS`)
    so cold paths — packing, planning, validation — stay free to
    allocate.
    """

    id = "kernel-loop-alloc"
    description = (
        "no np.ndarray allocation inside registered kernel inner loops"
    )

    def check(self, tree, path):
        hot = KERNEL_HOT_FUNCTIONS.get(Path(path).name)
        if not hot:
            return []
        out = []
        for node in ast.walk(tree):
            if (
                not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                or node.name not in hot
            ):
                continue
            for loop in ast.walk(node):
                if not isinstance(loop, (ast.For, ast.While)):
                    continue
                for inner in ast.walk(loop):
                    if not isinstance(inner, ast.Call):
                        continue
                    func = inner.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _ALLOC_FUNCS
                        and _src(func.value) in ("np", "numpy")
                    ):
                        out.append(
                            self._finding(
                                path,
                                inner,
                                f"np.{func.attr}(...) inside a loop of "
                                f"kernel hot function {node.name}() — "
                                "allocates every iteration",
                                hint=(
                                    "hoist the allocation out of the "
                                    "loop (preallocate and fill)"
                                ),
                            )
                        )
        return out


#: Rule registry, id -> instance (catalog order = docs order).
LINT_RULES: dict[str, LintRule] = {
    rule.id: rule
    for rule in (
        TracerGuardRule(),
        ServeTypedErrorsRule(),
        TraceWalltimeRule(),
        MutableDefaultRule(),
        BareExceptRule(),
        KernelLoopAllocRule(),
    )
}


def lint_file(
    path: str | Path,
    rules: Iterable[LintRule] | None = None,
    source: str | None = None,
) -> list[Diagnostic]:
    """Lint one file; suppressions applied, findings in line order."""
    path = Path(path)
    if source is None:
        source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as err:
        return [
            Diagnostic(
                "syntax",
                ERROR,
                f"{path}:{err.lineno or 0}",
                f"file does not parse: {err.msg}",
            )
        ]
    allow = parse_suppressions(source)
    out: list[Diagnostic] = []
    for rule in rules if rules is not None else LINT_RULES.values():
        for diag in rule.check(tree, str(path)):
            line = int(diag.where.rsplit(":", 1)[-1])
            if any(
                diag.rule in allow.get(at, ())
                for at in (line, line - 1)
            ):
                continue
            out.append(diag)
    out.sort(key=lambda d: int(d.where.rsplit(":", 1)[-1]))
    return out


def lint_paths(
    paths: Iterable[str | Path],
    rule_ids: Iterable[str] | None = None,
) -> list[Diagnostic]:
    """Lint files/directories (``.py`` files, recursively).

    ``rule_ids`` restricts to a subset of :data:`LINT_RULES`; unknown
    ids raise ``ValueError`` so a typoed ``--rule`` cannot silently
    lint nothing.
    """
    if rule_ids is None:
        rules = list(LINT_RULES.values())
    else:
        unknown = [r for r in rule_ids if r not in LINT_RULES]
        if unknown:
            raise ValueError(
                f"unknown lint rule(s) {unknown}; known: "
                f"{sorted(LINT_RULES)}"
            )
        rules = [LINT_RULES[r] for r in rule_ids]
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    out: list[Diagnostic] = []
    for f in files:
        out.extend(lint_file(f, rules))
    return out
