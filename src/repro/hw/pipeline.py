"""Double-buffering timeline model (compute/DMA overlap).

The paper's conv kernels hide weight-transfer latency behind compute
through double-buffered tiles, while FC layers expose it (Sec. 5.2).
This module models the per-tile timeline explicitly — a two-stage
software pipeline where tile ``i``'s transfer overlaps tile ``i-1``'s
compute — so the "hidden by double-buffering" claim can be quantified
rather than assumed (see ``benchmarks/test_ablation_double_buffer.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.memory import DmaModel

__all__ = ["TileTimeline", "double_buffered_cycles", "serialized_cycles"]


@dataclass(frozen=True)
class TileTimeline:
    """Result of scheduling one layer's tiles.

    Attributes
    ----------
    total_cycles:
        Makespan of the schedule.
    compute_cycles:
        Sum of per-tile compute.
    transfer_cycles:
        Sum of per-tile DMA time.
    exposed_transfer:
        Transfer time NOT hidden behind compute (0 when perfectly
        overlapped after the pipeline fill).
    """

    total_cycles: float
    compute_cycles: float
    transfer_cycles: float

    @property
    def exposed_transfer(self) -> float:
        return self.total_cycles - self.compute_cycles

    @property
    def hiding_efficiency(self) -> float:
        """Fraction of transfer time hidden behind compute (1 = all)."""
        if self.transfer_cycles == 0:
            return 1.0
        return 1.0 - self.exposed_transfer / self.transfer_cycles


def double_buffered_cycles(
    tile_compute: list[float],
    tile_bytes: list[float],
    dma: DmaModel,
) -> TileTimeline:
    """Two-deep pipeline: tile i+1 streams while tile i computes.

    The first tile's transfer is always exposed (pipeline fill); each
    later tile starts computing at ``max(compute done, transfer done)``.
    """
    if len(tile_compute) != len(tile_bytes):
        raise ValueError("tile lists must have equal length")
    if not tile_compute:
        return TileTimeline(0.0, 0.0, 0.0)
    transfers = [dma.cycles(b) for b in tile_bytes]
    # Timeline: transfer_done[i] = when tile i is resident;
    # compute_done[i] = when tile i has been consumed.
    transfer_done = transfers[0]
    compute_done = 0.0
    for i, comp in enumerate(tile_compute):
        start = max(compute_done, transfer_done)
        compute_done = start + comp
        if i + 1 < len(transfers):
            # Next transfer begins once the buffer frees (previous
            # compute start) — single DMA channel, two buffers.
            transfer_done = max(transfer_done, start) + transfers[i + 1]
    return TileTimeline(
        total_cycles=compute_done,
        compute_cycles=sum(tile_compute),
        transfer_cycles=sum(transfers),
    )


def serialized_cycles(
    tile_compute: list[float],
    tile_bytes: list[float],
    dma: DmaModel,
) -> TileTimeline:
    """No overlap: every tile waits for its own transfer (FC regime)."""
    if len(tile_compute) != len(tile_bytes):
        raise ValueError("tile lists must have equal length")
    transfers = [dma.cycles(b) for b in tile_bytes]
    return TileTimeline(
        total_cycles=sum(tile_compute) + sum(transfers),
        compute_cycles=sum(tile_compute),
        transfer_cycles=sum(transfers),
    )
