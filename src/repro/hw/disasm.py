"""Program disassembler — human-readable listings of microcoded kernels.

Debugging aid: renders :class:`repro.hw.isa.Program` objects in an
assembly-like syntax with labels, making the kernel inner loops
inspectable (``python -c "...; print(disassemble(prog))"`` or via the
xDecimate demo).
"""

from __future__ import annotations

from repro.hw.isa import Instr, Program

__all__ = ["format_instr", "disassemble"]


def _reg(r: int | None) -> str:
    return f"x{r}" if r is not None else "?"


def format_instr(ins: Instr) -> str:
    """Render one instruction in assembly-like syntax."""
    op = ins.op
    if op == "li":
        return f"li    {_reg(ins.rd)}, {ins.imm}"
    if op == "mv":
        return f"mv    {_reg(ins.rd)}, {_reg(ins.rs1)}"
    if op in ("add", "sub", "and", "or", "xor", "mul", "sll", "srl", "sra"):
        return f"{op:<5} {_reg(ins.rd)}, {_reg(ins.rs1)}, {_reg(ins.rs2)}"
    if op in ("addi", "andi", "ori", "slli", "srli", "srai"):
        return f"{op:<5} {_reg(ins.rd)}, {_reg(ins.rs1)}, {ins.imm}"
    if op in ("lw", "lhu", "lb", "lbu"):
        post = "!" if ins.post else ""
        disp = ins.post if ins.post else ins.imm
        return f"{op:<5} {_reg(ins.rd)}, {disp}({_reg(ins.rs1)}{post})"
    if op == "lbu_rr":
        return f"p.lbu {_reg(ins.rd)}, {_reg(ins.rs2)}({_reg(ins.rs1)})"
    if op == "lbu_ins":
        lane = ins.imm & 0x3
        disp = ins.imm >> 2
        return (
            f"lbu.ins {_reg(ins.rd)}[{lane}], "
            f"{disp}+{_reg(ins.rs2)}({_reg(ins.rs1)})"
        )
    if op in ("sw", "sb"):
        post = "!" if ins.post else ""
        disp = ins.post if ins.post else ins.imm
        return f"{op:<5} {_reg(ins.rs2)}, {disp}({_reg(ins.rs1)}{post})"
    if op in ("sdotp", "sdotup"):
        mnemonic = "pv.sdotsp.b" if op == "sdotp" else "pv.sdotup.b"
        return f"{mnemonic} {_reg(ins.rd)}, {_reg(ins.rs1)}, {_reg(ins.rs2)}"
    if op in ("beq", "bne", "blt", "bge"):
        return f"{op:<5} {_reg(ins.rs1)}, {_reg(ins.rs2)}, {ins.label}"
    if op == "j":
        return f"j     {ins.label}"
    if op == "lp_setup":
        return f"lp.setup {ins.imm}, {ins.label}"
    if op == "xdec":
        return f"xdecimate.m{ins.imm} {_reg(ins.rd)}, {_reg(ins.rs1)}, {_reg(ins.rs2)}"
    if op == "xdec_clear":
        return "xdecimate.clear"
    if op == "halt":
        return "halt"
    return op  # pragma: no cover - all opcodes handled above


def disassemble(program: Program) -> str:
    """Full listing with addresses and label lines."""
    by_index: dict[int, list[str]] = {}
    for label, idx in program.labels.items():
        by_index.setdefault(idx, []).append(label)
    lines: list[str] = []
    for i, ins in enumerate(program.instrs):
        for label in by_index.get(i, []):
            lines.append(f"{label}:")
        lines.append(f"  {i:4d}  {format_instr(ins)}")
    for label in by_index.get(len(program.instrs), []):
        lines.append(f"{label}:")
    return "\n".join(lines)
