"""Single-issue in-order core interpreter with cycle accounting.

Executes :class:`repro.hw.isa.Program` streams over a byte-addressable
memory, modelling the timing behaviour the paper's analysis relies on:

- one instruction per cycle on a single-issue pipeline;
- XpulpV2 hardware loops: zero-overhead back-edges;
- load-use hazard: an instruction consuming the result of the
  *immediately preceding* load stalls one cycle (RI5CY forwarding
  covers longer distances);
- consecutive ``xdec`` instructions never stall even though each reads
  and writes its destination register — the XFU controller forwards rd
  from WB (Sec. 4.3, last paragraph);
- taken branches pay a configurable penalty (hardware loops avoid it).

The interpreter is intentionally simple and readable (it is the gold
reference the analytical cost model is validated against), not fast:
use it on single tiles / small layers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.hw.isa import Instr, Program
from repro.hw.xfu import XDecimateUnit

__all__ = ["Core", "ExecStats", "PipelineModel"]

_MASK32 = 0xFFFFFFFF


def _signed32(x: int) -> int:
    x &= _MASK32
    return x - (1 << 32) if x & 0x80000000 else x


def _signed8(x: int) -> int:
    x &= 0xFF
    return x - 256 if x & 0x80 else x


@dataclass(frozen=True)
class PipelineModel:
    """Timing parameters of the core pipeline.

    Defaults model RI5CY/CV32E40P as deployed in the Vega cluster: all
    instructions single-cycle on an L1 TCDM hit, one bubble on a
    back-to-back load-use dependency, two bubbles on a taken branch.
    """

    load_use_stall: int = 1
    taken_branch_penalty: int = 2


@dataclass
class ExecStats:
    """Counters accumulated over one :meth:`Core.run`.

    Attributes
    ----------
    instructions:
        Retired instruction count (what the paper's
        MACs/instruction/core peaks are quoted against).
    stalls:
        Pipeline bubbles (load-use + branch penalties).
    cycles:
        ``instructions + stalls``.
    op_counts:
        Retired instructions per mnemonic.
    """

    instructions: int = 0
    stalls: int = 0
    op_counts: Counter = field(default_factory=Counter)

    @property
    def cycles(self) -> int:
        return self.instructions + self.stalls

    @property
    def macs(self) -> int:
        """Multiply-accumulates performed (4 per SIMD dot product)."""
        return 4 * (self.op_counts["sdotp"] + self.op_counts["sdotup"])

    def macs_per_instruction(self) -> float:
        """The paper's per-core efficiency metric."""
        return self.macs / self.instructions if self.instructions else 0.0


class Core:
    """One cluster core: register file, LSU, SIMD unit, optional XFU.

    Parameters
    ----------
    memory:
        Byte-addressable memory shared with the caller (numpy uint8
        array); modified in place by stores.
    pipeline:
        Timing parameters; see :class:`PipelineModel`.
    xfu:
        An :class:`XDecimateUnit`; created on demand when a program
        executes ``xdec``.  Pass explicitly to share or trace it.
    """

    N_REGS = 32

    def __init__(
        self,
        memory: np.ndarray,
        pipeline: PipelineModel | None = None,
        xfu: XDecimateUnit | None = None,
    ) -> None:
        if memory.dtype != np.uint8 or memory.ndim != 1:
            raise ValueError("memory must be a 1-D uint8 array")
        self.mem = memory
        self.pipeline = pipeline or PipelineModel()
        self.xfu = xfu or XDecimateUnit()
        self.regs = [0] * self.N_REGS

    # -- memory access ---------------------------------------------------

    def load_byte(self, addr: int) -> int:
        return int(self.mem[addr])

    def load_half(self, addr: int) -> int:
        return int(self.mem[addr]) | int(self.mem[addr + 1]) << 8

    def load_word(self, addr: int) -> int:
        b = self.mem[addr : addr + 4]
        return int(b[0]) | int(b[1]) << 8 | int(b[2]) << 16 | int(b[3]) << 24

    def store_byte(self, addr: int, value: int) -> None:
        self.mem[addr] = value & 0xFF

    def store_word(self, addr: int, value: int) -> None:
        value &= _MASK32
        self.mem[addr] = value & 0xFF
        self.mem[addr + 1] = (value >> 8) & 0xFF
        self.mem[addr + 2] = (value >> 16) & 0xFF
        self.mem[addr + 3] = (value >> 24) & 0xFF

    # -- register access ---------------------------------------------------

    def set_reg(self, r: int, value: int) -> None:
        if r != 0:
            self.regs[r] = value & _MASK32

    def get_reg(self, r: int) -> int:
        return self.regs[r]

    # -- execution -----------------------------------------------------------

    def run(self, program: Program, max_steps: int = 50_000_000) -> ExecStats:
        """Execute until ``halt`` or the program falls off the end.

        Raises
        ------
        RuntimeError
            If ``max_steps`` instructions retire without halting
            (runaway-loop guard).
        """
        stats = ExecStats()
        regs = self.regs
        mem = self.mem
        pc = 0
        n = len(program.instrs)
        instrs = program.instrs
        # Hardware loop stack: (start_pc, end_pc_exclusive, remaining).
        loop_stack: list[list[int]] = []
        last_load_rd = -1  # rd of the load retired in the previous slot
        last_was_xdec = False

        while pc < n:
            if stats.instructions >= max_steps:
                raise RuntimeError(f"exceeded {max_steps} instructions")
            ins = instrs[pc]
            op = ins.op

            if op == "halt":
                stats.instructions += 1
                stats.op_counts[op] += 1
                break

            # -- hazard accounting ------------------------------------
            if last_load_rd >= 0 and last_load_rd in ins.reads():
                if not (last_was_xdec and op == "xdec"):
                    stats.stalls += self.pipeline.load_use_stall
            last_load_rd = ins.rd if ins.is_load else -1
            last_was_xdec = op == "xdec"

            next_pc = pc + 1

            # -- dispatch ----------------------------------------------
            if op == "li":
                self.set_reg(ins.rd, ins.imm)
            elif op == "mv":
                self.set_reg(ins.rd, regs[ins.rs1])
            elif op == "add":
                self.set_reg(ins.rd, regs[ins.rs1] + regs[ins.rs2])
            elif op == "sub":
                self.set_reg(ins.rd, regs[ins.rs1] - regs[ins.rs2])
            elif op == "and":
                self.set_reg(ins.rd, regs[ins.rs1] & regs[ins.rs2])
            elif op == "or":
                self.set_reg(ins.rd, regs[ins.rs1] | regs[ins.rs2])
            elif op == "xor":
                self.set_reg(ins.rd, regs[ins.rs1] ^ regs[ins.rs2])
            elif op == "mul":
                self.set_reg(ins.rd, regs[ins.rs1] * regs[ins.rs2])
            elif op == "sll":
                self.set_reg(ins.rd, regs[ins.rs1] << (regs[ins.rs2] & 31))
            elif op == "srl":
                self.set_reg(
                    ins.rd, (regs[ins.rs1] & _MASK32) >> (regs[ins.rs2] & 31)
                )
            elif op == "sra":
                self.set_reg(
                    ins.rd, _signed32(regs[ins.rs1]) >> (regs[ins.rs2] & 31)
                )
            elif op == "addi":
                self.set_reg(ins.rd, regs[ins.rs1] + ins.imm)
            elif op == "andi":
                self.set_reg(ins.rd, regs[ins.rs1] & ins.imm)
            elif op == "ori":
                self.set_reg(ins.rd, regs[ins.rs1] | ins.imm)
            elif op == "slli":
                self.set_reg(ins.rd, regs[ins.rs1] << ins.imm)
            elif op == "srli":
                self.set_reg(ins.rd, (regs[ins.rs1] & _MASK32) >> ins.imm)
            elif op == "srai":
                self.set_reg(ins.rd, _signed32(regs[ins.rs1]) >> ins.imm)
            elif op == "lw":
                addr = regs[ins.rs1] + (0 if ins.post else ins.imm)
                value = self.load_word(addr)
                if ins.post:
                    self.set_reg(ins.rs1, regs[ins.rs1] + ins.post)
                self.set_reg(ins.rd, value)
            elif op == "lhu":
                addr = regs[ins.rs1] + (0 if ins.post else ins.imm)
                value = self.load_half(addr)
                if ins.post:
                    self.set_reg(ins.rs1, regs[ins.rs1] + ins.post)
                self.set_reg(ins.rd, value)
            elif op == "lbu":
                addr = regs[ins.rs1] + (0 if ins.post else ins.imm)
                value = self.load_byte(addr)
                if ins.post:
                    self.set_reg(ins.rs1, regs[ins.rs1] + ins.post)
                self.set_reg(ins.rd, value)
            elif op == "lb":
                addr = regs[ins.rs1] + (0 if ins.post else ins.imm)
                value = _signed8(self.load_byte(addr)) & _MASK32
                if ins.post:
                    self.set_reg(ins.rs1, regs[ins.rs1] + ins.post)
                self.set_reg(ins.rd, value)
            elif op == "lbu_rr":
                self.set_reg(ins.rd, self.load_byte(regs[ins.rs1] + regs[ins.rs2]))
            elif op == "lbu_ins":
                lane = ins.imm & 0x3
                disp = ins.imm >> 2
                byte = self.load_byte(regs[ins.rs1] + regs[ins.rs2] + disp)
                shift = lane * 8
                merged = regs[ins.rd] & ~(0xFF << shift) | byte << shift
                self.set_reg(ins.rd, merged)
            elif op == "sw":
                addr = regs[ins.rs1] + (0 if ins.post else ins.imm)
                self.store_word(addr, regs[ins.rs2])
                if ins.post:
                    self.set_reg(ins.rs1, regs[ins.rs1] + ins.post)
            elif op == "sb":
                addr = regs[ins.rs1] + (0 if ins.post else ins.imm)
                self.store_byte(addr, regs[ins.rs2])
                if ins.post:
                    self.set_reg(ins.rs1, regs[ins.rs1] + ins.post)
            elif op == "sdotp":
                a, b = regs[ins.rs1], regs[ins.rs2]
                acc = _signed32(regs[ins.rd])
                for lane in range(4):
                    acc += _signed8(a >> lane * 8) * _signed8(b >> lane * 8)
                self.set_reg(ins.rd, acc)
            elif op == "sdotup":
                a, b = regs[ins.rs1], regs[ins.rs2]
                acc = regs[ins.rd]
                for lane in range(4):
                    acc += (a >> lane * 8 & 0xFF) * (b >> lane * 8 & 0xFF)
                self.set_reg(ins.rd, acc)
            elif op in ("beq", "bne", "blt", "bge"):
                a = _signed32(regs[ins.rs1])
                b = _signed32(regs[ins.rs2])
                taken = (
                    (op == "beq" and a == b)
                    or (op == "bne" and a != b)
                    or (op == "blt" and a < b)
                    or (op == "bge" and a >= b)
                )
                if taken:
                    next_pc = program.target(ins.label)
                    stats.stalls += self.pipeline.taken_branch_penalty
            elif op == "j":
                next_pc = program.target(ins.label)
                stats.stalls += self.pipeline.taken_branch_penalty
            elif op == "lp_setup":
                end = program.target(ins.label)
                if ins.imm > 0:
                    loop_stack.append([pc + 1, end, ins.imm])
                else:
                    next_pc = end  # zero-trip loop skips the body
            elif op == "xdec":
                new_rd = self.xfu.execute(
                    regs[ins.rd],
                    regs[ins.rs1],
                    regs[ins.rs2],
                    ins.imm,
                    self.load_byte,
                )
                self.set_reg(ins.rd, new_rd)
            elif op == "xdec_clear":
                self.xfu.clear()
            else:  # pragma: no cover - OPCODES validation prevents this
                raise ValueError(f"unhandled opcode {op}")

            stats.instructions += 1
            stats.op_counts[op] += 1

            # -- hardware loop back-edges (zero overhead). Nested loops
            # may share an end pc; unwind until one still has trips left.
            while loop_stack:
                top = loop_stack[-1]
                if next_pc != top[1]:
                    break
                top[2] -= 1
                if top[2] > 0:
                    next_pc = top[0]
                    break
                loop_stack.pop()
            pc = next_pc

        return stats
