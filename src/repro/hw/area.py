"""Area ledger for the hardware-extension cost claims.

The paper synthesises the modified RI5CY in 22 nm at 200 MHz and reports
a **5.0% area overhead** for the xDecimate XFU (Sec. 1, 4.3, Table 3).
The comparison baseline numbers come from the cited literature:

- RI5CY with FPU: 102 kGE (Schuiki et al., 2020);
- SSSR extension: 20-31 kGE, i.e. 20-31% of the FPU-equipped core and
  up to 44% of an FPU-less core (Scheffler et al., 2023).

From those two facts the FPU-less RI5CY is ~70.5 kGE (31 kGE / 0.44),
which this ledger uses as the baseline the 5% XFU overhead applies to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AreaModel", "CoreAreaBudget", "VEGA_CORE_AREA"]

#: kilo-gate-equivalents of an FPU-equipped RI5CY (Schuiki et al. 2020).
RI5CY_WITH_FPU_KGE = 102.0

#: Upper SSSR configuration area (Scheffler et al. 2023).
SSSR_MAX_KGE = 31.0

#: SSSR overhead relative to an FPU-less RI5CY ("as much as 44%").
SSSR_MAX_OVERHEAD_FPULESS = 0.44

#: FPU-less RI5CY baseline implied by the two figures above.
RI5CY_NO_FPU_KGE = SSSR_MAX_KGE / SSSR_MAX_OVERHEAD_FPULESS

#: Synthesised xDecimate XFU overhead (paper Sec. 4.3: 5.0%).
XDECIMATE_OVERHEAD = 0.05


@dataclass
class AreaModel:
    """A named collection of area components in kGE."""

    components: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, kge: float) -> None:
        """Add a component; negative areas are rejected."""
        if kge < 0:
            raise ValueError(f"negative area for {name}")
        if name in self.components:
            raise ValueError(f"duplicate component {name}")
        self.components[name] = kge

    def total(self) -> float:
        """Total area in kGE."""
        return sum(self.components.values())

    def overhead_vs(self, baseline: float) -> float:
        """Fractional overhead of everything beyond ``baseline`` kGE."""
        if baseline <= 0:
            raise ValueError("baseline must be positive")
        return (self.total() - baseline) / baseline


@dataclass(frozen=True)
class CoreAreaBudget:
    """Area summary for one core configuration."""

    name: str
    base_kge: float
    extension_kge: float

    @property
    def total_kge(self) -> float:
        return self.base_kge + self.extension_kge

    @property
    def overhead(self) -> float:
        """Extension area as a fraction of the base core."""
        return self.extension_kge / self.base_kge


def xdecimate_core() -> CoreAreaBudget:
    """FPU-less RI5CY + xDecimate XFU (this paper's configuration)."""
    return CoreAreaBudget(
        name="RI5CY + xDecimate",
        base_kge=RI5CY_NO_FPU_KGE,
        extension_kge=RI5CY_NO_FPU_KGE * XDECIMATE_OVERHEAD,
    )


def sssr_core() -> CoreAreaBudget:
    """FPU-less RI5CY + SSSR at the largest published configuration."""
    return CoreAreaBudget(
        name="RI5CY + SSSR",
        base_kge=RI5CY_NO_FPU_KGE,
        extension_kge=SSSR_MAX_KGE,
    )


#: Baseline Vega cluster core area (FPU-less RI5CY).
VEGA_CORE_AREA = RI5CY_NO_FPU_KGE
