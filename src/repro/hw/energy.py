"""Energy model (the paper's stated future work, Sec. 6).

The paper's conclusion plans an FPGA prototype "to enable an estimation
of the energy savings achieved by our kernels, which can show further
advantages in the reduced off-chip memory accesses."  This module
provides that estimation layer over the existing latency model.

Methodology: event-based energy accounting with per-event costs in pJ,
normalised to a 22 nm near-threshold operating point like Vega's
(Rossi et al. 2021 report ~1.7 pJ/op system-level efficiency peaks).
Events are derived from the same quantities the cycle model computes:

- core activity: instructions executed (datapath + fetch);
- L1 (TCDM) accesses: loads/stores issued by the kernels;
- L2 accesses: bytes moved by the DMA (weight/activation streams);
- static/idle power folded into a per-cycle background term.

Relative numbers between kernel variants are the meaningful output
(sparse kernels execute fewer instructions *and* move fewer weight
bytes — the two terms the paper expects to dominate savings).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.cost_model import (
    CostParams,
    DEFAULT_PARAMS,
    LOADS_PER_ITER,
    INNER_ITER_CYCLES,
    conv_layer_cycles,
    fc_layer_cycles,
    weight_stream_bytes,
)
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import NMFormat

__all__ = ["EnergyParams", "EnergyBreakdown", "conv_layer_energy", "fc_layer_energy"]


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energy costs (pJ) at the Vega-like operating point.

    Defaults follow the usual near-threshold 22 nm ordering: an L2
    access costs ~an order of magnitude more than an L1 access, which
    costs about as much as an ALU op; background (clock tree, idle
    cores) adds a per-cycle floor.
    """

    instruction_pj: float = 1.2
    l1_access_pj: float = 1.0
    l2_byte_pj: float = 8.0
    background_pj_per_cycle: float = 2.5

    def __post_init__(self) -> None:
        for name in ("instruction_pj", "l1_access_pj", "l2_byte_pj"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-layer energy decomposition (pJ)."""

    core: float
    l1: float
    l2: float
    background: float
    macs: int

    @property
    def total_pj(self) -> float:
        return self.core + self.l1 + self.l2 + self.background

    @property
    def total_uj(self) -> float:
        return self.total_pj / 1e6

    @property
    def pj_per_mac(self) -> float:
        """Energy per dense-equivalent MAC — the efficiency headline."""
        return self.total_pj / self.macs if self.macs else 0.0


def _instructions_and_loads(
    kind: str,
    variant: str,
    fmt: NMFormat | None,
    n_iters: float,
) -> tuple[float, float]:
    """Instruction and L1-access counts over the inner loops."""
    m = fmt.m if fmt is not None else 0
    instr = INNER_ITER_CYCLES[(kind, variant, m)] * n_iters
    loads = LOADS_PER_ITER[(kind, variant, m)] * n_iters
    return instr, loads


def conv_layer_energy(
    shape: ConvShape,
    variant: str,
    fmt: NMFormat | None = None,
    params: CostParams = DEFAULT_PARAMS,
    energy: EnergyParams = EnergyParams(),
) -> EnergyBreakdown:
    """Energy of one conv layer under a kernel variant.

    Derives event counts from the same structure as the cycle model:
    inner iterations across the whole layer, plus the weight/activation
    bytes streamed from L2.
    """
    import math

    m = fmt.m if fmt is not None else 0
    r = shape.reduce_dim
    if variant == "dense-4x2":
        iters_per_visit = math.ceil(r / 4)
        visits = (shape.k // 4) * math.ceil(shape.oy * shape.ox / 2)
        macs_basis = 1
    elif variant == "dense-1x2":
        iters_per_visit = math.ceil(r / 4)
        visits = shape.k * math.ceil(shape.oy * shape.ox / 2)
        macs_basis = 1
    else:
        nnz = math.ceil(r / m)
        iters_per_visit = math.ceil(nnz / 4)
        visits = shape.k * math.ceil(shape.oy * shape.ox / 2)
        macs_basis = 1
    n_iters = iters_per_visit * visits
    instr, l1 = _instructions_and_loads("conv", variant, fmt, n_iters)
    # im2col copies: one load + one store per byte pair moved.
    im2col_bytes = 2 * r * math.ceil(shape.oy * shape.ox / 2)
    l1 += im2col_bytes / 2
    instr += im2col_bytes * params.im2col_cycles_per_byte

    wbytes = weight_stream_bytes("conv", variant, shape.k, r, fmt)
    l2_bytes = wbytes + shape.input_bytes() + shape.output_bytes()

    cycles = conv_layer_cycles(shape, variant, fmt, params).total
    return EnergyBreakdown(
        core=instr * energy.instruction_pj,
        l1=l1 * energy.l1_access_pj,
        l2=l2_bytes * energy.l2_byte_pj,
        background=cycles * energy.background_pj_per_cycle,
        macs=shape.macs,
    )


def fc_layer_energy(
    shape: FcShape,
    variant: str,
    fmt: NMFormat | None = None,
    params: CostParams = DEFAULT_PARAMS,
    energy: EnergyParams = EnergyParams(),
) -> EnergyBreakdown:
    """Energy of one FC layer under a kernel variant."""
    import math

    m = fmt.m if fmt is not None else 0
    c = shape.c
    if variant == "dense":
        iters = math.ceil(c / 4) * (shape.k // 2)
    elif variant == "sparse-sw":
        iters = math.ceil(math.ceil(c / m) / 4) * shape.k
    else:
        iters = math.ceil(math.ceil(c / m) / 4) * (shape.k // 2)
    instr, l1 = _instructions_and_loads("fc", variant, fmt, iters)
    wbytes = weight_stream_bytes("fc", variant, shape.k, c, fmt)
    l2_bytes = wbytes + c + shape.k

    cycles = fc_layer_cycles(
        FcShape(c=c, k=shape.k), variant, fmt, params
    ).total
    breakdown = EnergyBreakdown(
        core=instr * energy.instruction_pj,
        l1=l1 * energy.l1_access_pj,
        l2=l2_bytes * energy.l2_byte_pj,
        background=cycles * energy.background_pj_per_cycle,
        macs=shape.k * c,
    )
    t = shape.tokens
    return EnergyBreakdown(
        core=breakdown.core * t,
        l1=breakdown.l1 * t,
        l2=breakdown.l2 * t,
        background=breakdown.background * t,
        macs=breakdown.macs * t,
    )
