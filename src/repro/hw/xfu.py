"""Behavioural model of the xDecimate eXtension Functional Unit.

Bit-exact implementation of the datapath described in Sec. 4.3 of the
paper.  The unit owns one control-status register (csr, lowercase in
the paper to distinguish it from the CSR sparse format) that steers
three things and auto-increments after every execution:

For M = 8 and M = 16 (4-bit offsets, 8 per 32-bit rs2 word)::

    o    = rs2[(csr[2:0] * 4 + 3) : (csr[2:0] * 4)]
    addr = rs1 + M * csr[15:1] + o

For M = 4 (2-bit offsets, 16 per rs2 word) the offset selector uses
``csr[3:0] * 2`` instead.

Write-back inserts the loaded byte into the destination register at the
lane selected by ``csr[2:1]``::

    rd[(csr[2:1] * 8 + 7) : (csr[2:1] * 8)] = MEM[addr]
    csr = csr + 1

The right-shift by one in both the block index and the write-back lane
is what makes *two consecutive executions* address the same M-block and
the same destination lane — accounting for the conv kernels' unrolling
over two im2col buffers (offsets duplicated in memory) and, for FC, for
the interleaving of two output channels' offsets (Sec. 4.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["XDecimateUnit", "XDecimateTraceEntry"]

_MASK32 = 0xFFFFFFFF


@dataclass
class XDecimateTraceEntry:
    """One executed xDecimate, for debugging and microarchitectural tests."""

    csr_before: int
    offset: int
    block_index: int
    address: int
    lane: int
    byte: int


@dataclass
class XDecimateUnit:
    """State and datapath of the XFU.

    Attributes
    ----------
    csr:
        The auto-incrementing control-status register.
    trace:
        Optional execution trace (enabled with ``record_trace=True``).
    """

    csr: int = 0
    record_trace: bool = False
    trace: list[XDecimateTraceEntry] = field(default_factory=list)

    def clear(self) -> None:
        """``xDecimate.clear``: reset the csr (end of the K loop)."""
        self.csr = 0

    def offset_field(self, rs2: int, m: int) -> int:
        """EX-stage offset decode: select the active sub-byte field of rs2."""
        if m == 4:
            sel = self.csr & 0xF
            return (rs2 >> (sel * 2)) & 0x3
        if m in (8, 16):
            sel = self.csr & 0x7
            return (rs2 >> (sel * 4)) & 0xF
        raise ValueError(f"unsupported block size M={m}")

    def block_index(self) -> int:
        """EX-stage block index: csr[15:1] (shared by call pairs)."""
        return (self.csr >> 1) & 0x7FFF

    def lane(self) -> int:
        """WB-stage destination byte lane: csr[2:1]."""
        return (self.csr >> 1) & 0x3

    def execute(
        self,
        rd: int,
        rs1: int,
        rs2: int,
        m: int,
        load_byte,
    ) -> int:
        """Run one xDecimate: returns the updated rd value.

        Parameters
        ----------
        rd:
            Current destination register value (read in ID — the
        instruction merges into it).
        rs1:
            Base address of the im2col buffer.
        rs2:
            32-bit word of packed NZ offsets.
        m:
            Block size (4, 8 or 16).
        load_byte:
            Callable ``addr -> int`` performing the memory access
            (provided by the core's load/store unit).
        """
        csr_before = self.csr
        o = self.offset_field(rs2, m)
        block = self.block_index()
        addr = (rs1 + m * block + o) & _MASK32
        byte = load_byte(addr) & 0xFF
        lane = self.lane()
        shift = lane * 8
        new_rd = (rd & ~(0xFF << shift) | (byte << shift)) & _MASK32
        self.csr = (self.csr + 1) & _MASK32
        if self.record_trace:
            self.trace.append(
                XDecimateTraceEntry(csr_before, o, block, addr, lane, byte)
            )
        return new_rd
