"""Micro-ISA definitions: RV32-like subset + XpulpV2 features + xDecimate.

The kernels' inner loops are expressed as :class:`Program` objects built
with the :class:`Asm` builder, then executed and cycle-counted by
:class:`repro.hw.cpu.Core`.  The instruction inventory covers exactly
what the paper's kernels need:

==============  =====================================================
mnemonic        semantics
==============  =====================================================
``li``          rd <- imm
``mv``          rd <- rs1
``add``/…       three-register ALU ops (add, sub, and, or, xor, mul)
``addi``/…      register-immediate ALU ops (addi, andi, ori, slli,
                srli, srai)
``lw``/``lbu``  loads, optional XpulpV2 post-increment (``post=k``
                adds k to rs1 after the access)
``lbu_rr``      XpulpV2 register-register load ``p.lbu rd, rs2(rs1)``
``lbu_ins``     load byte and insert into byte lane ``imm`` of rd
                (modelling shorthand for the lbu + pv.insert pair the
                SW sparse kernels use; counted as one instruction to
                match the paper's 22/23-instruction inner-loop count)
``sw``/``sb``   stores, optional post-increment
``sdotp``       pv.sdotsp.b: rd += sum of 4 signed-int8 lane products
``sdotup``      pv.sdotup.b: unsigned x unsigned variant
``beq``/…       conditional branches (beq, bne, blt, bge)
``j``           unconditional jump
``lp_setup``    XpulpV2 zero-overhead hardware loop over a body
``xdec``        xDecimate rd, rs1(buffer base), rs2(packed offsets);
                ``imm`` carries M (4, 8 or 16)
``xdec_clear``  reset the xDecimate csr
``halt``        stop execution
==============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Instr", "Program", "Asm", "OPCODES"]

#: All legal mnemonics, with their operand signature for validation.
OPCODES: dict[str, str] = {
    "li": "rd,imm",
    "mv": "rd,rs1",
    "add": "rd,rs1,rs2",
    "sub": "rd,rs1,rs2",
    "and": "rd,rs1,rs2",
    "or": "rd,rs1,rs2",
    "xor": "rd,rs1,rs2",
    "mul": "rd,rs1,rs2",
    "sll": "rd,rs1,rs2",
    "srl": "rd,rs1,rs2",
    "sra": "rd,rs1,rs2",
    "addi": "rd,rs1,imm",
    "andi": "rd,rs1,imm",
    "ori": "rd,rs1,imm",
    "slli": "rd,rs1,imm",
    "srli": "rd,rs1,imm",
    "srai": "rd,rs1,imm",
    "lw": "rd,rs1,imm",
    "lhu": "rd,rs1,imm",
    "lb": "rd,rs1,imm",
    "lbu": "rd,rs1,imm",
    "lbu_rr": "rd,rs1,rs2",
    "lbu_ins": "rd,rs1,rs2,imm",
    "sw": "rs2,rs1,imm",
    "sb": "rs2,rs1,imm",
    "sdotp": "rd,rs1,rs2",
    "sdotup": "rd,rs1,rs2",
    "beq": "rs1,rs2,label",
    "bne": "rs1,rs2,label",
    "blt": "rs1,rs2,label",
    "bge": "rs1,rs2,label",
    "j": "label",
    "lp_setup": "imm,label",
    "xdec": "rd,rs1,rs2,imm",
    "xdec_clear": "",
    "halt": "",
}


@dataclass(frozen=True)
class Instr:
    """One machine instruction.

    Attributes
    ----------
    op:
        Mnemonic from :data:`OPCODES`.
    rd, rs1, rs2:
        Register numbers (0-31) or None when unused.
    imm:
        Immediate; for loads/stores the displacement, for ``lbu_ins``
        the destination byte lane, for ``xdec`` the block size M, for
        ``lp_setup`` the trip count.
    label:
        Branch / loop-end target label.
    post:
        Post-increment applied to rs1 after a memory access
        (XpulpV2 ``!`` addressing); 0 disables.
    """

    op: str
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    imm: int | None = None
    label: str | None = None
    post: int = 0

    def __post_init__(self) -> None:
        if self.op not in OPCODES:
            raise ValueError(f"unknown opcode {self.op!r}")

    @property
    def is_load(self) -> bool:
        """True for instructions whose result comes from memory."""
        return self.op in ("lw", "lhu", "lb", "lbu", "lbu_rr", "lbu_ins", "xdec")

    @property
    def is_branch(self) -> bool:
        """True for control-flow instructions."""
        return self.op in ("beq", "bne", "blt", "bge", "j")

    def reads(self) -> tuple[int, ...]:
        """Registers this instruction reads (for hazard detection).

        ``lbu_ins``, ``sdotp`` and ``xdec`` read rd as well, since they
        merge into the destination register.
        """
        regs = [r for r in (self.rs1, self.rs2) if r is not None]
        if self.op in ("lbu_ins", "sdotp", "sdotup", "xdec") and self.rd is not None:
            regs.append(self.rd)
        return tuple(regs)


@dataclass
class Program:
    """An assembled instruction sequence with resolved labels."""

    instrs: list[Instr]
    labels: dict[str, int] = field(default_factory=dict)

    def target(self, label: str) -> int:
        """Instruction index of ``label``."""
        try:
            return self.labels[label]
        except KeyError:
            raise KeyError(f"undefined label {label!r}") from None

    def __len__(self) -> int:
        return len(self.instrs)


class Asm:
    """Fluent builder for :class:`Program` objects.

    Register names are plain ints; by convention the kernels use a
    symbolic map on top (see :mod:`repro.kernels.microcode`).

    >>> a = Asm()
    >>> a.li(1, 0)
    >>> a.label("loop")
    >>> a.addi(1, 1, 1)
    >>> a.blt(1, 2, "loop")
    >>> prog = a.build()
    """

    def __init__(self) -> None:
        self._instrs: list[Instr] = []
        self._labels: dict[str, int] = {}

    # -- assembly directives -------------------------------------------

    def label(self, name: str) -> None:
        """Define a label at the current position."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instrs)

    def emit(self, instr: Instr) -> None:
        """Append a raw instruction."""
        self._instrs.append(instr)

    def build(self) -> Program:
        """Finalise; validates that all referenced labels exist."""
        prog = Program(list(self._instrs), dict(self._labels))
        for ins in prog.instrs:
            if ins.label is not None and ins.label not in prog.labels:
                raise ValueError(f"undefined label {ins.label!r} in {ins}")
        return prog

    # -- ALU -------------------------------------------------------------

    def li(self, rd: int, imm: int) -> None:
        self.emit(Instr("li", rd=rd, imm=imm))

    def mv(self, rd: int, rs1: int) -> None:
        self.emit(Instr("mv", rd=rd, rs1=rs1))

    def add(self, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instr("add", rd=rd, rs1=rs1, rs2=rs2))

    def sub(self, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instr("sub", rd=rd, rs1=rs1, rs2=rs2))

    def and_(self, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instr("and", rd=rd, rs1=rs1, rs2=rs2))

    def or_(self, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instr("or", rd=rd, rs1=rs1, rs2=rs2))

    def xor(self, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instr("xor", rd=rd, rs1=rs1, rs2=rs2))

    def mul(self, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instr("mul", rd=rd, rs1=rs1, rs2=rs2))

    def sll(self, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instr("sll", rd=rd, rs1=rs1, rs2=rs2))

    def srl(self, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instr("srl", rd=rd, rs1=rs1, rs2=rs2))

    def sra(self, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instr("sra", rd=rd, rs1=rs1, rs2=rs2))

    def addi(self, rd: int, rs1: int, imm: int) -> None:
        self.emit(Instr("addi", rd=rd, rs1=rs1, imm=imm))

    def andi(self, rd: int, rs1: int, imm: int) -> None:
        self.emit(Instr("andi", rd=rd, rs1=rs1, imm=imm))

    def ori(self, rd: int, rs1: int, imm: int) -> None:
        self.emit(Instr("ori", rd=rd, rs1=rs1, imm=imm))

    def slli(self, rd: int, rs1: int, imm: int) -> None:
        self.emit(Instr("slli", rd=rd, rs1=rs1, imm=imm))

    def srli(self, rd: int, rs1: int, imm: int) -> None:
        self.emit(Instr("srli", rd=rd, rs1=rs1, imm=imm))

    def srai(self, rd: int, rs1: int, imm: int) -> None:
        self.emit(Instr("srai", rd=rd, rs1=rs1, imm=imm))

    # -- memory ----------------------------------------------------------

    def lw(self, rd: int, rs1: int, imm: int = 0, post: int = 0) -> None:
        self.emit(Instr("lw", rd=rd, rs1=rs1, imm=imm, post=post))

    def lhu(self, rd: int, rs1: int, imm: int = 0, post: int = 0) -> None:
        self.emit(Instr("lhu", rd=rd, rs1=rs1, imm=imm, post=post))

    def lb(self, rd: int, rs1: int, imm: int = 0, post: int = 0) -> None:
        self.emit(Instr("lb", rd=rd, rs1=rs1, imm=imm, post=post))

    def lbu(self, rd: int, rs1: int, imm: int = 0, post: int = 0) -> None:
        self.emit(Instr("lbu", rd=rd, rs1=rs1, imm=imm, post=post))

    def lbu_rr(self, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instr("lbu_rr", rd=rd, rs1=rs1, rs2=rs2))

    def lbu_ins(self, rd: int, rs1: int, rs2: int, lane: int) -> None:
        self.emit(Instr("lbu_ins", rd=rd, rs1=rs1, rs2=rs2, imm=lane))

    def sw(self, rs2: int, rs1: int, imm: int = 0, post: int = 0) -> None:
        self.emit(Instr("sw", rs1=rs1, rs2=rs2, imm=imm, post=post))

    def sb(self, rs2: int, rs1: int, imm: int = 0, post: int = 0) -> None:
        self.emit(Instr("sb", rs1=rs1, rs2=rs2, imm=imm, post=post))

    # -- SIMD ------------------------------------------------------------

    def sdotp(self, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instr("sdotp", rd=rd, rs1=rs1, rs2=rs2))

    def sdotup(self, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instr("sdotup", rd=rd, rs1=rs1, rs2=rs2))

    # -- control flow ------------------------------------------------------

    def beq(self, rs1: int, rs2: int, label: str) -> None:
        self.emit(Instr("beq", rs1=rs1, rs2=rs2, label=label))

    def bne(self, rs1: int, rs2: int, label: str) -> None:
        self.emit(Instr("bne", rs1=rs1, rs2=rs2, label=label))

    def blt(self, rs1: int, rs2: int, label: str) -> None:
        self.emit(Instr("blt", rs1=rs1, rs2=rs2, label=label))

    def bge(self, rs1: int, rs2: int, label: str) -> None:
        self.emit(Instr("bge", rs1=rs1, rs2=rs2, label=label))

    def j(self, label: str) -> None:
        self.emit(Instr("j", label=label))

    def lp_setup(self, count: int, end_label: str) -> None:
        """Hardware loop: execute the body up to (and including) the
        instruction *before* ``end_label``, ``count`` times, with zero
        branching overhead."""
        self.emit(Instr("lp_setup", imm=count, label=end_label))

    # -- extension ---------------------------------------------------------

    def xdec(self, rd: int, rs1: int, rs2: int, m: int) -> None:
        """xDecimate: indexed byte load steered by the csr (Sec. 4.3)."""
        if m not in (4, 8, 16):
            raise ValueError(f"xdec supports M in 4/8/16, got {m}")
        self.emit(Instr("xdec", rd=rd, rs1=rs1, rs2=rs2, imm=m))

    def xdec_clear(self) -> None:
        self.emit(Instr("xdec_clear"))

    def halt(self) -> None:
        self.emit(Instr("halt"))
