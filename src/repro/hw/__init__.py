"""Hardware model of the target platform (Vega-like PULP SoC).

This package substitutes for the paper's GVSoC simulation and RTL
prototype:

- :mod:`repro.hw.isa` — the micro-ISA the kernels are written against:
  an RV32-like subset plus the XpulpV2 features the paper relies on
  (post-increment loads, hardware loops, 4x8-bit SIMD dot products) and
  the new ``xDecimate`` instruction.
- :mod:`repro.hw.cpu` — a single-issue in-order core interpreter that
  executes instruction streams functionally and counts instructions,
  load-use stalls and cycles.
- :mod:`repro.hw.xfu` — the xDecimate eXtension Functional Unit
  (bit-exact behavioural model of the Sec. 4.3 datapath).
- :mod:`repro.hw.memory` — L1/L2/L3 scratchpad hierarchy and the DMA
  burst/double-buffering transfer model.
- :mod:`repro.hw.cluster` — 8-core cluster parallelisation model.
- :mod:`repro.hw.area` — kGE area ledger reproducing the 5% overhead
  claim and the Table 3 comparison.
"""

from repro.hw.isa import Instr, Program, Asm, OPCODES
from repro.hw.xfu import XDecimateUnit
from repro.hw.cpu import Core, ExecStats
from repro.hw.memory import MemoryLevel, MemoryHierarchy, DmaModel, VEGA_MEMORY
from repro.hw.cluster import ClusterConfig, VEGA_CLUSTER
from repro.hw.area import AreaModel, CoreAreaBudget, VEGA_CORE_AREA

__all__ = [
    "Instr",
    "Program",
    "Asm",
    "OPCODES",
    "XDecimateUnit",
    "Core",
    "ExecStats",
    "MemoryLevel",
    "MemoryHierarchy",
    "DmaModel",
    "VEGA_MEMORY",
    "ClusterConfig",
    "VEGA_CLUSTER",
    "AreaModel",
    "CoreAreaBudget",
    "VEGA_CORE_AREA",
]
