"""Multicore cluster parallelisation model.

Vega's compute cluster has 8 identical RISC-V cores running the same
kernel on disjoint chunks of the output space: conv kernels split the
outermost OX/OY loops, FC kernels split the K (output neuron) loop
(Sec. 4.1.1 / 4.2.1).  This module models the resulting span: the
slowest core's work plus a barrier cost per synchronisation point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ClusterConfig", "VEGA_CLUSTER"]


@dataclass(frozen=True)
class ClusterConfig:
    """Parallel execution parameters.

    Attributes
    ----------
    n_cores:
        Cluster cores running kernels (8 on Vega; the FC and DMA cores
        do not execute kernel code).
    barrier_cycles:
        Cost of the end-of-kernel synchronisation barrier.
    """

    n_cores: int = 8
    barrier_cycles: int = 64

    def split(self, n_items: int) -> int:
        """Items assigned to the most-loaded core (ceil division)."""
        if n_items < 0:
            raise ValueError(f"negative item count {n_items}")
        return math.ceil(n_items / self.n_cores)

    def span_cycles(self, n_items: int, cycles_per_item: float) -> float:
        """Parallel makespan of ``n_items`` uniform work items.

        The N:M constraint makes items genuinely uniform (every group
        of M positions holds the same work — Sec. 2.1), so a static
        block distribution with a trailing barrier is accurate.
        """
        return self.split(n_items) * cycles_per_item + self.barrier_cycles

    def efficiency(self, n_items: int) -> float:
        """Load-balance efficiency of a static split (1.0 = perfect)."""
        if n_items == 0:
            return 1.0
        return n_items / (self.split(n_items) * self.n_cores)


#: The 8-core Vega cluster used throughout the paper.
VEGA_CLUSTER = ClusterConfig(n_cores=8, barrier_cycles=64)
