"""Memory hierarchy and DMA transfer model of the Vega SoC.

The target (Sec. 2.2) has no caches: a 128 kB L1 data scratchpad shared
by the 8 cluster cores (single-cycle TCDM), a 1.6 MB L2, and 16 MB of
external L3 HyperRAM.  Tiles move between levels through a DMA engine
programmed by a dedicated core; the compiler double-buffers conv weight
tiles so transfers overlap compute (Sec. 5.2), while FC weight streams
are exposed (memory-bound layers).

This module provides capacity bookkeeping (used by the tiling engine)
and the transfer-time model (used by the layer cost model).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryLevel", "MemoryHierarchy", "DmaModel", "VEGA_MEMORY"]


@dataclass(frozen=True)
class MemoryLevel:
    """One scratchpad level.

    Attributes
    ----------
    name:
        "L1", "L2" or "L3".
    size_bytes:
        Capacity available to the workload.
    load_latency:
        Core-visible access latency in cycles (1 for L1 TCDM).
    """

    name: str
    size_bytes: int
    load_latency: int = 1

    def fits(self, nbytes: int) -> bool:
        """True when an allocation of ``nbytes`` fits this level."""
        return 0 <= nbytes <= self.size_bytes


@dataclass(frozen=True)
class DmaModel:
    """Timing of the cluster DMA engine.

    ``cycles(nbytes)`` = ``setup_cycles + ceil(nbytes / bandwidth)``.
    One outstanding transfer at a time (matching the single cluster DMA
    of the target); double-buffering is modelled by the caller taking
    ``max(compute, transfer)`` per tile.

    Attributes
    ----------
    bandwidth_bytes_per_cycle:
        Sustained burst bandwidth between L2 and L1 (64-bit interface).
    setup_cycles:
        Per-transfer programming overhead (descriptor write + trigger).
    """

    bandwidth_bytes_per_cycle: float = 8.0
    setup_cycles: int = 40

    def cycles(self, nbytes: int | float) -> float:
        """Transfer time for a contiguous burst of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.setup_cycles + nbytes / self.bandwidth_bytes_per_cycle

    def cycles_multi(self, nbytes: int | float, n_transfers: int) -> float:
        """Time for the same payload split over ``n_transfers`` bursts.

        Used by the L2-layout ablation (Sec. 4.4 item 3): storing
        weights and indices separately doubles the transaction count,
        paying ``setup_cycles`` twice per tile.
        """
        if n_transfers < 1:
            raise ValueError("n_transfers must be >= 1")
        return n_transfers * self.setup_cycles + (
            nbytes / self.bandwidth_bytes_per_cycle if nbytes else 0.0
        )


@dataclass(frozen=True)
class MemoryHierarchy:
    """The full L1/L2/L3 stack plus the DMA engine."""

    l1: MemoryLevel
    l2: MemoryLevel
    l3: MemoryLevel
    dma: DmaModel

    def level(self, name: str) -> MemoryLevel:
        """Look a level up by name."""
        levels = {"L1": self.l1, "L2": self.l2, "L3": self.l3}
        try:
            return levels[name]
        except KeyError:
            raise KeyError(f"unknown memory level {name!r}") from None


#: The hierarchy of the Vega SoC (Rossi et al., 2021) as used in the
#: paper: 128 kB shared L1, 1.6 MB L2 (MRAM portion unused), 16 MB L3.
VEGA_MEMORY = MemoryHierarchy(
    l1=MemoryLevel("L1", 128 * 1024, load_latency=1),
    l2=MemoryLevel("L2", 1600 * 1024, load_latency=10),
    l3=MemoryLevel("L3", 16 * 1024 * 1024, load_latency=50),
    dma=DmaModel(bandwidth_bytes_per_cycle=8.0, setup_cycles=40),
)
