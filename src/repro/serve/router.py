"""Sharded serving: a router dispatching to N engine worker processes.

:class:`RouterServer` scales :class:`~repro.serve.server.ModelServer`
past the single GIL: it spawns ``workers`` replica processes, each
running a full single-process server (its own
:class:`~repro.engine.engine.InferenceEngine`, pre-warmed plans,
batcher, thread pool) for every deployment, and dispatches requests
over duplex pipes with consistent per-deployment routing — all of one
model's traffic lands on one live replica, so its micro-batches keep
coalescing exactly as they would in-process.

The request contract is the single-process one, preserved across the
process boundary:

- admission errors (:class:`~repro.serve.errors.ServerClosed`,
  :class:`~repro.serve.errors.UnknownModel`,
  :class:`~repro.serve.errors.BadRequest` /
  :class:`~repro.serve.errors.RequestTooLarge`,
  :class:`~repro.serve.errors.ServerOverloaded`) raise synchronously
  from :meth:`RouterServer.submit`; the queue-depth cap is enforced
  *globally* at the router;
- a returned future always resolves — worker-side errors travel back
  as ``(code, detail)`` frames and re-raise as their Remote* typed
  twins; a worker that dies mid-request fails its in-flight futures
  with :class:`~repro.serve.errors.WorkerCrashed` and its deployments
  are re-routed to the surviving replicas;
- responses are bit-identical to single-process serving: workers run
  the same deterministic plan compilation and the same batched kernels.

Weight memory is paid ~once, not once per replica: the router's
registry compiles every plan inside a
:class:`~repro.serve.shm.SharedWeightStore` (owner mode) so the packed
weight images live in POSIX shared memory; each worker re-compiles
deterministically in attach mode and maps the same segments (see
:mod:`repro.serve.shm`).  The weight *budget* is likewise enforced
once, globally, at router registration.

Shutdown is drain-then-deadline: workers get a ``shutdown`` frame,
drain their batchers (resolving every accepted request) and answer
``bye``; a worker still silent at the drain deadline is killed and
reported in ``stats()['server']['killed_workers']`` — never orphaned.
Shared segments are unlinked last and leak-checked by the tests.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing as mp
import queue
import signal
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.engine import _plan_key
from repro.kernels.backend import layout_interning
from repro.serve.batcher import BatchPolicy
from repro.serve.errors import (
    RequestTooLarge,
    ServeError,
    ServerClosed,
    ServerOverloaded,
    WorkerCrashed,
    error_from_code,
    wire_class,
)
from repro.serve.metrics import Metrics
from repro.serve.registry import ModelRegistry
from repro.serve.shm import SharedWeightStore

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

    from repro.compiler.ir import Graph

__all__ = ["DeploymentSpec", "RouterServer"]

_EOF = object()


@dataclass(frozen=True)
class DeploymentSpec:
    """Everything a worker needs to rebuild one deployment (picklable).

    ``shm_prefix`` is the router-assigned shared-weight key prefix —
    derived from the deployment name and the engine plan-cache key —
    that the worker's attach-mode compile must reuse verbatim to land
    on the owner's segments.
    """

    name: str
    graph: "Graph"
    mode: str
    sparse: bool
    select_fmt: bool
    accuracy_budget: float
    backend: str
    accum_dtype: str | None
    act_skip: str
    shm_prefix: str

    def register_kwargs(self) -> dict:
        return {
            "sparse": self.sparse,
            "select_fmt": self.select_fmt,
            "accuracy_budget": self.accuracy_budget,
            "backend": self.backend,
            "accum_dtype": self.accum_dtype,
            "act_skip": self.act_skip,
        }


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _recv_or_eof(conn: "Connection"):
    try:
        return conn.recv()
    except (EOFError, OSError):
        return _EOF


async def _worker_loop(
    conn: "Connection",
    namespace: str,
    specs: list[DeploymentSpec],
    policy: BatchPolicy,
    threads: int,
    max_queue_depth: int,
    index: int = 0,
    trace: bool = False,
) -> None:
    from repro.serve.server import ModelServer

    tracer = None
    if trace:
        # Each replica records into its own buffer (timestamps are
        # wall-clock, comparable across processes); the router merges
        # the drained events into one timeline at shutdown via the
        # ("trace", events) frame below.
        from repro.trace import Tracer

        tracer = Tracer(process_name=f"serve-shard-{index}")
    store = SharedWeightStore(namespace, create=False)
    registry = ModelRegistry()
    for spec in specs:
        # Deterministic recompilation under the owner's key prefix:
        # the packed arrays come back as views of the shared segments.
        with layout_interning(store, spec.shm_prefix):
            registry.register(
                spec.name, spec.graph, spec.mode, **spec.register_kwargs()
            )
    server = ModelServer(
        registry=registry,
        policy=policy,
        workers=threads,
        max_queue_depth=max_queue_depth,
        tracer=tracer,
    )
    loop = asyncio.get_running_loop()
    await server.start()
    conn.send(
        ("ready", {"models": list(registry.names()), "shm": store.stats()})
    )

    def respond(rid: int, fut: "asyncio.Future") -> None:
        try:
            out = fut.result()
        except ServeError as err:
            payload = ("err", rid, getattr(err, "code", "serve_error"), str(err))
        except BaseException as err:
            payload = ("err", rid, "serve_error", f"{type(err).__name__}: {err}")
        else:
            payload = ("ok", rid, out)
        try:
            conn.send(payload)
        except (OSError, ValueError):
            pass  # router went away; nothing to answer

    while True:
        msg = await loop.run_in_executor(None, _recv_or_eof, conn)
        if msg is _EOF:
            await server.shutdown()
            return
        op = msg[0]
        if op == "infer":
            _, rid, model, x = msg
            try:
                fut = server.submit(model, x)
            except ServeError as err:
                conn.send(("err", rid, err.code, str(err)))
                continue
            fut.add_done_callback(
                lambda f, rid=rid: respond(rid, f)
            )
        elif op == "stats":
            conn.send(("stats", msg[1], server.metrics.state()))
        elif op == "shutdown":
            await server.shutdown()
            if tracer is not None:
                # Ship the replica's trace buffer home before the bye
                # frame (whose shape stays backward-compatible).
                conn.send(("trace", tracer.drain()))
            conn.send(("bye", server.metrics.state()))
            return
        elif op == "_test_hang":
            # Test-only: wedge the event loop so the router's drain
            # deadline and kill-path can be exercised deterministically.
            time.sleep(msg[1])


def _worker_main(
    conn: "Connection",
    namespace: str,
    specs: list[DeploymentSpec],
    policy: BatchPolicy,
    threads: int,
    max_queue_depth: int,
    index: int = 0,
    trace: bool = False,
) -> None:
    # A terminal Ctrl-C reaches the whole foreground process group, so
    # without this the replicas die on their own KeyboardInterrupt
    # before the router's ``shutdown`` frame arrives — dropping queued
    # requests and the trace buffers mid-drain.  Shutdown is the
    # router's call: workers exit on the ``shutdown`` frame or on pipe
    # EOF (the router vanishing), never on the signal itself.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        asyncio.run(
            _worker_loop(
                conn,
                namespace,
                specs,
                policy,
                threads,
                max_queue_depth,
                index=index,
                trace=trace,
            )
        )
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Router
# ---------------------------------------------------------------------------


@dataclass
class _Worker:
    index: int
    proc: "mp.process.BaseProcess"
    conn: "Connection"
    send_q: "queue.SimpleQueue"
    ready: "asyncio.Future"
    bye: "asyncio.Future"
    sender: threading.Thread | None = None
    reader: threading.Thread | None = None
    alive: bool = True
    saw_bye: bool = False
    killed: bool = False
    final_state: dict | None = None
    pending_rids: set = field(default_factory=set)


@dataclass
class _Pending:
    future: "asyncio.Future"
    samples: int
    batched: bool
    worker: int


class RouterServer:
    """Multi-process sharded model server (router + worker replicas).

    Mirrors the :class:`~repro.serve.server.ModelServer` surface
    (``register`` / ``start`` / ``submit`` / ``infer`` / ``stats`` /
    ``shutdown``, async-context-manager lifecycle) so the TCP
    front-end, loadgen, and CLI drive either interchangeably — with
    one deliberate asymmetry: :meth:`stats` is a coroutine (it
    round-trips the workers), see
    :func:`repro.serve.tcp.snapshot_stats`.

    Deployments must be registered *before* :meth:`start`: workers
    receive their deployment set once, at spawn.  Crashed workers are
    not respawned — their deployments re-route to the survivors and
    the crash is visible in ``stats()``.
    """

    def __init__(
        self,
        policy: BatchPolicy | None = None,
        workers: int = 2,
        max_queue_depth: int = 256,
        max_weight_bytes: int | None = None,
        threads_per_worker: int = 2,
        drain_timeout_s: float = 10.0,
        start_timeout_s: float = 120.0,
        stats_timeout_s: float = 5.0,
        tracer=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        #: Optional :class:`repro.trace.Tracer`.  The router records
        #: per-request pipe round-trip (``rpc``) spans and global
        #: queue-depth counters; worker replicas each record their own
        #: buffer, drained back into this one at shutdown so the
        #: written trace shows every process as a distinct track.
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        self.policy = policy or BatchPolicy()
        self.workers = workers
        self.max_queue_depth = max_queue_depth
        self.threads_per_worker = threads_per_worker
        self.drain_timeout_s = drain_timeout_s
        self.start_timeout_s = start_timeout_s
        self.stats_timeout_s = stats_timeout_s
        #: Owner-mode shared segments; workers attach by namespace.
        self.shared_store = SharedWeightStore(create=True)
        #: The router-side registry: global weight budget, admission
        #: metadata (shapes, plan introspection for describe).
        self.registry = ModelRegistry(max_weight_bytes=max_weight_bytes)
        if self.tracer is not None:
            # Warm-plan compilations at register() show up as engine
            # spans on the router's own track.
            self.registry.engine.tracer = self.tracer
        self.killed_workers: list[int] = []
        self._specs: dict[str, DeploymentSpec] = {}
        self._serial = itertools.count()
        self._workers: list[_Worker] = []
        self._assignment: dict[str, int] = {}
        self._rid = itertools.count()
        self._sid = itertools.count()
        self._pending: dict[int, _Pending] = {}
        self._stat_waiters: dict[tuple[int, int], "asyncio.Future"] = {}
        self._rejections: Counter = Counter()
        self._crash_failed = 0
        self._depth = 0
        self._running = False
        self._closing = False

    # -- registration (pre-start) ---------------------------------------

    def register(
        self,
        name: str,
        graph: "Graph",
        mode: str = "float",
        sparse: bool = False,
        select_fmt: bool = False,
        accuracy_budget: float = 0.0,
        backend: str = "sw",
        accum_dtype: str | None = None,
        act_skip: str = "off",
    ):
        """Register a deployment; compiles the warm plan into shared
        memory and enforces the weight budget once, globally.

        On any failure — including
        :class:`~repro.serve.errors.WeightBudgetExceeded` raised after
        compilation — the deployment's freshly published segments are
        unlinked and its warm plan evicted, so a rejected registration
        leaves neither shared memory nor cache residue behind.
        """
        if self._running or self._closing:
            # Lifecycle misuse by the embedding process, never a wire
            # error (and the public contract is pinned to RuntimeError).
            # repro: allow(serve-typed-errors)
            raise RuntimeError(
                "sharded deployments must be registered before start()"
            )
        plan_key = _plan_key(
            mode,
            sparse,
            select_fmt,
            accuracy_budget,
            backend,
            accum_dtype,
            act_skip,
        )
        prefix = f"{name}#{next(self._serial)}:{plan_key}"
        with self.shared_store.capture() as created:
            try:
                with layout_interning(self.shared_store, prefix):
                    dep = self.registry.register(
                        name,
                        graph,
                        mode,
                        sparse=sparse,
                        select_fmt=select_fmt,
                        accuracy_budget=accuracy_budget,
                        backend=backend,
                        accum_dtype=accum_dtype,
                        act_skip=act_skip,
                    )
            except Exception:
                self.shared_store.release(created)
                self.registry.engine.invalidate(graph)
                raise
        self._specs[name] = DeploymentSpec(
            name=name,
            graph=graph,
            mode=mode,
            sparse=sparse,
            select_fmt=select_fmt,
            accuracy_budget=accuracy_budget,
            backend=backend,
            accum_dtype=accum_dtype,
            act_skip=act_skip,
            shm_prefix=prefix,
        )
        return dep

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Spawn and handshake the worker replicas; idempotent."""
        if self._running:
            return
        loop = asyncio.get_running_loop()
        ctx = mp.get_context("spawn")
        specs = list(self._specs.values())
        for i in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    self.shared_store.namespace,
                    specs,
                    self.policy,
                    self.threads_per_worker,
                    self.max_queue_depth,
                    i,
                    self.tracer is not None,
                ),
                name=f"serve-shard-{i}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            if self.tracer is not None:
                # Label the replica's track up front: pid→name metadata
                # lives in the router buffer even if the worker dies
                # before draining its own events home.
                self.tracer.meta_process(f"serve-shard-{i}", pid=proc.pid)
            w = _Worker(
                index=i,
                proc=proc,
                conn=parent_conn,
                send_q=queue.SimpleQueue(),
                ready=loop.create_future(),
                bye=loop.create_future(),
            )
            w.sender = threading.Thread(
                target=_sender_loop, args=(w,), daemon=True,
                name=f"router-send-{i}",
            )
            w.reader = threading.Thread(
                target=self._reader_loop, args=(w, loop), daemon=True,
                name=f"router-recv-{i}",
            )
            w.sender.start()
            w.reader.start()
            self._workers.append(w)
        self._running = True
        self._closing = False
        self._rebalance()
        try:
            await asyncio.wait_for(
                asyncio.gather(*(w.ready for w in self._workers)),
                timeout=self.start_timeout_s,
            )
        except BaseException:
            await self._teardown(drain=False)
            raise

    async def shutdown(self) -> None:
        """Drain workers, join with a deadline, kill stragglers, unlink."""
        if not self._running and not self._workers:
            # Never started (or already torn down): release any
            # segments published at registration time.
            self.shared_store.unlink()
            return
        await self._teardown(drain=True)

    async def __aenter__(self) -> "RouterServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    async def _teardown(self, drain: bool) -> None:
        loop = asyncio.get_running_loop()
        self._closing = True
        if drain:
            for w in self._workers:
                if w.alive:
                    w.send_q.put(("shutdown",))
            deadline = loop.time() + self.drain_timeout_s
            for w in self._workers:
                remaining = max(0.0, deadline - loop.time())
                try:
                    await asyncio.wait_for(asyncio.shield(w.bye), remaining)
                except (asyncio.TimeoutError, TimeoutError):
                    pass
        # A worker that never answered bye is hung (or long dead):
        # kill it — reported, never orphaned.
        for w in self._workers:
            if not w.saw_bye and w.proc.is_alive():
                w.proc.kill()
                w.killed = True
                w.alive = False
                self.killed_workers.append(w.index)
        await loop.run_in_executor(None, self._join_procs)
        # In-flight requests of killed/dead workers resolve typed.
        for rid in list(self._pending):
            self._finish(
                rid,
                error=wire_class(WorkerCrashed)(
                    "worker killed at shutdown with the request in flight"
                ),
                crash=True,
            )
        for w in self._workers:
            w.send_q.put(None)
            try:
                w.conn.close()
            except OSError:
                pass
        await loop.run_in_executor(None, self._join_threads)
        for w in self._workers:
            w.alive = False
        self._workers = []
        self._assignment = {}
        self._running = False
        self.shared_store.unlink()

    def _join_procs(self) -> None:
        for w in self._workers:
            w.proc.join(timeout=self.drain_timeout_s)
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join(timeout=self.drain_timeout_s)
                if not w.killed:
                    w.killed = True
                    self.killed_workers.append(w.index)
            try:
                w.proc.close()
            except ValueError:
                pass

    def _join_threads(self) -> None:
        for w in self._workers:
            for t in (w.sender, w.reader):
                if t is not None:
                    t.join(timeout=5.0)

    # -- pipe plumbing (threads <-> event loop) -------------------------

    def _reader_loop(self, w: _Worker, loop: asyncio.AbstractEventLoop):
        while True:
            try:
                msg = w.conn.recv()
            except (EOFError, OSError):
                try:
                    loop.call_soon_threadsafe(self._on_worker_eof, w)
                except RuntimeError:
                    pass  # loop already closed
                return
            try:
                loop.call_soon_threadsafe(self._on_message, w, msg)
            except RuntimeError:
                return

    def _on_message(self, w: _Worker, msg: tuple) -> None:
        op = msg[0]
        if op == "ok":
            self._finish(msg[1], result=msg[2])
        elif op == "err":
            self._finish(msg[1], error=error_from_code(msg[2], msg[3]))
        elif op == "stats":
            fut = self._stat_waiters.pop((w.index, msg[1]), None)
            if fut is not None and not fut.done():
                fut.set_result(msg[2])
        elif op == "trace":
            # A draining replica's trace buffer: merge it into the
            # router's timeline (events carry the worker's own pid).
            if self.tracer is not None:
                self.tracer.extend(msg[1])
        elif op == "ready":
            if not w.ready.done():
                w.ready.set_result(msg[1])
        elif op == "bye":
            w.saw_bye = True
            w.final_state = msg[1]
            if not w.bye.done():
                w.bye.set_result(msg[1])

    def _on_worker_eof(self, w: _Worker) -> None:
        w.alive = False
        if not w.ready.done():
            w.ready.set_exception(
                wire_class(WorkerCrashed)(
                    f"worker {w.index} exited during startup"
                )
            )
        if not w.bye.done():
            # EOF after bye is the normal close; EOF without bye means
            # the process died — unblock shutdown either way.
            w.bye.set_result(w.final_state)
        for rid in list(w.pending_rids):
            self._finish(
                rid,
                error=wire_class(WorkerCrashed)(
                    f"worker {w.index} died with the request in flight"
                ),
                crash=True,
            )
        for key in [k for k in self._stat_waiters if k[0] == w.index]:
            fut = self._stat_waiters.pop(key)
            if not fut.done():
                fut.set_result(None)
        if not self._closing:
            self._rebalance()

    def _finish(self, rid: int, result=None, error=None, crash=False) -> None:
        entry = self._pending.pop(rid, None)
        if entry is None:
            return
        self._depth -= entry.samples
        worker = self._workers[entry.worker] if entry.worker < len(self._workers) else None
        if worker is not None:
            worker.pending_rids.discard(rid)
        if crash:
            self._crash_failed += 1
        if self.tracer is not None:
            self.tracer.end_async(
                "rpc", rid, cat="router", args={"ok": error is None}
            )
            self.tracer.counter("queue_depth", {"samples": self._depth})
        if entry.future.done():
            return
        if error is not None:
            entry.future.set_exception(error)
        else:
            entry.future.set_result(
                result if entry.batched else result[0]
            )

    def _rebalance(self) -> None:
        """Consistent per-deployment routing over the live replicas.

        Deployments are assigned round-robin over sorted names modulo
        the live worker list — balanced by construction, recomputed
        only on membership change (a worker death), so a deployment's
        traffic stays on one replica and keeps batching.
        """
        alive = [w.index for w in self._workers if w.alive]
        if not alive:
            self._assignment = {}
            return
        self._assignment = {
            name: alive[i % len(alive)]
            for i, name in enumerate(sorted(self._specs))
        }

    # -- request path (event loop only) ---------------------------------

    def submit(self, model: str, x: np.ndarray) -> "asyncio.Future[np.ndarray]":
        """Admit one request; returns a future resolving to its output.

        Same synchronous admission contract as
        :meth:`ModelServer.submit`, plus
        :class:`~repro.serve.errors.WorkerCrashed` when no live
        replica remains to serve the deployment.
        """
        loop = asyncio.get_running_loop()
        if not self._running or self._closing:
            self._rejections[ServerClosed.code] += 1
            raise ServerClosed("server is not accepting requests")
        try:
            deployment = self.registry.get(model)
            batch, batched = deployment.coerce_request(x)
        except Exception as err:
            self._rejections[getattr(err, "code", "bad_request")] += 1
            raise
        samples = batch.shape[0]
        if samples > self.policy.max_batch_size:
            self._rejections[RequestTooLarge.code] += 1
            raise RequestTooLarge(samples, self.policy.max_batch_size)
        if self._depth + samples > self.max_queue_depth:
            self._rejections[ServerOverloaded.code] += 1
            raise ServerOverloaded(self._depth, self.max_queue_depth)
        windex = self._assignment.get(model)
        if windex is None:
            self._rejections[WorkerCrashed.code] += 1
            raise wire_class(WorkerCrashed)(
                "no live worker replica left to dispatch to"
            )
        w = self._workers[windex]
        rid = next(self._rid)
        fut: "asyncio.Future[np.ndarray]" = loop.create_future()
        self._pending[rid] = _Pending(fut, samples, batched, windex)
        w.pending_rids.add(rid)
        self._depth += samples
        if self.tracer is not None:
            self.tracer.begin_async(
                "rpc",
                rid,
                cat="router",
                args={"model": model, "worker": windex, "samples": samples},
            )
            self.tracer.counter("queue_depth", {"samples": self._depth})
        w.send_q.put(("infer", rid, model, batch))
        return fut

    async def infer(self, model: str, x: np.ndarray) -> np.ndarray:
        """Submit and await one request."""
        return await self.submit(model, x)

    # -- stats ----------------------------------------------------------

    def _router_state(self) -> dict:
        """Router-level counters as a mergeable Metrics state.

        Only what the workers cannot see: router-side admission
        rejections and requests failed by a worker crash (a crashed
        worker's own counters die with it).
        """
        return {
            "requests_accepted": 0,
            "requests_completed": 0,
            "requests_failed": self._crash_failed,
            "requests_rejected": dict(self._rejections),
            "samples_completed": 0,
            "queue_depth": 0,
            "batch_sizes": {},
            "latencies_s": [],
            "latency_weights": [],
            "latency_window": 1,
        }

    async def _collect_worker_states(self) -> dict[int, dict]:
        loop = asyncio.get_running_loop()
        futs: dict[int, "asyncio.Future"] = {}
        for w in self._workers:
            if not w.alive:
                if w.final_state is not None:
                    done = loop.create_future()
                    done.set_result(w.final_state)
                    futs[w.index] = done
                continue
            sid = next(self._sid)
            fut = loop.create_future()
            self._stat_waiters[(w.index, sid)] = fut
            w.send_q.put(("stats", sid))
            futs[w.index] = fut
        states: dict[int, dict] = {}
        for index, fut in futs.items():
            try:
                state = await asyncio.wait_for(fut, self.stats_timeout_s)
            except (asyncio.TimeoutError, TimeoutError):
                state = None
            if state is not None:
                states[index] = state
        return states

    async def stats(self) -> dict:
        """Aggregate snapshot (same shape as :meth:`ModelServer.stats`)
        plus ``per_worker`` views and sharding gauges.

        Counters/histograms add across workers and the latency
        reservoirs are pooled before the quantiles are recomputed
        (:meth:`~repro.serve.metrics.Metrics.merge`), so the top-level
        fields read exactly like a single-process server's.
        """
        states = await self._collect_worker_states()
        merged = Metrics.merge([*states.values(), self._router_state()])
        snap = merged.snapshot()
        snap["server"] = {
            "running": self._running and not self._closing,
            "sharded": True,
            "workers": self.workers,
            "alive_workers": sum(w.alive for w in self._workers),
            "killed_workers": list(self.killed_workers),
            "models": list(self.registry.names()),
            "policy": {
                "max_batch_size": self.policy.max_batch_size,
                "max_wait_ms": self.policy.max_wait_ms,
            },
            "max_queue_depth": self.max_queue_depth,
            "shm": self.shared_store.stats(),
        }
        snap["per_worker"] = {
            str(index): Metrics.from_state(state).snapshot()
            for index, state in sorted(states.items())
        }
        return snap

    def describe_extra(self) -> dict:
        """Sharding/shm introspection merged into the TCP describe op."""
        return {
            "sharding": {
                "workers": self.workers,
                "alive_workers": sum(w.alive for w in self._workers),
                "killed_workers": list(self.killed_workers),
                "assignment": {
                    name: int(index)
                    for name, index in sorted(self._assignment.items())
                },
                "shm": self.shared_store.stats(),
            }
        }

    # -- test hooks -----------------------------------------------------

    def _hang_worker(self, index: int, seconds: float) -> None:
        """Test-only: wedge a worker's event loop for ``seconds``."""
        self._workers[index].send_q.put(("_test_hang", seconds))


def _sender_loop(w: _Worker) -> None:
    while True:
        item = w.send_q.get()
        if item is None:
            return
        try:
            w.conn.send(item)
        except (OSError, ValueError, BrokenPipeError):
            return  # reader thread's EOF path fails the pending rids
