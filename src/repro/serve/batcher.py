"""Dynamic micro-batching: coalesce in-flight requests per deployment.

The :class:`Batcher` is the heart of the serving subsystem.  Each
deployment gets one batcher; requests accepted by the server are
appended to its pending deque, and an asyncio task forms micro-batches
under the :class:`BatchPolicy`:

- **flush when full** — as soon as the pending samples reach
  ``max_batch_size``, a batch is formed immediately;
- **flush at deadline** — otherwise the batcher waits at most
  ``max_wait_ms`` after the *oldest* pending request arrived, so a lone
  request is never stuck waiting for company;
- **requests are atomic** — a request's samples all land in the same
  micro-batch (batch formation takes a greedy prefix of the pending
  deque), which is why the server rejects requests larger than
  ``max_batch_size`` up front with
  :class:`~repro.serve.errors.RequestTooLarge`.

Formed :class:`MicroBatch` objects are put on the server's shared batch
queue, where the worker pool picks them up and runs them through
``InferenceEngine.run_batch``.  On :meth:`Batcher.close` the pending
deque is flushed to the queue without waiting — accepted requests are
drained, never dropped.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.serve.errors import ServerClosed
from repro.serve.registry import Deployment

__all__ = ["BatchPolicy", "PendingRequest", "MicroBatch", "Batcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs governing micro-batch formation.

    ``max_batch_size`` is the ceiling in *samples* (a request may carry
    several); ``max_wait_ms`` bounds how long the oldest pending
    request may wait before a partial batch is flushed.  A policy of
    ``(1, 0)`` degenerates to batch-size-1 serving — the baseline the
    serve benchmark compares against.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")

    @property
    def max_wait_s(self) -> float:
        return self.max_wait_ms / 1e3


@dataclass
class PendingRequest:
    """One accepted request waiting to be batched."""

    deployment: Deployment
    batch: np.ndarray  # (samples, *input_shape), float32
    samples: int
    batched: bool  # payload arrived with a leading batch axis
    future: "asyncio.Future[np.ndarray]"
    enqueued_at: float  # loop.time() at acceptance
    trace_id: int = -1  # server-assigned id correlating trace spans


@dataclass
class MicroBatch:
    """A formed batch: a greedy prefix of one deployment's pending deque."""

    deployment: Deployment
    requests: list[PendingRequest] = field(default_factory=list)

    @property
    def samples(self) -> int:
        return sum(r.samples for r in self.requests)

    def concat(self) -> np.ndarray:
        """Stack the member requests into one (B, *input_shape) array."""
        if len(self.requests) == 1:
            return self.requests[0].batch
        return np.concatenate([r.batch for r in self.requests], axis=0)


class Batcher:
    """Coalesces one deployment's requests into micro-batches.

    Owns a pending deque and a formation task; formed batches go to
    ``out_queue`` (the server's shared batch queue).  All interaction
    happens on the event loop — no locks needed.
    """

    def __init__(
        self,
        deployment: Deployment,
        policy: BatchPolicy,
        out_queue: "asyncio.Queue[MicroBatch]",
        tracer=None,
    ) -> None:
        self.deployment = deployment
        self.policy = policy
        self._out = out_queue
        # Queue-wait spans and flush instants are asynchronous trace
        # events: batchers for several deployments interleave on one
        # event loop, so strictly-nested B/E spans would not balance.
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._pending: list[PendingRequest] = []
        self._pending_samples = 0
        self._wake = asyncio.Event()
        self._closing = False
        self._task: asyncio.Task | None = None

    # -- introspection --------------------------------------------------

    @property
    def pending_samples(self) -> int:
        return self._pending_samples

    # -- request intake (event loop only) -------------------------------

    def add(self, request: PendingRequest) -> None:
        """Append an accepted request and wake the formation loop."""
        if self._closing:
            raise ServerClosed("batcher is closed")
        self._pending.append(request)
        self._pending_samples += request.samples
        if self._tracer is not None and request.trace_id >= 0:
            self._tracer.begin_async(
                "queue_wait",
                request.trace_id,
                args={
                    "deployment": self.deployment.name,
                    "samples": request.samples,
                },
            )
        self._wake.set()

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name=f"batcher-{self.deployment.name}"
            )

    async def close(self) -> None:
        """Stop accepting, flush everything pending, end the task."""
        self._closing = True
        self._wake.set()
        if self._task is not None:
            try:
                await self._task
            except asyncio.CancelledError:
                pass  # externally cancelled; flush below still runs
            except Exception:
                pass  # formation task crashed; flush below still runs
            self._task = None
        # The formation loop normally drains _pending before exiting;
        # if it died early, accepted requests would be dropped silently
        # (the old ServerClosed race) — flush the remainder here so
        # every accepted request reaches the queue and resolves.
        while self._pending:
            await self._out.put(self._form("close"))

    # -- batch formation ------------------------------------------------

    def _form(self, reason: str = "deadline") -> MicroBatch:
        """Take the greedy prefix of pending that fits the policy."""
        mb = MicroBatch(self.deployment)
        taken = 0
        for req in self._pending:
            if mb.requests and taken + req.samples > self.policy.max_batch_size:
                break
            mb.requests.append(req)
            taken += req.samples
        del self._pending[: len(mb.requests)]
        self._pending_samples -= taken
        if self._tracer is not None:
            for req in mb.requests:
                if req.trace_id >= 0:
                    self._tracer.end_async("queue_wait", req.trace_id)
            self._tracer.instant(
                "flush",
                args={
                    "deployment": self.deployment.name,
                    "requests": len(mb.requests),
                    "samples": taken,
                    "reason": reason,
                },
            )
        return mb

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._pending:
                if self._closing:
                    return
                self._wake.clear()
                # Re-check after clearing: add() may have landed between
                # the emptiness check and the clear.
                if not self._pending and not self._closing:
                    await self._wake.wait()
                continue
            deadline = self._pending[0].enqueued_at + self.policy.max_wait_s
            while (
                not self._closing
                and self._pending_samples < self.policy.max_batch_size
            ):
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), remaining)
                except (asyncio.TimeoutError, TimeoutError):
                    break
            if self._closing:
                reason = "close"
            elif self._pending_samples >= self.policy.max_batch_size:
                reason = "full"
            else:
                reason = "deadline"
            await self._out.put(self._form(reason))
