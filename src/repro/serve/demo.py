"""The demo deployment set used by the CLI, CI smoke job, and examples.

Hosts the engine benchmark's ResNet-style graph as ``resnet-float`` and
``resnet-int8``, plus an N:M-pruned sibling served through the sparse
execution plans as ``resnet-sparse-int8`` (quantised packed weights,
SW backend), ``resnet-sparse-isa`` (the same pruned graph pinned to the
ISA-extension emulation backend — bit-identical responses, ISA weight
layouts) and ``resnet-sparse-float`` (float32 packed weights), and a
format-selected deployment ``resnet-select-int8`` of the mixed-format
demo graph — exercising the registry's side-by-side
(graph, mode, sparse, selection, backend) deployments.  Everything is
seeded through :func:`repro.utils.rng.make_rng`, so the demo weights,
calibration data, and therefore every served logit are reproducible.

``demo_server(processes=N)`` with ``N >= 2`` hosts the same set on a
sharded :class:`~repro.serve.router.RouterServer` — N worker processes
sharing one copy of the packed weights through
:mod:`repro.serve.shm` — instead of a single-process
:class:`~repro.serve.server.ModelServer`.  Registration order, graphs,
and plans are identical either way, which is what the multi-worker
bit-identity checks rely on.
"""

from __future__ import annotations

from repro.engine.bench import MIXED_DEMO_FMTS, resnet_style_graph
from repro.serve.batcher import BatchPolicy
from repro.serve.router import RouterServer
from repro.serve.server import ModelServer
from repro.sparsity.nm import FORMAT_1_8
from repro.utils.rng import make_rng

__all__ = [
    "DEMO_MODELS",
    "DEMO_SPARSE_FORMAT",
    "demo_registrations",
    "demo_server",
]

#: Deployment names the demo server hosts.
DEMO_MODELS = (
    "resnet-float",
    "resnet-int8",
    "resnet-sparse-int8",
    "resnet-sparse-isa",
    "resnet-sparse-float",
    "resnet-select-int8",
)

#: N:M format of the pruned demo deployments.
DEMO_SPARSE_FORMAT = FORMAT_1_8


def demo_registrations(
    seed: int = 0, sparse: bool = True, act_skip: str = "off"
) -> list[tuple[str, object, str, dict]]:
    """The demo deployment specs: ``(name, graph, mode, kwargs)`` rows.

    One definition shared by the single-process and sharded demo
    servers (and by tests that need a direct-engine reference for the
    served deployments), so every flavour registers byte-identical
    graphs in the same order.  ``act_skip`` != ``"off"`` opts the
    sparse deployments into activation zero-skipping; the calibration
    batch doubles as the density-calibration batch so ``"auto"`` plans
    have a measured estimate to gate on.
    """
    import numpy as np

    from repro.models.quantize import quantize_graph

    graph = resnet_style_graph(seed=seed)
    rng = make_rng(seed)
    calib = [
        rng.normal(size=(12, 12, 3)).astype("float32") for _ in range(4)
    ]
    quantize_graph(graph, calib)
    regs: list[tuple[str, object, str, dict]] = [
        ("resnet-float", graph, "float", {}),
        ("resnet-int8", graph, "int8", {}),
    ]
    skip_kwargs = {} if act_skip == "off" else {"act_skip": act_skip}
    if sparse:
        pruned = resnet_style_graph(seed=seed, fmt=DEMO_SPARSE_FORMAT)
        quantize_graph(pruned, calib)
        mixed = resnet_style_graph(seed=seed, layer_fmts=MIXED_DEMO_FMTS)
        quantize_graph(mixed, calib)
        if act_skip != "off":
            from repro.engine.calibrate import calibrate_act_density

            batch = np.stack(calib)
            calibrate_act_density(pruned, batch)
            calibrate_act_density(mixed, batch)
        regs += [
            (
                "resnet-sparse-int8",
                pruned,
                "int8",
                {"sparse": True, **skip_kwargs},
            ),
            (
                "resnet-sparse-isa",
                pruned,
                "int8",
                {"sparse": True, "backend": "isa", **skip_kwargs},
            ),
            (
                "resnet-sparse-float",
                pruned,
                "float",
                {"sparse": True, **skip_kwargs},
            ),
            (
                "resnet-select-int8",
                mixed,
                "int8",
                {"sparse": True, "select_fmt": True, **skip_kwargs},
            ),
        ]
    return regs


def demo_server(
    policy: BatchPolicy | None = None,
    workers: int = 2,
    max_queue_depth: int = 256,
    seed: int = 0,
    sparse: bool = True,
    max_weight_bytes: int | None = None,
    processes: int = 1,
    tracer=None,
    act_skip: str = "off",
) -> ModelServer | RouterServer:
    """Build (but don't start) a server hosting the demo deployments.

    ``sparse=False`` drops the four sparse-plan deployments
    (``resnet-sparse-int8``, ``resnet-sparse-isa``,
    ``resnet-sparse-float``, ``resnet-select-int8``); the two
    dense-plan deployments are always hosted.  ``max_weight_bytes``
    budgets the registry's cumulative weight memory — a demo set that
    does not fit raises
    :class:`~repro.serve.errors.WeightBudgetExceeded` at build time
    (the ``repro serve --max-weight-mb`` / CI rejection path).

    ``processes >= 2`` returns a sharded
    :class:`~repro.serve.router.RouterServer` with that many worker
    replicas (``workers`` then sizes each replica's in-process thread
    pool); the weight budget is enforced once, globally, and the packed
    weights are shared across the replicas.
    """
    if processes < 1:
        raise ValueError("processes must be >= 1")
    if processes > 1:
        server: ModelServer | RouterServer = RouterServer(
            policy=policy,
            workers=processes,
            threads_per_worker=workers,
            max_queue_depth=max_queue_depth,
            max_weight_bytes=max_weight_bytes,
            tracer=tracer,
        )
    else:
        server = ModelServer(
            policy=policy,
            workers=workers,
            max_queue_depth=max_queue_depth,
            max_weight_bytes=max_weight_bytes,
            tracer=tracer,
        )
    try:
        for name, graph, mode, kwargs in demo_registrations(
            seed=seed, sparse=sparse, act_skip=act_skip
        ):
            server.register(name, graph, mode, **kwargs)
    except BaseException:
        if isinstance(server, RouterServer):
            # Budget rejection before start(): release the segments the
            # earlier, accepted registrations already published.
            server.shared_store.unlink()
        raise
    return server
