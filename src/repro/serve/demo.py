"""The demo deployment set used by the CLI, CI smoke job, and examples.

Hosts the engine benchmark's ResNet-style graph twice — ``resnet-float``
and ``resnet-int8`` — on one server, exercising the registry's
side-by-side (graph, mode) deployments.  Everything is seeded through
:func:`repro.utils.rng.make_rng`, so the demo weights, calibration
data, and therefore every served logit are reproducible.
"""

from __future__ import annotations

from repro.engine.bench import resnet_style_graph
from repro.serve.batcher import BatchPolicy
from repro.serve.server import ModelServer
from repro.utils.rng import make_rng

__all__ = ["DEMO_MODELS", "demo_server"]

#: Deployment names the demo server hosts.
DEMO_MODELS = ("resnet-float", "resnet-int8")


def demo_server(
    policy: BatchPolicy | None = None,
    workers: int = 2,
    max_queue_depth: int = 256,
    seed: int = 0,
) -> ModelServer:
    """Build (but don't start) a server hosting the demo deployments."""
    from repro.models.quantize import quantize_graph

    graph = resnet_style_graph(seed=seed)
    rng = make_rng(seed)
    calib = [
        rng.normal(size=(12, 12, 3)).astype("float32") for _ in range(4)
    ]
    quantize_graph(graph, calib)
    server = ModelServer(
        policy=policy, workers=workers, max_queue_depth=max_queue_depth
    )
    server.register("resnet-float", graph, "float")
    server.register("resnet-int8", graph, "int8")
    return server
