"""The demo deployment set used by the CLI, CI smoke job, and examples.

Hosts the engine benchmark's ResNet-style graph as ``resnet-float`` and
``resnet-int8``, plus an N:M-pruned sibling served through the sparse
execution plans as ``resnet-sparse-int8`` (quantised packed weights,
SW backend), ``resnet-sparse-isa`` (the same pruned graph pinned to the
ISA-extension emulation backend — bit-identical responses, ISA weight
layouts) and ``resnet-sparse-float`` (float32 packed weights), and a
format-selected deployment ``resnet-select-int8`` of the mixed-format
demo graph — exercising the registry's side-by-side
(graph, mode, sparse, selection, backend) deployments.  Everything is
seeded through :func:`repro.utils.rng.make_rng`, so the demo weights,
calibration data, and therefore every served logit are reproducible.
"""

from __future__ import annotations

from repro.engine.bench import MIXED_DEMO_FMTS, resnet_style_graph
from repro.serve.batcher import BatchPolicy
from repro.serve.server import ModelServer
from repro.sparsity.nm import FORMAT_1_8
from repro.utils.rng import make_rng

__all__ = ["DEMO_MODELS", "DEMO_SPARSE_FORMAT", "demo_server"]

#: Deployment names the demo server hosts.
DEMO_MODELS = (
    "resnet-float",
    "resnet-int8",
    "resnet-sparse-int8",
    "resnet-sparse-isa",
    "resnet-sparse-float",
    "resnet-select-int8",
)

#: N:M format of the pruned demo deployments.
DEMO_SPARSE_FORMAT = FORMAT_1_8


def demo_server(
    policy: BatchPolicy | None = None,
    workers: int = 2,
    max_queue_depth: int = 256,
    seed: int = 0,
    sparse: bool = True,
    max_weight_bytes: int | None = None,
) -> ModelServer:
    """Build (but don't start) a server hosting the demo deployments.

    ``sparse=False`` drops the four sparse-plan deployments
    (``resnet-sparse-int8``, ``resnet-sparse-isa``,
    ``resnet-sparse-float``, ``resnet-select-int8``); the two
    dense-plan deployments are always hosted.  ``max_weight_bytes``
    budgets the registry's cumulative weight memory — a demo set that
    does not fit raises
    :class:`~repro.serve.errors.WeightBudgetExceeded` at build time
    (the ``repro serve --max-weight-mb`` / CI rejection path).
    """
    from repro.models.quantize import quantize_graph

    graph = resnet_style_graph(seed=seed)
    rng = make_rng(seed)
    calib = [
        rng.normal(size=(12, 12, 3)).astype("float32") for _ in range(4)
    ]
    quantize_graph(graph, calib)
    server = ModelServer(
        policy=policy,
        workers=workers,
        max_queue_depth=max_queue_depth,
        max_weight_bytes=max_weight_bytes,
    )
    server.register("resnet-float", graph, "float")
    server.register("resnet-int8", graph, "int8")
    if sparse:
        pruned = resnet_style_graph(seed=seed, fmt=DEMO_SPARSE_FORMAT)
        quantize_graph(pruned, calib)
        server.register("resnet-sparse-int8", pruned, "int8", sparse=True)
        server.register(
            "resnet-sparse-isa", pruned, "int8", sparse=True, backend="isa"
        )
        server.register("resnet-sparse-float", pruned, "float", sparse=True)
        mixed = resnet_style_graph(seed=seed, layer_fmts=MIXED_DEMO_FMTS)
        quantize_graph(mixed, calib)
        server.register(
            "resnet-select-int8", mixed, "int8", sparse=True, select_fmt=True
        )
    return server
