"""Model registry: named (graph, mode) deployments with warm plans.

A :class:`Deployment` pins one graph in one numeric mode under a
serving name — ``"resnet-int8"`` and ``"resnet-float"`` are two
deployments of the same graph, hosted side by side.  Registration
compiles the execution plan immediately (*warm-up*), so the first
request a deployment serves never pays compilation latency; the plan
cache inside :class:`~repro.engine.engine.InferenceEngine` is
lock-guarded, so registering while the worker pool is already running
is safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.engine import InferenceEngine
from repro.engine.plan import (
    ACT_SKIP_KNOBS,
    BACKEND_KNOBS,
    MODES,
    ExecutionPlan,
)
from repro.serve.errors import BadRequest, UnknownModel, WeightBudgetExceeded

if TYPE_CHECKING:
    from repro.compiler.ir import Graph

__all__ = ["Deployment", "ModelRegistry"]


@dataclass
class Deployment:
    """One named (graph, mode, sparse, selection) tuple hosted by the
    server.

    ``sparse`` deployments execute through the sparsity-aware plan —
    N:M-annotated layers run the batched sparse kernels: quantised
    weights in int8 mode (bit-identical to the dense plan of the same
    graph), float32 weights in float mode (dense-identical to float
    rounding).  ``select_fmt`` deployments additionally let the cost
    model pick each layer's N:M format under ``accuracy_budget``.
    ``backend`` pins the sparse execution engine (``"sw"`` / ``"isa"``
    / ``"auto"`` — see :mod:`repro.kernels.backend`); ``accum_dtype``
    opts a float sparse deployment into float64 gather accumulation
    for tighter serving contracts.  ``act_skip`` enables runtime
    activation zero-skipping on the deployment's gather-bound layers
    (``"auto"`` cost-model-gated, ``"force"`` unconditional — see
    ``docs/sparse_engine.md``); results stay bit-identical either way.
    """

    name: str
    graph: "Graph"
    mode: str
    engine: InferenceEngine
    plan: ExecutionPlan = field(repr=False)
    sparse: bool = False
    select_fmt: bool = False
    accuracy_budget: float = 0.0
    backend: str = "sw"
    accum_dtype: str | None = None
    act_skip: str = "off"

    @property
    def input_shape(self) -> tuple[int, ...]:
        return self.plan.input_shape

    def coerce_request(self, x: np.ndarray) -> tuple[np.ndarray, bool]:
        """Validate a request payload against the declared input shape.

        Returns ``(batched_array, was_batched)``: a single sample is
        lifted to a batch of one (and the response is unbatched again
        by the server), a ``(n, ...)`` payload passes through.  Any
        other shape is a :class:`BadRequest`.
        """
        x = np.asarray(x, dtype=np.float32)
        declared = self.input_shape
        if x.shape == declared:
            return x[None], False
        if x.ndim == len(declared) + 1 and x.shape[1:] == declared and x.shape[0] > 0:
            return x, True
        raise BadRequest(
            f"model {self.name!r} expects input shaped {declared} or "
            f"(n, {', '.join(map(str, declared))}), got {x.shape}"
        )

    def run_batch(self, batch: np.ndarray) -> np.ndarray:
        """Execute a formed micro-batch through the engine's plan cache."""
        return self.engine.run_batch(
            self.graph,
            batch,
            mode=self.mode,
            sparse=self.sparse,
            select_fmt=self.select_fmt,
            accuracy_budget=self.accuracy_budget,
            backend=self.backend,
            accum_dtype=self.accum_dtype,
            act_skip=self.act_skip,
        )


class ModelRegistry:
    """Named deployments sharing one engine (and its plan cache).

    ``max_weight_bytes`` caps the cumulative compiled weight storage
    (``plan.weight_bytes()`` summed over hosted deployments): a
    registration that would exceed it raises
    :class:`~repro.serve.errors.WeightBudgetExceeded` and leaves the
    registry untouched — the multi-model analogue of an MCU's fixed
    weight memory.  ``None`` (the default) means unbudgeted.

    The budget models *deployable* weight bytes, not host RSS: the
    warm-up plan of a rejected registration stays in the shared
    engine's plan cache (keyed weakly by graph — it is reused if the
    model is re-registered under a raised budget, and freed when the
    caller drops the graph).  Call
    :meth:`~repro.engine.engine.InferenceEngine.invalidate` to evict a
    rejected graph's plans eagerly.
    """

    def __init__(
        self,
        engine: InferenceEngine | None = None,
        max_weight_bytes: int | None = None,
    ) -> None:
        if max_weight_bytes is not None and max_weight_bytes < 0:
            raise ValueError(
                f"max_weight_bytes must be >= 0, got {max_weight_bytes}"
            )
        self.engine = engine or InferenceEngine()
        self.max_weight_bytes = max_weight_bytes
        self._deployments: dict[str, Deployment] = {}

    def weight_bytes_used(self, exclude: str | None = None) -> int:
        """Cumulative compiled weight bytes of the hosted deployments."""
        return sum(
            dep.plan.weight_bytes()
            for name, dep in self._deployments.items()
            if name != exclude
        )

    def register(
        self,
        name: str,
        graph: "Graph",
        mode: str = "float",
        sparse: bool = False,
        select_fmt: bool = False,
        accuracy_budget: float = 0.0,
        backend: str = "sw",
        accum_dtype: str | None = None,
        act_skip: str = "off",
    ) -> Deployment:
        """Host ``graph`` in ``mode`` under ``name``, warming its plan.

        Compilation happens here, at registration time, so serving
        traffic never sees a cold plan — for ``sparse=True`` that
        includes the N:M weight packing and per-layer kernel selection
        under the chosen ``backend``, and for ``select_fmt=True`` the
        cost-model format search under ``accuracy_budget``.
        Re-registering an existing name replaces the deployment (the
        engine-level plan cache keeps any still-valid plan for the same
        graph).  With a weight budget configured, a deployment whose
        compiled weight bytes do not fit raises
        :class:`~repro.serve.errors.WeightBudgetExceeded` (replacing a
        name only charges the delta — the old plan's bytes are freed).

        The warm-up compile runs the static plan verifier
        (:mod:`repro.analyze.plancheck`): a deployment whose graph or
        compiled plan violates a plan invariant is rejected with
        :class:`~repro.serve.errors.PlanVerificationError` before it
        can take traffic (cache hits included — an unverified cached
        plan is re-verified here).
        """
        if not name:
            raise ValueError("deployment name must be non-empty")
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r} (expected one of {MODES})")
        if backend not in BACKEND_KNOBS:
            raise ValueError(
                f"unknown backend {backend!r} "
                f"(expected one of {BACKEND_KNOBS})"
            )
        if act_skip not in ACT_SKIP_KNOBS:
            raise ValueError(
                f"unknown act_skip {act_skip!r} "
                f"(expected one of {ACT_SKIP_KNOBS})"
            )
        plan = self.engine.compile(  # warm-up
            graph,
            mode,
            sparse=sparse,
            select_fmt=select_fmt,
            accuracy_budget=accuracy_budget,
            backend=backend,
            accum_dtype=accum_dtype,
            act_skip=act_skip,
        )
        if self.max_weight_bytes is not None:
            used = self.weight_bytes_used(exclude=name)
            needed = plan.weight_bytes()
            if used + needed > self.max_weight_bytes:
                raise WeightBudgetExceeded(
                    name, needed, used, self.max_weight_bytes
                )
        dep = Deployment(
            name=name,
            graph=graph,
            mode=mode,
            engine=self.engine,
            plan=plan,
            sparse=sparse,
            select_fmt=select_fmt,
            accuracy_budget=accuracy_budget,
            backend=backend,
            accum_dtype=accum_dtype,
            act_skip=act_skip,
        )
        self._deployments[name] = dep
        return dep

    def unregister(self, name: str) -> None:
        """Remove a deployment (in-flight requests already hold the plan)."""
        self._deployments.pop(name, None)

    def get(self, name: str) -> Deployment:
        try:
            return self._deployments[name]
        except KeyError:
            raise UnknownModel(name, self.names()) from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._deployments)

    def __contains__(self, name: str) -> bool:
        return name in self._deployments

    def __len__(self) -> int:
        return len(self._deployments)
