"""Synthetic traffic generation against a model server.

Replays a deterministic open-loop arrival process at a target QPS:
inter-arrival gaps are exponential (Poisson arrivals) and inputs are
Gaussian, both drawn from :func:`repro.utils.rng.make_rng` so a given
``seed`` reproduces the exact same traffic — request payloads, arrival
times, and therefore batch compositions are stable run-to-run (modulo
scheduler timing).  Used by the ``repro loadgen`` CLI, the serve
benchmark, and the CI smoke job.

The generator is *open-loop*: it does not wait for a response before
sending the next request (that would throttle to server latency and
hide queueing behaviour), but it does cap the number of requests in
flight so a stalled server cannot accumulate unbounded futures.

A run can target an in-process :class:`ModelServer`, a sharded
:class:`~repro.serve.router.RouterServer`, or a
:class:`~repro.serve.tcp.TcpServeClient` connected to a remote
``repro serve`` — the same pacing, payloads, and accounting apply, so
in-process CI smoke runs and socketed runs are directly comparable.
``model`` may also be a list of deployment names: requests then cycle
through the models round-robin (the mixed-deployment soak the sharded
benchmark uses), with each model drawing from its own deterministic
payload stream.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Sequence, Union

import numpy as np

from repro.serve.errors import (
    BadRequest,
    RequestTooLarge,
    ServeError,
    ServerClosed,
    ServerOverloaded,
    UnknownModel,
)
from repro.serve.server import ModelServer
from repro.serve.tcp import TcpServeClient
from repro.utils.rng import make_rng

__all__ = [
    "LoadgenReport",
    "generate_inputs",
    "mixed_schedule",
    "run_loadgen",
]

#: Error codes counted as *rejected* (admission control said no) as
#: opposed to *failed* (accepted but errored during execution).
#: ``worker_crashed`` is deliberately absent: a request lost to a dying
#: replica was accepted, so it counts as failed.
_ADMISSION_CODES = frozenset(
    cls.code
    for cls in (
        UnknownModel,
        BadRequest,
        RequestTooLarge,
        ServerOverloaded,
        ServerClosed,
    )
)


@dataclass
class LoadgenReport:
    """Outcome of one loadgen run, JSON-safe via :meth:`to_dict`."""

    model: str
    requests: int
    succeeded: int
    rejected: int
    failed: int
    duration_s: float
    target_qps: float
    latencies_ms: list[float] = field(default_factory=list, repr=False)

    @property
    def achieved_qps(self) -> float:
        return self.succeeded / self.duration_s if self.duration_s else 0.0

    def latency_quantiles(self) -> dict[str, float]:
        if not self.latencies_ms:
            return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
        p50, p95, p99 = np.percentile(self.latencies_ms, [50, 95, 99])
        return {
            "p50_ms": float(p50),
            "p95_ms": float(p95),
            "p99_ms": float(p99),
        }

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "requests": self.requests,
            "succeeded": self.succeeded,
            "rejected": self.rejected,
            "failed": self.failed,
            "duration_s": self.duration_s,
            "target_qps": self.target_qps,
            "achieved_qps": self.achieved_qps,
            "latency": self.latency_quantiles(),
        }


def generate_inputs(
    shape: tuple[int, ...], requests: int, seed: int = 0
) -> np.ndarray:
    """The deterministic request payloads for a loadgen run.

    Exposed separately so tests can replay the exact traffic a run
    produced through the engine directly and compare bit-for-bit.
    """
    rng = make_rng(seed)
    return rng.normal(size=(requests, *shape)).astype(np.float32)


def mixed_schedule(
    shapes: dict[str, tuple[int, ...]],
    models: Sequence[str],
    requests: int,
    seed: int = 0,
) -> list[tuple[str, np.ndarray]]:
    """The deterministic ``(model, payload)`` sequence of a run.

    Round-robin over ``models``; the *j*-th model's payloads come from
    its own :func:`generate_inputs` stream seeded ``seed + 101*j``.
    This is exactly the traffic :func:`run_loadgen` sends, exposed so
    bit-identity checks (CLI ``--verify-identity``, the sharded
    benchmark) can replay it through a reference engine.
    """
    models = list(models)
    counts = {
        name: len(range(j, requests, len(models)))
        for j, name in enumerate(models)
    }
    streams = {
        name: iter(
            generate_inputs(shapes[name], counts[name], seed=seed + 101 * j)
        )
        for j, name in enumerate(models)
    }
    return [
        (models[i % len(models)], next(streams[models[i % len(models)]]))
        for i in range(requests)
    ]


async def run_loadgen(
    target: Union[ModelServer, "object", TcpServeClient],
    model: Union[str, Sequence[str]],
    requests: int = 100,
    qps: float = 200.0,
    seed: int = 0,
    max_in_flight: int = 256,
    collect_outputs: bool = False,
) -> tuple[LoadgenReport, list["np.ndarray | None"]]:
    """Fire ``requests`` single-sample requests at ``target``.

    Arrival gaps and payloads are deterministic in ``seed``.  Returns
    the report plus, when ``collect_outputs`` is set, each request's
    output array (``None`` for rejected/failed requests) in send order.

    ``model`` may be one deployment name or a sequence of names;
    request ``i`` goes to ``models[i % len(models)]``, and each model's
    payloads come from its own :func:`generate_inputs` stream (seeded
    ``seed + 101*j`` for the *j*-th model), so a single-model run is
    byte-identical to the pre-multi-model behaviour.
    """
    if requests < 1:
        raise ValueError("requests must be >= 1")
    if qps <= 0:
        raise ValueError("qps must be > 0")
    models = [model] if isinstance(model, str) else list(model)
    if not models:
        raise ValueError("model list must not be empty")
    if isinstance(target, TcpServeClient):
        described = await target.describe()
        for name in models:
            if name not in described:
                raise UnknownModel(name, tuple(described))
        shapes = {
            name: tuple(described[name]["input_shape"]) for name in models
        }

        def submit(name: str, x: np.ndarray) -> "asyncio.Future[np.ndarray]":
            return target.submit_infer(name, x)

    else:
        # Duck-typed server: ModelServer and RouterServer share the
        # registry/submit surface.
        shapes = {
            name: tuple(target.registry.get(name).input_shape)
            for name in models
        }

        def submit(name: str, x: np.ndarray) -> "asyncio.Future[np.ndarray]":
            return target.submit(name, x)

    # Per-model deterministic payload streams, interleaved round-robin.
    schedule = mixed_schedule(shapes, models, requests, seed=seed)
    request_models = [name for name, _ in schedule]
    inputs = [x for _, x in schedule]
    gaps = make_rng(seed + 1).exponential(1.0 / qps, size=requests)

    loop = asyncio.get_running_loop()
    sem = asyncio.Semaphore(max_in_flight)
    outputs: list["np.ndarray | None"] = [None] * requests
    latencies_ms: list[float] = []
    rejected = 0
    failed = 0
    pending: list[asyncio.Task] = []

    async def finish(i: int, fut: "asyncio.Future[np.ndarray]", t0: float):
        nonlocal rejected, failed
        try:
            out = await fut
        except ServeError as err:
            if getattr(err, "code", None) in _ADMISSION_CODES:
                rejected += 1
            else:
                failed += 1
        except (ConnectionError, asyncio.CancelledError):
            failed += 1
        else:
            latencies_ms.append((loop.time() - t0) * 1e3)
            if collect_outputs:
                outputs[i] = out
        finally:
            sem.release()

    t_start = loop.time()
    next_send = t_start
    for i in range(requests):
        next_send += gaps[i]
        delay = next_send - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        await sem.acquire()
        try:
            fut = submit(request_models[i], inputs[i])
        except ServeError:
            rejected += 1
            sem.release()
            continue
        except ConnectionError:
            # TCP target died mid-run; mirror the async path, which
            # counts a dropped connection as a failed request.
            failed += 1
            sem.release()
            continue
        pending.append(loop.create_task(finish(i, fut, loop.time())))
    if pending:
        await asyncio.gather(*pending)
    duration = loop.time() - t_start

    report = LoadgenReport(
        model=",".join(models),
        requests=requests,
        succeeded=len(latencies_ms),
        rejected=rejected,
        failed=failed,
        duration_s=duration,
        target_qps=qps,
        latencies_ms=latencies_ms,
    )
    return report, outputs
