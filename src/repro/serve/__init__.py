"""``repro.serve`` — async model serving with dynamic micro-batching.

The serving subsystem turns the batched
:class:`~repro.engine.engine.InferenceEngine` into sustained request
throughput: concurrent single-sample requests are coalesced into
micro-batches (``Batcher`` + ``BatchPolicy``), executed by a bounded
worker pool, and guarded by queue-depth backpressure, with metrics
(batch-size histogram, latency quantiles, queue depth) exposed through
:meth:`ModelServer.stats`.  For multi-core machines,
:class:`RouterServer` shards the same deployment set across worker
*processes* that share one copy of the packed weights through
POSIX shared memory (:class:`SharedWeightStore`).  See
``docs/serving.md`` for the architecture and
``examples/serve_quickstart.py`` for a runnable tour.
"""

from repro.serve.batcher import Batcher, BatchPolicy, MicroBatch
from repro.serve.errors import (
    BadRequest,
    RequestTooLarge,
    ServeError,
    ServerClosed,
    ServerOverloaded,
    UnknownModel,
    WorkerCrashed,
)
from repro.serve.loadgen import LoadgenReport, generate_inputs, run_loadgen
from repro.serve.metrics import Metrics
from repro.serve.registry import Deployment, ModelRegistry
from repro.serve.router import RouterServer
from repro.serve.server import ModelServer
from repro.serve.shm import SharedWeightStore
from repro.serve.tcp import TcpServeClient, serve_tcp, snapshot_stats

__all__ = [
    "BatchPolicy",
    "Batcher",
    "MicroBatch",
    "ServeError",
    "UnknownModel",
    "BadRequest",
    "RequestTooLarge",
    "ServerOverloaded",
    "ServerClosed",
    "WorkerCrashed",
    "Metrics",
    "Deployment",
    "ModelRegistry",
    "ModelServer",
    "RouterServer",
    "SharedWeightStore",
    "LoadgenReport",
    "generate_inputs",
    "run_loadgen",
    "TcpServeClient",
    "serve_tcp",
    "snapshot_stats",
]
