"""Serving metrics: counters, batch-size histogram, latency quantiles.

:class:`Metrics` is a plain in-process collector — the server calls the
``record_*`` hooks from its submit path and worker pool, and
:meth:`Metrics.snapshot` renders everything into a JSON-safe dict (the
payload behind the TCP ``stats`` op and the ``repro serve``/``loadgen``
summaries).

Latencies are kept in a bounded reservoir (the most recent
``latency_window`` observations) so a long-running server's memory use
stays flat; p50/p95/p99 are computed over that window on demand.  All
mutation happens either on the event loop or under ``_lock``, so the
collector is safe to share between the asyncio core and worker threads.
"""

from __future__ import annotations

import threading
from collections import Counter, deque

import numpy as np

__all__ = ["Metrics"]


class Metrics:
    """Mutable serving counters with a JSON-safe :meth:`snapshot`."""

    def __init__(self, latency_window: int = 10_000) -> None:
        if latency_window < 1:
            raise ValueError("latency_window must be >= 1")
        self._lock = threading.Lock()
        #: Requests accepted into the queue.
        self.requests_accepted = 0
        #: Requests completed successfully.
        self.requests_completed = 0
        #: Requests that failed during execution (engine error).
        self.requests_failed = 0
        #: Rejections at submit time, keyed by error code.
        self.requests_rejected: Counter[str] = Counter()
        #: Total samples served (a request may carry several).
        self.samples_completed = 0
        #: Micro-batches executed, keyed by batch size (in samples).
        self.batch_sizes: Counter[int] = Counter()
        #: Samples accepted but not yet completed (queued + in flight).
        self.queue_depth = 0
        self._latencies: deque[float] = deque(maxlen=latency_window)
        #: Per-observation weights, parallel to ``_latencies``.  Live
        #: recording always appends 1.0; :meth:`merge` up-weights the
        #: retained observations of an overflowed reservoir so each
        #: part contributes to the pooled quantiles in proportion to
        #: the traffic it actually served, not to what its window
        #: happened to retain.
        self._latency_weights: deque[float] = deque(maxlen=latency_window)

    # -- recording hooks ------------------------------------------------

    def record_accepted(self, samples: int) -> None:
        with self._lock:
            self.requests_accepted += 1
            self.queue_depth += samples

    def record_rejected(self, code: str) -> None:
        with self._lock:
            self.requests_rejected[code] += 1

    def record_batch(self, samples: int) -> None:
        with self._lock:
            self.batch_sizes[samples] += 1

    def record_completed(self, samples: int, latency_s: float) -> None:
        with self._lock:
            self.requests_completed += 1
            self.samples_completed += samples
            self.queue_depth -= samples
            self._latencies.append(latency_s)
            self._latency_weights.append(1.0)

    def record_failed(self, samples: int) -> None:
        with self._lock:
            self.requests_failed += 1
            self.queue_depth -= samples

    # -- derived views --------------------------------------------------

    def latency_quantiles(self) -> dict[str, float]:
        """p50/p95/p99 over the latency window, in milliseconds.

        Weight-aware: observations carry per-part weights after a
        :meth:`merge`, so a worker whose reservoir overflowed still
        pulls the pooled quantiles in proportion to its real traffic.
        The unweighted case (every live collector, and merges of
        non-overflowed parts) keeps the exact ``np.percentile``
        numbers.
        """
        with self._lock:
            lats = np.asarray(self._latencies, dtype=np.float64)
            wts = np.asarray(self._latency_weights, dtype=np.float64)
        if lats.size == 0:
            return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
        if wts.size != lats.size or np.all(wts == wts[0]):
            # Uniform weights: identical to the plain percentile.
            p50, p95, p99 = np.percentile(lats, [50, 95, 99]) * 1e3
        else:
            # Weights are repeat counts: an observation of weight w
            # stands for w identical requests.  Each block occupies the
            # 0-based virtual indices [cum - w, cum - 1]; interpolating
            # the percentile target q*(N-1) over the block edges is
            # exactly np.percentile's linear rule over the expanded
            # array (and degenerates to it when every weight is 1).
            order = np.argsort(lats, kind="stable")
            sl = lats[order]
            sw = wts[order]
            cum = np.cumsum(sw)
            left = cum - sw
            right = np.maximum(cum - 1.0, left)
            xs = np.empty(2 * sl.size)
            xs[0::2] = left
            xs[1::2] = right
            vals = np.repeat(sl, 2)
            targets = np.array([0.50, 0.95, 0.99]) * (cum[-1] - 1.0)
            p50, p95, p99 = np.interp(targets, xs, vals) * 1e3
        return {
            "p50_ms": float(p50),
            "p95_ms": float(p95),
            "p99_ms": float(p99),
        }

    def _mean_batch_size_locked(self) -> float:
        batches = sum(self.batch_sizes.values())
        samples = sum(size * n for size, n in self.batch_sizes.items())
        return samples / batches if batches else 0.0

    def mean_batch_size(self) -> float:
        """Average executed micro-batch size, in samples."""
        with self._lock:
            return self._mean_batch_size_locked()

    # -- cross-process aggregation --------------------------------------

    def state(self) -> dict:
        """The raw, mergeable collector state (JSON/pickle-safe).

        Unlike :meth:`snapshot` this keeps the latency *reservoir*
        rather than derived quantiles — quantiles of quantiles are
        meaningless, so cross-worker aggregation ships the reservoirs
        and recomputes p50/p95/p99 over the merged window.
        """
        with self._lock:
            return {
                "requests_accepted": self.requests_accepted,
                "requests_completed": self.requests_completed,
                "requests_failed": self.requests_failed,
                "requests_rejected": dict(self.requests_rejected),
                "samples_completed": self.samples_completed,
                "queue_depth": self.queue_depth,
                "batch_sizes": {
                    str(size): n for size, n in self.batch_sizes.items()
                },
                "latencies_s": [float(v) for v in self._latencies],
                "latency_weights": [
                    float(v) for v in self._latency_weights
                ],
                "latency_window": self._latencies.maxlen,
            }

    @classmethod
    def from_state(cls, state: dict) -> "Metrics":
        """Rebuild a collector from a :meth:`state` payload."""
        return cls.merge([state], latency_window=state["latency_window"])

    @classmethod
    def merge(
        cls, parts, latency_window: int | None = None
    ) -> "Metrics":
        """Aggregate collectors and/or :meth:`state` payloads.

        Counters and batch-size histograms add; latency reservoirs
        pool *traffic-weighted*: a part whose reservoir overflowed
        (``requests_completed`` exceeds the retained observations) has
        its observations up-weighted by ``completed / retained`` so the
        pooled p50/p95/p99 reflect each worker's true share of the
        traffic rather than whatever its bounded window happened to
        keep.  Empty reservoirs contribute their counters and nothing
        to the quantiles (previously a part with completed requests but
        no retained latencies — a crashed worker's partial state, or
        the router's counter-only state — could only be represented by
        silently skewing the pool).  Merging is idempotent under
        re-merge: weights ship in the state payload and the scaling
        condition compares completed against the existing weight mass.
        The merged window defaults to the sum of the parts' windows —
        merging N full workers drops nothing.
        """
        states = [p.state() if isinstance(p, Metrics) else p for p in parts]
        if latency_window is None:
            latency_window = max(
                1, sum(s["latency_window"] for s in states)
            )
        merged = cls(latency_window=latency_window)
        for s in states:
            merged.requests_accepted += s["requests_accepted"]
            merged.requests_completed += s["requests_completed"]
            merged.requests_failed += s["requests_failed"]
            merged.requests_rejected.update(s["requests_rejected"])
            merged.samples_completed += s["samples_completed"]
            merged.queue_depth += s["queue_depth"]
            for size, n in s["batch_sizes"].items():
                merged.batch_sizes[int(size)] += n
            lats = s["latencies_s"]
            if not lats:
                continue  # counters merged above; nothing to pool
            wts = s.get("latency_weights")
            if not wts or len(wts) != len(lats):
                # Pre-weights state payload (an older worker across a
                # rolling upgrade): every retained observation counts 1.
                wts = [1.0] * len(lats)
            mass = float(sum(wts))
            completed = s["requests_completed"]
            if completed > mass > 0:
                scale = completed / mass
                wts = [w * scale for w in wts]
            merged._latencies.extend(lats)
            merged._latency_weights.extend(wts)
        return merged

    def snapshot(self) -> dict:
        """A JSON-safe view of every counter plus derived quantiles."""
        quantiles = self.latency_quantiles()
        with self._lock:
            return {
                "requests": {
                    "accepted": self.requests_accepted,
                    "completed": self.requests_completed,
                    "failed": self.requests_failed,
                    "rejected": dict(self.requests_rejected),
                },
                "samples_completed": self.samples_completed,
                "queue_depth": self.queue_depth,
                "batches": {
                    "count": sum(self.batch_sizes.values()),
                    "mean_size": self._mean_batch_size_locked(),
                    "histogram": {
                        str(size): n
                        for size, n in sorted(self.batch_sizes.items())
                    },
                },
                "latency": quantiles,
            }
