"""Serving throughput measurement: dynamic batching vs batch-size-1.

The acceptance experiment for the serving subsystem: fire the same
burst of single-sample requests at two servers that differ *only* in
batching policy — dynamic micro-batching versus a degenerate
``BatchPolicy(1, 0)`` — at equal worker count, and compare sustained
QPS.  Batch-size-1 serving pays the whole per-call engine overhead per
request; the batcher amortises it across a micro-batch, which is what
converts the engine's batch throughput into request throughput.

Bursts are submitted without awaiting in between, so the batcher sees
the full backlog and forms maximal batches — this measures saturated
throughput, not arrival-limited throughput (use
:func:`repro.serve.loadgen.run_loadgen` for paced traffic).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.engine.bench import resnet_style_graph
from repro.serve.batcher import BatchPolicy
from repro.serve.loadgen import generate_inputs
from repro.serve.server import ModelServer

__all__ = ["ServeThroughputResult", "measure_serve_throughput"]


@dataclass
class ServeThroughputResult:
    """Burst-throughput comparison at equal worker count."""

    model: str
    mode: str
    requests: int
    workers: int
    max_batch_size: int
    batched_s: float
    batch1_s: float
    batched_mean_batch: float
    batch1_mean_batch: float

    @property
    def batched_qps(self) -> float:
        return self.requests / self.batched_s if self.batched_s else 0.0

    @property
    def batch1_qps(self) -> float:
        return self.requests / self.batch1_s if self.batch1_s else 0.0

    @property
    def speedup(self) -> float:
        """Dynamic-batched QPS over batch-size-1 QPS."""
        return self.batch1_s / self.batched_s if self.batched_s else 0.0


async def _burst_seconds(
    server: ModelServer, model: str, xs, repeats: int
) -> float:
    """Best-of-``repeats`` wall time to serve every request in ``xs``."""
    loop = asyncio.get_running_loop()
    best = float("inf")
    # One untimed warm-up pass faults in worker threads and plans.
    await asyncio.gather(*[server.submit(model, x) for x in xs[:4]])
    for _ in range(repeats):
        t0 = loop.time()
        await asyncio.gather(*[server.submit(model, x) for x in xs])
        best = min(best, loop.time() - t0)
    return best


def measure_serve_throughput(
    graph=None,
    mode: str = "float",
    requests: int = 192,
    workers: int = 2,
    max_batch_size: int = 32,
    max_wait_ms: float = 5.0,
    repeats: int = 3,
    seed: int = 0,
) -> ServeThroughputResult:
    """Compare dynamic-batched vs batch-size-1 serving on one graph."""
    if graph is None:
        graph = resnet_style_graph(seed=seed)
    model = f"bench-{mode}"

    async def _run() -> ServeThroughputResult:
        batched = ModelServer(
            policy=BatchPolicy(max_batch_size, max_wait_ms),
            workers=workers,
            max_queue_depth=2 * requests,
        )
        batch1 = ModelServer(
            policy=BatchPolicy(1, 0.0),
            workers=workers,
            max_queue_depth=2 * requests,
        )
        batched.register(model, graph, mode)
        batch1.register(model, graph, mode)
        xs = generate_inputs(
            batched.registry.get(model).input_shape, requests, seed=seed
        )
        async with batched:
            batched_s = await _burst_seconds(batched, model, xs, repeats)
            batched_mean = batched.metrics.mean_batch_size()
        async with batch1:
            batch1_s = await _burst_seconds(batch1, model, xs, repeats)
            batch1_mean = batch1.metrics.mean_batch_size()
        return ServeThroughputResult(
            model=model,
            mode=mode,
            requests=requests,
            workers=workers,
            max_batch_size=max_batch_size,
            batched_s=batched_s,
            batch1_s=batch1_s,
            batched_mean_batch=batched_mean,
            batch1_mean_batch=batch1_mean,
        )

    return asyncio.run(_run())
