"""Serving throughput measurement: dynamic batching vs batch-size-1.

The acceptance experiment for the serving subsystem: fire the same
burst of single-sample requests at two servers that differ *only* in
batching policy — dynamic micro-batching versus a degenerate
``BatchPolicy(1, 0)`` — at equal worker count, and compare sustained
QPS.  Batch-size-1 serving pays the whole per-call engine overhead per
request; the batcher amortises it across a micro-batch, which is what
converts the engine's batch throughput into request throughput.

Bursts are submitted without awaiting in between, so the batcher sees
the full backlog and forms maximal batches — this measures saturated
throughput, not arrival-limited throughput (use
:func:`repro.serve.loadgen.run_loadgen` for paced traffic).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.engine.bench import resnet_style_graph
from repro.serve.batcher import BatchPolicy
from repro.serve.loadgen import generate_inputs, mixed_schedule
from repro.serve.router import RouterServer
from repro.serve.server import ModelServer

__all__ = [
    "ServeThroughputResult",
    "ShardedServeResult",
    "measure_serve_throughput",
    "measure_sharded_throughput",
]


@dataclass
class ServeThroughputResult:
    """Burst-throughput comparison at equal worker count."""

    model: str
    mode: str
    requests: int
    workers: int
    max_batch_size: int
    batched_s: float
    batch1_s: float
    batched_mean_batch: float
    batch1_mean_batch: float

    @property
    def batched_qps(self) -> float:
        return self.requests / self.batched_s if self.batched_s else 0.0

    @property
    def batch1_qps(self) -> float:
        return self.requests / self.batch1_s if self.batch1_s else 0.0

    @property
    def speedup(self) -> float:
        """Dynamic-batched QPS over batch-size-1 QPS."""
        return self.batch1_s / self.batched_s if self.batched_s else 0.0


async def _burst_seconds(
    server: ModelServer, model: str, xs, repeats: int
) -> float:
    """Best-of-``repeats`` wall time to serve every request in ``xs``."""
    loop = asyncio.get_running_loop()
    best = float("inf")
    # One untimed warm-up pass faults in worker threads and plans.
    await asyncio.gather(*[server.submit(model, x) for x in xs[:4]])
    for _ in range(repeats):
        t0 = loop.time()
        await asyncio.gather(*[server.submit(model, x) for x in xs])
        best = min(best, loop.time() - t0)
    return best


def measure_serve_throughput(
    graph=None,
    mode: str = "float",
    requests: int = 192,
    workers: int = 2,
    max_batch_size: int = 32,
    max_wait_ms: float = 5.0,
    repeats: int = 3,
    seed: int = 0,
) -> ServeThroughputResult:
    """Compare dynamic-batched vs batch-size-1 serving on one graph."""
    if graph is None:
        graph = resnet_style_graph(seed=seed)
    model = f"bench-{mode}"

    async def _run() -> ServeThroughputResult:
        batched = ModelServer(
            policy=BatchPolicy(max_batch_size, max_wait_ms),
            workers=workers,
            max_queue_depth=2 * requests,
        )
        batch1 = ModelServer(
            policy=BatchPolicy(1, 0.0),
            workers=workers,
            max_queue_depth=2 * requests,
        )
        batched.register(model, graph, mode)
        batch1.register(model, graph, mode)
        xs = generate_inputs(
            batched.registry.get(model).input_shape, requests, seed=seed
        )
        async with batched:
            batched_s = await _burst_seconds(batched, model, xs, repeats)
            batched_mean = batched.metrics.mean_batch_size()
        async with batch1:
            batch1_s = await _burst_seconds(batch1, model, xs, repeats)
            batch1_mean = batch1.metrics.mean_batch_size()
        return ServeThroughputResult(
            model=model,
            mode=mode,
            requests=requests,
            workers=workers,
            max_batch_size=max_batch_size,
            batched_s=batched_s,
            batch1_s=batch1_s,
            batched_mean_batch=batched_mean,
            batch1_mean_batch=batch1_mean,
        )

    return asyncio.run(_run())


# ---------------------------------------------------------------------------
# Sharded (router + worker processes) throughput
# ---------------------------------------------------------------------------


@dataclass
class ShardedServeResult:
    """Sharded-vs-single-process comparison on a mixed-deployment soak.

    ``sharded_s[w]`` is the best-of-repeats wall time for the full
    mixed burst against a :class:`RouterServer` with ``w`` replicas;
    ``single_s`` is the same burst against one in-process
    :class:`ModelServer`.  ``identical[w]`` records whether *every*
    sharded response was bit-identical to the single-process reference,
    and the weight-byte fields capture the shared-not-replicated memory
    accounting (the router registry's budget-visible bytes plus the
    actual shared-segment payload).
    """

    models: tuple[str, ...]
    requests: int
    threads_per_worker: int
    max_batch_size: int
    single_s: float
    single_weight_bytes: int
    sharded_s: dict[int, float] = field(default_factory=dict)
    sharded_weight_bytes: dict[int, int] = field(default_factory=dict)
    shm_payload_bytes: dict[int, int] = field(default_factory=dict)
    identical: dict[int, bool] = field(default_factory=dict)

    @property
    def single_qps(self) -> float:
        return self.requests / self.single_s if self.single_s else 0.0

    def sharded_qps(self, workers: int) -> float:
        elapsed = self.sharded_s[workers]
        return self.requests / elapsed if elapsed else 0.0

    def speedup(self, workers: int) -> float:
        """Sharded QPS at ``workers`` replicas over single-process QPS."""
        return self.single_s / self.sharded_s[workers] if self.sharded_s[workers] else 0.0

    @property
    def all_identical(self) -> bool:
        return all(self.identical.values())


async def _mixed_burst(server, work, repeats: int):
    """Best-of-``repeats`` wall time plus the final pass's outputs."""
    loop = asyncio.get_running_loop()
    await asyncio.gather(*[server.submit(m, x) for m, x in work[:4]])
    best = float("inf")
    outputs = None
    for _ in range(repeats):
        t0 = loop.time()
        outputs = await asyncio.gather(
            *[server.submit(m, x) for m, x in work]
        )
        best = min(best, loop.time() - t0)
    return best, outputs


def measure_sharded_throughput(
    worker_counts: tuple[int, ...] = (1, 2, 4),
    models: tuple[str, ...] = (
        "resnet-int8",
        "resnet-sparse-int8",
        "resnet-sparse-isa",
    ),
    requests: int = 192,
    threads_per_worker: int = 2,
    max_batch_size: int = 32,
    max_wait_ms: float = 2.0,
    repeats: int = 2,
    seed: int = 0,
) -> ShardedServeResult:
    """Measure router-sharded serving against single-process serving.

    Fires the same mixed-deployment burst (round-robin over ``models``,
    dense and sparse plans together) at one in-process server and at a
    :class:`RouterServer` for each entry of ``worker_counts``, checking
    every sharded response bit-for-bit against the single-process
    reference.  This is the acceptance experiment for the sharded
    tentpole: QPS should scale with replicas while the registry's
    budget-visible weight bytes stay ~flat (one shared copy).
    """
    from repro.serve.demo import demo_registrations

    regs = [r for r in demo_registrations(seed=seed) if r[0] in models]
    found = tuple(r[0] for r in regs)
    missing = set(models) - set(found)
    if missing:
        raise ValueError(f"unknown demo models: {sorted(missing)}")
    policy = BatchPolicy(max_batch_size, max_wait_ms)
    depth = 2 * requests

    async def _single() -> tuple[float, list, int, dict]:
        ref = ModelServer(
            policy=policy, workers=threads_per_worker, max_queue_depth=depth
        )
        for name, graph, mode, kwargs in regs:
            ref.register(name, graph, mode, **kwargs)
        shapes = {
            name: tuple(ref.registry.get(name).input_shape)
            for name in models
        }
        work = mixed_schedule(shapes, tuple(models), requests, seed=seed)
        async with ref:
            elapsed, outputs = await _mixed_burst(ref, work, repeats)
        return elapsed, outputs, ref.registry.weight_bytes_used(), work

    single_s, ref_outputs, single_bytes, work = asyncio.run(_single())
    result = ShardedServeResult(
        models=tuple(models),
        requests=requests,
        threads_per_worker=threads_per_worker,
        max_batch_size=max_batch_size,
        single_s=single_s,
        single_weight_bytes=single_bytes,
    )

    async def _sharded(nworkers: int) -> None:
        router = RouterServer(
            policy=policy,
            workers=nworkers,
            threads_per_worker=threads_per_worker,
            max_queue_depth=depth,
        )
        for name, graph, mode, kwargs in regs:
            router.register(name, graph, mode, **kwargs)
        async with router:
            elapsed, outputs = await _mixed_burst(router, work, repeats)
            result.sharded_s[nworkers] = elapsed
            result.sharded_weight_bytes[nworkers] = (
                router.registry.weight_bytes_used()
            )
            result.shm_payload_bytes[nworkers] = (
                router.shared_store.total_bytes()
            )
            result.identical[nworkers] = all(
                np.array_equal(out, ref)
                for out, ref in zip(outputs, ref_outputs)
            )

    for nworkers in worker_counts:
        asyncio.run(_sharded(nworkers))
    return result
