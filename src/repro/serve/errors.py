"""Typed errors raised by the serving subsystem.

Every rejection the server can produce has its own exception class so
clients (and the TCP front-end, which maps them to machine-readable
``error`` codes) can react precisely instead of parsing messages.  All
of them derive from :class:`ServeError`.
"""

from __future__ import annotations

from repro.analyze.diagnostics import PlanVerificationError

__all__ = [
    "ServeError",
    "UnknownModel",
    "RequestTooLarge",
    "ServerOverloaded",
    "ServerClosed",
    "BadRequest",
    "WeightBudgetExceeded",
    "WorkerCrashed",
    "PlanVerificationError",
    "error_from_code",
    "wire_class",
]


class ServeError(Exception):
    """Base class for all serving-layer errors.

    ``code`` is the stable machine-readable identifier used on the
    wire; subclasses override it.
    """

    code = "serve_error"


class UnknownModel(ServeError, KeyError):
    """The request named a deployment the registry does not host."""

    code = "unknown_model"

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = available
        detail = f"unknown model {name!r}"
        if available:
            detail += f" (hosted: {', '.join(available)})"
        # Bypass KeyError's repr-quoting of the message.
        Exception.__init__(self, detail)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class BadRequest(ServeError, ValueError):
    """The request payload is malformed (wrong shape, dtype, fields)."""

    code = "bad_request"


class RequestTooLarge(BadRequest):
    """A single request carried more samples than ``max_batch_size``.

    Requests are batched atomically (a request is never split across
    micro-batches), so one bigger than the largest batch the policy
    allows can never be scheduled and is rejected up front.
    """

    code = "request_too_large"

    def __init__(self, samples: int, max_batch_size: int):
        self.samples = samples
        self.max_batch_size = max_batch_size
        super().__init__(
            f"request carries {samples} samples but max_batch_size is "
            f"{max_batch_size}; split it client-side"
        )


class ServerOverloaded(ServeError):
    """Backpressure fast-fail: the pending queue is at its depth limit.

    Raised at submit time — the request was *not* accepted and will not
    be retried by the server; clients should back off and resubmit.
    """

    code = "server_overloaded"

    def __init__(self, queue_depth: int, max_queue_depth: int):
        self.queue_depth = queue_depth
        self.max_queue_depth = max_queue_depth
        super().__init__(
            f"queue depth {queue_depth} at limit {max_queue_depth}; "
            "back off and retry"
        )


class ServerClosed(ServeError):
    """The server is shutting down (or never started) — not accepting.

    Requests accepted *before* shutdown began are still drained and
    completed; only new submissions see this error.
    """

    code = "server_closed"


class WeightBudgetExceeded(ServeError):
    """Registering the deployment would blow the weight-memory budget.

    Raised at *registration* time (never on the request path): the
    registry was built with ``max_weight_bytes`` and the new
    deployment's compiled ``plan.weight_bytes()`` would push the
    cumulative hosted weight storage past it.  The registry is left
    unchanged — unregister something or raise the budget.
    """

    code = "weight_budget_exceeded"

    def __init__(
        self, name: str, needed: int, used: int, max_weight_bytes: int
    ):
        self.name = name
        self.needed = needed
        self.used = used
        self.max_weight_bytes = max_weight_bytes
        super().__init__(
            f"registering {name!r} needs {needed} weight bytes but only "
            f"{max_weight_bytes - used} of {max_weight_bytes} remain "
            f"({used} in use)"
        )


class WorkerCrashed(ServeError):
    """A sharded worker process died with the request in flight.

    The router fails every request it had dispatched to the dead worker
    with this error and re-routes that worker's deployments to the
    surviving replicas — later submissions succeed (or see this
    synchronously once no replica is left).  Not an admission code:
    the request *was* accepted, so loadgen counts it as failed.
    """

    code = "worker_crashed"


#: Wire-decodable error classes, most specific first (subclasses before
#: their bases, so e.g. ``request_too_large`` never decodes as the
#: ``bad_request`` base).  :class:`PlanVerificationError` is raised at
#: registration time by the static plan verifier (it lives in
#: :mod:`repro.analyze.diagnostics` — the analyze layer must not import
#: serve) and is re-exported here as part of the serving contract.
_WIRE_ERRORS = (
    UnknownModel,
    RequestTooLarge,
    ServerOverloaded,
    ServerClosed,
    WeightBudgetExceeded,
    WorkerCrashed,
    PlanVerificationError,
    BadRequest,
)

_WIRE_CACHE: dict[type, type] = {}


def wire_class(cls: type) -> type:
    """A subclass of ``cls`` constructible from a bare message.

    The structured ``__init__`` args of errors like
    :class:`RequestTooLarge` don't travel across a wire or process
    boundary, but ``except RequestTooLarge`` style handlers should
    still work on the receiving side — so each error class gets a
    Remote* twin taking just the detail string.
    """
    wire = _WIRE_CACHE.get(cls)
    if wire is None:
        wire = type(
            f"Remote{cls.__name__}",
            (cls,),
            {
                "__init__": lambda self, detail: Exception.__init__(
                    self, detail
                ),
                "__str__": lambda self: self.args[0],
            },
        )
        _WIRE_CACHE[cls] = wire
    return wire


def error_from_code(code: str, detail: str) -> Exception:
    """Rebuild the typed error for a stable wire code.

    Shared by the TCP client and the sharded router (worker -> router
    error frames): an unknown code degrades to the :class:`ServeError`
    base rather than failing the decode.  (The return type is
    ``Exception`` because :class:`PlanVerificationError` is typed but
    not a :class:`ServeError` — it belongs to the analyze layer.)
    """
    for cls in _WIRE_ERRORS:
        if cls.code == code:
            return wire_class(cls)(detail)
    return ServeError(detail)
