"""A newline-delimited-JSON TCP front-end for :class:`ModelServer`.

Kept deliberately dependency-free (asyncio streams + ``json``): each
connection sends one JSON object per line and receives one JSON object
per line, in order.  Ops:

- ``{"op": "infer", "model": name, "input": nested-list}`` →
  ``{"ok": true, "output": nested-list}``; a single sample comes back
  unbatched, a leading batch axis is preserved.
- ``{"op": "stats"}`` → ``{"ok": true, "stats": snapshot}``.
- ``{"op": "models"}`` → ``{"ok": true, "models": [...]}``.
- ``{"op": "describe"}`` → ``{"ok": true, "models": {name: {"mode",
  "input_shape", "sparse", "select_fmt", "backend", "accum_dtype",
  "act_skip", "weight_bytes", "dense_weight_bytes"}}, "weight_budget":
  {"max_weight_bytes", "used_weight_bytes"}, "engine": {"plan_cache":
  cache_stats}}`` — what a client needs to build requests, plus
  per-deployment kernel/memory introspection (the compile-time weight
  accounting from ``plan.weight_bytes()``), the registry's
  weight-memory budget status, and the engine's plan-cache counters
  (:meth:`repro.engine.engine.InferenceEngine.cache_stats`).
- ``{"op": "ping"}`` → ``{"ok": true, "pong": true}``.

Errors come back as ``{"ok": false, "error": code, "detail": str}``
with the stable codes from :mod:`repro.serve.errors`; a malformed line
gets ``bad_request`` and the connection stays usable.  Pipelining is
first-class — requests on one connection are dispatched concurrently
into the batcher (so a single loadgen connection still benefits from
micro-batching) and responses are written back in request order, which
is also how :class:`TcpServeClient` matches them up.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque

import numpy as np

from repro.serve.errors import (
    BadRequest,
    ServeError,
    error_from_code,
    wire_class,
)
from repro.serve.server import ModelServer

__all__ = ["serve_tcp", "TcpServeClient", "snapshot_stats"]

_MAX_LINE = 2**24  # 16 MiB of JSON per request is plenty for MCU-scale nets


async def snapshot_stats(server) -> dict:
    """``server.stats()``, awaited when needed.

    :meth:`ModelServer.stats` is synchronous;
    :meth:`~repro.serve.router.RouterServer.stats` round-trips the
    worker processes and is a coroutine.  The TCP front-end (and the
    loadgen CLI) serve both through this helper.
    """
    stats = server.stats()
    if asyncio.iscoroutine(stats):
        stats = await stats
    return stats


async def _handle_request(server: ModelServer, msg: dict) -> dict:
    op = msg.get("op", "infer")
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "stats":
        return {"ok": True, "stats": await snapshot_stats(server)}
    if op == "models":
        return {"ok": True, "models": list(server.registry.names())}
    if op == "describe":
        registry = server.registry
        payload = {
            "ok": True,
            "models": {
                name: {
                    "mode": dep.mode,
                    "input_shape": list(dep.input_shape),
                    "sparse": dep.sparse,
                    "select_fmt": dep.select_fmt,
                    "backend": dep.backend,
                    "accum_dtype": dep.accum_dtype,
                    "act_skip": dep.act_skip,
                    "weight_bytes": dep.plan.weight_bytes(),
                    "dense_weight_bytes": dep.plan.dense_weight_bytes(),
                }
                for name in registry.names()
                for dep in [registry.get(name)]
            },
            "weight_budget": {
                "max_weight_bytes": registry.max_weight_bytes,
                "used_weight_bytes": registry.weight_bytes_used(),
            },
            "engine": {"plan_cache": registry.engine.cache_stats()},
        }
        # Sharded servers add routing/shared-memory introspection.
        describe_extra = getattr(server, "describe_extra", None)
        if describe_extra is not None:
            payload.update(describe_extra())
        return payload
    if op == "infer":
        model = msg.get("model")
        if not isinstance(model, str):
            raise BadRequest("'model' must be a string")
        if "input" not in msg:
            raise BadRequest("'input' field is required")
        try:
            x = np.asarray(msg["input"], dtype=np.float32)
        except (TypeError, ValueError) as err:
            raise BadRequest(f"'input' is not a numeric array: {err}") from None
        out = await server.submit(model, x)
        return {"ok": True, "output": out.tolist()}
    raise BadRequest(f"unknown op {op!r}")


async def _handle_connection(
    server: ModelServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    async def process(line: bytes) -> dict:
        try:
            msg = json.loads(line)
            if not isinstance(msg, dict):
                raise BadRequest("request must be a JSON object")
            return await _handle_request(server, msg)
        except ServeError as err:
            return {"ok": False, "error": err.code, "detail": str(err)}
        except json.JSONDecodeError as err:
            return {
                "ok": False,
                "error": BadRequest.code,
                "detail": f"invalid JSON: {err}",
            }
        except Exception as err:
            # Anything unexpected (e.g. an engine failure surfaced via
            # the request future) must still produce a response line —
            # otherwise the writer task dies and every later pipelined
            # request on this connection hangs without a reply.  Typed
            # non-ServeError rejections (PlanVerificationError carries
            # a stable ``code``) keep their code on the wire.
            return {
                "ok": False,
                "error": getattr(err, "code", ServeError.code),
                "detail": f"{type(err).__name__}: {err}",
            }

    # In-order responses with concurrent dispatch: each line becomes a
    # task immediately (so consecutive infer requests can share a
    # micro-batch), and the writer drains results in request order.
    responses: "asyncio.Queue[asyncio.Task | None]" = asyncio.Queue()

    async def write_responses() -> None:
        while True:
            task = await responses.get()
            if task is None:
                return
            payload = await task
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()

    writer_task = asyncio.get_running_loop().create_task(write_responses())
    try:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionError, asyncio.LimitOverrunError, ValueError):
                # readline() wraps a line longer than the stream limit
                # in ValueError; the buffer can't be resynced after the
                # truncation, so drop the connection cleanly.
                break
            if not line:
                break
            if not line.strip():
                continue
            responses.put_nowait(
                asyncio.get_running_loop().create_task(process(line))
            )
    finally:
        responses.put_nowait(None)
        try:
            await writer_task
        except ConnectionError:
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def serve_tcp(
    server: ModelServer, host: str = "127.0.0.1", port: int = 8707
) -> asyncio.AbstractServer:
    """Expose ``server`` over TCP; caller owns both lifecycles.

    Returns the listening :class:`asyncio.AbstractServer`; close it
    (then ``await server.shutdown()``) to stop.  Port 0 picks a free
    port — read it back from ``sockets[0].getsockname()``.
    """

    async def handler(reader, writer):
        await _handle_connection(server, reader, writer)

    return await asyncio.start_server(handler, host, port, limit=_MAX_LINE)


class TcpServeClient:
    """Pipelined async client for the JSON-lines protocol.

    ``submit_msg`` writes a request immediately and returns a future;
    a background reader resolves futures in FIFO order (the server
    guarantees in-order responses).  Many requests can therefore be in
    flight on one connection — which is what lets a single loadgen
    client exercise the server's micro-batching.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8707) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: deque[asyncio.Future] = deque()
        self._reader_task: asyncio.Task | None = None

    async def connect(self) -> "TcpServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=_MAX_LINE
        )
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
        if self._reader_task is not None:
            await self._reader_task
            self._reader_task = None
        self._reader = self._writer = None

    async def __aenter__(self) -> "TcpServeClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        assert self._reader is not None
        while True:
            try:
                line = await self._reader.readline()
            except (ConnectionError, asyncio.LimitOverrunError, ValueError):
                line = b""
            if not line:
                break
            if self._pending:
                fut = self._pending.popleft()
                if not fut.done():
                    fut.set_result(json.loads(line))
        while self._pending:  # EOF with requests outstanding
            fut = self._pending.popleft()
            if not fut.done():
                fut.set_exception(
                    ConnectionError("server closed the connection")
                )

    # -- raw protocol ---------------------------------------------------

    def submit_msg(self, msg: dict) -> "asyncio.Future[dict]":
        """Send one request now; the future resolves to its response."""
        if self._writer is None or self._writer.is_closing():
            raise ConnectionError("client is not connected")
        fut = asyncio.get_running_loop().create_future()
        self._pending.append(fut)
        self._writer.write(json.dumps(msg).encode() + b"\n")
        return fut

    async def request(self, msg: dict) -> dict:
        return await self.submit_msg(msg)

    # -- typed helpers --------------------------------------------------

    def submit_infer(self, model: str, x) -> "asyncio.Future[np.ndarray]":
        """Pipelined infer: future resolves to the output array.

        A ``not ok`` response resolves the future with the matching
        typed error from :mod:`repro.serve.errors`.
        """
        raw = self.submit_msg(
            {"op": "infer", "model": model, "input": np.asarray(x).tolist()}
        )
        out: "asyncio.Future[np.ndarray]" = (
            asyncio.get_running_loop().create_future()
        )

        def _done(f: "asyncio.Future[dict]") -> None:
            if out.done():
                return
            if f.cancelled() or f.exception() is not None:
                out.set_exception(
                    f.exception() or ConnectionError("request cancelled")
                )
                return
            resp = f.result()
            if resp.get("ok"):
                out.set_result(np.asarray(resp["output"], dtype=np.float32))
            else:
                out.set_exception(_error_from_code(resp))

        raw.add_done_callback(_done)
        return out

    async def infer(self, model: str, x) -> np.ndarray:
        return await self.submit_infer(model, x)

    async def stats(self) -> dict:
        resp = await self.request({"op": "stats"})
        if not resp.get("ok"):
            raise _error_from_code(resp)
        return resp["stats"]

    async def describe(self) -> dict:
        """Hosted deployments: ``{name: {"mode", "input_shape", ...}}``."""
        resp = await self.request({"op": "describe"})
        if not resp.get("ok"):
            raise _error_from_code(resp)
        return resp["models"]

    async def weight_budget(self) -> dict:
        """The registry's weight budget: max and used bytes."""
        resp = await self.request({"op": "describe"})
        if not resp.get("ok"):
            raise _error_from_code(resp)
        return resp["weight_budget"]


def _error_from_code(resp: dict) -> Exception:
    code = resp.get("error", "serve_error")
    return error_from_code(code, resp.get("detail", code))


# Back-compat alias: the Remote* twin factory moved to repro.serve.errors
# so the sharded router can reuse it for worker -> router error frames.
_wire_class = wire_class
