"""The asyncio serving core: request intake, worker pool, backpressure.

:class:`ModelServer` glues the subsystem together:

- :meth:`ModelServer.submit` validates a request against its
  deployment, applies admission control, and hands it to that
  deployment's :class:`~repro.serve.batcher.Batcher`;
- one shared batch queue carries formed micro-batches to a pool of
  ``workers`` asyncio tasks, each running
  ``InferenceEngine.run_batch`` via :func:`asyncio.to_thread` so
  GIL-releasing numpy kernels from different micro-batches can overlap;
- backpressure is a queue-depth limit counted in *samples* accepted but
  not yet completed: when admitting a request would exceed
  ``max_queue_depth``, submit fast-fails with
  :class:`~repro.serve.errors.ServerOverloaded` instead of growing an
  unbounded backlog;
- :meth:`ModelServer.shutdown` stops intake (new submissions raise
  :class:`~repro.serve.errors.ServerClosed`), flushes every batcher,
  and drains the batch queue — every accepted request resolves.

Responses are bit-identical to direct ``InferenceEngine.run`` calls:
batch formation only concatenates requests along the leading axis, and
the engine's stacked-GEMM plans reduce each batch slice independently
in the same order as a single-sample run.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import TYPE_CHECKING

import numpy as np

from repro.serve.batcher import Batcher, BatchPolicy, MicroBatch, PendingRequest
from repro.serve.errors import (
    RequestTooLarge,
    ServerClosed,
    ServerOverloaded,
)
from repro.serve.metrics import Metrics
from repro.serve.registry import ModelRegistry

if TYPE_CHECKING:
    from repro.compiler.ir import Graph

__all__ = ["ModelServer"]


class ModelServer:
    """Async model server with dynamic micro-batching and backpressure."""

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        policy: BatchPolicy | None = None,
        workers: int = 2,
        max_queue_depth: int = 256,
        max_weight_bytes: int | None = None,
        tracer=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if registry is not None and max_weight_bytes is not None:
            raise ValueError(
                "pass max_weight_bytes to the ModelRegistry when "
                "supplying one explicitly"
            )
        self.registry = registry or ModelRegistry(
            max_weight_bytes=max_weight_bytes
        )
        #: Optional :class:`repro.trace.Tracer`.  The server emits async
        #: request/batch spans and queue-depth counter samples, and
        #: attaches the tracer to the registry's engine so per-layer
        #: kernel spans from the worker pool land in the same buffer.
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        if self.tracer is not None:
            self.registry.engine.tracer = self.tracer
        self._trace_ids = itertools.count()
        self._sampler_task: asyncio.Task | None = None
        self.policy = policy or BatchPolicy()
        self.workers = workers
        self.max_queue_depth = max_queue_depth
        self.metrics = Metrics()
        self._batchers: dict[str, Batcher] = {}
        #: Batchers displaced by re-registration; still owed a drain.
        self._retired: list[Batcher] = []
        self._queue: "asyncio.Queue[MicroBatch | None]" = asyncio.Queue()
        self._worker_tasks: list[asyncio.Task] = []
        self._depth = 0  # samples accepted, not yet resolved
        self._running = False
        self._closing = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker pool; idempotent."""
        if self._running:
            return
        self._running = True
        self._closing = False
        loop = asyncio.get_running_loop()
        self._worker_tasks = [
            loop.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.workers)
        ]
        if self.tracer is not None and self._sampler_task is None:
            self._sampler_task = loop.create_task(
                self._sample_queue_depth(), name="serve-trace-sampler"
            )

    async def shutdown(self) -> None:
        """Drain and stop: every accepted request resolves before return."""
        if not self._running:
            return
        self._closing = True  # submit() now raises ServerClosed
        # Flush every batcher's pending requests onto the batch queue —
        # including batchers displaced by re-registration, whose
        # accepted requests must drain like any other.
        for batcher in (*self._batchers.values(), *self._retired):
            await batcher.close()
        self._retired = []
        # One sentinel per worker: each consumes exactly one and exits
        # after finishing whatever real batches precede it.
        for _ in self._worker_tasks:
            self._queue.put_nowait(None)
        # return_exceptions: a crashed/cancelled worker task must not
        # abort the drain of the others — whatever it left on the queue
        # is failed explicitly below instead of being dropped silently.
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []
        self._drain_queue_failed()
        self._batchers = {}
        self._running = False
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            try:
                await self._sampler_task
            except asyncio.CancelledError:
                pass
            self._sampler_task = None

    async def _sample_queue_depth(self) -> None:
        """Periodic queue-depth counter samples (~20 Hz while running).

        Event-driven counter emission alone leaves gaps when the server
        idles; the sampler guarantees the Perfetto counter track has a
        point at least every 50 ms so plateaus render truthfully.
        """
        while True:
            if self.tracer is not None:
                self.tracer.counter("queue_depth", {"samples": self._depth})
            await asyncio.sleep(0.05)

    def _drain_queue_failed(self) -> None:
        """Fail any micro-batches stranded on the queue at shutdown.

        Normally empty: the sentinel protocol has every worker finish
        the real batches ahead of its sentinel.  But if a worker task
        died (bug, cancellation), its share of the queue would
        otherwise be dropped with the futures left pending forever —
        the accepted-requests-always-resolve contract says they must
        resolve, so they resolve exceptionally with ``ServerClosed``.
        """
        while not self._queue.empty():
            micro = self._queue.get_nowait()
            if micro is None or not micro.requests:
                continue
            for req in micro.requests:
                self._depth -= req.samples
                self.metrics.record_failed(req.samples)
                if self.tracer is not None and req.trace_id >= 0:
                    self.tracer.end_async(
                        "request", req.trace_id, args={"ok": False}
                    )
                if not req.future.done():
                    req.future.set_exception(
                        ServerClosed(
                            "server shut down before the request ran"
                        )
                    )

    async def __aenter__(self) -> "ModelServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    # -- convenience registration --------------------------------------

    def register(
        self,
        name: str,
        graph: "Graph",
        mode: str = "float",
        sparse: bool = False,
        select_fmt: bool = False,
        accuracy_budget: float = 0.0,
        backend: str = "sw",
        accum_dtype: str | None = None,
        act_skip: str = "off",
    ):
        """Register (and plan-warm) a deployment on the server's registry."""
        return self.registry.register(
            name,
            graph,
            mode,
            sparse=sparse,
            select_fmt=select_fmt,
            accuracy_budget=accuracy_budget,
            backend=backend,
            accum_dtype=accum_dtype,
            act_skip=act_skip,
        )

    # -- request path (event loop only) ---------------------------------

    def submit(self, model: str, x: np.ndarray) -> "asyncio.Future[np.ndarray]":
        """Admit one request; returns a future resolving to its output.

        Raises the typed admission errors synchronously:
        :class:`ServerClosed`, :class:`UnknownModel`,
        :class:`BadRequest` / :class:`RequestTooLarge`, and
        :class:`ServerOverloaded`.  Once a future is returned the
        request *will* resolve, even across shutdown.
        """
        loop = asyncio.get_running_loop()
        if not self._running or self._closing:
            self.metrics.record_rejected(ServerClosed.code)
            raise ServerClosed("server is not accepting requests")
        try:
            deployment = self.registry.get(model)
            batch, batched = deployment.coerce_request(x)
        except Exception as err:
            self.metrics.record_rejected(getattr(err, "code", "bad_request"))
            raise
        samples = batch.shape[0]
        if samples > self.policy.max_batch_size:
            self.metrics.record_rejected(RequestTooLarge.code)
            raise RequestTooLarge(samples, self.policy.max_batch_size)
        if self._depth + samples > self.max_queue_depth:
            self.metrics.record_rejected(ServerOverloaded.code)
            raise ServerOverloaded(self._depth, self.max_queue_depth)
        request = PendingRequest(
            deployment=deployment,
            batch=batch,
            samples=samples,
            batched=batched,
            future=loop.create_future(),
            enqueued_at=loop.time(),
        )
        self._depth += samples
        self.metrics.record_accepted(samples)
        if self.tracer is not None:
            request.trace_id = next(self._trace_ids)
            self.tracer.begin_async(
                "request",
                request.trace_id,
                args={"model": model, "samples": samples},
            )
            self.tracer.counter("queue_depth", {"samples": self._depth})
        self._batcher_for(deployment).add(request)
        return request.future

    async def infer(self, model: str, x: np.ndarray) -> np.ndarray:
        """Submit and await one request."""
        return await self.submit(model, x)

    def stats(self) -> dict:
        """JSON-safe metrics snapshot plus server-level gauges."""
        snap = self.metrics.snapshot()
        snap["server"] = {
            "running": self._running and not self._closing,
            "workers": self.workers,
            "models": list(self.registry.names()),
            "policy": {
                "max_batch_size": self.policy.max_batch_size,
                "max_wait_ms": self.policy.max_wait_ms,
            },
            "max_queue_depth": self.max_queue_depth,
        }
        return snap

    # -- internals ------------------------------------------------------

    def _batcher_for(self, deployment) -> Batcher:
        batcher = self._batchers.get(deployment.name)
        if batcher is None or batcher.deployment is not deployment:
            if batcher is not None:
                # The name was re-registered: the old batcher may still
                # hold accepted requests, so keep it alive (it flushes
                # to the shared queue) and drain it at shutdown.
                self._retired.append(batcher)
            batcher = Batcher(
                deployment, self.policy, self._queue, tracer=self.tracer
            )
            batcher.start()
            self._batchers[deployment.name] = batcher
        return batcher

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            micro = await self._queue.get()
            if micro is None:  # shutdown sentinel
                return
            if not micro.requests:  # empty flush artifact; ignore
                continue
            tracer = self.tracer
            batch_id = -1
            try:
                # concat/record inside the try: a failure anywhere in
                # handling this batch fails its requests, never the
                # worker task (a dead worker silently strands batches).
                batch = micro.concat()
                self.metrics.record_batch(batch.shape[0])
                if tracer is not None:
                    batch_id = next(self._trace_ids)
                    tracer.begin_async(
                        "batch",
                        batch_id,
                        args={
                            "deployment": micro.deployment.name,
                            "requests": len(micro.requests),
                            "samples": int(batch.shape[0]),
                        },
                    )
                out = await asyncio.to_thread(micro.deployment.run_batch, batch)
            except BaseException as err:
                for req in micro.requests:
                    self._depth -= req.samples
                    self.metrics.record_failed(req.samples)
                    if not req.future.done():
                        req.future.set_exception(err)
                if tracer is not None:
                    if batch_id >= 0:
                        tracer.end_async(
                            "batch", batch_id, args={"ok": False}
                        )
                    self._trace_finish(micro, ok=False)
                if isinstance(err, asyncio.CancelledError):
                    raise  # shutdown drains the rest of the queue
                continue
            now = loop.time()
            offset = 0
            for req in micro.requests:
                result = out[offset : offset + req.samples]
                offset += req.samples
                self._depth -= req.samples
                self.metrics.record_completed(
                    req.samples, now - req.enqueued_at
                )
                if not req.future.done():
                    req.future.set_result(
                        result if req.batched else result[0]
                    )
            if tracer is not None:
                tracer.end_async("batch", batch_id, args={"ok": True})
                self._trace_finish(micro, ok=True)

    def _trace_finish(self, micro: MicroBatch, ok: bool) -> None:
        """Close the member requests' async spans and resample depth.

        Called after the member requests' depth contributions have been
        released, so the counter sample reflects the post-batch queue.
        """
        if self.tracer is None:
            return
        for req in micro.requests:
            if req.trace_id >= 0:
                self.tracer.end_async(
                    "request", req.trace_id, args={"ok": ok}
                )
        self.tracer.counter("queue_depth", {"samples": self._depth})
