"""Shared-memory weight segments for sharded serving.

:class:`SharedWeightStore` moves the compile-time weight images of a
deployment — the dense GEMM matrices and the packed
:class:`~repro.sparsity.nm.NMSparseMatrix` buffers (values, OFFSETS
streams, decoded gather indices, ISA layouts) — into POSIX
``multiprocessing.shared_memory`` segments so R worker replicas map
*one* copy instead of each materialising its own.  The router owns the
store in ``create`` mode; each worker process opens the same namespace
in attach mode and, because plan compilation is deterministic, rebuilds
byte-identical arrays whose storage is then swapped for read-only views
of the shared segments.

Segments are keyed by ``deployment-key / layer / layout / tag`` strings
derived from the engine's plan-cache keys (see
:meth:`repro.serve.router.RouterServer.register`); the key is hashed
into the segment name so arbitrary key strings never hit the OS name
length limit.  Layout inside a segment is deterministic: member arrays
are placed in sorted-tag order at 64-byte-aligned offsets, so an
attacher can derive every offset from the shapes/dtypes of its own
locally-built arrays without a header.

Lifecycle rules (learned the hard way from the 3.11 resource tracker):

- the owner alone calls :meth:`unlink`; ``SharedMemory.unlink`` also
  unregisters the name from the resource tracker, which spawned
  children *share* with the parent — a worker must never unregister or
  the owner's later unlink double-removes and the tracker logs noise;
- :meth:`close` tolerates ``BufferError``: numpy views handed to live
  execution plans keep the mapping exported, and on POSIX an unlinked
  segment is freed when the last mapping goes away regardless.
"""

from __future__ import annotations

import hashlib
import itertools
import os
from contextlib import contextmanager
from dataclasses import replace
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

__all__ = ["SharedWeightStore", "leaked_segments"]

#: Byte alignment of member arrays inside a segment (cache-line).
_ALIGN = 64

_NAMESPACE_COUNTER = itertools.count()


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def leaked_segments(namespace: str) -> list[str]:
    """Names of this namespace's segments still present in ``/dev/shm``.

    Empty after a clean :meth:`SharedWeightStore.unlink` — the
    leak-check assertion tests run at server shutdown.  Returns empty
    on platforms without a ``/dev/shm`` view of POSIX shm.
    """
    root = Path("/dev/shm")
    if not root.is_dir():
        return []
    return sorted(p.name for p in root.glob(f"{namespace}.*"))


class SharedWeightStore:
    """One namespace of shared weight segments (owner or attacher).

    ``create=True`` (the router) creates segments on :meth:`intern` and
    owns their unlink; ``create=False`` (a worker) attaches to existing
    segments and falls back to the caller's private arrays (counting an
    ``attach_miss``) when a segment is absent — sharing is a memory
    optimisation, never a correctness dependency.
    """

    def __init__(self, namespace: str | None = None, create: bool = True):
        if namespace is None:
            if not create:
                raise ValueError("attach mode requires an explicit namespace")
            namespace = (
                f"repro{os.getpid():x}x{next(_NAMESPACE_COUNTER):x}"
            )
        self.namespace = namespace
        self.create = create
        #: key -> (SharedMemory, payload bytes)
        self._segments: dict[str, tuple[shared_memory.SharedMemory, int]] = {}
        #: key -> {tag: shared view} (dedupe re-interning the same key)
        self._views: dict[str, dict[str, np.ndarray]] = {}
        self.attach_misses = 0
        self._capture_stack: list[list[str]] = []
        self._unlinked = False

    # -- naming ---------------------------------------------------------

    def segment_name(self, key: str) -> str:
        """OS-level segment name for a store key (hashed, length-safe)."""
        digest = hashlib.sha1(key.encode()).hexdigest()[:16]
        return f"{self.namespace}.{digest}"

    # -- interning ------------------------------------------------------

    @staticmethod
    def _plan_offsets(
        arrays: dict[str, np.ndarray]
    ) -> tuple[list[tuple[str, int, np.ndarray]], int]:
        placed = []
        offset = 0
        for tag in sorted(arrays):
            arr = np.ascontiguousarray(arrays[tag])
            offset = _align(offset)
            placed.append((tag, offset, arr))
            offset += arr.nbytes
        return placed, offset

    def intern(
        self, key: str, arrays: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Move ``arrays`` into the segment for ``key``; return views.

        Owner mode creates the segment and copies the data in; attach
        mode maps the existing segment and returns views shaped/typed
        like the (byte-identical, deterministically recompiled) local
        arrays.  Re-interning a known key returns the cached views.
        All returned views are read-only — packed weights are immutable
        once published.
        """
        if self._unlinked:
            # Lifecycle misuse inside the owning process; never crosses
            # the wire.  # repro: allow(serve-typed-errors)
            raise RuntimeError("store already unlinked")
        cached = self._views.get(key)
        if cached is not None:
            return dict(cached)
        placed, total = self._plan_offsets(arrays)
        name = self.segment_name(key)
        if self.create:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(total, 1)
            )
        else:
            try:
                shm = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                self.attach_misses += 1
                return dict(arrays)
            if shm.size < total:
                # Key collision / stale segment: never serve torn data.
                shm.close()
                self.attach_misses += 1
                return dict(arrays)
        views: dict[str, np.ndarray] = {}
        for tag, offset, arr in placed:
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset
            )
            if self.create:
                view[...] = arr
            view.flags.writeable = False
            views[tag] = view
        self._segments[key] = (shm, total)
        self._views[key] = views
        for captured in self._capture_stack:
            captured.append(key)
        return dict(views)

    def intern_layout(self, key: str, layout):
        """Rehydrate a :class:`~repro.kernels.backend.PackedLayout`
        around shared storage.

        Every array the bound kernels touch at run time moves into the
        segment: ``values`` / ``packed_offsets`` / ``gather_idx`` plus
        the logical matrix's value/offset arrays (the SW layout aliases
        ``values`` to ``matrix.values`` — the alias is preserved so the
        bytes are stored once).  ``weight_bytes`` accounting is
        untouched; only the storage moves.
        """
        from repro.sparsity.nm import NMSparseMatrix

        matrix = layout.matrix
        values_alias_matrix = (
            matrix is not None and layout.values is matrix.values
        )
        arrays: dict[str, np.ndarray] = {}
        if not values_alias_matrix:
            arrays["values"] = layout.values
        if layout.packed_offsets is not None:
            arrays["packed_offsets"] = layout.packed_offsets
        if layout.gather_idx is not None:
            arrays["gather_idx"] = layout.gather_idx
        if matrix is not None:
            arrays["matrix_values"] = matrix.values
            arrays["matrix_offsets"] = matrix.offsets
        shared = self.intern(key, arrays)
        if matrix is not None:
            matrix = NMSparseMatrix(
                shared["matrix_values"],
                shared["matrix_offsets"],
                matrix.fmt,
                matrix.dense_cols,
            )
        return replace(
            layout,
            matrix=matrix,
            values=(
                shared["matrix_values"]
                if values_alias_matrix
                else shared["values"]
            ),
            packed_offsets=shared.get("packed_offsets"),
            gather_idx=shared.get("gather_idx"),
            shared_key=key,
        )

    @contextmanager
    def capture(self):
        """Record the keys created inside the block (for rollback).

        Registration wraps plan compilation in this so an exception —
        e.g. :class:`~repro.serve.errors.WeightBudgetExceeded` raised
        *after* the plan was compiled and its segments published —
        can :meth:`release` exactly that deployment's segments.
        """
        created: list[str] = []
        self._capture_stack.append(created)
        try:
            yield created
        finally:
            self._capture_stack.remove(created)

    def release(self, keys) -> None:
        """Unlink and forget specific segments (owner only)."""
        if not self.create:
            # Owner-only lifecycle guard; never crosses the wire.
            # repro: allow(serve-typed-errors)
            raise RuntimeError("only the owning store may release segments")
        for key in keys:
            entry = self._segments.pop(key, None)
            self._views.pop(key, None)
            if entry is None:
                continue
            shm, _ = entry
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            try:
                shm.close()
            except BufferError:
                pass  # plan views still exported; freed with the mapping

    # -- introspection --------------------------------------------------

    def keys(self) -> tuple[str, ...]:
        return tuple(self._segments)

    def segment_names(self) -> tuple[str, ...]:
        return tuple(self.segment_name(key) for key in self._segments)

    def total_bytes(self) -> int:
        """Payload bytes across segments (each counted once, shared)."""
        return sum(size for _, size in self._segments.values())

    def segment_bytes(self, key: str) -> int | None:
        """Recorded payload bytes of one segment (None when unknown).

        The plan verifier's byte-accounting check compares this against
        the packed layouts that claim the segment.
        """
        entry = self._segments.get(key)
        return entry[1] if entry is not None else None

    def stats(self) -> dict:
        return {
            "namespace": self.namespace,
            "segments": len(self._segments),
            "bytes": self.total_bytes(),
            "attach_misses": self.attach_misses,
            "owner": self.create,
        }

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Best-effort close of the local handles (attacher shutdown)."""
        for shm, _ in self._segments.values():
            try:
                shm.close()
            except BufferError:
                pass
        self._segments = {}
        self._views = {}

    def unlink(self) -> None:
        """Owner teardown: unlink every segment; idempotent.

        ``SharedMemory.unlink`` also unregisters from the resource
        tracker, which this process registered at create time — workers
        never unregister (see module docstring).
        """
        if not self.create:
            # Owner-only lifecycle guard; never crosses the wire.
            # repro: allow(serve-typed-errors)
            raise RuntimeError("only the owning store may unlink")
        self.release(list(self._segments))
        self._unlinked = True

    def leaked(self) -> list[str]:
        """Segments of this namespace still visible in ``/dev/shm``."""
        return leaked_segments(self.namespace)
