"""Throughput measurement for the batched engine.

Used by ``benchmarks/test_engine_throughput.py`` and the
``python -m repro engine`` CLI command: builds a small ResNet-style
graph (conv stem, residual blocks, a stride-2 downsampling transition
with a 1x1 shortcut, pooling, linear head) and times a warm per-sample
loop against one batched call over the same samples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.compiler.ir import Graph
from repro.engine.engine import InferenceEngine
from repro.engine.plan import KernelChoice
from repro.sparsity.nm import NMFormat
from repro.sparsity.pruning import prune_conv_weights, prune_fc_weights
from repro.utils.rng import make_rng

__all__ = [
    "ThroughputResult",
    "SparseThroughputResult",
    "resnet_style_graph",
    "measure_throughput",
    "measure_sparse_throughput",
]


@dataclass
class ThroughputResult:
    """Timing comparison between per-sample and batched execution.

    ``uncached_s`` times the seed executor's behaviour — every call
    re-derives shapes and re-prepares weights (plan compiled per call);
    ``per_sample_s`` times a warm one-at-a-time loop against a cached
    plan; ``batched_s`` times one batched call over the same samples.
    """

    graph_name: str
    mode: str
    batch: int
    uncached_s: float
    per_sample_s: float
    batched_s: float

    @property
    def speedup(self) -> float:
        """Batched speedup over the uncached per-sample loop."""
        return self.uncached_s / self.batched_s if self.batched_s else 0.0

    @property
    def warm_speedup(self) -> float:
        """Batched speedup over the warm (plan-cached) per-sample loop."""
        return self.per_sample_s / self.batched_s if self.batched_s else 0.0

    @property
    def uncached_throughput(self) -> float:
        """Samples/second of the seed-style uncached loop."""
        return self.batch / self.uncached_s if self.uncached_s else 0.0

    @property
    def per_sample_throughput(self) -> float:
        """Samples/second of the warm one-at-a-time loop."""
        return self.batch / self.per_sample_s if self.per_sample_s else 0.0

    @property
    def batched_throughput(self) -> float:
        """Samples/second of the single batched call."""
        return self.batch / self.batched_s if self.batched_s else 0.0


def resnet_style_graph(
    seed: int = 0,
    hw: int = 12,
    c0: int = 8,
    num_classes: int = 10,
    fmt: NMFormat | None = None,
) -> Graph:
    """A small ResNet-style benchmark graph (residual CNN + pooling).

    With ``fmt`` set, every conv (and the head) whose reduce dimension
    is a multiple of ``fmt.m`` is magnitude-pruned to the N:M pattern —
    the pruned demo model the sparse-engine benchmark, demo server and
    CI smoke job run (layers the pattern cannot cover, e.g. the C=3
    stem, stay dense, so sparse plans exercise mixed graphs).
    """
    rng = make_rng(seed)

    def he(k, fy, fx, c):
        std = np.sqrt(2.0 / (fy * fx * c))
        w = rng.normal(0, std, size=(k, fy, fx, c)).astype(np.float32)
        if fmt is not None and (fy * fx * c) % fmt.m == 0:
            w = prune_conv_weights(w, fmt).astype(np.float32)
        return w

    g = Graph(f"resnet-style-bench{'-' + fmt.name if fmt else ''}")
    x = g.add_input("input", (hw, hw, 3))
    x = g.add_conv2d("stem", x, he(c0, 3, 3, 3), s=1, p=1)
    x = g.add_elementwise("stem_relu", "relu", x)
    # Plain residual block.
    identity = x
    x = g.add_conv2d("b0_conv1", x, he(c0, 3, 3, c0), s=1, p=1)
    x = g.add_elementwise("b0_relu1", "relu", x)
    x = g.add_conv2d("b0_conv2", x, he(c0, 3, 3, c0), s=1, p=1)
    x = g.add_add("b0_add", x, identity)
    x = g.add_elementwise("b0_relu2", "relu", x)
    # Stride-2 downsampling block with a 1x1 shortcut.
    identity = x
    x = g.add_conv2d("b1_conv1", x, he(2 * c0, 3, 3, c0), s=2, p=1)
    x = g.add_elementwise("b1_relu1", "relu", x)
    x = g.add_conv2d("b1_conv2", x, he(2 * c0, 3, 3, 2 * c0), s=1, p=1)
    identity = g.add_conv2d("b1_down", identity, he(2 * c0, 1, 1, c0), s=2, p=0)
    x = g.add_add("b1_add", x, identity)
    x = g.add_elementwise("b1_relu2", "relu", x)
    # size=3 / stride=2 pooling — the window geometry the legacy
    # executor got wrong — then the head.
    x = g.add_maxpool("pool", x, size=3, stride=2)
    x = g.add_global_avgpool("gap", x)
    head = rng.normal(0, 0.01, size=(num_classes, 2 * c0)).astype(np.float32)
    if fmt is not None and (2 * c0) % fmt.m == 0:
        head = prune_fc_weights(head, fmt).astype(np.float32)
    g.add_dense("head", x, head, bias=np.zeros(num_classes, dtype=np.float32))
    g.validate()
    return g


def measure_throughput(
    graph: Graph,
    batch: int = 32,
    mode: str = "float",
    repeats: int = 3,
    seed: int = 0,
    engine: InferenceEngine | None = None,
) -> ThroughputResult:
    """Time per-sample loops vs one batched call over ``batch`` samples.

    Three paths are measured: the seed executor's behaviour (plan
    compiled on every call, so shapes are re-derived and weights
    re-prepared per sample), a warm per-sample loop over a cached plan,
    and a single batched call.  Each path is timed ``repeats`` times
    and the best run is kept.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    engine = engine or InferenceEngine()
    plan = engine.compile(graph, mode)
    rng = make_rng(seed)
    xs = rng.normal(size=(batch, *plan.input_shape)).astype(np.float32)

    # Warm-up: compile, touch both code paths, fault pages in.
    engine.run(graph, xs[0], mode=mode)
    engine.run_batch(graph, xs, mode=mode)

    def uncached_loop() -> None:
        cold = InferenceEngine()
        for x in xs:
            cold.run(graph, x, mode=mode)
            cold.invalidate(graph)

    uncached_s = min(_time(uncached_loop) for _ in range(repeats))
    per_sample_s = min(
        _time(lambda: [engine.run(graph, x, mode=mode) for x in xs])
        for _ in range(repeats)
    )
    batched_s = min(
        _time(lambda: engine.run_batch(graph, xs, mode=mode))
        for _ in range(repeats)
    )
    return ThroughputResult(
        graph_name=graph.name,
        mode=mode,
        batch=batch,
        uncached_s=uncached_s,
        per_sample_s=per_sample_s,
        batched_s=batched_s,
    )


@dataclass
class SparseThroughputResult:
    """Sparse-vs-dense plan comparison on one pruned int8 graph.

    ``identical`` is the acceptance gate: the sparse plan's batched
    output must be bit-identical to the dense plan's (integer
    accumulation is exact, so decimation cannot change a single bit).
    Weight bytes are compile-time accounting from
    :attr:`~repro.engine.plan.ExecutionPlan.kernel_choices`: for N:M
    layers the packed storage (values + packed offsets), for dense
    layers the int8 matrix.
    """

    graph_name: str
    fmt_name: str
    batch: int
    dense_s: float
    sparse_s: float
    identical: bool
    sparse_weight_bytes: int
    dense_weight_bytes: int
    sparse_layers: int
    gather_layers: int
    kernel_choices: dict[str, KernelChoice] = field(repr=False, default_factory=dict)
    #: The measured (pruned, quantised) graph — kept for independent
    #: re-verification of the packed weight accounting.
    graph: Graph | None = field(repr=False, default=None)

    @property
    def dense_throughput(self) -> float:
        """Samples/second of the dense int8 plan."""
        return self.batch / self.dense_s if self.dense_s else 0.0

    @property
    def sparse_throughput(self) -> float:
        """Samples/second of the sparse int8 plan."""
        return self.batch / self.sparse_s if self.sparse_s else 0.0

    @property
    def speedup(self) -> float:
        """Sparse plan speedup over the dense plan (host wall-clock)."""
        return self.dense_s / self.sparse_s if self.sparse_s else 0.0

    @property
    def memory_reduction(self) -> float:
        """Fractional weight-storage reduction of the sparse plan."""
        if not self.dense_weight_bytes:
            return 0.0
        return 1.0 - self.sparse_weight_bytes / self.dense_weight_bytes


def measure_sparse_throughput(
    fmt: NMFormat,
    batch: int = 32,
    repeats: int = 3,
    seed: int = 0,
    graph: Graph | None = None,
    engine: InferenceEngine | None = None,
    force_method: str | None = None,
) -> SparseThroughputResult:
    """Compare the sparse and dense int8 plans of a pruned graph.

    Builds (unless given) the pruned demo graph for ``fmt``, quantises
    it, compiles both int8 plans on one engine, verifies batched
    bit-identity, and times both plans over the same ``batch`` samples
    (best of ``repeats``).  ``force_method`` pins every N:M layer to
    one execution method ("gather" / "dense") instead of the cost
    model's per-layer choice — the CI gather gate uses it so the
    decimation path is exercised even where the model prefers dense.
    """
    from repro.models.quantize import quantize_graph

    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if graph is None:
        graph = resnet_style_graph(seed=seed, fmt=fmt)
        rng = make_rng(seed)
        calib = [
            rng.normal(size=(12, 12, 3)).astype(np.float32) for _ in range(4)
        ]
        quantize_graph(graph, calib)
    restore: list[tuple] = []
    if force_method is not None:
        # Pin the method for the duration of the measurement only; a
        # caller-supplied graph must come back with its annotations
        # untouched (the engine re-fingerprints them per compile).
        for node in graph:
            if node.op in ("conv2d", "dense"):
                restore.append((node, node.attrs.get("sparse_method")))
                node.attrs["sparse_method"] = force_method
    try:
        engine = engine or InferenceEngine()
        dense_plan = engine.compile(graph, "int8", sparse=False)
        sparse_plan = engine.compile(graph, "int8", sparse=True)
        rng = make_rng(seed + 1)
        xs = rng.normal(size=(batch, *dense_plan.input_shape)).astype(np.float32)

        dense_out = engine.run_batch(graph, xs, mode="int8")
        sparse_out = engine.run_batch(graph, xs, mode="int8", sparse=True)
        identical = bool(np.array_equal(dense_out, sparse_out))

        dense_s = min(
            _time(lambda: engine.run_batch(graph, xs, mode="int8"))
            for _ in range(repeats)
        )
        sparse_s = min(
            _time(lambda: engine.run_batch(graph, xs, mode="int8", sparse=True))
            for _ in range(repeats)
        )
    finally:
        for node, prev in restore:
            if prev is None:
                node.attrs.pop("sparse_method", None)
            else:
                node.attrs["sparse_method"] = prev
    choices = sparse_plan.kernel_choices
    return SparseThroughputResult(
        graph_name=graph.name,
        fmt_name=fmt.name,
        batch=batch,
        dense_s=dense_s,
        sparse_s=sparse_s,
        identical=identical,
        sparse_weight_bytes=sparse_plan.weight_bytes(),
        dense_weight_bytes=sparse_plan.dense_weight_bytes(),
        sparse_layers=sum(1 for c in choices.values() if c.fmt is not None),
        gather_layers=sum(1 for c in choices.values() if c.method == "gather"),
        kernel_choices=dict(choices),
        graph=graph,
    )


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
