"""Throughput measurement for the batched engine.

Used by ``benchmarks/test_engine_throughput.py`` and the
``python -m repro engine`` CLI command: builds a small ResNet-style
graph (conv stem, residual blocks, a stride-2 downsampling transition
with a 1x1 shortcut, pooling, linear head) and times a warm per-sample
loop against one batched call over the same samples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.compiler.ir import Graph
from repro.engine.engine import InferenceEngine
from repro.utils.rng import make_rng

__all__ = ["ThroughputResult", "resnet_style_graph", "measure_throughput"]


@dataclass
class ThroughputResult:
    """Timing comparison between per-sample and batched execution.

    ``uncached_s`` times the seed executor's behaviour — every call
    re-derives shapes and re-prepares weights (plan compiled per call);
    ``per_sample_s`` times a warm one-at-a-time loop against a cached
    plan; ``batched_s`` times one batched call over the same samples.
    """

    graph_name: str
    mode: str
    batch: int
    uncached_s: float
    per_sample_s: float
    batched_s: float

    @property
    def speedup(self) -> float:
        """Batched speedup over the uncached per-sample loop."""
        return self.uncached_s / self.batched_s if self.batched_s else 0.0

    @property
    def warm_speedup(self) -> float:
        """Batched speedup over the warm (plan-cached) per-sample loop."""
        return self.per_sample_s / self.batched_s if self.batched_s else 0.0

    @property
    def uncached_throughput(self) -> float:
        """Samples/second of the seed-style uncached loop."""
        return self.batch / self.uncached_s if self.uncached_s else 0.0

    @property
    def per_sample_throughput(self) -> float:
        """Samples/second of the warm one-at-a-time loop."""
        return self.batch / self.per_sample_s if self.per_sample_s else 0.0

    @property
    def batched_throughput(self) -> float:
        """Samples/second of the single batched call."""
        return self.batch / self.batched_s if self.batched_s else 0.0


def resnet_style_graph(
    seed: int = 0, hw: int = 12, c0: int = 8, num_classes: int = 10
) -> Graph:
    """A small ResNet-style benchmark graph (residual CNN + pooling)."""
    rng = make_rng(seed)

    def he(k, fy, fx, c):
        std = np.sqrt(2.0 / (fy * fx * c))
        return rng.normal(0, std, size=(k, fy, fx, c)).astype(np.float32)

    g = Graph("resnet-style-bench")
    x = g.add_input("input", (hw, hw, 3))
    x = g.add_conv2d("stem", x, he(c0, 3, 3, 3), s=1, p=1)
    x = g.add_elementwise("stem_relu", "relu", x)
    # Plain residual block.
    identity = x
    x = g.add_conv2d("b0_conv1", x, he(c0, 3, 3, c0), s=1, p=1)
    x = g.add_elementwise("b0_relu1", "relu", x)
    x = g.add_conv2d("b0_conv2", x, he(c0, 3, 3, c0), s=1, p=1)
    x = g.add_add("b0_add", x, identity)
    x = g.add_elementwise("b0_relu2", "relu", x)
    # Stride-2 downsampling block with a 1x1 shortcut.
    identity = x
    x = g.add_conv2d("b1_conv1", x, he(2 * c0, 3, 3, c0), s=2, p=1)
    x = g.add_elementwise("b1_relu1", "relu", x)
    x = g.add_conv2d("b1_conv2", x, he(2 * c0, 3, 3, 2 * c0), s=1, p=1)
    identity = g.add_conv2d("b1_down", identity, he(2 * c0, 1, 1, c0), s=2, p=0)
    x = g.add_add("b1_add", x, identity)
    x = g.add_elementwise("b1_relu2", "relu", x)
    # size=3 / stride=2 pooling — the window geometry the legacy
    # executor got wrong — then the head.
    x = g.add_maxpool("pool", x, size=3, stride=2)
    x = g.add_global_avgpool("gap", x)
    head = rng.normal(0, 0.01, size=(num_classes, 2 * c0)).astype(np.float32)
    g.add_dense("head", x, head, bias=np.zeros(num_classes, dtype=np.float32))
    g.validate()
    return g


def measure_throughput(
    graph: Graph,
    batch: int = 32,
    mode: str = "float",
    repeats: int = 3,
    seed: int = 0,
    engine: InferenceEngine | None = None,
) -> ThroughputResult:
    """Time per-sample loops vs one batched call over ``batch`` samples.

    Three paths are measured: the seed executor's behaviour (plan
    compiled on every call, so shapes are re-derived and weights
    re-prepared per sample), a warm per-sample loop over a cached plan,
    and a single batched call.  Each path is timed ``repeats`` times
    and the best run is kept.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    engine = engine or InferenceEngine()
    plan = engine.compile(graph, mode)
    rng = make_rng(seed)
    xs = rng.normal(size=(batch, *plan.input_shape)).astype(np.float32)

    # Warm-up: compile, touch both code paths, fault pages in.
    engine.run(graph, xs[0], mode=mode)
    engine.run_batch(graph, xs, mode=mode)

    def uncached_loop() -> None:
        cold = InferenceEngine()
        for x in xs:
            cold.run(graph, x, mode=mode)
            cold.invalidate(graph)

    uncached_s = min(_time(uncached_loop) for _ in range(repeats))
    per_sample_s = min(
        _time(lambda: [engine.run(graph, x, mode=mode) for x in xs])
        for _ in range(repeats)
    )
    batched_s = min(
        _time(lambda: engine.run_batch(graph, xs, mode=mode))
        for _ in range(repeats)
    )
    return ThroughputResult(
        graph_name=graph.name,
        mode=mode,
        batch=batch,
        uncached_s=uncached_s,
        per_sample_s=per_sample_s,
        batched_s=batched_s,
    )


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
