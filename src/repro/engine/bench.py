"""Throughput measurement for the batched engine.

Used by ``benchmarks/test_engine_throughput.py`` and the
``python -m repro engine`` CLI command: builds a small ResNet-style
graph (conv stem, residual blocks, a stride-2 downsampling transition
with a 1x1 shortcut, pooling, linear head) and times a warm per-sample
loop against one batched call over the same samples.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.compiler.ir import Graph
from repro.engine.engine import InferenceEngine
from repro.engine.plan import KernelChoice
from repro.sparsity.nm import (
    FORMAT_1_4,
    FORMAT_1_8,
    FORMAT_1_16,
    NMFormat,
)
from repro.sparsity.pruning import prune_conv_weights, prune_fc_weights
from repro.utils.rng import make_rng

__all__ = [
    "FLOAT_SPARSE_REL_TOL",
    "MIXED_DEMO_FMTS",
    "ThroughputResult",
    "SparseThroughputResult",
    "ActSkipSweepResult",
    "FormatSelectionResult",
    "KChunkAutotuneResult",
    "resnet_style_graph",
    "measure_throughput",
    "measure_sparse_throughput",
    "measure_act_skip_sweep",
    "measure_format_selection",
    "autotune_k_chunk",
]

#: Documented tolerance of the float sparse gather path: the sparse
#: plan's output must stay within this fraction of the dense plan's
#: output peak (|Δ|_max <= tol * max|dense|).  Float accumulation
#: order differs between the decimation gather and the dense GEMM, so
#: bit-identity is an int8-only contract; measured deviations on the
#: demo/paper models are ~1e-7..1e-6 of peak, so 1e-4 is a generous,
#: stable gate (see docs/sparsity.md).
FLOAT_SPARSE_REL_TOL = 1e-4

def _relative_deviation(out: np.ndarray, reference: np.ndarray) -> float:
    """max |out - reference| as a fraction of the reference peak.

    The quantity :data:`FLOAT_SPARSE_REL_TOL` bounds; an all-zero
    reference with a non-zero deviation is infinitely off.
    """
    peak = float(np.abs(reference).max())
    dev = float(np.abs(np.asarray(out) - np.asarray(reference)).max())
    if peak:
        return dev / peak
    return 0.0 if dev == 0.0 else float("inf")


#: Per-layer N:M schedule of the mixed-format demo graph — what a
#: sensitivity-aware pruning run produces (coarser formats where the
#: layer tolerates them).  The stem stays dense (C=3 reduce dim divides
#: no supported block size); the format-selection benchmark compares
#: selecting these per layer against packing everything at 1:4.
MIXED_DEMO_FMTS: dict[str, NMFormat] = {
    "b0_conv1": FORMAT_1_8,
    "b0_conv2": FORMAT_1_8,
    "b1_conv1": FORMAT_1_8,
    "b1_conv2": FORMAT_1_16,
    "b1_down": FORMAT_1_8,
    "head": FORMAT_1_16,
}


@dataclass
class ThroughputResult:
    """Timing comparison between per-sample and batched execution.

    ``uncached_s`` times the seed executor's behaviour — every call
    re-derives shapes and re-prepares weights (plan compiled per call);
    ``per_sample_s`` times a warm one-at-a-time loop against a cached
    plan; ``batched_s`` times one batched call over the same samples.
    """

    graph_name: str
    mode: str
    batch: int
    uncached_s: float
    per_sample_s: float
    batched_s: float

    @property
    def speedup(self) -> float:
        """Batched speedup over the uncached per-sample loop."""
        return self.uncached_s / self.batched_s if self.batched_s else 0.0

    @property
    def warm_speedup(self) -> float:
        """Batched speedup over the warm (plan-cached) per-sample loop."""
        return self.per_sample_s / self.batched_s if self.batched_s else 0.0

    @property
    def uncached_throughput(self) -> float:
        """Samples/second of the seed-style uncached loop."""
        return self.batch / self.uncached_s if self.uncached_s else 0.0

    @property
    def per_sample_throughput(self) -> float:
        """Samples/second of the warm one-at-a-time loop."""
        return self.batch / self.per_sample_s if self.per_sample_s else 0.0

    @property
    def batched_throughput(self) -> float:
        """Samples/second of the single batched call."""
        return self.batch / self.batched_s if self.batched_s else 0.0


def resnet_style_graph(
    seed: int = 0,
    hw: int = 12,
    c0: int = 8,
    num_classes: int = 10,
    fmt: NMFormat | None = None,
    layer_fmts: dict[str, NMFormat] | None = None,
) -> Graph:
    """A small ResNet-style benchmark graph (residual CNN + pooling).

    With ``fmt`` set, every conv (and the head) whose reduce dimension
    is a multiple of ``fmt.m`` is magnitude-pruned to the N:M pattern —
    the pruned demo model the sparse-engine benchmark, demo server and
    CI smoke job run (layers the pattern cannot cover, e.g. the C=3
    stem, stay dense, so sparse plans exercise mixed graphs).
    ``layer_fmts`` overrides the format per layer name (see
    :data:`MIXED_DEMO_FMTS`), building the mixed-format demo the format
    selector is exercised on.
    """
    rng = make_rng(seed)

    def fmt_for(name: str, reduce_dim: int) -> NMFormat | None:
        f = (layer_fmts or {}).get(name, fmt)
        if f is not None and reduce_dim % f.m == 0:
            return f
        return None

    def he(name, k, fy, fx, c):
        std = np.sqrt(2.0 / (fy * fx * c))
        w = rng.normal(0, std, size=(k, fy, fx, c)).astype(np.float32)
        f = fmt_for(name, fy * fx * c)
        if f is not None:
            w = prune_conv_weights(w, f).astype(np.float32)
        return w

    suffix = "-mixed" if layer_fmts else f"-{fmt.name}" if fmt else ""
    g = Graph(f"resnet-style-bench{suffix}")
    x = g.add_input("input", (hw, hw, 3))
    x = g.add_conv2d("stem", x, he("stem", c0, 3, 3, 3), s=1, p=1)
    x = g.add_elementwise("stem_relu", "relu", x)
    # Plain residual block.
    identity = x
    x = g.add_conv2d("b0_conv1", x, he("b0_conv1", c0, 3, 3, c0), s=1, p=1)
    x = g.add_elementwise("b0_relu1", "relu", x)
    x = g.add_conv2d("b0_conv2", x, he("b0_conv2", c0, 3, 3, c0), s=1, p=1)
    x = g.add_add("b0_add", x, identity)
    x = g.add_elementwise("b0_relu2", "relu", x)
    # Stride-2 downsampling block with a 1x1 shortcut.
    identity = x
    x = g.add_conv2d("b1_conv1", x, he("b1_conv1", 2 * c0, 3, 3, c0), s=2, p=1)
    x = g.add_elementwise("b1_relu1", "relu", x)
    x = g.add_conv2d(
        "b1_conv2", x, he("b1_conv2", 2 * c0, 3, 3, 2 * c0), s=1, p=1
    )
    identity = g.add_conv2d(
        "b1_down", identity, he("b1_down", 2 * c0, 1, 1, c0), s=2, p=0
    )
    x = g.add_add("b1_add", x, identity)
    x = g.add_elementwise("b1_relu2", "relu", x)
    # size=3 / stride=2 pooling — the window geometry the legacy
    # executor got wrong — then the head.
    x = g.add_maxpool("pool", x, size=3, stride=2)
    x = g.add_global_avgpool("gap", x)
    head = rng.normal(0, 0.01, size=(num_classes, 2 * c0)).astype(np.float32)
    head_fmt = fmt_for("head", 2 * c0)
    if head_fmt is not None:
        head = prune_fc_weights(head, head_fmt).astype(np.float32)
    g.add_dense("head", x, head, bias=np.zeros(num_classes, dtype=np.float32))
    g.validate()
    return g


def _pruned_demo_graph(fmt: NMFormat, seed: int) -> Graph:
    """Pruned + quantised demo graph (the sparse measurements' subject)."""
    from repro.models.quantize import quantize_graph

    graph = resnet_style_graph(seed=seed, fmt=fmt)
    rng = make_rng(seed)
    calib = [
        rng.normal(size=(12, 12, 3)).astype(np.float32) for _ in range(4)
    ]
    quantize_graph(graph, calib)
    return graph


@contextmanager
def _pinned_sparse_method(graph: Graph, method: str | None):
    """Pin ``sparse_method`` on every conv/dense node for the duration.

    A caller-supplied graph must come back with its annotations
    untouched (the engine re-fingerprints them per compile); ``None``
    pins nothing and is a no-op.
    """
    restore: list[tuple] = []
    if method is not None:
        for node in graph:
            if node.op in ("conv2d", "dense"):
                restore.append((node, node.attrs.get("sparse_method")))
                node.attrs["sparse_method"] = method
    try:
        yield
    finally:
        for node, prev in restore:
            if prev is None:
                node.attrs.pop("sparse_method", None)
            else:
                node.attrs["sparse_method"] = prev


def measure_throughput(
    graph: Graph,
    batch: int = 32,
    mode: str = "float",
    repeats: int = 3,
    seed: int = 0,
    engine: InferenceEngine | None = None,
) -> ThroughputResult:
    """Time per-sample loops vs one batched call over ``batch`` samples.

    Three paths are measured: the seed executor's behaviour (plan
    compiled on every call, so shapes are re-derived and weights
    re-prepared per sample), a warm per-sample loop over a cached plan,
    and a single batched call.  Each path is timed ``repeats`` times
    and the best run is kept.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    engine = engine or InferenceEngine()
    plan = engine.compile(graph, mode)
    rng = make_rng(seed)
    xs = rng.normal(size=(batch, *plan.input_shape)).astype(np.float32)

    # Warm-up: compile, touch both code paths, fault pages in.
    engine.run(graph, xs[0], mode=mode)
    engine.run_batch(graph, xs, mode=mode)

    def uncached_loop() -> None:
        # verify=False: this path replicates the *seed* executor's
        # per-call preparation cost, which predates the static plan
        # verifier (whose per-compile cost test_analyze_overhead
        # measures separately).
        cold = InferenceEngine(verify=False)
        for x in xs:
            cold.run(graph, x, mode=mode)
            cold.invalidate(graph)

    uncached_s = min(_time(uncached_loop) for _ in range(repeats))
    per_sample_s = min(
        _time(lambda: [engine.run(graph, x, mode=mode) for x in xs])
        for _ in range(repeats)
    )
    batched_s = min(
        _time(lambda: engine.run_batch(graph, xs, mode=mode))
        for _ in range(repeats)
    )
    return ThroughputResult(
        graph_name=graph.name,
        mode=mode,
        batch=batch,
        uncached_s=uncached_s,
        per_sample_s=per_sample_s,
        batched_s=batched_s,
    )


@dataclass
class SparseThroughputResult:
    """Sparse-vs-dense plan comparison on one pruned graph.

    For int8 (``mode="int8"``) ``identical`` is the acceptance gate:
    the sparse plan's batched output must be bit-identical to the dense
    plan's (integer accumulation is exact, so decimation cannot change
    a single bit).  For float (``mode="float"``) the gate is
    ``within_tolerance``: gather layers accumulate in a different order
    than the dense GEMM, so the contract is ``max_rel_dev <=``
    :data:`FLOAT_SPARSE_REL_TOL` instead of bit-identity.  Weight bytes
    are compile-time accounting from
    :attr:`~repro.engine.plan.ExecutionPlan.kernel_choices`: for N:M
    layers the packed storage (values + packed offsets), for dense
    layers the int8 (or float32) matrix.
    """

    graph_name: str
    fmt_name: str
    batch: int
    dense_s: float
    sparse_s: float
    identical: bool
    sparse_weight_bytes: int
    dense_weight_bytes: int
    sparse_layers: int
    gather_layers: int
    mode: str = "int8"
    #: max |sparse - dense| as a fraction of the dense output peak.
    max_rel_dev: float = 0.0
    kernel_choices: dict[str, KernelChoice] = field(repr=False, default_factory=dict)
    #: The measured (pruned, quantised) graph — kept for independent
    #: re-verification of the packed weight accounting.
    graph: Graph | None = field(repr=False, default=None)
    #: Engine knob the sparse plan was compiled with ("sw"/"isa"/"auto").
    backend: str = "sw"
    #: Wall-clock of the SW-backend sparse plan over the same samples —
    #: equals ``sparse_s`` when ``backend == "sw"``; the isa-vs-sw
    #: baseline otherwise.
    sw_s: float = 0.0
    #: Whether the measured backend matched the SW backend's output
    #: under the mode's contract (bit-identity for int8, the documented
    #: tolerance for float).  Trivially True for ``backend == "sw"``.
    matches_sw: bool = True

    @property
    def dense_throughput(self) -> float:
        """Samples/second of the dense int8 plan."""
        return self.batch / self.dense_s if self.dense_s else 0.0

    @property
    def sparse_throughput(self) -> float:
        """Samples/second of the sparse int8 plan."""
        return self.batch / self.sparse_s if self.sparse_s else 0.0

    @property
    def speedup(self) -> float:
        """Sparse plan speedup over the dense plan (host wall-clock)."""
        return self.dense_s / self.sparse_s if self.sparse_s else 0.0

    @property
    def memory_reduction(self) -> float:
        """Fractional weight-storage reduction of the sparse plan."""
        if not self.dense_weight_bytes:
            return 0.0
        return 1.0 - self.sparse_weight_bytes / self.dense_weight_bytes

    @property
    def within_tolerance(self) -> bool:
        """The mode's correctness gate: bit-identity for int8, the
        documented relative tolerance for float."""
        if self.mode == "int8":
            return self.identical
        return self.max_rel_dev <= FLOAT_SPARSE_REL_TOL

    @property
    def sw_throughput(self) -> float:
        """Samples/second of the SW-backend sparse plan."""
        return self.batch / self.sw_s if self.sw_s else 0.0

    @property
    def speedup_vs_sw(self) -> float:
        """Measured-backend speedup over the SW sparse plan."""
        return self.sw_s / self.sparse_s if self.sparse_s else 0.0

    @property
    def backend_layers(self) -> dict[str, int]:
        """N:M layers per bound backend (from ``kernel_choices``).

        Counts only sparse-format layers — ``"dense"`` here means
        scatter-to-dense, not genuinely dense layers — so the values
        sum to ``sparse_layers``.
        """
        counts: dict[str, int] = {}
        for c in self.kernel_choices.values():
            if c.fmt is not None and c.backend is not None:
                counts[c.backend] = counts.get(c.backend, 0) + 1
        return counts


def measure_sparse_throughput(
    fmt: NMFormat,
    batch: int = 32,
    repeats: int = 3,
    seed: int = 0,
    graph: Graph | None = None,
    engine: InferenceEngine | None = None,
    force_method: str | None = None,
    mode: str = "int8",
    backend: str = "sw",
    act_skip: str = "off",
) -> SparseThroughputResult:
    """Compare the sparse and dense plans of a pruned graph.

    Builds (unless given) the pruned demo graph for ``fmt``, quantises
    it, compiles both plans of ``mode`` on one engine, verifies the
    mode's correctness contract (batched bit-identity for int8, the
    documented relative tolerance for float), and times both plans over
    the same ``batch`` samples (best of ``repeats``).  ``force_method``
    pins every N:M layer to one execution method ("gather" / "dense")
    instead of the cost model's per-layer choice — the CI gather gate
    uses it so the decimation path is exercised even where the model
    prefers dense.  ``backend`` compiles the sparse plan under that
    engine knob; for ``"isa"`` and ``"auto"`` the SW sparse plan is
    additionally compiled, cross-checked (``matches_sw``) and timed
    (``sw_s``) — the isa-vs-sw numbers ``BENCH_sparse_isa.json``
    reports.  ``act_skip`` opts the sparse plan into activation
    zero-skipping (the benchmark batch doubles as the density
    calibration batch for ``"auto"``); the mode's correctness contract
    gates the skipping plan against the *dense* plan, so the CI smoke
    proves skip-path bit-identity end to end.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if graph is None:
        graph = _pruned_demo_graph(fmt, seed)
    with _pinned_sparse_method(graph, force_method):
        engine = engine or InferenceEngine()
        dense_plan = engine.compile(graph, mode, sparse=False)
        rng = make_rng(seed + 1)
        xs = rng.normal(size=(batch, *dense_plan.input_shape)).astype(np.float32)
        if act_skip != "off":
            from repro.engine.calibrate import calibrate_act_density

            calibrate_act_density(graph, xs)
        sparse_plan = engine.compile(
            graph, mode, sparse=True, backend=backend, act_skip=act_skip
        )

        dense_out = engine.run_batch(graph, xs, mode=mode)
        sparse_out = engine.run_batch(
            graph, xs, mode=mode, sparse=True, backend=backend,
            act_skip=act_skip,
        )
        identical = bool(np.array_equal(dense_out, sparse_out))
        max_rel_dev = _relative_deviation(sparse_out, dense_out)

        dense_s = min(
            _time(lambda: engine.run_batch(graph, xs, mode=mode))
            for _ in range(repeats)
        )
        sparse_s = min(
            _time(
                lambda: engine.run_batch(
                    graph, xs, mode=mode, sparse=True, backend=backend,
                    act_skip=act_skip,
                )
            )
            for _ in range(repeats)
        )
        if backend == "sw":
            sw_s, matches_sw = sparse_s, True
        else:
            sw_out = engine.run_batch(graph, xs, mode=mode, sparse=True)
            if mode == "int8":
                matches_sw = bool(np.array_equal(sw_out, sparse_out))
            else:
                matches_sw = (
                    _relative_deviation(sparse_out, sw_out)
                    <= FLOAT_SPARSE_REL_TOL
                )
            sw_s = min(
                _time(lambda: engine.run_batch(graph, xs, mode=mode, sparse=True))
                for _ in range(repeats)
            )
    choices = sparse_plan.kernel_choices
    return SparseThroughputResult(
        graph_name=graph.name,
        fmt_name=fmt.name,
        batch=batch,
        dense_s=dense_s,
        sparse_s=sparse_s,
        identical=identical,
        sparse_weight_bytes=sparse_plan.weight_bytes(),
        dense_weight_bytes=sparse_plan.dense_weight_bytes(),
        sparse_layers=sum(1 for c in choices.values() if c.fmt is not None),
        gather_layers=sum(1 for c in choices.values() if c.method == "gather"),
        mode=mode,
        max_rel_dev=max_rel_dev,
        kernel_choices=dict(choices),
        graph=graph,
        backend=backend,
        sw_s=sw_s,
        matches_sw=matches_sw,
    )


@dataclass
class ActSkipSweepResult:
    """One density point of the activation zero-skipping sweep.

    The sweep knob is ``density`` — the fraction of input spatial rows
    left non-zero.  The measured model's convolutions are bias-free, so
    zeroed rows survive ReLU and propagate through the whole stack;
    ``measured_density`` reports what the calibration pass actually saw
    (mean over the skip-bound layers).  ``identical`` is a hard gate at
    *every* density: skipping only elides MACs whose inputs are exactly
    zero, so the skipping plan's int8 output must be bit-identical to
    the plain sparse plan's.
    """

    graph_name: str
    fmt_name: str
    batch: int
    #: Requested fraction of non-zero input rows (the sweep knob).
    density: float
    #: Mean calibrated activation density over the skip-bound layers.
    measured_density: float
    #: Wall-clock of the plain sparse plan (``act_skip="off"``).
    plain_s: float
    #: Wall-clock of the skipping sparse plan (``act_skip="force"``).
    skip_s: float
    identical: bool
    skip_layers: int
    gather_layers: int
    mode: str = "int8"
    backend: str = "isa"

    @property
    def plain_throughput(self) -> float:
        """Samples/second of the plain sparse plan."""
        return self.batch / self.plain_s if self.plain_s else 0.0

    @property
    def skip_throughput(self) -> float:
        """Samples/second of the zero-skipping sparse plan."""
        return self.batch / self.skip_s if self.skip_s else 0.0

    @property
    def speedup(self) -> float:
        """Skipping-plan speedup over the plain sparse plan."""
        return self.plain_s / self.skip_s if self.skip_s else 0.0


def measure_act_skip_sweep(
    densities: tuple[float, ...] = (1.0, 0.5, 0.1),
    batch: int = 8,
    repeats: int = 2,
    fmt: NMFormat | None = None,
    seed: int = 0,
    mode: str = "int8",
    backend: str = "isa",
) -> list[ActSkipSweepResult]:
    """Sweep activation density on a pruned ResNet18 and time skipping.

    Builds the N:M-pruned ``resnet18_cifar`` graph once (quantised for
    ``mode="int8"``), then for each requested density zeroes the
    bottom ``(1 - density)`` fraction of input rows, recalibrates the
    per-layer density estimates on that batch, and compares the plain
    sparse plan (``act_skip="off"``) against the zero-skipping plan
    (``act_skip="force"``): bit-identity first, then best-of-``repeats``
    wall-clock for both.  A fresh engine is compiled per density so the
    stamped :attr:`~repro.engine.plan.KernelChoice.act_density`
    estimates always reflect the batch being measured.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    from repro.engine.calibrate import calibrate_act_density
    from repro.models.quantize import quantize_graph
    from repro.models.resnet import resnet18_cifar

    fmt = fmt or FORMAT_1_8
    graph = resnet18_cifar(num_classes=10, fmt=fmt, seed=seed)
    rng = make_rng(seed + 1)
    in_shape = graph.nodes["input"].out_shape
    hw = in_shape[0]
    if mode == "int8":
        calib = [
            (rng.normal(size=in_shape) * 0.5).astype(
                np.float32
            )
            for _ in range(3)
        ]
        quantize_graph(graph, calib)

    results: list[ActSkipSweepResult] = []
    for density in densities:
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {density}")
        engine = InferenceEngine()
        xs = rng.normal(size=(batch, *in_shape)).astype(
            np.float32
        )
        zero_rows = int(round(hw * (1.0 - density)))
        if zero_rows:
            xs[:, hw - zero_rows :, :, :] = 0.0
        calibrate_act_density(graph, xs)
        skip_plan = engine.compile(
            graph, mode, sparse=True, backend=backend, act_skip="force"
        )
        choices = skip_plan.kernel_choices
        skip_densities = [
            c.act_density for c in choices.values() if c.act_skip
        ]

        plain_out = engine.run_batch(
            graph, xs, mode=mode, sparse=True, backend=backend
        )
        skip_out = engine.run_batch(
            graph, xs, mode=mode, sparse=True, backend=backend,
            act_skip="force",
        )
        plain_s = min(
            _time(
                lambda: engine.run_batch(
                    graph, xs, mode=mode, sparse=True, backend=backend
                )
            )
            for _ in range(repeats)
        )
        skip_s = min(
            _time(
                lambda: engine.run_batch(
                    graph, xs, mode=mode, sparse=True, backend=backend,
                    act_skip="force",
                )
            )
            for _ in range(repeats)
        )
        results.append(
            ActSkipSweepResult(
                graph_name=graph.name,
                fmt_name=fmt.name,
                batch=batch,
                density=density,
                measured_density=(
                    float(np.mean(skip_densities)) if skip_densities else 1.0
                ),
                plain_s=plain_s,
                skip_s=skip_s,
                identical=bool(np.array_equal(plain_out, skip_out)),
                skip_layers=sum(1 for c in choices.values() if c.act_skip),
                gather_layers=sum(
                    1 for c in choices.values() if c.method == "gather"
                ),
                mode=mode,
                backend=backend,
            )
        )
    return results


@dataclass
class FormatSelectionResult:
    """Cost-model format selection vs fixed-1:4 packing on one graph.

    ``fixed_weight_bytes`` is the uniform-format baseline: every
    pattern-eligible layer packed at 1:4, the paper's least-compressive
    deployment.  ``selected_weight_bytes`` is the plan the selector
    compiled under ``budget``; the acceptance gate is that it is
    strictly smaller.  At ``budget=0`` the selection is lossless, so
    ``identical`` must hold for int8 (``max_rel_dev`` within the float
    tolerance for float); a positive budget re-prunes layers, so only
    ``losses_within_budget`` and finite outputs are gated.
    """

    graph_name: str
    mode: str
    budget: float
    batch: int
    dense_s: float
    selected_s: float
    dense_weight_bytes: int
    fixed_weight_bytes: int
    selected_weight_bytes: int
    identical: bool
    max_rel_dev: float
    losses_within_budget: bool
    finite: bool
    kernel_choices: dict[str, KernelChoice] = field(repr=False, default_factory=dict)
    graph: Graph | None = field(repr=False, default=None)

    @property
    def selected_formats(self) -> dict[str, str | None]:
        """Layer -> chosen format name (None for dense bindings)."""
        return {name: c.fmt for name, c in self.kernel_choices.items()}

    @property
    def reduction_vs_fixed(self) -> float:
        """Fractional weight-byte reduction vs the fixed-1:4 plan."""
        if not self.fixed_weight_bytes:
            return 0.0
        return 1.0 - self.selected_weight_bytes / self.fixed_weight_bytes

    @property
    def within_tolerance(self) -> bool:
        """Whether the selected plan matches the dense plan under the
        mode's contract: bit-identity for int8, the documented relative
        tolerance for float.  Only meaningful as a gate at budget 0 —
        a lossy selection legitimately changes the network."""
        if self.mode == "int8":
            return self.identical
        return self.max_rel_dev <= FLOAT_SPARSE_REL_TOL

    @property
    def speedup(self) -> float:
        """Selected-plan speedup over the dense plan (host wall-clock)."""
        return self.dense_s / self.selected_s if self.selected_s else 0.0

    @property
    def throughput(self) -> float:
        """Samples/second of the selected plan."""
        return self.batch / self.selected_s if self.selected_s else 0.0


def measure_format_selection(
    budget: float = 0.0,
    batch: int = 16,
    repeats: int = 2,
    seed: int = 0,
    mode: str = "int8",
    graph: Graph | None = None,
    engine: InferenceEngine | None = None,
    base_fmt: NMFormat | None = None,
) -> FormatSelectionResult:
    """Run per-layer format selection against a fixed-1:4 baseline.

    Builds (unless given) the **mixed-format** demo graph — layers
    pruned per :data:`MIXED_DEMO_FMTS` — then compiles three plans on
    one engine: the dense reference, the fixed-1:4 sparse baseline
    (every eligible layer annotated ``sparse_fmt=1:4``, the coarsest
    supported packing every pruned layer satisfies), and the
    format-selected plan under ``budget``.  The baseline annotations
    are restored before returning, so a caller-supplied graph comes
    back untouched.  ``base_fmt`` switches the demo to the *uniformly*
    pruned graph of that format — the shape the lossy budget sweep
    runs on (a 1:4-pruned layer can be re-pruned to 1:8/1:16 when the
    energy budget allows, which the already-coarse mixed demo rarely
    can).
    """
    from repro.compiler.patterns import detect_format
    from repro.models.quantize import quantize_graph

    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if graph is None:
        if base_fmt is not None:
            graph = resnet_style_graph(seed=seed, fmt=base_fmt)
        else:
            graph = resnet_style_graph(seed=seed, layer_fmts=MIXED_DEMO_FMTS)
        rng = make_rng(seed)
        calib = [
            rng.normal(size=(12, 12, 3)).astype(np.float32) for _ in range(4)
        ]
        quantize_graph(graph, calib)
    engine = engine or InferenceEngine()

    # Fixed-1:4 baseline: annotate, compile, restore.
    restore: list[tuple] = []
    try:
        for node in graph:
            if node.op not in ("conv2d", "dense"):
                continue
            w = node.attrs.get("weights_q") if mode == "int8" else None
            w = np.asarray(w if w is not None else node.attrs["weights"])
            if detect_format(w.reshape(w.shape[0], -1)) is None:
                continue  # stem and friends: no pattern to pack
            restore.append((node, "sparse_fmt" in node.attrs, node.attrs.get("sparse_fmt")))
            node.attrs["sparse_fmt"] = FORMAT_1_4
        fixed_plan = engine.compile(graph, mode, sparse=True)
        fixed_weight_bytes = fixed_plan.weight_bytes()
    finally:
        for node, had, prev in restore:
            if had:
                node.attrs["sparse_fmt"] = prev
            else:
                node.attrs.pop("sparse_fmt", None)

    dense_plan = engine.compile(graph, mode, sparse=False)
    selected_plan = engine.compile(
        graph, mode, sparse=True, select_fmt=True, accuracy_budget=budget
    )
    rng = make_rng(seed + 1)
    xs = rng.normal(size=(batch, *dense_plan.input_shape)).astype(np.float32)
    dense_out = engine.run_batch(graph, xs, mode=mode)
    selected_out = engine.run_batch(
        graph, xs, mode=mode, sparse=True, select_fmt=True, accuracy_budget=budget
    )
    identical = bool(np.array_equal(dense_out, selected_out))
    max_rel_dev = _relative_deviation(selected_out, dense_out)

    dense_s = min(
        _time(lambda: engine.run_batch(graph, xs, mode=mode))
        for _ in range(repeats)
    )
    selected_s = min(
        _time(
            lambda: engine.run_batch(
                graph,
                xs,
                mode=mode,
                sparse=True,
                select_fmt=True,
                accuracy_budget=budget,
            )
        )
        for _ in range(repeats)
    )
    choices = selected_plan.kernel_choices
    return FormatSelectionResult(
        graph_name=graph.name,
        mode=mode,
        budget=budget,
        batch=batch,
        dense_s=dense_s,
        selected_s=selected_s,
        dense_weight_bytes=selected_plan.dense_weight_bytes(),
        fixed_weight_bytes=fixed_weight_bytes,
        selected_weight_bytes=selected_plan.weight_bytes(),
        identical=identical,
        max_rel_dev=max_rel_dev,
        losses_within_budget=all(
            c.loss is None or c.loss <= budget + 1e-9 for c in choices.values()
        ),
        finite=bool(np.isfinite(selected_out).all()),
        kernel_choices=dict(choices),
        graph=graph,
    )


@dataclass
class KChunkAutotuneResult:
    """Measured gather-chunk sweep on one compiled sparse plan.

    ``timings_s`` maps each candidate chunk size to its best wall-clock
    over the batch; ``best`` is the fastest candidate.  The result is
    *advisory*: chunking only groups whole output channels, so
    ``identical`` asserting that every candidate produced bit-identical
    outputs is a hard invariant, not a tolerance.
    """

    graph_name: str
    fmt_name: str
    mode: str
    batch: int
    timings_s: dict[int, float]
    best: int
    identical: bool
    #: What k_chunk() resolved to before the sweep (restored after).
    previous: int

    @property
    def best_s(self) -> float:
        return self.timings_s[self.best]

    @property
    def speedup_vs_default(self) -> float:
        """Best-candidate speedup over the pre-sweep chunk size (1.0
        when the previous size was not among the candidates)."""
        prev = self.timings_s.get(self.previous)
        if prev is None or not self.best_s:
            return 1.0
        return prev / self.best_s


def autotune_k_chunk(
    candidates: tuple[int, ...] = (8, 16, 32, 64, 128),
    batch: int = 16,
    repeats: int = 2,
    seed: int = 0,
    fmt: NMFormat | None = None,
    mode: str = "int8",
    graph: Graph | None = None,
    engine: InferenceEngine | None = None,
) -> KChunkAutotuneResult:
    """Measure a small ``_K_CHUNK`` sweep on the compiled sparse plan.

    Builds (unless given) the pruned demo graph, pins every N:M layer
    to the gather method (the chunk size only affects the decimation
    kernels), then times the same compiled plan under each candidate
    chunk size — the knob is read per call, so no recompilation happens
    between candidates.  The process-wide override is restored before
    returning; applying the winner is the caller's decision
    (``repro engine --autotune-k-chunk`` prints it and calls
    :func:`repro.kernels.conv_sparse.set_k_chunk`).  Outputs are
    cross-checked bit-identical across all candidates — the sweep can
    never change numerics, only wall-clock.
    """
    from repro.kernels import conv_sparse

    if not candidates:
        raise ValueError("need at least one candidate chunk size")
    fmt = fmt or FORMAT_1_8
    if graph is None:
        graph = _pruned_demo_graph(fmt, seed)
    engine = engine or InferenceEngine()
    prev_override = conv_sparse._k_chunk_override
    previous = conv_sparse.k_chunk()
    try:
        with _pinned_sparse_method(graph, "gather"):
            plan = engine.compile(graph, mode, sparse=True)
            rng = make_rng(seed + 1)
            xs = rng.normal(size=(batch, *plan.input_shape)).astype(np.float32)
            timings: dict[int, float] = {}
            reference: np.ndarray | None = None
            identical = True
            for chunk in candidates:
                conv_sparse.set_k_chunk(chunk)
                out = engine.run_batch(graph, xs, mode=mode, sparse=True)
                if reference is None:
                    reference = out
                elif not np.array_equal(out, reference):
                    identical = False
                timings[chunk] = min(
                    _time(
                        lambda: engine.run_batch(
                            graph, xs, mode=mode, sparse=True
                        )
                    )
                    for _ in range(repeats)
                )
    finally:
        conv_sparse.set_k_chunk(prev_override)
    best = min(timings, key=lambda c: timings[c])
    return KChunkAutotuneResult(
        graph_name=graph.name,
        fmt_name=fmt.name,
        mode=mode,
        batch=batch,
        timings_s=timings,
        best=best,
        identical=identical,
        previous=previous,
    )


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
