"""The batched inference engine: plan caching + execution entry points.

:class:`InferenceEngine` compiles each ``(graph, mode)`` pair once (via
:func:`repro.engine.plan.compile_plan`) and caches the resulting
:class:`~repro.engine.plan.ExecutionPlan`, so repeated inference —
calibration sweeps, accuracy evaluations, serving loops — pays the
shape-resolution and weight-preparation cost a single time.  Plans are
held in a :class:`weakref.WeakKeyDictionary`, so dropping the last
reference to a graph also drops its compiled plans.

``run`` accepts either a single sample shaped exactly as the graph's
input node declares, or a batch with one extra leading ``B`` axis;
``run_batch`` is the strict batched entry point.  Single-sample calls
execute as a batch of one, which keeps both paths on the same kernels
(and therefore bit-identical — see :mod:`repro.engine.plan`).
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.plan import (
    ACT_SKIP_KNOBS,
    BACKEND_KNOBS,
    MODES,
    ExecutionPlan,
    compile_plan,
)

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.compiler
    from repro.compiler.ir import Graph

__all__ = ["InferenceEngine", "get_default_engine"]


def _quant_signature(graph: "Graph") -> tuple:
    """Identity of the graph's quantisation metadata.

    An int8 plan bakes in ``weights_q``/scales at compile time; if
    :func:`repro.models.quantize.quantize_graph` attaches (or replaces)
    that metadata later, the signature changes and the cached int8 plan
    must be recompiled — on *every* engine, not just the default one.
    ``quantize_graph`` stamps a monotonically increasing
    ``_quant_version`` on the graph for exactly this comparison (object
    ids are unusable: freed weight arrays get their addresses reused).
    Metadata attached by hand, without a version stamp, needs an
    explicit :meth:`InferenceEngine.invalidate`.
    """
    return (
        getattr(graph, "_quant_version", None),
        tuple(node.name for node in graph if "weights_q" in node.attrs),
    )


def _sparse_signature(graph: "Graph") -> tuple:
    """Identity of the graph's sparse-routing annotations.

    A sparse plan additionally bakes in each conv/dense node's
    ``sparse_fmt`` / ``sparse_method`` overrides — and, for
    activation-skipping plans, the calibration ``act_density``
    estimate — at compile time; changing any of them must refresh the
    cached sparse plan (the dense plans never read them).
    """

    def fmt_key(node):
        if "sparse_fmt" not in node.attrs:
            return None  # unannotated: format auto-detected at compile
        fmt = node.attrs["sparse_fmt"]
        return fmt.name if fmt is not None else "dense"

    return tuple(
        (
            node.name,
            fmt_key(node),
            node.attrs.get("sparse_method"),
            node.attrs.get("act_density"),
        )
        for node in graph
        if node.op in ("conv2d", "dense")
    )


def _plan_key(
    mode: str,
    sparse: bool,
    select_fmt: bool = False,
    accuracy_budget: float = 0.0,
    backend: str = "sw",
    accum_dtype: str | None = None,
    act_skip: str = "off",
) -> str:
    """Cache key for a plan, e.g. ``"int8+sparse"`` or
    ``"float+sparse+select@0.1"`` (format-selected plans cache per
    budget: a different budget can pick different formats).  Sparse
    plans additionally cache per execution backend
    (``"int8+sparse+isa"``) — the knob changes the bound kernels and
    the recorded weight accounting, so backends must never share a
    cache slot — float sparse plans per accumulation width
    (``"float+sparse+acc64"``), and activation-skipping plans per knob
    value (``"int8+sparse+askip-force"``): the bound step closures and
    the recorded skip metadata differ, so ``off``/``auto``/``force``
    must never alias."""
    key = mode
    if sparse:
        key += "+sparse"
        if select_fmt:
            key += f"+select@{accuracy_budget:g}"
        if backend != "sw":
            key += f"+{backend}"
        if accum_dtype == "float64":
            key += "+acc64"
        if act_skip != "off":
            key += f"+askip-{act_skip}"
    return key


class InferenceEngine:
    """Compile-once, run-batched graph execution with a plan cache."""

    def __init__(self, trace=None, verify: bool = True) -> None:
        self._plans: "weakref.WeakKeyDictionary[Graph, dict[str, tuple[ExecutionPlan, tuple]]]" = (
            weakref.WeakKeyDictionary()
        )
        # Guards the check-then-compile below: concurrent callers (the
        # serving layer runs plans from a worker pool) racing on the
        # same (graph, mode) must compile once, not once per caller.
        # compile_plan holds the GIL throughout anyway, so serialising
        # it costs no real parallelism.
        self._lock = threading.Lock()
        #: Number of actual plan compilations (cache misses).
        self.compile_count = 0
        #: Optional :class:`repro.trace.Tracer`: plan-compile spans,
        #: cache hit/miss instants, and per-layer kernel spans on every
        #: execute.  ``None`` (the default) keeps the hot path exactly
        #: as untraced — the attribute is read once per run and the
        #: traced branches are never entered.
        self.tracer = trace
        #: Engine-level default for :meth:`compile`'s ``verify``
        #: parameter.  ``False`` opts the whole engine out of static
        #: plan verification — the seed-behaviour baseline the
        #: throughput benchmarks measure; serving engines keep the
        #: verified default.
        self.verify = verify
        self._cache_hits = 0
        self._compile_time_s = 0.0
        self._per_key_stats: dict[str, dict] = {}

    # -- plan management ------------------------------------------------

    def compile(
        self,
        graph: Graph,
        mode: str = "float",
        sparse: bool = False,
        select_fmt: bool = False,
        accuracy_budget: float = 0.0,
        backend: str = "sw",
        accum_dtype: str | None = None,
        act_skip: str = "off",
        verify: bool | None = None,
    ) -> ExecutionPlan:
        """Return the cached plan for ``(graph, mode, sparse, selection,
        backend)``.

        ``sparse=True`` compiles a sparsity-aware plan: N:M-annotated
        (or detected) layers are packed and bound to the batched sparse
        kernels — quantised weights in int8 mode, float32 weights in
        float mode; it is cached separately from the dense plan of the
        same mode.  ``select_fmt=True`` additionally runs the per-layer
        format search under ``accuracy_budget`` and caches per budget.
        ``backend`` selects the sparse execution engine (``"sw"`` /
        ``"isa"`` / ``"auto"``) and caches per knob — the bound kernels
        and weight layouts differ, only the int8 numerics are
        guaranteed identical.  ``accum_dtype="float64"`` caches the
        widened float gather accumulation separately, as does each
        ``act_skip`` knob value (``"off"`` / ``"auto"`` / ``"force"`` —
        activation zero-skipping changes the bound step closures, never
        the results).
        A cached int8 plan is transparently recompiled when the graph's
        quantisation metadata changed since it was built (the float
        plan never reads that metadata and is unaffected); a cached
        sparse plan additionally refreshes when a node's ``sparse_fmt``
        / ``sparse_method`` override changed.

        ``verify=True`` requires a statically verified plan (see
        :func:`repro.engine.plan.compile_plan`): cold compiles run the
        verifier in-line, and a cached plan compiled with
        ``verify=False`` is re-verified before it is returned.  ``None``
        (the default) defers to the engine-level default (``True``
        unless the engine was built with ``verify=False``).
        """
        if verify is None:
            verify = self.verify
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}")
        # Validate before the cache lookup: _plan_key ignores select_fmt
        # for dense plans, so an invalid (sparse=False, select_fmt=True)
        # combination would otherwise silently return a cached dense
        # plan instead of raising like the cold compile does.
        if select_fmt and not sparse:
            raise ValueError("select_fmt=True requires sparse=True")
        if accuracy_budget < 0:
            raise ValueError(
                f"accuracy_budget must be >= 0, got {accuracy_budget}"
            )
        if backend not in BACKEND_KNOBS:
            raise ValueError(
                f"unknown backend {backend!r} "
                f"(expected one of {BACKEND_KNOBS})"
            )
        if accum_dtype is not None:
            # Normalise AND validate before the key is built: "float64",
            # np.float64 and dtype('float64') must land in one cache
            # slot, and an invalid value must raise even when a plan for
            # the would-be key is already cached (compile_plan only runs
            # on a miss).
            accum_dtype = np.dtype(accum_dtype).name
            if accum_dtype == "float32":
                accum_dtype = None
            elif accum_dtype != "float64":
                raise ValueError(
                    f"accum_dtype must be float32 or float64, "
                    f"got {accum_dtype!r}"
                )
            elif not (sparse and mode == "float"):
                raise ValueError(
                    "accum_dtype='float64' only applies to float sparse "
                    "plans (int8 accumulation is already exact)"
                )
        if act_skip not in ACT_SKIP_KNOBS:
            raise ValueError(
                f"unknown act_skip {act_skip!r} "
                f"(expected one of {ACT_SKIP_KNOBS})"
            )
        if act_skip != "off" and not sparse:
            raise ValueError(
                "act_skip requires sparse=True (only the gather-bound "
                "sparse kernels skip zero activation rows)"
            )
        key = _plan_key(
            mode,
            sparse,
            select_fmt,
            accuracy_budget,
            backend,
            accum_dtype,
            act_skip,
        )
        with self._lock:
            per_graph = self._plans.get(graph)
            if per_graph is None:
                per_graph = {}
                self._plans[graph] = per_graph
            sig = _quant_signature(graph) if mode == "int8" else ()
            if sparse:
                sig = (sig, _sparse_signature(graph))
            entry = per_graph.get(key)
            if entry is not None and entry[1] != sig:
                entry = None  # quantisation metadata changed: stale plan
            tracer = self.tracer
            if entry is None:
                started = time.perf_counter()
                if tracer is not None and tracer.enabled:
                    with tracer.span(
                        "compile_plan",
                        cat="engine",
                        args={"graph": graph.name, "key": key},
                    ):
                        plan = compile_plan(
                            graph,
                            mode,
                            sparse=sparse,
                            select_fmt=select_fmt,
                            accuracy_budget=accuracy_budget,
                            backend=backend,
                            accum_dtype=accum_dtype,
                            act_skip=act_skip,
                            verify=verify,
                        )
                else:
                    plan = compile_plan(
                        graph,
                        mode,
                        sparse=sparse,
                        select_fmt=select_fmt,
                        accuracy_budget=accuracy_budget,
                        backend=backend,
                        accum_dtype=accum_dtype,
                        act_skip=act_skip,
                        verify=verify,
                    )
                elapsed = time.perf_counter() - started
                entry = (plan, sig)
                per_graph[key] = entry
                self.compile_count += 1
                self._compile_time_s += elapsed
                stats = self._key_stats(key)
                stats["misses"] += 1
                stats["compile_time_s"] += elapsed
                if tracer is not None and tracer.enabled:
                    tracer.instant(
                        "plan_cache_miss",
                        cat="engine",
                        args={"graph": graph.name, "key": key},
                    )
            else:
                self._cache_hits += 1
                self._key_stats(key)["hits"] += 1
                if tracer is not None and tracer.enabled:
                    tracer.instant(
                        "plan_cache_hit",
                        cat="engine",
                        args={"graph": graph.name, "key": key},
                    )
            plan = entry[0]
            if verify and not plan.verified:
                # Cache hit on a plan compiled with verify=False: the
                # verified contract still holds for this caller.
                from repro.analyze.diagnostics import (
                    PlanVerificationError,
                    errors_only,
                )
                from repro.analyze.plancheck import verify_plan

                problems = errors_only(verify_plan(plan, graph))
                if problems:
                    raise PlanVerificationError(problems)
                plan.verified = True
            return plan

    def _key_stats(self, key: str) -> dict:
        """Per-plan-key counters (caller holds ``self._lock``)."""
        stats = self._per_key_stats.get(key)
        if stats is None:
            stats = {"hits": 0, "misses": 0, "compile_time_s": 0.0}
            self._per_key_stats[key] = stats
        return stats

    def cache_stats(self) -> dict:
        """Plan-cache counters: hits, misses (= :attr:`compile_count`),
        cumulative compile seconds, and the same split per plan key.
        Surfaced by the serving layer's TCP ``describe`` response."""
        with self._lock:
            return {
                "hits": self._cache_hits,
                "misses": self.compile_count,
                "compile_time_s": self._compile_time_s,
                "per_key": {
                    key: dict(stats)
                    for key, stats in sorted(self._per_key_stats.items())
                },
            }

    def invalidate(self, graph: Graph) -> None:
        """Drop cached plans for ``graph`` (call after mutating weights)."""
        with self._lock:
            self._plans.pop(graph, None)

    def cached_plans(self, graph: Graph) -> tuple[str, ...]:
        """Plan keys compiled for ``graph`` — ``"<mode>"`` for dense
        plans, ``"<mode>+sparse"`` for sparsity-aware ones."""
        with self._lock:
            return tuple(self._plans.get(graph, ()))

    # -- execution ------------------------------------------------------

    def run(
        self,
        graph: Graph,
        x: np.ndarray,
        mode: str = "float",
        return_acts: bool = False,
        sparse: bool = False,
        select_fmt: bool = False,
        accuracy_budget: float = 0.0,
        backend: str = "sw",
        accum_dtype: str | None = None,
        act_skip: str = "off",
    ):
        """Run a forward pass over a single sample or a batch.

        A single sample (shape exactly as the input node declares) comes
        back unbatched; an ``(B, ...)`` input comes back with the
        leading batch axis intact, as do the activations when
        ``return_acts`` is set.  ``sparse=True`` routes N:M layers
        through the sparse kernels (bit-identical output in int8, to
        rounding in float); ``select_fmt`` / ``accuracy_budget`` enable
        per-layer format selection; ``backend`` picks the sparse
        execution engine, ``accum_dtype`` the float gather
        accumulation width, and ``act_skip`` the activation
        zero-skipping knob (see :meth:`compile`).
        """
        plan = self.compile(
            graph,
            mode,
            sparse=sparse,
            select_fmt=select_fmt,
            accuracy_budget=accuracy_budget,
            backend=backend,
            accum_dtype=accum_dtype,
            act_skip=act_skip,
        )
        x = np.asarray(x)
        declared = plan.input_shape
        if x.ndim == len(declared) and tuple(x.shape) == declared:
            batched = False
            xb = x[None]
        elif x.ndim == len(declared) + 1 and tuple(x.shape[1:]) == declared:
            batched = True
            xb = x
        else:
            raise ValueError(
                f"input shape {x.shape} != declared {declared}"
            )
        if return_acts:
            out, acts = plan.execute(xb, return_acts=True, tracer=self.tracer)
            if not batched:
                out = out[0]
                acts = {name: a[0] for name, a in acts.items()}
            return out, acts
        out = plan.execute(xb, tracer=self.tracer)
        return out if batched else out[0]

    def run_batch(
        self,
        graph: Graph,
        batch: np.ndarray,
        mode: str = "float",
        return_acts: bool = False,
        sparse: bool = False,
        select_fmt: bool = False,
        accuracy_budget: float = 0.0,
        backend: str = "sw",
        accum_dtype: str | None = None,
        act_skip: str = "off",
    ):
        """Run a strict ``(B, *input_shape)`` batch through the plan."""
        plan = self.compile(
            graph,
            mode,
            sparse=sparse,
            select_fmt=select_fmt,
            accuracy_budget=accuracy_budget,
            backend=backend,
            accum_dtype=accum_dtype,
            act_skip=act_skip,
        )
        batch = np.asarray(batch)
        if tuple(batch.shape[1:]) != plan.input_shape or batch.ndim != len(
            plan.input_shape
        ) + 1:
            raise ValueError(
                f"input shape {batch.shape} != declared "
                f"(B, {', '.join(map(str, plan.input_shape))})"
            )
        return plan.execute(batch, return_acts=return_acts, tracer=self.tracer)


_DEFAULT_ENGINE = InferenceEngine()


def get_default_engine() -> InferenceEngine:
    """The process-wide engine behind :func:`repro.compiler.executor.execute_graph`."""
    return _DEFAULT_ENGINE
