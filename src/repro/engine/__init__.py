"""Batched, plan-compiled inference engine.

The production-facing execution layer of the reproduction: a
:class:`~repro.compiler.ir.Graph` is compiled once into an
:class:`ExecutionPlan` (pre-validated topology, pre-reshaped and — in
int8 mode — pre-widened weights, per-node kernel callables bound at
compile time) and then serves arbitrarily many ``(B, ...)`` batches.
:class:`InferenceEngine` caches plans per
``(graph, mode, sparse, selection)``; :func:`get_default_engine` is the
process-wide instance behind the historical
:func:`repro.compiler.executor.execute_graph` entry point.  Sparse
plans (``sparse=True``) route N:M layers through the batched sparse
kernels — quantised weights in int8 mode (bit-identical to the dense
plans), float32 weights in float mode (dense-identical to rounding) —
and ``select_fmt=True`` lets the cost model pick each layer's N:M
format under an accuracy budget.

See ``docs/engine.md``, ``docs/sparse_engine.md``, and
``docs/sparsity.md`` for the full API walkthrough.
"""

from repro.engine.calibrate import calibrate_act_density
from repro.engine.engine import InferenceEngine, get_default_engine
from repro.engine.plan import (
    ACT_SKIP_KNOBS,
    MODES,
    ExecutionPlan,
    KernelChoice,
    PlanStep,
    compile_plan,
    quantize_activations,
)

__all__ = [
    "ACT_SKIP_KNOBS",
    "MODES",
    "calibrate_act_density",
    "ExecutionPlan",
    "KernelChoice",
    "PlanStep",
    "compile_plan",
    "quantize_activations",
    "InferenceEngine",
    "get_default_engine",
]
