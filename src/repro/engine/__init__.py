"""Batched, plan-compiled inference engine.

The production-facing execution layer of the reproduction: a
:class:`~repro.compiler.ir.Graph` is compiled once into an
:class:`ExecutionPlan` (pre-validated topology, pre-reshaped and — in
int8 mode — pre-widened weights, per-node kernel callables bound at
compile time) and then serves arbitrarily many ``(B, ...)`` batches.
:class:`InferenceEngine` caches plans per ``(graph, mode, sparse)``;
:func:`get_default_engine` is the process-wide instance behind the
historical :func:`repro.compiler.executor.execute_graph` entry point.
Sparse plans (``sparse=True``) route N:M-annotated int8 layers through
the batched sparse kernels, bit-identical to the dense plans.

See ``docs/engine.md`` and ``docs/sparse_engine.md`` for the full API
walkthrough.
"""

from repro.engine.engine import InferenceEngine, get_default_engine
from repro.engine.plan import (
    MODES,
    ExecutionPlan,
    KernelChoice,
    PlanStep,
    compile_plan,
    quantize_activations,
)

__all__ = [
    "MODES",
    "ExecutionPlan",
    "KernelChoice",
    "PlanStep",
    "compile_plan",
    "quantize_activations",
    "InferenceEngine",
    "get_default_engine",
]
