"""Ahead-of-time graph compilation into batched execution plans.

:func:`compile_plan` walks a validated :class:`~repro.compiler.ir.Graph`
once and produces an :class:`ExecutionPlan`: a flat list of
:class:`PlanStep` objects whose kernel callables are *pre-bound* — layer
geometry is resolved into :class:`~repro.kernels.shapes.ConvShape` /
:class:`~repro.kernels.shapes.FcShape` descriptors, weight tensors are
reshaped (and, in int8 mode, widened to the int32 accumulator dtype)
exactly once, and per-node dispatch happens at compile time instead of
on every forward pass.

Every step consumes and produces *batched* activations with a leading
``B`` axis: conv runs a batched im2col followed by a stacked matmul,
dense / attention / layernorm broadcast over the batch, and pooling
gathers ``size``-sized windows at ``stride``-sized steps (windows are
clipped at the feature-map edge; max ignores the clipped taps, average
divides by the valid count).

Matmuls deliberately use :func:`numpy.matmul` with stacked operands —
``(B, P, R) @ (R, K)`` — rather than folding the batch into the rows.
Each batch slice then goes through a GEMM of exactly the same shape as
a single-sample run, which keeps batched execution *bit-identical* to
per-sample execution (same reduction order per slice) while still
amortising the Python/im2col overhead across the batch.

Numeric modes mirror the historical executor: ``"float"`` is a float32
forward pass; ``"int8"`` quantises the input of each conv/dense node
carrying quantisation metadata, accumulates in int32 (the same maths
the microcoded kernels perform), and dequantises.  Both paths quantise
activations to **int8** — the accumulator sees values in [-128, 127]
regardless of op kind.

Sparse plans (``sparse=True``) additionally route conv/dense nodes
whose weights satisfy an N:M pattern through the batched sparse
kernels.  Every conv/dense node is bound through the **kernel-backend
layer** (:mod:`repro.kernels.backend`): the weights are packed once at
compile time into the chosen backend's layout — the logical N:M
values+offsets for ``sparse-sw``, the duplicated-offset /
channel-interleaved ISA streams for ``sparse-isa``, the (scattered)
dense matrix for the dense GEMM — and the backend's batched core is
bound into the step callable.  The plan-level ``backend`` knob selects
the engine: ``"sw"`` keeps the PR-3 behaviour (cost model arbitrates
gather vs scatter-to-dense), ``"isa"`` pins the ISA-extension
emulation kernels, ``"auto"`` lets the cost model rank
sw / isa / dense per layer
(:func:`repro.kernels.backend.select_backend`); the decision lands in
:attr:`ExecutionPlan.kernel_choices` including the winning backend.
In int8 mode the *quantised* weights are packed and integer
accumulation is exact, so sparse plans of **every** backend are
**bit-identical** to dense plans on the same graph.  In float mode the
float32 weights are packed (float-valued
:class:`~repro.sparsity.nm.NMSparseMatrix`): scatter-to-dense layers
stay bit-identical, gather layers accumulate only the NNZ products and
match the dense GEMM to float rounding — the tolerance contract is
documented in ``docs/sparsity.md`` (``accum_dtype="float64"`` widens
the gather accumulation for tighter contracts).

With ``select_fmt=True`` a sparse plan additionally runs the cost
model's per-layer *format* search
(:func:`repro.kernels.registry.select_format`): each unannotated layer
is deployed in the most compressive 1:M format whose weight-energy loss
fits ``accuracy_budget`` (0.0 = lossless, i.e. only patterns the
weights already satisfy), re-pruning at pack time when the budget
allows a lossy win.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.kernels.backend import (
    BACKEND_KNOBS,
    get_backend,
    intern_layout,
    select_backend,
)
from repro.kernels.cost_model import act_skip_density_cutoff
from repro.kernels.im2col import im2col_active_rows, im2col_batch
from repro.kernels.registry import (
    dense_variant_for,
    select_format,
    select_sparse_method,
    variant_for,
)
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import NMFormat, NMSparseMatrix, SUPPORTED_FORMATS
from repro.sparsity.pruning import nm_prune

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.compiler
    from repro.compiler.ir import Graph, Node

__all__ = [
    "MODES",
    "ACT_SKIP_KNOBS",
    "BACKEND_KNOBS",
    "KernelChoice",
    "PlanStep",
    "ExecutionPlan",
    "compile_plan",
    "quantize_activations",
]

#: Numeric modes a plan can be compiled for.
MODES = ("float", "int8")

#: Values the activation zero-skipping knob accepts: never skip, let the
#: cost model gate per layer on the calibration density, or enable the
#: skip path on every gather-bound layer (the test/benchmark setting).
ACT_SKIP_KNOBS = ("off", "auto", "force")


def quantize_activations(x: np.ndarray, scale: float) -> np.ndarray:
    """Symmetric int8 activation quantisation: ``round(x / scale)``.

    Returns int8 — the dtype both conv and dense kernels feed to their
    int32 accumulators (values are clipped to [-128, 127] first, so the
    narrowing is exact).
    """
    q = np.rint(x / scale)
    return np.clip(q, -128, 127).astype(np.int8)


def _gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2 / np.pi) * (x + 0.044715 * x**3)))


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    e = np.exp(x - x.max(axis=axis, keepdims=True))
    return e / e.sum(axis=axis, keepdims=True)


@dataclass(frozen=True)
class KernelChoice:
    """Compile-time kernel decision for one conv/dense node.

    ``method`` names the bound execution path: ``"gather"`` (batched
    decimation over hoisted gather indices), ``"dense"`` (plain GEMM —
    either a genuinely dense layer, or a sparse layer whose packed
    weights were scattered back to dense at compile time because the
    cost model preferred the dense kernel).  ``weight_bytes`` is the
    layer's deployable weight storage — for N:M layers, values + packed
    offsets (:meth:`~repro.sparsity.nm.NMSparseMatrix.total_bytes`),
    *regardless* of method: scatter-to-dense is a host-side execution
    strategy, the packed layout is still what a deployment ships.
    ``dense_bytes`` is what the dense binding in the same mode would
    store, so ``1 - weight_bytes / dense_bytes`` is the layer's memory
    reduction.  ``est_cycles`` / ``dense_cycles`` are the MCU cost
    model's latencies behind the decision (None when unmodelled).
    ``loss`` is set by format selection (``select_fmt=True``): the
    relative weight-energy the chosen format cost this layer — 0.0 for
    a lossless choice, positive when the layer was re-pruned at pack
    time; None when selection did not run for the node.  ``backend``
    names the :mod:`repro.kernels.backend` object that bound the layer:
    ``"sparse-sw"`` or ``"sparse-isa"`` for gather-bound N:M layers,
    ``"dense"`` for dense bindings (including scatter-to-dense sparse
    layers).  ``act_skip`` is True when the layer was bound with the
    activation zero-skipping fast path (gather-bound layers only, under
    the plan-level ``act_skip`` knob); ``act_density`` then records the
    calibration-batch row-density estimate the decision was based on
    (1.0 — every row active — when the graph carries no calibration),
    and is None exactly when ``act_skip`` is False (the
    ``plan-act-skip`` verifier rule).
    """

    kind: str
    fmt: str | None
    method: str
    variant: str | None
    weight_bytes: int
    dense_bytes: int
    est_cycles: float | None = None
    dense_cycles: float | None = None
    loss: float | None = None
    backend: str | None = None
    act_skip: bool = False
    act_density: float | None = None


@dataclass(frozen=True)
class PlanKnob:
    """Declaration of one plan-affecting compile knob.

    The registry below (:data:`PLAN_KNOBS`) is the contract the plan
    verifier's cache-key check enforces
    (:func:`repro.analyze.plancheck.check_cache_keys`): every
    ``compile_plan`` parameter must be declared here, every
    *key-relevant* knob must supply a probe pair (two complete
    ``_plan_key`` argument dicts differing only in this knob) that the
    check proves maps to two distinct cache keys, and every
    *key-neutral* knob must say why two settings may legally share a
    cached plan.  Adding a compile knob without extending the cache key
    now fails ``repro check`` instead of silently serving a stale plan
    (the historical ``+acc64`` bug class).
    """

    name: str
    key_relevant: bool
    reason: str = ""
    probes: tuple[dict, dict] | None = None


#: Every plan-affecting knob, declared.  Probe dicts are complete
#: ``_plan_key`` call kwargs; the pair differs only in the knob itself.
PLAN_KNOBS: tuple[PlanKnob, ...] = (
    PlanKnob(
        "mode",
        key_relevant=True,
        probes=(
            {"mode": "float", "sparse": False},
            {"mode": "int8", "sparse": False},
        ),
    ),
    PlanKnob(
        "sparse",
        key_relevant=True,
        probes=(
            {"mode": "int8", "sparse": False},
            {"mode": "int8", "sparse": True},
        ),
    ),
    PlanKnob(
        "select_fmt",
        key_relevant=True,
        probes=(
            {"mode": "int8", "sparse": True, "select_fmt": False},
            {"mode": "int8", "sparse": True, "select_fmt": True},
        ),
    ),
    PlanKnob(
        "accuracy_budget",
        key_relevant=True,
        probes=(
            {
                "mode": "int8",
                "sparse": True,
                "select_fmt": True,
                "accuracy_budget": 0.0,
            },
            {
                "mode": "int8",
                "sparse": True,
                "select_fmt": True,
                "accuracy_budget": 0.25,
            },
        ),
    ),
    PlanKnob(
        "backend",
        key_relevant=True,
        probes=(
            {"mode": "int8", "sparse": True, "backend": "sw"},
            {"mode": "int8", "sparse": True, "backend": "isa"},
        ),
    ),
    PlanKnob(
        "accum_dtype",
        key_relevant=True,
        probes=(
            {"mode": "float", "sparse": True, "accum_dtype": None},
            {"mode": "float", "sparse": True, "accum_dtype": "float64"},
        ),
    ),
    PlanKnob(
        "act_skip",
        key_relevant=True,
        probes=(
            {"mode": "int8", "sparse": True, "act_skip": "off"},
            {"mode": "int8", "sparse": True, "act_skip": "force"},
        ),
    ),
    PlanKnob(
        "k_chunk",
        key_relevant=False,
        reason=(
            "advisory gather chunk size: results are bit-identical "
            "across chunk sizes (CI's autotune gate proves it), and it "
            "is a process-wide env knob, not a compile_plan parameter"
        ),
    ),
)


@dataclass(frozen=True)
class PlanStep:
    """One pre-bound operation of a compiled plan.

    ``run`` takes the batched input activations (one array per graph
    input, each shaped ``(B, ...)``) and returns the batched output.
    ``release`` names activations whose last consumer is this step —
    they are freed right after it runs (unless the caller asked for
    the full activation dict).
    """

    name: str
    op: str
    inputs: tuple[str, ...]
    run: Callable[..., np.ndarray]
    release: tuple[str, ...] = ()


@dataclass
class ExecutionPlan:
    """A graph compiled for one numeric mode, ready for batched runs."""

    graph_name: str
    mode: str
    input_name: str
    input_shape: tuple[int, ...]
    output: str
    #: True when the plan was compiled with sparse kernel routing.
    sparse: bool = False
    #: True when the plan ran per-layer N:M format selection.
    select_fmt: bool = False
    #: Per-layer weight-energy loss budget of the format selection.
    accuracy_budget: float = 0.0
    #: Engine knob of the sparse bindings: "sw", "isa" or "auto".
    backend: str = "sw"
    #: Widened float gather accumulation ("float64"), or None (float32).
    accum_dtype: str | None = None
    #: Activation zero-skipping knob: "off", "auto" or "force".
    act_skip: str = "off"
    steps: list[PlanStep] = field(default_factory=list)
    #: Resolved geometry per conv node (introspection / cost hooks).
    conv_shapes: dict[str, ConvShape] = field(default_factory=dict)
    #: Resolved geometry per dense node.
    fc_shapes: dict[str, FcShape] = field(default_factory=dict)
    #: Compile-time kernel decision per conv/dense node.
    kernel_choices: dict[str, KernelChoice] = field(default_factory=dict)
    #: Lazily built per-step trace attribution (see _step_trace_args).
    _trace_args: dict[str, dict] | None = field(
        default=None, repr=False, compare=False
    )
    #: True once the static verifier has passed over this plan.
    verified: bool = field(default=False, compare=False)
    #: Packed layout per conv/dense node, recorded at bind time for
    #: the verifier's offset-bounds and byte-accounting checks.
    _layouts: dict[str, object] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.steps)

    def weight_bytes(self) -> int:
        """Deployable weight storage summed over conv/dense layers."""
        return sum(c.weight_bytes for c in self.kernel_choices.values())

    def dense_weight_bytes(self) -> int:
        """What the same layers would store under all-dense bindings."""
        return sum(c.dense_bytes for c in self.kernel_choices.values())

    def execute(
        self, batch: np.ndarray, return_acts: bool = False, tracer=None
    ) -> np.ndarray | tuple[np.ndarray, dict[str, np.ndarray]]:
        """Run the plan over a ``(B, *input_shape)`` batch.

        Unless ``return_acts`` is set, intermediate activations are
        freed as soon as their last consumer has run, so peak memory
        tracks the live set rather than the whole network's depth.

        ``tracer`` (a :class:`repro.trace.Tracer`) records one span
        per step — conv/dense steps carry their compile-time kernel
        attribution (backend, N:M format, k-chunk, weight bytes) as
        span args.  The ``tracer=None`` default takes the exact
        untraced loop below: the hot path allocates nothing for
        tracing when it is disabled.
        """
        batch = np.asarray(batch)
        if tuple(batch.shape[1:]) != self.input_shape:
            raise ValueError(
                f"input shape {batch.shape[1:]} != declared {self.input_shape}"
            )
        if tracer is not None and tracer.enabled:
            return self._execute_traced(batch, return_acts, tracer)
        acts: dict[str, np.ndarray] = {
            self.input_name: batch.astype(np.float32)
        }
        for step in self.steps:
            srcs = (acts[name] for name in step.inputs)
            acts[step.name] = step.run(*srcs).astype(np.float32, copy=False)
            if not return_acts:
                for name in step.release:
                    del acts[name]
        if self.act_skip != "off":
            _ACT_STATE.stash = None  # drop the last fused-ReLU mask ref
        if return_acts:
            return acts[self.output], acts
        return acts[self.output]

    def _execute_traced(
        self, batch: np.ndarray, return_acts: bool, tracer
    ) -> np.ndarray | tuple[np.ndarray, dict[str, np.ndarray]]:
        """The traced twin of :meth:`execute`'s step loop."""
        targs = self._step_trace_args()
        acts: dict[str, np.ndarray] = {
            self.input_name: batch.astype(np.float32)
        }
        # The skip closures reach the tracer through the thread-local
        # side channel: kernel cores only see activation arrays, so this
        # is how their act_mask spans / density counters attach to the
        # run without widening every step signature.
        _ACT_STATE.tracer = tracer
        try:
            # Callers dispatch here only with a live tracer (see execute).
            # repro: allow(tracer-guard)
            with tracer.span(
                f"plan:{self.graph_name}",
                cat="plan",
                args={
                    "mode": self.mode,
                    "batch": int(batch.shape[0]),
                    "sparse": self.sparse,
                    "backend": self.backend,
                    "act_skip": self.act_skip,
                },
            ):
                for step in self.steps:
                    srcs = (acts[name] for name in step.inputs)
                    cat = "kernel" if step.name in self.kernel_choices else "op"
                    # repro: allow(tracer-guard) — same caller guarantee
                    with tracer.span(
                        step.name, cat=cat, args=targs[step.name]
                    ):
                        out = step.run(*srcs)
                    acts[step.name] = out.astype(np.float32, copy=False)
                    if not return_acts:
                        for name in step.release:
                            del acts[name]
        finally:
            _ACT_STATE.tracer = None
            if self.act_skip != "off":
                _ACT_STATE.stash = None
        if return_acts:
            return acts[self.output], acts
        return acts[self.output]

    def _step_trace_args(self) -> dict[str, dict]:
        """Per-step span args, built once per plan on first traced run.

        Conv/dense steps carry the full kernel attribution recorded at
        compile time (:class:`KernelChoice`) plus the resolved layer
        geometry; other ops carry just their op name.  The gather
        chunk size is resolved here (not per execute) — it is a
        process-wide knob read at bind time, so the first traced run's
        value is the honest one.
        """
        if self._trace_args is None:
            from repro.kernels.conv_sparse import k_chunk

            args: dict[str, dict] = {}
            for step in self.steps:
                a: dict = {"op": step.op}
                choice = self.kernel_choices.get(step.name)
                if choice is not None:
                    shape = self.conv_shapes.get(
                        step.name
                    ) or self.fc_shapes.get(step.name)
                    a.update(
                        kind=choice.kind,
                        shape=_shape_str(shape),
                        backend=choice.backend,
                        method=choice.method,
                        format=choice.fmt or "dense",
                        variant=choice.variant,
                        weight_bytes=choice.weight_bytes,
                        dense_bytes=choice.dense_bytes,
                    )
                    if choice.method == "gather":
                        a["k_chunk"] = k_chunk()
                    if choice.act_skip:
                        a["act_skip"] = True
                        a["act_density_est"] = choice.act_density
                args[step.name] = a
            self._trace_args = args
        return self._trace_args


def _shape_str(shape: ConvShape | FcShape | None) -> str | None:
    """Compact human-readable layer geometry for trace span args."""
    if isinstance(shape, ConvShape):
        return (
            f"{shape.iy}x{shape.ix}x{shape.c}->{shape.k}"
            f"@{shape.fy}x{shape.fx}s{shape.s}p{shape.p}"
        )
    if isinstance(shape, FcShape):
        return f"{shape.tokens}x{shape.c}->{shape.k}"
    return None


# -- activation zero-skipping runtime ------------------------------------
#
# Per-thread execution state of the skip path: the fused-ReLU mask
# stash (the last ReLU output plus its channel-reduced zero map,
# matched by array identity at the consumer) and the current tracer of
# a traced run (so the act_mask spans emitted inside step closures
# attach to the right trace without widening the core signatures).
# Thread-local, not plan state: one plan may serve concurrent requests.

_ACT_STATE = threading.local()


def _stashed_act_map(x: np.ndarray) -> np.ndarray | None:
    """The fused-ReLU zero map of ``x``, if ``x`` is the stashed output."""
    stash = getattr(_ACT_STATE, "stash", None)
    if stash is not None and stash[0] is x:
        return stash[1]
    return None


def _act_skip_cutoff(kind, shape, fmt, variant) -> float:
    """Break-even density for a bound layer; 0.0 when unmodelled."""
    try:
        return act_skip_density_cutoff(kind, shape, fmt, variant)
    except ValueError:
        # Formats outside the MCU cost model never auto-engage; the
        # "force" knob bypasses the cutoff entirely.
        return 0.0


def _run_masked_core(core, cols, row_mask, source, name, forced, cutoff):
    """Dispatch one skip-bound layer: re-check density, trace, run.

    The runtime fallback the compile-time decision promises: a batch
    that arrives denser than the layer's cutoff takes the plain core
    (``row_mask=None``) — skipping is purely a fast path, so this
    cannot change a result, only reclaim the bookkeeping.
    """
    density = float(row_mask.mean())
    skipped = forced or density <= cutoff
    tracer = getattr(_ACT_STATE, "tracer", None)
    if tracer is not None and tracer.enabled:
        with tracer.span(
            f"act_mask:{name}",
            cat="act_skip",
            args={
                "density": round(density, 4),
                "skipped": skipped,
                "source": source,
            },
        ):
            tracer.counter("act_density", {name: round(density, 4)})
    return core(cols, row_mask if skipped else None)


# -- per-op binding ------------------------------------------------------

_DENSE_BACKEND = get_backend("dense")


def _resolve_sparse_format(
    node: Node,
    kind: str,
    shape: ConvShape | FcShape,
    mode: str,
    plan: ExecutionPlan,
) -> tuple[NMSparseMatrix | None, float | None]:
    """Resolve one conv/dense node's packed sparse weights, if any.

    Returns ``(packed, loss)`` — the compile-time packed weights plus
    the format-selection loss — or ``(None, None)`` for a dense
    binding.  int8 plans pack the *quantised* weights (nodes without
    int8 metadata stay dense: there is nothing int8 to pack); float
    plans pack the float32 weights.  Format resolution order: an
    explicit ``sparse_fmt`` annotation wins (None forces the layer
    dense), then the plan's format selection (``select_fmt=True``),
    then auto-detection of the most compressive satisfied pattern.
    """
    if not plan.sparse:
        return None, None
    int8_path = mode == "int8" and "weights_q" in node.attrs
    if mode == "int8" and not int8_path:
        return None, None
    if int8_path:
        w = np.asarray(node.attrs["weights_q"])
        dtype, value_bytes = np.int8, 1
    else:
        w = np.asarray(node.attrs["weights"], dtype=np.float32)
        dtype, value_bytes = np.float32, 4
    wmat = w.reshape(w.shape[0], -1)
    loss: float | None = None
    if "sparse_fmt" in node.attrs:
        fmt = node.attrs["sparse_fmt"]
    elif plan.select_fmt:
        sel = select_format(
            kind,
            shape,
            wmat,
            budget=plan.accuracy_budget,
            value_bytes=value_bytes,
        )
        fmt = sel.fmt
        if fmt is not None:
            loss = sel.loss
            if sel.loss > 0.0:
                # Lossy selection: re-prune at pack time.  The plan owns
                # the pruned copy; the graph's weights are untouched.
                wmat = nm_prune(wmat, fmt)
    else:
        # Lazy import: repro.compiler pulls in the executor, which
        # imports this module back.
        from repro.compiler.patterns import detect_format

        fmt = detect_format(wmat)
    if fmt is None:
        return None, None
    return NMSparseMatrix.from_dense(wmat, fmt, dtype=dtype), loss


def _dense_variant_name(kind: str, shape: ConvShape | FcShape) -> str | None:
    variant = dense_variant_for(kind, shape)
    return variant.name if variant is not None else None


def _choose_sparse_binding(
    node: Node,
    kind: str,
    shape: ConvShape | FcShape,
    packed: NMSparseMatrix,
    loss: float | None,
    plan: ExecutionPlan,
):
    """Backend + method decision for one N:M layer.

    Returns ``(choice, backend, layout)``: the recorded
    :class:`KernelChoice`, the :mod:`repro.kernels.backend` object that
    binds the layer, and its packed :class:`~repro.kernels.backend.
    PackedLayout`.  The plan's ``backend`` knob steers the decision:

    - ``"sw"`` — the PR-3 behaviour: the cost model arbitrates the SW
      decimation kernel against scatter-to-dense
      (:func:`repro.kernels.registry.select_sparse_method`);
    - ``"isa"`` — pin the ISA-extension emulation (falling back to the
      SW arbitration only where no ISA kernel exists: odd-K FC layers,
      formats outside the paper's set);
    - ``"auto"`` — rank sparse-isa / sparse-sw / dense per layer by
      modelled cycles (:func:`repro.kernels.backend.select_backend`).

    A ``node.attrs["sparse_method"]`` override still pins the execution
    *method* in every mode: ``"dense"`` forces the compile-time
    scatter, ``"gather"`` forces a decimation backend (the knob decides
    which one).
    """
    fmt = packed.fmt
    forced = node.attrs.get("sparse_method")
    if forced is not None and forced not in ("gather", "dense"):
        raise ValueError(
            f"unknown sparse_method override {forced!r} "
            "(expected 'gather' or 'dense')"
        )
    sw = get_backend("sparse-sw")
    isa = get_backend("sparse-isa")
    variant: str | None
    if fmt.name not in SUPPORTED_FORMATS:
        # The MCU cost model only covers the paper's formats (1:4/1:8/
        # 1:16); an explicitly forced other format — general N, or an
        # unmodelled M — still runs, via the SW gather.
        method = forced or "gather"
        backend = _DENSE_BACKEND if method == "dense" else sw
        variant, est_cycles, dense_cycles = None, None, None
    elif plan.backend == "isa" and isa.supports(kind, shape, fmt):
        method = forced or "gather"
        dense_cycles = _DENSE_BACKEND.cost(kind, shape, None)
        if method == "gather":
            backend = isa
            variant = variant_for(kind, "sparse-isa", fmt).name
            est_cycles = isa.cost(kind, shape, fmt)
        else:
            backend = _DENSE_BACKEND
            variant = _dense_variant_name(kind, shape)
            est_cycles = dense_cycles
    elif plan.backend == "auto":
        dense_cycles = _DENSE_BACKEND.cost(kind, shape, None)
        if forced == "dense":
            method, backend = "dense", _DENSE_BACKEND
            variant, est_cycles = _dense_variant_name(kind, shape), dense_cycles
        else:
            allow = (
                ("sparse-isa", "sparse-sw")
                if forced == "gather"
                else ("sparse-isa", "sparse-sw", "dense")
            )
            sel = select_backend(kind, shape, fmt, allow=allow)
            backend = get_backend(sel.backend)
            est_cycles = sel.cycles
            if sel.backend == "dense":
                method, variant = "dense", _dense_variant_name(kind, shape)
            else:
                method = "gather"
                variant = variant_for(kind, sel.backend, fmt).name
    else:  # "sw", or "isa" on a geometry the ISA kernels cannot serve
        sel = select_sparse_method(kind, shape, fmt)
        method = forced or sel.method
        dense_cycles = sel.dense_cycles
        if method == "gather":
            backend, variant = sw, sel.sparse_variant
            est_cycles = sel.sparse_cycles
        else:
            backend, variant = _DENSE_BACKEND, sel.dense_variant
            est_cycles = sel.dense_cycles
    layout = (
        _DENSE_BACKEND.pack(packed)
        if backend is _DENSE_BACKEND
        else backend.pack(packed, None, kind)
    )
    choice = KernelChoice(
        kind,
        fmt.name,
        method,
        variant,
        layout.weight_bytes,
        packed.dense_bytes(),
        est_cycles,
        dense_cycles,
        loss,
        backend.name,
    )
    return choice, backend, layout


def _bind_core(
    node: Node,
    kind: str,
    shape: ConvShape | FcShape,
    mode: str,
    plan: ExecutionPlan,
):
    """Resolve one conv/dense node into ``(core, choice, skip)``.

    ``core`` is the backend-bound batched accumulator callable — it
    takes the ``(B, P, R)`` activation rows (int8 for the int8 path,
    float32 otherwise) and returns ``(B, P, K)`` accumulators.  Every
    binding, dense included, goes through a backend's pack/bind pair;
    the surrounding quantise/im2col/requant scaffolding stays in the
    per-op wrappers below.

    ``skip`` is None, or ``(forced, cutoff)`` when the layer was bound
    with activation zero-skipping: the plan-level knob engaged (always
    under ``"force"``, cost-model-gated on the node's calibration
    density under ``"auto"``) on a gather-bound layer.  The wrappers
    then route the batch through the masked core with the runtime
    density re-check.
    """
    int8_path = mode == "int8" and "weights_q" in node.attrs
    out_dtype = np.int32 if int8_path else np.float32
    packed, loss = _resolve_sparse_format(node, kind, shape, mode, plan)
    if packed is None:
        w = np.asarray(
            node.attrs["weights_q"] if int8_path else node.attrs["weights"]
        )
        layout = _DENSE_BACKEND.pack(w.reshape(w.shape[0], -1))
        # Under sharded serving the active store moves the packed
        # storage into shared memory; otherwise this is the identity.
        layout = intern_layout(f"{node.name}/{layout.layout}", layout)
        plan._layouts[node.name] = layout
        return (
            _DENSE_BACKEND.bind(layout, out_dtype),
            _dense_choice(kind, shape, node, mode),
            None,
        )
    choice, backend, layout = _choose_sparse_binding(
        node, kind, shape, packed, loss, plan
    )
    layout = intern_layout(f"{node.name}/{layout.layout}", layout)
    plan._layouts[node.name] = layout
    accum = (
        np.dtype(np.float64)
        if plan.accum_dtype == "float64" and not int8_path
        else None
    )
    skip = None
    if plan.act_skip != "off" and choice.method == "gather":
        est_density = float(node.attrs.get("act_density", 1.0))
        if not 0.0 <= est_density <= 1.0:
            raise ValueError(
                f"{node.name}: act_density must be in [0, 1], got "
                f"{est_density!r}"
            )
        cutoff = _act_skip_cutoff(kind, shape, packed.fmt, backend.name)
        forced = plan.act_skip == "force"
        if forced or est_density <= cutoff:
            choice = replace(
                choice, act_skip=True, act_density=est_density
            )
            skip = (forced, cutoff)
    return backend.bind(layout, out_dtype, accum), choice, skip


def _dense_choice(
    kind: str, shape: ConvShape | FcShape, node: Node, mode: str
) -> KernelChoice:
    """Introspection record for a dense-bound conv/dense node."""
    w = np.asarray(node.attrs["weights"])
    n_weights = int(w.size)
    int8_path = mode == "int8" and "weights_q" in node.attrs
    weight_bytes = n_weights if int8_path else 4 * n_weights
    variant = dense_variant_for(kind, shape)
    cycles = variant.cycles(shape).total if variant is not None else None
    return KernelChoice(
        kind,
        None,
        "dense",
        variant.name if variant is not None else None,
        weight_bytes,
        weight_bytes,
        cycles,
        cycles,
        backend="dense",
    )


def _conv_shape(node: Node, in_shape: tuple[int, ...]) -> ConvShape:
    w = node.attrs["weights"]
    return ConvShape(
        iy=in_shape[0],
        ix=in_shape[1],
        c=w.shape[3],
        k=w.shape[0],
        fy=w.shape[1],
        fx=w.shape[2],
        s=node.attrs["s"],
        p=node.attrs["p"],
    )


def _bind_conv(
    node: Node, in_shape: tuple[int, ...], mode: str, plan: ExecutionPlan
):
    shape = _conv_shape(node, in_shape)
    bias = node.attrs.get("bias")
    oy, ox, k = shape.oy, shape.ox, shape.k
    # Backend routing: pack once at compile time, validate the pattern
    # loudly, and record the format / method / backend decisions.  The
    # core sees raw int8 (or float32) im2col rows and widens chunk-wise
    # (gather backends) or once up front (the dense GEMM) — both orders
    # produce identical accumulators.
    core, choice, skip = _bind_core(node, "conv", shape, mode, plan)
    int8_path = mode == "int8" and "weights_q" in node.attrs

    if skip is not None:
        forced, cutoff = skip
        name = node.name

        def masked(x: np.ndarray, cols: np.ndarray) -> np.ndarray:
            # The fused-ReLU spatial map (one pass over FY*FX bools per
            # row) beats rescanning the (B, P, R) im2col rows; a
            # producer other than ReLU (pool, add) falls back to the
            # rescan.  A float-zero position quantises to 0, so the
            # float-domain map is a safe (conservative) mask for the
            # quantised cols too.
            act_map = _stashed_act_map(x)
            if act_map is not None and act_map.shape == (
                x.shape[0],
                shape.iy,
                shape.ix,
            ):
                row_mask = im2col_active_rows(act_map, shape)
                source = "fused-relu"
            else:
                row_mask, source = cols.any(axis=2), "rescan"
            return _run_masked_core(
                core, cols, row_mask, source, name, forced, cutoff
            )

    else:

        def masked(x: np.ndarray, cols: np.ndarray) -> np.ndarray:
            return core(cols)

    if int8_path:
        a_scale = float(node.attrs["act_scale"])
        deq = a_scale * float(node.attrs["w_scale"])

        def run(x: np.ndarray) -> np.ndarray:
            xq = quantize_activations(x, a_scale)
            cols = im2col_batch(xq, shape)
            acc = masked(x, cols)  # (B, OY*OX, K) int32
            out = acc.astype(np.float64) * deq
            if bias is not None:
                out = out + bias
            return out.reshape(x.shape[0], oy, ox, k)

    else:

        def run(x: np.ndarray) -> np.ndarray:
            cols = im2col_batch(x, shape)
            out = masked(x, cols)  # (B, OY*OX, K) float32
            if bias is not None:
                out = out + bias
            return out.reshape(x.shape[0], oy, ox, k)

    return shape, run, choice


def _bind_dense(
    node: Node, in_shape: tuple[int, ...], mode: str, plan: ExecutionPlan
):
    k, c = node.attrs["weights"].shape
    tokens = int(np.prod(in_shape[:-1])) if len(in_shape) > 1 else 1
    fc_shape = FcShape(c=c, k=k, tokens=tokens)
    bias = node.attrs.get("bias")
    # A vector input (C,) is lifted to one "token" so every batch slice
    # runs the same (T, C) @ (C, K) GEMM as a single-sample call.
    vector_in = len(in_shape) == 1
    core, choice, skip = _bind_core(node, "fc", fc_shape, mode, plan)
    int8_path = mode == "int8" and "weights_q" in node.attrs

    if skip is not None:
        forced, cutoff = skip
        name = node.name

        def masked(x: np.ndarray, toks: np.ndarray) -> np.ndarray:
            # The fused-ReLU map is the token mask directly when the
            # token reshape preserves the channel axis; otherwise the
            # tokens are rescanned (C bools per token).
            act_map = _stashed_act_map(x)
            if act_map is not None and x.shape[-1] == c:
                row_mask = act_map.reshape(act_map.shape[0], -1)
                source = "fused-relu"
            else:
                row_mask, source = toks.any(axis=2), "rescan"
            return _run_masked_core(
                core, toks, row_mask, source, name, forced, cutoff
            )

    else:

        def masked(x: np.ndarray, toks: np.ndarray) -> np.ndarray:
            return core(toks)

    if int8_path:
        a_scale = float(node.attrs["act_scale"])
        deq = a_scale * float(node.attrs["w_scale"])

        def run(x: np.ndarray) -> np.ndarray:
            xq = quantize_activations(x, a_scale)
            if vector_in:
                xq = xq[:, None, :]
            toks = xq.reshape(xq.shape[0], -1, c)
            acc = masked(x, toks)
            out = acc.astype(np.float64).reshape(*xq.shape[:-1], k) * deq
            if vector_in:
                out = out[:, 0]
            if bias is not None:
                out = out + bias
            return out

    else:

        def run(x: np.ndarray) -> np.ndarray:
            orig = x
            if vector_in:
                x = x[:, None, :]
            toks = x.reshape(x.shape[0], -1, c)
            out = masked(orig, toks).reshape(*x.shape[:-1], k)
            if vector_in:
                out = out[:, 0]
            if bias is not None:
                out = out + bias
            return out

    return fc_shape, run, choice


def _bind_pool(node: Node, in_shape: tuple[int, ...]):
    """Window pooling: ``size``-sized windows at ``stride``-sized steps.

    The legacy executor pooled with a ``stride``-sized window, silently
    ignoring ``size``; here the window extent is driven by ``size`` and
    only the step by ``stride``.  Windows that overrun the feature map
    are clipped: max-pool ignores the out-of-bounds taps, avg-pool
    divides by the number of valid taps.
    """
    size, stride = node.attrs["size"], node.attrs["stride"]
    iy, ix, _ = in_shape
    oy, ox = iy // stride, ix // stride  # matches the IR's out_shape
    ry = np.arange(oy)[:, None] * stride + np.arange(size)  # (OY, size)
    rx = np.arange(ox)[:, None] * stride + np.arange(size)  # (OX, size)
    valid = (ry < iy)[:, None, :, None] & (rx < ix)[None, :, None, :]
    iy_idx = np.minimum(ry, iy - 1)[:, None, :, None]
    ix_idx = np.minimum(rx, ix - 1)[None, :, None, :]
    all_valid = bool(valid.all())
    mask = valid[None, ..., None]  # broadcast over batch and channels
    counts = valid.sum(axis=(2, 3)).astype(np.float32)[..., None]
    is_max = node.op == "maxpool"

    def run(x: np.ndarray) -> np.ndarray:
        win = x[:, iy_idx, ix_idx, :]  # (B, OY, OX, size, size, C)
        if is_max:
            if not all_valid:
                win = np.where(mask, win, np.float32(-np.inf))
            return win.max(axis=(3, 4))
        if all_valid:
            return win.mean(axis=(3, 4))
        return np.where(mask, win, np.float32(0)).sum(axis=(3, 4)) / counts

    return run


def _bind_attention(node: Node, in_shape: tuple[int, ...]):
    t, d = in_shape
    heads = node.attrs["heads"]
    hd = d // heads
    sqrt_hd = np.sqrt(hd)
    w_t = {
        key: np.ascontiguousarray(node.attrs[key].T.astype(np.float32))
        for key in ("wq", "wk", "wv", "wo")
    }

    def run(x: np.ndarray) -> np.ndarray:
        b = x.shape[0]

        def split(m: np.ndarray) -> np.ndarray:
            return m.reshape(b, t, heads, hd).transpose(0, 2, 1, 3)

        qh = split(np.matmul(x, w_t["wq"]))
        kh = split(np.matmul(x, w_t["wk"]))
        vh = split(np.matmul(x, w_t["wv"]))
        scores = np.matmul(qh, kh.transpose(0, 1, 3, 2)) / sqrt_hd
        attn = _softmax(scores, axis=-1)
        ctx = np.matmul(attn, vh).transpose(0, 2, 1, 3).reshape(b, t, d)
        return np.matmul(ctx, w_t["wo"])

    return run


def _bind_step(
    node: Node, in_shape: tuple[int, ...], mode: str, plan: ExecutionPlan
) -> Callable[..., np.ndarray]:
    """Resolve one node into its batched kernel callable."""
    if node.op == "conv2d":
        shape, run, choice = _bind_conv(node, in_shape, mode, plan)
        plan.conv_shapes[node.name] = shape
        plan.kernel_choices[node.name] = choice
        return run
    if node.op == "dense":
        fc_shape, run, choice = _bind_dense(node, in_shape, mode, plan)
        plan.fc_shapes[node.name] = fc_shape
        plan.kernel_choices[node.name] = choice
        return run
    if node.op == "relu":
        if plan.act_skip != "off":

            def relu_fused(x: np.ndarray) -> np.ndarray:
                # Fused mask extraction: the zero map falls out of the
                # same pass that materialises the clipped activations,
                # so a downstream skip layer never rescans them (the
                # regression the act_mask span's "source" attests).
                y = np.maximum(x, np.float32(0))
                if y.ndim >= 2:
                    _ACT_STATE.stash = (y, y.any(axis=-1))
                return y

            return relu_fused
        return lambda x: np.maximum(x, np.float32(0))
    if node.op == "gelu":
        return _gelu
    if node.op == "add":
        return lambda a, b: a + b
    if node.op in ("maxpool", "avgpool"):
        return _bind_pool(node, in_shape)
    if node.op == "global_avgpool":
        return lambda x: x.mean(axis=(1, 2))
    if node.op == "layernorm":
        gamma, beta = node.attrs["gamma"], node.attrs["beta"]

        def layernorm(x: np.ndarray) -> np.ndarray:
            mu = x.mean(axis=-1, keepdims=True)
            var = x.var(axis=-1, keepdims=True)
            return (x - mu) / np.sqrt(var + 1e-5) * gamma + beta

        return layernorm
    if node.op == "attention":
        return _bind_attention(node, in_shape)
    if node.op == "flatten":
        return lambda x: x.reshape(x.shape[0], -1)
    if node.op == "tokens":
        t, c = in_shape[0] * in_shape[1], in_shape[2]
        return lambda x: x.reshape(x.shape[0], t, c)
    if node.op == "token_mean":
        return lambda x: x.mean(axis=1)
    raise ValueError(f"cannot compile op {node.op!r}")


def compile_plan(
    graph: Graph,
    mode: str = "float",
    sparse: bool = False,
    select_fmt: bool = False,
    accuracy_budget: float = 0.0,
    backend: str = "sw",
    accum_dtype: str | None = None,
    act_skip: str = "off",
    verify: bool = True,
) -> ExecutionPlan:
    """Compile ``graph`` into an :class:`ExecutionPlan` for ``mode``.

    Validates the topology once, resolves every node's geometry from
    its producers' recorded shapes, and binds one batched kernel per
    node.  The returned plan holds snapshots of the (reshaped) weights:
    mutating the graph afterwards does not affect it — recompile (or
    use :meth:`repro.engine.InferenceEngine.invalidate`) instead.

    With ``sparse=True``, conv/dense nodes whose weights satisfy a
    supported N:M pattern are packed and bound to the batched sparse
    kernels (see the module docstring); pre-annotated ``sparse_fmt``
    attrs are honoured, unannotated nodes are detected here.  int8
    plans pack the quantised weights (exact — bit-identical to dense);
    float plans pack the float32 weights (gather layers match dense to
    rounding).  In int8 mode, nodes without quantisation metadata keep
    their dense float fallback binding.

    ``select_fmt=True`` (sparse plans only) replaces per-layer
    auto-detection with the cost model's format search under
    ``accuracy_budget`` — see
    :func:`repro.kernels.registry.select_format`.

    ``backend`` selects the sparse execution engine: ``"sw"`` (the SW
    decimation path plus cost-model scatter arbitration), ``"isa"``
    (pin the ISA-extension emulation kernels), or ``"auto"`` (rank
    sw / isa / dense per layer by modelled cycles).  int8 plans are
    bit-identical across all three.  ``accum_dtype="float64"``
    (float sparse plans only) widens the gather accumulation for
    serving contracts tighter than the default float tolerance.

    ``act_skip`` (sparse plans only) adds runtime activation
    zero-skipping to gather-bound layers: post-ReLU zero rows of the
    im2col/token buffers are masked once per batch and their MACs
    skipped (``"auto"`` engages per layer where
    :func:`repro.kernels.cost_model.act_skip_profitable` approves the
    node's calibration ``act_density`` estimate; ``"force"`` enables
    every gather layer).  Outputs are identical to ``"off"`` —
    ``np.array_equal`` on every backend, dtype and format; int8 results
    are bit-identical — and each skip layer re-checks the measured
    batch density at runtime, falling back to the plain core when a
    batch arrives dense.

    ``verify=True`` (the default) runs the static plan verifier
    (:mod:`repro.analyze.plancheck`) around the compile: graph-level
    checks (shapes, quantisation metadata, N:M format legality) before
    any weight is packed, plan-level checks (kernel variants, packed
    offset bounds, byte accounting) on the bound result.  Error
    diagnostics raise
    :class:`~repro.analyze.diagnostics.PlanVerificationError` (a
    ``ValueError``); on success ``plan.verified`` is True and the
    verification is cached with the plan.
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}")
    if select_fmt and not sparse:
        raise ValueError("select_fmt=True requires sparse=True")
    if accuracy_budget < 0:
        raise ValueError(
            f"accuracy_budget must be >= 0, got {accuracy_budget}"
        )
    if backend not in BACKEND_KNOBS:
        raise ValueError(
            f"unknown backend {backend!r} (expected one of {BACKEND_KNOBS})"
        )
    if accum_dtype is not None:
        accum_dtype = np.dtype(accum_dtype).name
        if accum_dtype == "float32":
            accum_dtype = None  # float32 is the default accumulation
        elif accum_dtype != "float64":
            raise ValueError(
                f"accum_dtype must be float32 or float64, got {accum_dtype!r}"
            )
        elif not (sparse and mode == "float"):
            raise ValueError(
                "accum_dtype='float64' only applies to float sparse plans "
                "(int8 accumulation is already exact)"
            )
    if act_skip not in ACT_SKIP_KNOBS:
        raise ValueError(
            f"unknown act_skip {act_skip!r} "
            f"(expected one of {ACT_SKIP_KNOBS})"
        )
    if act_skip != "off" and not sparse:
        raise ValueError(
            "act_skip requires sparse=True (only the gather-bound "
            "sparse kernels skip zero activation rows)"
        )
    if sparse:
        # Resolve the gather chunk size now so a bad REPRO_K_CHUNK env
        # value fails at compile/registration time, not on the first
        # inference request that hits a gather-bound layer.
        from repro.kernels.conv_sparse import k_chunk

        k_chunk()
    graph.validate()
    if verify:
        # Graph-level checks run before any weight is packed, so an
        # illegal annotation is a structured diagnostic here instead of
        # a ValueError deep inside NMSparseMatrix.from_dense.
        from repro.analyze.diagnostics import PlanVerificationError, errors_only
        from repro.analyze.plancheck import check_graph

        problems = errors_only(
            check_graph(
                graph,
                mode=mode,
                sparse=sparse,
                select_fmt=select_fmt,
                accuracy_budget=accuracy_budget,
                backend=backend,
                accum_dtype=accum_dtype,
                act_skip=act_skip,
            )
        )
        if problems:
            raise PlanVerificationError(problems)
    input_node = next((n for n in graph if n.op == "input"), None)
    if input_node is None:
        raise ValueError(f"graph {graph.name!r} has no input node")
    plan = ExecutionPlan(
        graph_name=graph.name,
        mode=mode,
        input_name=input_node.name,
        input_shape=tuple(input_node.attrs["shape"]),
        output=graph.output,
        sparse=sparse,
        select_fmt=select_fmt,
        accuracy_budget=accuracy_budget,
        backend=backend,
        accum_dtype=accum_dtype,
        act_skip=act_skip,
    )
    # Liveness: the step that consumes an activation last releases it.
    last_use: dict[str, int] = {}
    compute_nodes = [n for n in graph if n.op != "input"]
    for i, node in enumerate(compute_nodes):
        for dep in node.inputs:
            last_use[dep] = i
    for i, node in enumerate(compute_nodes):
        in_shape = tuple(graph.node(node.inputs[0]).out_shape)
        run = _bind_step(node, in_shape, mode, plan)
        release = tuple(
            dict.fromkeys(  # dedup: a step may consume one input twice
                dep
                for dep in node.inputs
                if last_use[dep] == i and dep != graph.output
            )
        )
        plan.steps.append(
            PlanStep(node.name, node.op, tuple(node.inputs), run, release)
        )
    if verify:
        from repro.analyze.plancheck import verify_plan

        problems = errors_only(verify_plan(plan, graph))
        if problems:
            raise PlanVerificationError(problems)
        plan.verified = True
    return plan
