"""Calibration-batch estimation of per-layer activation density.

Activation zero-skipping (the plan-level ``act_skip`` knob) gates on
how many im2col rows / FC tokens of a layer's input are entirely zero
at runtime — a property of the *data*, not the weights, so the compile
needs a measured estimate.  :func:`calibrate_act_density` runs one
float forward pass over a representative batch and stamps each
conv/dense node with ``attrs["act_density"]``: the fraction of its
input rows carrying at least one non-zero value, exactly the quantity
:func:`repro.kernels.cost_model.act_skip_profitable` consumes when an
``act_skip="auto"`` plan decides per layer whether bookkeeping pays.

The estimate is measured in the float domain.  That is conservative
for int8 plans: a float-zero position quantises to zero, so the true
quantised density can only be lower — ``auto`` under-engages rather
than over-engages, and the runtime re-check (each skip layer measures
its actual batch density) covers the drift in both directions.

Stamping mutates the graph's node attrs, which feeds the engine's
sparse-plan staleness signature — cached sparse plans recompile on the
next request instead of serving decisions made against the old
estimate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.engine.plan import compile_plan
from repro.kernels.im2col import im2col_active_rows

if TYPE_CHECKING:
    from repro.compiler.ir import Graph

__all__ = ["calibrate_act_density"]


def calibrate_act_density(
    graph: Graph, batch: np.ndarray
) -> dict[str, float]:
    """Stamp conv/dense nodes with measured activation row density.

    Runs ``batch`` (shaped ``(B, *input_shape)``) through a float
    forward pass of ``graph`` and, for every conv/dense node, measures
    the fraction of active input rows — im2col rows with at least one
    non-zero receptive-field position for conv, tokens with at least
    one non-zero channel for dense.  The value lands in
    ``node.attrs["act_density"]`` and the per-node map is returned.
    """
    batch = np.asarray(batch)
    if batch.ndim and batch.shape[0] == 0:
        raise ValueError("calibration batch must contain at least one sample")
    plan = compile_plan(graph, mode="float", verify=False)
    _, acts = plan.execute(batch, return_acts=True)
    densities: dict[str, float] = {}
    for node in graph:
        if node.op not in ("conv2d", "dense"):
            continue
        x = acts[node.inputs[0]]
        if node.op == "conv2d":
            shape = plan.conv_shapes[node.name]
            rows = im2col_active_rows(x.any(axis=-1), shape)
        else:
            c = int(node.attrs["weights"].shape[1])
            rows = x.reshape(x.shape[0], -1, c).any(axis=2)
        density = float(rows.mean())
        node.attrs["act_density"] = density
        densities[node.name] = density
    return densities
