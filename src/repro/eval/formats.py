"""Fig. 1 / Sec. 2.1 / Sec. 4 reproduction: sparse-format memory.

Builds the pruning-pattern illustration of Fig. 1 on a concrete matrix
and the format memory comparison the paper uses to motivate N:M over
COO/CSR, including the analytical break-even sparsities and the
measured per-format reductions at the three supported patterns.
"""

from __future__ import annotations

import numpy as np

from repro.sparsity.coo import COOMatrix
from repro.sparsity.csr import CSRMatrix
from repro.sparsity.nm import NMSparseMatrix, SUPPORTED_FORMATS
from repro.sparsity.pruning import nm_prune
from repro.utils.rng import make_rng
from repro.utils.tables import Table

__all__ = ["format_memory_table", "fig1_demo", "break_even_table"]


def format_memory_table(
    rows: int = 64, cols: int = 1152, seed: int = 0
) -> Table:
    """Measured storage of one weight matrix across all formats.

    Uses a conv-like K x (FY*FX*C) matrix pruned to each N:M pattern,
    encoding it as dense / COO / CSR / N:M (SW and ISA layouts).
    """
    rng = make_rng(seed)
    dense = rng.integers(-128, 128, size=(rows, cols)).astype(np.int8)
    table = Table(
        "Sparse-format memory comparison (bytes; lower is better)",
        ["pattern", "dense", "COO", "CSR", "N:M (SW)", "N:M (ISA conv)"],
    )
    for fmt_name, fmt in SUPPORTED_FORMATS.items():
        pruned = nm_prune(dense, fmt)
        coo = COOMatrix.from_dense(pruned)
        csr = CSRMatrix.from_dense(pruned)
        nm = NMSparseMatrix.from_dense(pruned, fmt)
        table.add_row(
            pattern=fmt_name,
            dense=rows * cols,
            COO=int(coo.total_bytes()),
            CSR=int(csr.total_bytes()),
            **{
                "N:M (SW)": nm.total_bytes(),
                "N:M (ISA conv)": nm.total_bytes(duplicate_offsets=True),
            },
        )
    return table


def break_even_table() -> Table:
    """Analytical break-even sparsities (Sec. 2.1).

    COO/CSR rows give the minimum sparsity at which the format beats
    dense int8; N:M rows operate at a fixed sparsity and always beat
    dense there, so they report their operating point and reduction.
    """
    table = Table(
        "Break-even sparsity vs dense int8 storage",
        ["format", "index bits/nz", "sparsity", "reduction %"],
    )
    table.add_row(
        format="COO (16b row + 8b col)",
        **{
            "index bits/nz": 24,
            "sparsity": COOMatrix.break_even_sparsity(16, 8),
            "reduction %": 0.0,
        },
    )
    table.add_row(
        format="COO (16b + 16b)",
        **{
            "index bits/nz": 32,
            "sparsity": COOMatrix.break_even_sparsity(16, 16),
            "reduction %": 0.0,
        },
    )
    table.add_row(
        format="CSR (16b col)",
        **{
            "index bits/nz": 16,
            "sparsity": CSRMatrix.break_even_sparsity(16),
            "reduction %": 0.0,
        },
    )
    table.add_row(
        format="CSR (8b relative col)",
        **{
            "index bits/nz": 8,
            "sparsity": CSRMatrix.break_even_sparsity(8),
            "reduction %": 0.0,
        },
    )
    for name, fmt in SUPPORTED_FORMATS.items():
        table.add_row(
            format=f"N:M {name}",
            **{
                "index bits/nz": fmt.offset_bits,
                "sparsity": fmt.sparsity,
                "reduction %": 100 * fmt.weight_memory_reduction(),
            },
        )
    return table


def fig1_demo(seed: int = 7) -> dict[str, np.ndarray]:
    """The Fig. 1 illustration at 75% sparsity on an 8x8 matrix.

    Returns the three pruning patterns (unstructured / 1:4 / 2x2
    block-wise) applied to the same dense matrix, each retaining 25% of
    the entries.
    """
    rng = make_rng(seed)
    dense = rng.integers(1, 100, size=(8, 8)).astype(np.int8)

    flat = dense.reshape(-1).astype(np.float64)
    keep = np.argsort(-np.abs(flat + rng.normal(0, 1e-3, flat.size)))[: flat.size // 4]
    unstructured = np.zeros_like(dense)
    unstructured.reshape(-1)[keep] = dense.reshape(-1)[keep]

    nm = nm_prune(dense, SUPPORTED_FORMATS["1:4"])

    blocks = dense.reshape(4, 2, 4, 2).transpose(0, 2, 1, 3).reshape(16, 4)
    strength = np.abs(blocks.astype(np.int32)).sum(axis=1)
    blockwise = np.zeros(16, dtype=bool)
    blockwise[np.argsort(-strength)[:4]] = True  # keep 4 of 16 blocks
    mask = (
        blockwise.reshape(4, 4, 1, 1)
        .repeat(2, axis=2)
        .repeat(2, axis=3)
        .transpose(0, 2, 1, 3)
        .reshape(8, 8)
    )
    block = np.where(mask, dense, 0).astype(np.int8)

    return {"dense": dense, "unstructured": unstructured, "1:4": nm, "block": block}
