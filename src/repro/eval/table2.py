"""Table 2 reproduction: end-to-end ResNet18 and ViT-Small deployment.

For each sparsity variant the harness builds the pruned model graph,
compiles it with the MATCH-substitute, and reports dense-equivalent
MAC/cycle, total Mcycles and weight memory — alongside the paper's
measured values.  Accuracy columns carry the paper's reported figures
(the accuracy *trend* is reproduced at small scale by
:mod:`repro.eval.accuracy`; CIFAR-scale training is outside the offline
scope — see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.compiler.codegen import CompileConfig
from repro.compiler.deploy import DeploymentReport, deploy
from repro.engine import get_default_engine
from repro.eval.paper_values import TABLE2_RESNET, TABLE2_VIT
from repro.kernels.cost_model import CostParams, DEFAULT_PARAMS
from repro.models.quantize import quantize_graph
from repro.models.resnet import resnet18_cifar
from repro.models.vit import vit_small
from repro.sparsity.nm import SUPPORTED_FORMATS
from repro.utils.rng import make_rng
from repro.utils.tables import Table

__all__ = [
    "table2_resnet",
    "table2_vit",
    "resnet_reports",
    "vit_reports",
    "functional_check",
]

_RESNET_VARIANTS = [
    ("dense-1x2", None),
    ("dense-4x2", None),
    ("sparse-sw", "1:4"),
    ("sparse-sw", "1:8"),
    ("sparse-sw", "1:16"),
    ("sparse-isa", "1:4"),
    ("sparse-isa", "1:8"),
    ("sparse-isa", "1:16"),
]

_VIT_VARIANTS = [
    ("dense", None),
    ("sparse-sw", "1:4"),
    ("sparse-sw", "1:8"),
    ("sparse-sw", "1:16"),
    ("sparse-isa", "1:4"),
    ("sparse-isa", "1:8"),
    ("sparse-isa", "1:16"),
]


def _config(variant: str, params: CostParams) -> CompileConfig:
    if variant == "dense-1x2":
        return CompileConfig(
            use_sparse=False, dense_conv_variant="dense-1x2", cost_params=params
        )
    if variant in ("dense-4x2", "dense"):
        return CompileConfig(use_sparse=False, cost_params=params)
    return CompileConfig(use_isa=variant == "sparse-isa", cost_params=params)


def resnet_reports(
    params: CostParams = DEFAULT_PARAMS, seed: int = 0
) -> dict[tuple[str, str | None], DeploymentReport]:
    """Deploy every ResNet18 Table 2 variant; keyed like TABLE2_RESNET."""
    graphs: dict[str | None, object] = {}
    out = {}
    for variant, fmt_name in _RESNET_VARIANTS:
        if fmt_name not in graphs:
            fmt = SUPPORTED_FORMATS[fmt_name] if fmt_name else None
            graphs[fmt_name] = resnet18_cifar(fmt=fmt, seed=seed)
        out[(variant, fmt_name)] = deploy(
            graphs[fmt_name], _config(variant, params)
        )
    return out


def vit_reports(
    params: CostParams = DEFAULT_PARAMS, seed: int = 0
) -> dict[tuple[str, str | None], DeploymentReport]:
    """Deploy every ViT Table 2 variant; keyed like TABLE2_VIT."""
    graphs: dict[str | None, object] = {}
    out = {}
    for variant, fmt_name in _VIT_VARIANTS:
        if fmt_name not in graphs:
            fmt = SUPPORTED_FORMATS[fmt_name] if fmt_name else None
            graphs[fmt_name] = vit_small(fmt=fmt, seed=seed)
        out[(variant, fmt_name)] = deploy(
            graphs[fmt_name], _config(variant, params)
        )
    return out


def _build_table(
    title: str,
    reports: dict[tuple[str, str | None], DeploymentReport],
    paper: dict[tuple[str, str | None], tuple],
) -> Table:
    table = Table(
        title,
        [
            "variant",
            "fmt",
            "acc % (paper)",
            "MAC/cyc",
            "paper MAC/cyc",
            "Mcycles",
            "paper Mcycles",
            "Mem MB",
            "paper Mem MB",
        ],
    )
    for key, report in reports.items():
        variant, fmt_name = key
        acc, p_mac, p_cyc, p_mem = paper[key]
        table.add_row(
            variant=variant,
            fmt=fmt_name or "-",
            **{
                "acc % (paper)": acc,
                "MAC/cyc": report.macs_per_cycle,
                "paper MAC/cyc": p_mac,
                "Mcycles": report.total_cycles / 1e6,
                "paper Mcycles": p_cyc,
                "Mem MB": report.weight_memory_mb,
                "paper Mem MB": p_mem,
            },
        )
    return table


def functional_check(
    model: str = "resnet",
    fmt_name: str | None = None,
    batch: int = 4,
    seed: int = 0,
) -> float:
    """Functional verification behind Table 2's cost-model numbers.

    The table itself is produced by the analytical cost model; this
    helper confirms the *same graphs* also compute sensible values:
    it builds the model, post-training-quantises it, runs one random
    batch through the :class:`~repro.engine.InferenceEngine` in both
    float and int8 modes, and returns the max int8-vs-float deviation
    relative to the float peak (small for a healthy deployment).
    """
    fmt = SUPPORTED_FORMATS[fmt_name] if fmt_name else None
    if model == "resnet":
        graph = resnet18_cifar(fmt=fmt, seed=seed)
        in_shape = (32, 32, 3)
    elif model == "vit":
        # Shallow depth keeps the check cheap; the layer kinds are the same.
        graph = vit_small(fmt=fmt, seed=seed, depth=2)
        in_shape = (224, 224, 3)
    else:
        raise ValueError(f"unknown model {model!r}")
    rng = make_rng(seed)
    xs = rng.normal(size=(batch, *in_shape)).astype(np.float32) * 0.5
    quantize_graph(graph, [xs[0]])
    engine = get_default_engine()
    f = engine.run_batch(graph, xs, mode="float")
    q = engine.run_batch(graph, xs, mode="int8")
    return float(np.abs(f - q).max() / (np.abs(f).max() + 1e-9))


def table2_resnet(params: CostParams = DEFAULT_PARAMS) -> Table:
    """Table 2, bottom half (ResNet18 / CIFAR-100)."""
    return _build_table(
        "Table 2: ResNet18 end-to-end (paper values alongside)",
        resnet_reports(params),
        TABLE2_RESNET,
    )


def table2_vit(params: CostParams = DEFAULT_PARAMS) -> Table:
    """Table 2, top half (ViT-Small / CIFAR-10)."""
    return _build_table(
        "Table 2: ViT-Small end-to-end (paper values alongside)",
        vit_reports(params),
        TABLE2_VIT,
    )
