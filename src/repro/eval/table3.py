"""Table 3 reproduction: comparison with the state of the art.

Literature rows (Scalpel, dCSR, IndexMAC, SSSR) are transcribed
constants; the two "ours" rows are *measured* from the end-to-end
ResNet18 deployment — speedup ranges of the SW kernels at 1:8-1:16
sparsity and the ISA kernels at 1:4-1:16 vs the dense 1x2 baseline —
with the area overheads from the hardware ledger.
"""

from __future__ import annotations

from repro.eval.paper_values import TABLE3_ROWS
from repro.eval.table2 import resnet_reports
from repro.hw.area import sssr_core, xdecimate_core
from repro.kernels.cost_model import CostParams, DEFAULT_PARAMS
from repro.utils.tables import Table

__all__ = ["table3_sota", "our_resnet_speedup_ranges"]


def our_resnet_speedup_ranges(
    params: CostParams = DEFAULT_PARAMS,
) -> dict[str, tuple[float, float]]:
    """Measured speedup ranges vs the dense 1x2 baseline.

    Matches Table 3's rows: ResNet18-SW over 87.5-93.75% sparsity
    (1:8 to 1:16) and ResNet18-ISA over 75-93.75% (1:4 to 1:16).
    """
    reports = resnet_reports(params)
    base = reports[("dense-1x2", None)].total_cycles
    sw = (
        base / reports[("sparse-sw", "1:8")].total_cycles,
        base / reports[("sparse-sw", "1:16")].total_cycles,
    )
    isa = (
        base / reports[("sparse-isa", "1:4")].total_cycles,
        base / reports[("sparse-isa", "1:16")].total_cycles,
    )
    return {"ResNet18-SW": sw, "ResNet18-ISA": isa}


def table3_sota(params: CostParams = DEFAULT_PARAMS) -> Table:
    """Build Table 3 with measured "ours" rows."""
    table = Table(
        "Table 3: comparison with the state of the art",
        ["benchmark", "sparsity", "speedup", "area %"],
    )
    for name, (sparsity, speedup, area) in TABLE3_ROWS.items():
        table.add_row(
            benchmark=name,
            sparsity=sparsity,
            speedup=speedup,
            **{"area %": area},
        )
    ours = our_resnet_speedup_ranges(params)
    lo, hi = ours["ResNet18-SW"]
    table.add_row(
        benchmark="ResNet18-SW (ours)",
        sparsity="87.5-93.75%",
        speedup=f"{lo:.2f}-{hi:.2f}",
        **{"area %": None},
    )
    lo, hi = ours["ResNet18-ISA"]
    table.add_row(
        benchmark="ResNet18-ISA (ours)",
        sparsity="75-93.75%",
        speedup=f"{lo:.2f}-{hi:.2f}",
        **{"area %": 100 * xdecimate_core().overhead},
    )
    return table
