"""Fig. 8 reproduction: single-layer conv and FC sweeps.

Layer geometry fixed as in Sec. 5.2 — K = 256 output channels/neurons;
convs use IX=IY=OX=OY=8, FX=FY=3, S=1, P=1 and sweep
C in {32, 64, 128, 256}; FC layers sweep C in {256, 512, 1024, 2048}.
Each variant reports cluster MAC/cycle (dense-equivalent) and speedup
over the dense 1x2 baseline, the quantity the figure annotates.
"""

from __future__ import annotations

from repro.kernels.cost_model import (
    CostParams,
    DEFAULT_PARAMS,
    conv_layer_cycles,
    fc_layer_cycles,
)
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import SUPPORTED_FORMATS
from repro.utils.tables import Table

__all__ = [
    "CONV_CHANNEL_SWEEP",
    "FC_CHANNEL_SWEEP",
    "CONV_VARIANTS",
    "FC_VARIANTS",
    "fig8_conv",
    "fig8_fc",
    "average_speedup",
]

CONV_CHANNEL_SWEEP = (32, 64, 128, 256)
FC_CHANNEL_SWEEP = (256, 512, 1024, 2048)

#: (variant, format-name) in the order Fig. 8 groups its bars.
CONV_VARIANTS = [
    ("dense-1x2", None),
    ("dense-4x2", None),
    ("sparse-sw", "1:4"),
    ("sparse-sw", "1:8"),
    ("sparse-sw", "1:16"),
    ("sparse-isa", "1:4"),
    ("sparse-isa", "1:8"),
    ("sparse-isa", "1:16"),
]

FC_VARIANTS = [
    ("dense", None),
    ("sparse-sw", "1:4"),
    ("sparse-sw", "1:8"),
    ("sparse-sw", "1:16"),
    ("sparse-isa", "1:4"),
    ("sparse-isa", "1:8"),
    ("sparse-isa", "1:16"),
]


def _conv_shape(c: int) -> ConvShape:
    return ConvShape(iy=8, ix=8, c=c, k=256, fy=3, fx=3, s=1, p=1)


def _fc_shape(c: int) -> FcShape:
    return FcShape(c=c, k=256)


def fig8_conv(params: CostParams = DEFAULT_PARAMS) -> Table:
    """The conv half of Fig. 8 (one row per (variant, C))."""
    table = Table(
        "Fig. 8 (conv): K=256, 8x8 spatial, 3x3 filters",
        ["variant", "fmt", "C", "MAC/cyc", "speedup vs 1x2"],
    )
    baselines = {
        c: conv_layer_cycles(_conv_shape(c), "dense-1x2", params=params).total
        for c in CONV_CHANNEL_SWEEP
    }
    for variant, fmt_name in CONV_VARIANTS:
        fmt = SUPPORTED_FORMATS[fmt_name] if fmt_name else None
        for c in CONV_CHANNEL_SWEEP:
            bd = conv_layer_cycles(_conv_shape(c), variant, fmt, params)
            table.add_row(
                variant=variant,
                fmt=fmt_name or "-",
                C=c,
                **{
                    "MAC/cyc": bd.macs_per_cycle,
                    "speedup vs 1x2": baselines[c] / bd.total,
                },
            )
    return table


def fig8_fc(params: CostParams = DEFAULT_PARAMS) -> Table:
    """The FC half of Fig. 8 (one row per (variant, C))."""
    table = Table(
        "Fig. 8 (FC): K=256",
        ["variant", "fmt", "C", "MAC/cyc", "speedup vs dense"],
    )
    baselines = {
        c: fc_layer_cycles(_fc_shape(c), "dense", params=params).total
        for c in FC_CHANNEL_SWEEP
    }
    for variant, fmt_name in FC_VARIANTS:
        fmt = SUPPORTED_FORMATS[fmt_name] if fmt_name else None
        for c in FC_CHANNEL_SWEEP:
            bd = fc_layer_cycles(_fc_shape(c), variant, fmt, params)
            table.add_row(
                variant=variant,
                fmt=fmt_name or "-",
                C=c,
                **{
                    "MAC/cyc": bd.macs_per_cycle,
                    "speedup vs dense": baselines[c] / bd.total,
                },
            )
    return table


def average_speedup(
    kind: str,
    variant: str,
    fmt_name: str | None,
    params: CostParams = DEFAULT_PARAMS,
) -> float:
    """Average speedup over the channel sweep (the Sec. 5.2 quotes)."""
    fmt = SUPPORTED_FORMATS[fmt_name] if fmt_name else None
    total = 0.0
    if kind == "conv":
        for c in CONV_CHANNEL_SWEEP:
            base = conv_layer_cycles(_conv_shape(c), "dense-1x2", params=params)
            this = conv_layer_cycles(_conv_shape(c), variant, fmt, params)
            total += base.total / this.total
        return total / len(CONV_CHANNEL_SWEEP)
    for c in FC_CHANNEL_SWEEP:
        base = fc_layer_cycles(_fc_shape(c), "dense", params=params)
        this = fc_layer_cycles(_fc_shape(c), variant, fmt, params)
        total += base.total / this.total
    return total / len(FC_CHANNEL_SWEEP)
