"""Ablation studies of the paper's design choices.

Four studies, each quantifying one decision the paper makes:

1. **Inner-loop activation-loading strategy** (Sec. 4.1.2): the paper
   weighs three options — DMA-based copy, sparse im2col, and the chosen
   Decimate-Im2col — and picks the third.  We model all three.
2. **Offset duplication for the ISA conv kernels** (Sec. 4.1.3):
   memory overhead bought for instruction-count uniformity.
3. **Format-aware tiling** (Sec. 4.4 item 2): L1 tiles sized by true
   bits-per-weight vs assuming 8 bits.
4. **Interleaved L2 layout** (Sec. 4.4 item 3): one DMA transaction per
   weight tile vs two.

Plus the unrolling study the paper argues qualitatively: unrolling the
sparse conv inner loop over more input patches improves instruction
efficiency but grows the im2col buffer linearly, shrinking feasible
tiles (Sec. 4.1.2, last paragraph).
"""

from __future__ import annotations

import math

import numpy as np

from repro.compiler.layout import build_interleaved_tiles
from repro.compiler.tiling import tile_conv
from repro.hw.memory import VEGA_MEMORY
from repro.kernels.cost_model import CostParams, DEFAULT_PARAMS, conv_layer_cycles
from repro.kernels.im2col import im2col_buffer_bytes
from repro.kernels.shapes import ConvShape
from repro.sparsity.nm import NMFormat, NMSparseMatrix, SUPPORTED_FORMATS
from repro.sparsity.pruning import nm_prune
from repro.utils.rng import make_rng
from repro.utils.tables import Table

__all__ = [
    "im2col_strategy_table",
    "offset_duplication_table",
    "tiling_awareness_table",
    "layout_interleaving_table",
    "unrolling_table",
]


def im2col_strategy_table(
    c: int = 128, fmt_name: str = "1:8", params: CostParams = DEFAULT_PARAMS
) -> Table:
    """Cost of the three Sec. 4.1.2 activation-loading strategies.

    Modelled per output pair for the Fig. 8 conv geometry:

    - *DMA-copy*: one DMA descriptor per non-zero element's activation
      (no bursts) — ``nnz`` transfers of 1 byte per channel.
    - *Sparse im2col*: the im2col runs per output channel (no reuse),
      its cost multiplying by K.
    - *Decimate im2col* (chosen): one im2col per pair + the sparse
      kernel's decimating inner loop.
    """
    fmt = SUPPORTED_FORMATS[fmt_name]
    shape = ConvShape(iy=8, ix=8, c=c, k=256)
    nnz = shape.reduce_dim // fmt.m
    dma = VEGA_MEMORY.dma

    im2col_pair = 2 * shape.reduce_dim * params.im2col_cycles_per_byte
    inner = conv_layer_cycles(shape, "sparse-sw", fmt, params)
    pairs = math.ceil(shape.oy * shape.ox / 2 / 8)  # per core

    # Strategy 1: per-element DMA loads (setup dominates, no bursts).
    dma_per_pair = shape.k * 2 * nnz * dma.setup_cycles
    # Strategy 2: im2col re-run per output channel.
    sparse_im2col_pair = shape.k * im2col_pair
    # Strategy 3 (chosen): one im2col per pair, decimation in-loop.
    decimate_pair = im2col_pair

    table = Table(
        f"Sec. 4.1.2 strategies, conv C={c}, {fmt.name} (activation-"
        "loading cycles per core)",
        ["strategy", "cycles/pair", "cycles/layer", "vs chosen"],
    )
    for name, per_pair in [
        ("DMA-based copy", dma_per_pair),
        ("sparse im2col", sparse_im2col_pair),
        ("decimate im2col (paper)", decimate_pair),
    ]:
        table.add_row(
            strategy=name,
            **{
                "cycles/pair": per_pair,
                "cycles/layer": per_pair * pairs,
                "vs chosen": per_pair / decimate_pair,
            },
        )
    return table


def offset_duplication_table(seed: int = 0) -> Table:
    """Memory cost of duplicating offsets for the ISA conv kernels."""
    rng = make_rng(seed)
    table = Table(
        "Sec. 4.1.3: offset duplication overhead (64 x 1152 weights)",
        ["format", "SW bytes", "ISA bytes", "overhead %", "ISA reduction %"],
    )
    dense = rng.integers(-128, 128, size=(64, 1152)).astype(np.int8)
    for name, fmt in SUPPORTED_FORMATS.items():
        mat = NMSparseMatrix.from_dense(nm_prune(dense, fmt), fmt)
        sw = mat.total_bytes()
        isa = mat.total_bytes(duplicate_offsets=True)
        table.add_row(
            format=name,
            **{
                "SW bytes": sw,
                "ISA bytes": isa,
                "overhead %": 100 * (isa / sw - 1),
                "ISA reduction %": 100 * mat.memory_reduction(True),
            },
        )
    return table


def tiling_awareness_table(fmt_name: str = "1:4") -> Table:
    """Format-aware vs 8-bit-assumed tiling (Sec. 4.4 item 2)."""
    fmt = SUPPORTED_FORMATS[fmt_name]
    table = Table(
        f"Format-aware tiling at {fmt.name} (ISA layout)",
        ["layer (C,K)", "aware: tiles", "naive: tiles", "DMA setups saved"],
    )
    for c, k in ((128, 256), (256, 256), (256, 512), (512, 512)):
        shape = ConvShape(iy=8, ix=8, c=c, k=k)
        aware = tile_conv(shape, fmt, "sparse-isa", format_aware=True)
        naive = tile_conv(shape, fmt, "sparse-isa", format_aware=False)
        table.add_row(
            **{
                "layer (C,K)": f"({c},{k})",
                "aware: tiles": aware.n_tiles,
                "naive: tiles": naive.n_tiles,
                "DMA setups saved": naive.n_tiles - aware.n_tiles,
            }
        )
    return table


def layout_interleaving_table(seed: int = 0) -> Table:
    """Interleaved vs split L2 weight layout (Sec. 4.4 item 3)."""
    rng = make_rng(seed)
    dense = rng.integers(-128, 128, size=(256, 1152)).astype(np.int8)
    dma = VEGA_MEMORY.dma
    table = Table(
        "Interleaved vs split L2 weight+index layout (256 x 1152, "
        "k_tile=64)",
        ["format", "transfers (interleaved)", "transfers (split)", "DMA cycles saved"],
    )
    for name, fmt in SUPPORTED_FORMATS.items():
        mat = NMSparseMatrix.from_dense(nm_prune(dense, fmt), fmt)
        inter = build_interleaved_tiles(mat, 64, interleaved=True)
        split = build_interleaved_tiles(mat, 64, interleaved=False)
        saved = (split.total_transfers - inter.total_transfers) * dma.setup_cycles
        table.add_row(
            format=name,
            **{
                "transfers (interleaved)": inter.total_transfers,
                "transfers (split)": split.total_transfers,
                "DMA cycles saved": saved,
            },
        )
    return table


def unrolling_table(
    fmt_name: str = "1:8", params: CostParams = DEFAULT_PARAMS
) -> Table:
    """Sparse conv inner-loop unrolling: patches vs im2col pressure.

    An unrolling factor U shares the per-iteration index unpacking over
    U patches: instructions/iter = 1 + 8 + 4U (loads) + U (addr) +
    1 (weights) + U (sdotp), retiring 4U MACs.  The im2col L1 footprint
    grows linearly in U, which is why the paper stops at U=2
    (Sec. 4.1.2, last paragraph).
    """
    fmt = SUPPORTED_FORMATS[fmt_name]
    table = Table(
        f"Sparse conv unrolling study ({fmt.name})",
        [
            "unroll U",
            "instr/iter",
            "instr per MAC",
            "im2col bytes (C=256)",
            "fits with K-tile=64?",
        ],
    )
    shape = ConvShape(iy=8, ix=8, c=256, k=256)
    for u in (1, 2, 4, 8):
        instr = 1 + 8 + 4 * u + u + 1 + u
        per_mac = instr / (4 * u)
        bufs = shape.reduce_dim * u * 8  # U buffers per core
        # Working set with a K=64 weight tile at this format: weights
        # double-buffered, activations resident across K tiles.
        weights = 64 * shape.reduce_dim * fmt.bits_per_dense_weight() / 8
        in_out = shape.input_bytes() + shape.oy * shape.ox * 64
        fits = bufs + 2 * weights + in_out <= 128 * 1024
        table.add_row(
            **{
                "unroll U": u,
                "instr/iter": instr,
                "instr per MAC": per_mac,
                "im2col bytes (C=256)": bufs,
                "fits with K-tile=64?": str(bool(fits)),
            }
        )
    return table
