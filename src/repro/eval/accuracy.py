"""Accuracy-trend experiment (Table 2's accuracy columns, at small scale).

CIFAR-scale training is outside the offline scope, so the trend the
paper relies on — N:M pruning at 1:4 costs ~nothing, 1:8 little, 1:16 a
small drop — is reproduced with SR-STE training (the paper's Sec. 5.1
scheme) of a small CNN on the synthetic dataset.  The *mechanism* is
identical: magnitude masks refreshed every step, SR-STE gradients, and
the resulting weights are genuinely N:M sparse and deployable through
the compiler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sparsity.nm import NMFormat, SUPPORTED_FORMATS
from repro.sparsity.stats import is_nm_sparse
from repro.train.data import make_synthetic_dataset
from repro.train.nn import AvgPool2x2, Flatten, Linear, ReLU, Sequential
from repro.train.srste import SparseConv2d, SparseLinear
from repro.train.nn import Conv2d
from repro.train.trainer import train_model
from repro.utils.tables import Table

__all__ = ["AccuracyPoint", "accuracy_trend", "build_small_cnn"]


@dataclass
class AccuracyPoint:
    """Result of one training configuration."""

    label: str
    accuracy: float
    weights_are_nm: bool


def build_small_cnn(
    n_classes: int, fmt: NMFormat | None, seed: int = 0
) -> Sequential:
    """A small conv-pool-fc network; conv2 and fc1 carry the sparsity.

    conv1 keeps C=3 (reduce dim 27, no pattern fits) — mirroring the
    paper's dense stem.  Widths are chosen with capacity to spare, the
    regime in which the paper's models live (mild N:M costs ~nothing).
    """
    conv2: object
    fc1: object
    if fmt is None:
        conv2 = Conv2d(32, 32, seed=seed + 1)
        fc1 = Linear(32 * 4 * 4, 96, seed=seed + 2)
    else:
        conv2 = SparseConv2d(32, 32, fmt, seed=seed + 1)
        fc1 = SparseLinear(32 * 4 * 4, 96, fmt, seed=seed + 2)
    return Sequential(
        Conv2d(3, 32, seed=seed),
        ReLU(),
        AvgPool2x2(),
        conv2,
        ReLU(),
        AvgPool2x2(),
        Flatten(),
        fc1,
        ReLU(),
        Linear(96, n_classes, seed=seed + 3),
    )


def accuracy_trend(
    epochs: int = 8,
    seed: int = 0,
    n_classes: int = 8,
    n_train: int = 512,
    noise: float = 1.1,
) -> tuple[Table, list[AccuracyPoint]]:
    """Train dense and 1:4/1:8/1:16 models; report accuracies.

    Returns the rendered table plus the raw points (used by tests and
    the benchmark harness to check the ordering claim).
    """
    data = make_synthetic_dataset(
        n_classes=n_classes,
        n_train=n_train,
        n_test=max(128, n_train // 2),
        hw=16,
        noise=noise,
        seed=seed,
    )
    points: list[AccuracyPoint] = []
    for label, fmt in [
        ("dense", None),
        ("1:4", SUPPORTED_FORMATS["1:4"]),
        ("1:8", SUPPORTED_FORMATS["1:8"]),
        ("1:16", SUPPORTED_FORMATS["1:16"]),
    ]:
        model = build_small_cnn(n_classes, fmt, seed=seed)
        result = train_model(model, data, epochs=epochs, seed=seed)
        nm_ok = True
        if fmt is not None:
            for layer in model.layers:
                if isinstance(layer, (SparseConv2d, SparseLinear)):
                    w = layer.dense_weight()
                    nm_ok &= is_nm_sparse(w.reshape(w.shape[0], -1), fmt)
        points.append(AccuracyPoint(label, result.test_accuracy, nm_ok))

    table = Table(
        "Accuracy trend under SR-STE N:M training (synthetic data)",
        ["pattern", "test accuracy", "weights N:M-compliant"],
    )
    for p in points:
        table.add_row(
            pattern=p.label,
            **{
                "test accuracy": p.accuracy,
                "weights N:M-compliant": str(p.weights_are_nm),
            },
        )
    return table, points
