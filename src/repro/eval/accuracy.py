"""Accuracy-trend experiment (Table 2's accuracy columns, at small scale).

CIFAR-scale training is outside the offline scope, so the trend the
paper relies on — N:M pruning at 1:4 costs ~nothing, 1:8 little, 1:16 a
small drop — is reproduced with SR-STE training (the paper's Sec. 5.1
scheme) of a small CNN on the synthetic dataset.  The *mechanism* is
identical: magnitude masks refreshed every step, SR-STE gradients, and
the resulting weights are genuinely N:M sparse and deployable through
the compiler.

Each trained model is additionally *deployed*: exported into the IR
(:func:`sequential_to_graph`), post-training-quantised, and evaluated
on the test set through the batched int8
:class:`~repro.engine.InferenceEngine` — so the trend table also shows
the accuracy the integer kernels actually deliver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.ir import Graph
from repro.engine import get_default_engine
from repro.models.quantize import quantize_graph
from repro.sparsity.nm import NMFormat, SUPPORTED_FORMATS
from repro.sparsity.stats import is_nm_sparse
from repro.train.data import SyntheticDataset, make_synthetic_dataset
from repro.train.nn import AvgPool2x2, Flatten, Linear, ReLU, Sequential
from repro.train.srste import SparseConv2d, SparseLinear
from repro.train.nn import Conv2d
from repro.train.trainer import train_model
from repro.utils.tables import Table

__all__ = [
    "AccuracyPoint",
    "accuracy_trend",
    "build_small_cnn",
    "sequential_to_graph",
    "deployed_int8_accuracy",
]


@dataclass
class AccuracyPoint:
    """Result of one training configuration."""

    label: str
    accuracy: float
    weights_are_nm: bool
    #: Test accuracy of the quantised deployment, evaluated through the
    #: batched int8 engine.
    int8_accuracy: float = float("nan")


def build_small_cnn(
    n_classes: int, fmt: NMFormat | None, seed: int = 0
) -> Sequential:
    """A small conv-pool-fc network; conv2 and fc1 carry the sparsity.

    conv1 keeps C=3 (reduce dim 27, no pattern fits) — mirroring the
    paper's dense stem.  Widths are chosen with capacity to spare, the
    regime in which the paper's models live (mild N:M costs ~nothing).
    """
    conv2: object
    fc1: object
    if fmt is None:
        conv2 = Conv2d(32, 32, seed=seed + 1)
        fc1 = Linear(32 * 4 * 4, 96, seed=seed + 2)
    else:
        conv2 = SparseConv2d(32, 32, fmt, seed=seed + 1)
        fc1 = SparseLinear(32 * 4 * 4, 96, fmt, seed=seed + 2)
    return Sequential(
        Conv2d(3, 32, seed=seed),
        ReLU(),
        AvgPool2x2(),
        conv2,
        ReLU(),
        AvgPool2x2(),
        Flatten(),
        fc1,
        ReLU(),
        Linear(96, n_classes, seed=seed + 3),
    )


def sequential_to_graph(
    model: Sequential, input_shape: tuple[int, ...], name: str = "model"
) -> Graph:
    """Export a trained :class:`Sequential` into the deployment IR.

    Handles the layer kinds the trend harness uses (conv / dense — in
    both plain and SR-STE-sparse form — ReLU, 2x2 average pooling and
    flatten); sparse layers export their *masked* weights, so the
    resulting graph is genuinely N:M sparse.
    """
    g = Graph(name)
    x = g.add_input("in", tuple(input_shape))
    for i, layer in enumerate(model.layers):
        if isinstance(layer, (Conv2d, SparseConv2d)):
            inner = layer.inner if isinstance(layer, SparseConv2d) else layer
            w = (
                layer.dense_weight()
                if isinstance(layer, SparseConv2d)
                else inner.weight.data
            )
            x = g.add_conv2d(
                f"conv{i}",
                x,
                w.astype(np.float32),
                bias=inner.bias.data.astype(np.float32),
                s=1,
                p=inner.pad,
            )
        elif isinstance(layer, (Linear, SparseLinear)):
            inner = layer.inner if isinstance(layer, SparseLinear) else layer
            w = (
                layer.dense_weight()
                if isinstance(layer, SparseLinear)
                else inner.weight.data
            )
            x = g.add_dense(
                f"fc{i}",
                x,
                w.astype(np.float32),
                bias=inner.bias.data.astype(np.float32),
            )
        elif isinstance(layer, ReLU):
            x = g.add_elementwise(f"relu{i}", "relu", x)
        elif isinstance(layer, AvgPool2x2):
            x = g.add_avgpool(f"pool{i}", x)
        elif isinstance(layer, Flatten):
            x = g.add_flatten(f"flat{i}", x)
        else:
            raise ValueError(f"cannot export layer {type(layer).__name__}")
    g.validate()
    return g


def deployed_int8_accuracy(
    model: Sequential,
    data: SyntheticDataset,
    n_calib: int = 8,
    batch: int = 256,
    name: str = "model",
) -> float:
    """Quantise the exported model and score it with the batched engine.

    Exports ``model`` to a graph, runs post-training int8 quantisation
    on ``n_calib`` training samples, then evaluates top-1 accuracy on
    the test set in ``batch``-sized chunks through the int8 engine.
    """
    graph = sequential_to_graph(model, data.x_train.shape[1:], name=name)
    calib = [data.x_train[i] for i in range(min(n_calib, len(data.x_train)))]
    quantize_graph(graph, calib)
    engine = get_default_engine()
    correct = 0
    for i in range(0, len(data.x_test), batch):
        logits = engine.run_batch(graph, data.x_test[i : i + batch], mode="int8")
        correct += int(
            (logits.argmax(axis=-1) == data.y_test[i : i + batch]).sum()
        )
    return correct / len(data.x_test)


def accuracy_trend(
    epochs: int = 8,
    seed: int = 0,
    n_classes: int = 8,
    n_train: int = 512,
    noise: float = 1.1,
) -> tuple[Table, list[AccuracyPoint]]:
    """Train dense and 1:4/1:8/1:16 models; report accuracies.

    Returns the rendered table plus the raw points (used by tests and
    the benchmark harness to check the ordering claim).
    """
    data = make_synthetic_dataset(
        n_classes=n_classes,
        n_train=n_train,
        n_test=max(128, n_train // 2),
        hw=16,
        noise=noise,
        seed=seed,
    )
    points: list[AccuracyPoint] = []
    for label, fmt in [
        ("dense", None),
        ("1:4", SUPPORTED_FORMATS["1:4"]),
        ("1:8", SUPPORTED_FORMATS["1:8"]),
        ("1:16", SUPPORTED_FORMATS["1:16"]),
    ]:
        model = build_small_cnn(n_classes, fmt, seed=seed)
        result = train_model(model, data, epochs=epochs, seed=seed)
        nm_ok = True
        if fmt is not None:
            for layer in model.layers:
                if isinstance(layer, (SparseConv2d, SparseLinear)):
                    w = layer.dense_weight()
                    nm_ok &= is_nm_sparse(w.reshape(w.shape[0], -1), fmt)
        int8_acc = deployed_int8_accuracy(model, data, name=f"cnn-{label}")
        points.append(
            AccuracyPoint(label, result.test_accuracy, nm_ok, int8_acc)
        )

    table = Table(
        "Accuracy trend under SR-STE N:M training (synthetic data)",
        ["pattern", "test accuracy", "int8 accuracy", "weights N:M-compliant"],
    )
    for p in points:
        table.add_row(
            pattern=p.label,
            **{
                "test accuracy": p.accuracy,
                "int8 accuracy": p.int8_accuracy,
                "weights N:M-compliant": str(p.weights_are_nm),
            },
        )
    return table, points
