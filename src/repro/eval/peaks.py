"""Sec. 4 analytical peaks: MACs/instruction/core for every kernel.

All figures derive from the microcode-verified inner-loop instruction
counts; the dense-equivalent columns multiply by the sparsity factor M,
exactly as the paper quotes (1.4 / 2.88 / 5.76 for SW conv, 2.64 /
5.28 / 10.56 for ISA conv, etc.).
"""

from __future__ import annotations

from repro.kernels.microcode import INNER_BODY_LENGTH
from repro.utils.tables import Table

__all__ = ["peaks_table", "peak_macs_per_instruction"]

#: effective (non-zero) MACs per inner iteration.
_MACS_PER_ITER = {
    ("conv", "dense-4x2"): 32,
    ("conv", "dense-1x2"): 8,
    ("conv", "sparse-sw"): 8,
    ("conv", "sparse-isa"): 8,
    ("fc", "dense"): 8,
    ("fc", "sparse-sw"): 4,
    ("fc", "sparse-isa"): 8,
}


def peak_macs_per_instruction(
    kind: str, variant: str, m: int | None = None
) -> float:
    """Peak effective MACs per instruction of one kernel family."""
    key = (kind, variant) if m is None else (kind, variant, m)
    instrs = INNER_BODY_LENGTH[key]
    return _MACS_PER_ITER[(kind, variant)] / instrs


def peaks_table() -> Table:
    """All kernel peaks, effective and dense-equivalent."""
    table = Table(
        "Theoretical peaks (MACs/instruction/core), Sec. 4",
        ["kind", "variant", "M", "instr/iter", "peak", "dense-equivalent"],
    )
    for key, instrs in INNER_BODY_LENGTH.items():
        kind, variant = key[0], key[1]
        m = key[2] if len(key) == 3 else None
        macs = _MACS_PER_ITER[(kind, variant)]
        peak = macs / instrs
        table.add_row(
            kind=kind,
            variant=variant,
            M=m or "-",
            **{
                "instr/iter": instrs,
                "peak": peak,
                "dense-equivalent": peak * (m or 1),
            },
        )
    return table
