"""Experiment harness: one module per paper table/figure.

Each module exposes functions returning :class:`repro.utils.tables.Table`
objects whose rows mirror the paper's artifacts, alongside the paper's
reported values (:mod:`repro.eval.paper_values`) so every benchmark
prints paper-vs-measured side by side.  EXPERIMENTS.md records the
resulting comparisons.
"""

from repro.eval.fig8 import fig8_conv, fig8_fc
from repro.eval.table2 import table2_resnet, table2_vit
from repro.eval.table3 import table3_sota
from repro.eval.formats import format_memory_table, fig1_demo
from repro.eval.peaks import peaks_table
from repro.eval.accuracy import accuracy_trend
from repro.eval.extensions import (
    energy_table,
    mixed_sparsity_table,
    unstructured_comparison_table,
    double_buffering_table,
)

__all__ = [
    "fig8_conv",
    "fig8_fc",
    "table2_resnet",
    "table2_vit",
    "table3_sota",
    "format_memory_table",
    "fig1_demo",
    "peaks_table",
    "accuracy_trend",
    "energy_table",
    "mixed_sparsity_table",
    "unstructured_comparison_table",
    "double_buffering_table",
]
