"""Extension experiments beyond the paper's evaluation.

Three studies implementing the paper's stated future work and one
comparator it cites but does not measure:

- **E-EXT-ENERGY** — per-layer and end-to-end energy estimates
  (Sec. 6: "estimation of the energy savings achieved by our kernels");
- **E-EXT-MIXED** — per-stage variable sparsity schedules on ResNet18
  (Sec. 6: "variable sparsity patterns, e.g. per-layer");
- **E-EXT-UNSTRUCTURED** — N:M kernels vs an unstructured CSR kernel
  at matched sparsity (the Sec. 2.1/3 argument, made measurable);
- **E-EXT-DBUF** — the double-buffering timeline behind the "weight
  transfers hidden for conv, exposed for FC" claim (Sec. 5.2).
"""

from __future__ import annotations

from repro.compiler.codegen import CompileConfig
from repro.compiler.deploy import deploy
from repro.hw.energy import EnergyParams, conv_layer_energy, fc_layer_energy
from repro.hw.memory import VEGA_MEMORY
from repro.hw.pipeline import double_buffered_cycles, serialized_cycles
from repro.kernels.cost_model import (
    CostParams,
    DEFAULT_PARAMS,
    conv_layer_cycles,
    fc_layer_cycles,
)
from repro.kernels.csr_kernel import csr_fc_layer_cycles
from repro.kernels.shapes import ConvShape, FcShape
from repro.models.resnet import resnet18_cifar, resnet18_cifar_mixed
from repro.sparsity.nm import NMFormat, SUPPORTED_FORMATS
from repro.utils.tables import Table

__all__ = [
    "energy_table",
    "mixed_sparsity_table",
    "unstructured_comparison_table",
    "double_buffering_table",
]


def energy_table(params: CostParams = DEFAULT_PARAMS) -> Table:
    """Per-layer energy at the Fig. 8 conv geometry, all variants."""
    shape = ConvShape(iy=8, ix=8, c=128, k=256)
    table = Table(
        "Energy estimate, conv C=128 K=256 (uJ per layer)",
        ["variant", "fmt", "core uJ", "L1 uJ", "L2 uJ", "total uJ", "pJ/MAC", "vs dense"],
    )
    dense = conv_layer_energy(shape, "dense-4x2", params=params)
    cases = [("dense-4x2", None), ("dense-1x2", None)]
    for fmt_name in ("1:4", "1:8", "1:16"):
        cases.append(("sparse-sw", fmt_name))
        cases.append(("sparse-isa", fmt_name))
    for variant, fmt_name in cases:
        fmt = SUPPORTED_FORMATS[fmt_name] if fmt_name else None
        e = conv_layer_energy(shape, variant, fmt, params)
        table.add_row(
            variant=variant,
            fmt=fmt_name or "-",
            **{
                "core uJ": e.core / 1e6,
                "L1 uJ": e.l1 / 1e6,
                "L2 uJ": e.l2 / 1e6,
                "total uJ": e.total_uj,
                "pJ/MAC": e.pj_per_mac,
                "vs dense": dense.total_pj / e.total_pj,
            },
        )
    return table


#: The mixed schedules studied: mild early stages, aggressive deep ones.
MIXED_SCHEDULES: dict[str, tuple[NMFormat | None, ...]] = {
    "uniform 1:8": tuple([SUPPORTED_FORMATS["1:8"]] * 4),
    "dense/1:4/1:8/1:16": (
        None,
        SUPPORTED_FORMATS["1:4"],
        SUPPORTED_FORMATS["1:8"],
        SUPPORTED_FORMATS["1:16"],
    ),
    "1:4/1:4/1:16/1:16": (
        SUPPORTED_FORMATS["1:4"],
        SUPPORTED_FORMATS["1:4"],
        SUPPORTED_FORMATS["1:16"],
        SUPPORTED_FORMATS["1:16"],
    ),
}


def mixed_sparsity_table(
    params: CostParams = DEFAULT_PARAMS, use_isa: bool = True
) -> Table:
    """Latency/memory of per-stage schedules vs uniform baselines."""
    cfg = CompileConfig(use_isa=use_isa, cost_params=params)
    dense = deploy(resnet18_cifar(), CompileConfig(use_sparse=False, cost_params=params))
    table = Table(
        "Per-stage variable sparsity on ResNet18 (ISA kernels)",
        ["schedule", "Mcycles", "speedup vs dense", "Mem MB"],
    )
    table.add_row(
        schedule="dense (PULP-NN)",
        Mcycles=dense.total_cycles / 1e6,
        **{"speedup vs dense": 1.0, "Mem MB": dense.weight_memory_mb},
    )
    for name, schedule in MIXED_SCHEDULES.items():
        report = deploy(resnet18_cifar_mixed(schedule), cfg)
        table.add_row(
            schedule=name,
            Mcycles=report.total_cycles / 1e6,
            **{
                "speedup vs dense": dense.total_cycles / report.total_cycles,
                "Mem MB": report.weight_memory_mb,
            },
        )
    return table


def unstructured_comparison_table(
    params: CostParams = DEFAULT_PARAMS,
) -> Table:
    """N:M kernels vs an unstructured CSR kernel at matched sparsity.

    The Sec. 2.1 claim quantified: at the same sparsity level, CSR's
    scalar decode loop and 16-bit indices lose to the N:M kernels, and
    at 75% it is even slower than the *dense* baseline.
    """
    shape = FcShape(c=1024, k=256)
    dense = fc_layer_cycles(shape, "dense", params=params).total
    table = Table(
        "Unstructured CSR vs N:M at matched sparsity (FC C=1024, K=256)",
        ["sparsity", "CSR speedup", "N:M SW speedup", "N:M ISA speedup"],
    )
    for fmt_name in ("1:4", "1:8", "1:16"):
        fmt = SUPPORTED_FORMATS[fmt_name]
        csr = csr_fc_layer_cycles(shape, fmt.sparsity, params=params).total
        sw = fc_layer_cycles(shape, "sparse-sw", fmt, params).total
        isa = fc_layer_cycles(shape, "sparse-isa", fmt, params).total
        table.add_row(
            sparsity=f"{100 * fmt.sparsity:.2f}% ({fmt.name})",
            **{
                "CSR speedup": dense / csr,
                "N:M SW speedup": dense / sw,
                "N:M ISA speedup": dense / isa,
            },
        )
    return table


def double_buffering_table(params: CostParams = DEFAULT_PARAMS) -> Table:
    """How much weight-transfer time double-buffering hides.

    Conv tiles (compute-heavy): transfers vanish behind compute.
    FC tiles (memory-bound): even with double-buffering most of the
    stream stays exposed — matching the paper's Sec. 5.2 narrative.
    """
    dma = VEGA_MEMORY.dma
    table = Table(
        "Double-buffering: exposed weight-transfer share",
        ["layer", "policy", "total kcyc", "transfer/compute", "hidden %"],
    )
    tiles = 8
    conv_shape = ConvShape(iy=8, ix=8, c=128, k=256)
    conv_compute = conv_layer_cycles(conv_shape, "dense-4x2", params=params).compute
    fc_shape = FcShape(c=2048, k=256)
    fc_compute = fc_layer_cycles(fc_shape, "dense", params=params).compute
    cases = [
        ("conv C=128 K=256", conv_compute, conv_shape.weight_bytes_dense()),
        ("fc C=2048 K=256", fc_compute, fc_shape.weight_bytes_dense()),
    ]
    for label, compute, weight_bytes in cases:
        per_tile = [compute / tiles] * tiles
        tile_bytes = [weight_bytes / tiles] * tiles
        for name, fn in (
            ("double-buffered", double_buffered_cycles),
            ("serialized", serialized_cycles),
        ):
            tl = fn(per_tile, tile_bytes, dma)
            table.add_row(
                layer=label,
                policy=name,
                **{
                    "total kcyc": tl.total_cycles / 1e3,
                    "transfer/compute": tl.transfer_cycles / tl.compute_cycles,
                    "hidden %": 100 * tl.hiding_efficiency,
                },
            )
    return table
