"""Reference values transcribed from the paper, used for side-by-side
reporting and as tolerance anchors in the benchmark harness.

Sources: Sec. 5.2 text (single-layer averages), Table 2 (end-to-end),
Table 3 (SotA comparison), Secs. 2/4 (memory and peak figures).
"""

from __future__ import annotations

__all__ = [
    "FIG8_CONV_AVG_SPEEDUP",
    "FIG8_FC_AVG_SPEEDUP",
    "TABLE2_RESNET",
    "TABLE2_VIT",
    "TABLE3_ROWS",
    "MEMORY_REDUCTION_SW",
    "MEMORY_REDUCTION_ISA",
]

#: Average single-layer conv speedups vs the dense 1x2 baseline
#: (Sec. 5.2; the 1:4 SW value is "+23% cycles on average").
FIG8_CONV_AVG_SPEEDUP = {
    ("sparse-sw", "1:4"): 1 / 1.23,
    ("sparse-sw", "1:16"): 2.6,
    ("sparse-isa", "1:4"): 1.50,
    ("sparse-isa", "1:8"): 2.4,
    ("sparse-isa", "1:16"): 3.9,
    ("dense-4x2", None): 2.6 / 1.85,  # implied by the two 1:16 quotes
}

#: Average single-layer FC speedups vs the dense baseline (Sec. 5.2).
FIG8_FC_AVG_SPEEDUP = {
    ("sparse-sw", "1:4"): 1.02,
    ("sparse-sw", "1:8"): 1.6,
    ("sparse-sw", "1:16"): 2.3,
    ("sparse-isa", "1:4"): 1.8,
    ("sparse-isa", "1:8"): 2.2,
    ("sparse-isa", "1:16"): 2.9,
}

#: Table 2, ResNet18 / CIFAR-100 rows:
#: variant -> (accuracy %, MAC/cyc, Mcycles, memory MB).
TABLE2_RESNET = {
    ("dense-1x2", None): (75.28, 8.33, 66.63, 11.22),
    ("dense-4x2", None): (75.28, 11.17, 49.71, 11.22),
    ("sparse-sw", "1:4"): (75.78, 8.11, 68.44, 3.66),
    ("sparse-sw", "1:8"): (75.63, 14.78, 37.57, 2.29),
    ("sparse-sw", "1:16"): (73.79, 25.85, 21.48, 1.26),
    ("sparse-isa", "1:4"): (75.78, 14.74, 37.67, 4.35),
    ("sparse-isa", "1:8"): (75.63, 23.12, 24.01, 2.98),
    ("sparse-isa", "1:16"): (73.79, 35.87, 15.48, 1.60),
}

#: Table 2, ViT-Small / CIFAR-10 rows.
TABLE2_VIT = {
    ("dense", None): (95.59, 4.65, 975.23, 21.59),
    ("sparse-sw", "1:4"): (95.73, 4.80, 944.17, 11.86),
    ("sparse-sw", "1:8"): (95.02, 6.31, 718.86, 10.09),
    ("sparse-sw", "1:16"): (95.17, 7.59, 598.04, 8.76),
    ("sparse-isa", "1:4"): (95.73, 6.66, 681.19, 11.86),
    ("sparse-isa", "1:8"): (95.02, 7.48, 606.99, 10.09),
    ("sparse-isa", "1:16"): (95.17, 8.40, 540.23, 8.76),
}

#: Table 3 literature rows: benchmark -> (sparsity, speedup, area %).
#: Speedups marked vs-SW in the paper are noted in the harness.
TABLE3_ROWS = {
    "LeNet (Scalpel)": ("93.28%", 3.51, None),
    "ConvNet (Scalpel)": ("59.9%", 1.38, None),
    "LeNet300 (Scalpel)": ("93.07%", 9.17, None),
    "DS-CNN (dCSR)": ("90%", 1.71, None),
    "ResNet50 (IndexMAC)": ("75%", 1.82, None),
    "DenseNet (IndexMAC)": ("75%", 2.14, None),
    "InceptionV3 (IndexMAC)": ("75%", 1.92, None),
    "spMV (SSSR)": ("95.7%", 5.0, 44.0),
}

#: Sec. 4 weight-memory reductions for the SW layouts.
MEMORY_REDUCTION_SW = {"1:4": 0.6875, "1:8": 0.8125, "1:16": 0.90625}

#: Sec. 4.1.3 reductions with duplicated (ISA conv) offsets.
MEMORY_REDUCTION_ISA = {"1:4": 0.625, "1:8": 0.75, "1:16": 0.875}
