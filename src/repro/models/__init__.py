"""Benchmark model zoo (paper Sec. 5.1).

- :mod:`repro.models.resnet` — ResNet18 for 32x32 CIFAR-style inputs,
  with N:M pruning applied to the 3x3 convolutions (pointwise
  downsample convs stay dense, as in the paper).
- :mod:`repro.models.vit` — ViT-Small for 224x224 inputs, with N:M
  pruning applied to the feed-forward FC layers only.
- :mod:`repro.models.quantize` — post-training int8 quantisation
  (symmetric per-tensor, the Brevitas-substitute).

Weights are randomly initialised (seeded): the latency and memory
numbers depend only on shapes and sparsity patterns, which is what the
deployment experiments measure.  Accuracy trends are reproduced at
small scale by :mod:`repro.train`.
"""

from repro.models.resnet import resnet18_cifar
from repro.models.vit import vit_small
from repro.models.quantize import quantize_graph, calibrate_scales

__all__ = ["resnet18_cifar", "vit_small", "quantize_graph", "calibrate_scales"]
