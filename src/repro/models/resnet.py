"""ResNet18 for CIFAR-style 32x32 inputs (He et al., 2016).

The CIFAR variant: a 3x3 stem (no max-pool), four stages of two basic
blocks with (64, 128, 256, 512) channels, stride-2 transitions with 1x1
downsample convolutions, global average pooling and a linear head.

Matching the paper's Sec. 5.1 configuration, N:M pruning is applied to
every 3x3 convolution whose reduce dimension is divisible by M (the
C=3 stem cannot satisfy any supported pattern), while pointwise
(1x1 downsample) convolutions and the classifier head stay dense —
together the pruned convolutions carry ~97% of parameters and ~98% of
MACs.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.ir import Graph
from repro.sparsity.nm import NMFormat
from repro.sparsity.pruning import prune_conv_weights
from repro.utils.rng import make_rng

__all__ = ["resnet18_cifar", "resnet18_cifar_mixed"]

STAGES = (64, 128, 256, 512)


def _he_conv(rng, k, fy, fx, c):
    std = np.sqrt(2.0 / (fy * fx * c))
    return (rng.normal(0, std, size=(k, fy, fx, c))).astype(np.float32)


def _maybe_prune(w: np.ndarray, fmt: NMFormat | None) -> np.ndarray:
    if fmt is None:
        return w
    if (w.shape[1] * w.shape[2] * w.shape[3]) % fmt.m:
        return w  # pattern cannot apply (e.g. the C=3 stem)
    return prune_conv_weights(w, fmt).astype(np.float32)


def resnet18_cifar(
    num_classes: int = 100,
    fmt: NMFormat | None = None,
    seed: int = 0,
) -> Graph:
    """Build the ResNet18 graph, optionally N:M-pruned.

    Parameters
    ----------
    num_classes:
        Classifier width (100 for the paper's CIFAR-100 setup).
    fmt:
        N:M format applied to the 3x3 convolutions, or None for dense.
    seed:
        Weight initialisation seed.
    """
    rng = make_rng(seed)
    g = Graph(f"resnet18{'-' + fmt.name if fmt else ''}")
    x = g.add_input("input", (32, 32, 3))

    w = _he_conv(rng, 64, 3, 3, 3)
    x = g.add_conv2d("stem", x, _maybe_prune(w, fmt), s=1, p=1)
    x = g.add_elementwise("stem_relu", "relu", x)

    c_in = 64
    for stage, c_out in enumerate(STAGES):
        for block in range(2):
            stride = 2 if (stage > 0 and block == 0) else 1
            prefix = f"s{stage}b{block}"
            identity = x
            w1 = _maybe_prune(_he_conv(rng, c_out, 3, 3, c_in), fmt)
            x = g.add_conv2d(f"{prefix}_conv1", x, w1, s=stride, p=1)
            x = g.add_elementwise(f"{prefix}_relu1", "relu", x)
            w2 = _maybe_prune(_he_conv(rng, c_out, 3, 3, c_out), fmt)
            x = g.add_conv2d(f"{prefix}_conv2", x, w2, s=1, p=1)
            if stride != 1 or c_in != c_out:
                # Pointwise downsample: dense by design (Sec. 5.1).
                wd = _he_conv(rng, c_out, 1, 1, c_in)
                identity = g.add_conv2d(
                    f"{prefix}_down", identity, wd, s=stride, p=0
                )
            x = g.add_add(f"{prefix}_add", x, identity)
            x = g.add_elementwise(f"{prefix}_relu2", "relu", x)
            c_in = c_out

    x = g.add_global_avgpool("pool", x)
    head = rng.normal(0, 0.01, size=(num_classes, 512)).astype(np.float32)
    g.add_dense("head", x, head, bias=np.zeros(num_classes, dtype=np.float32))
    g.validate()
    return g


def resnet18_cifar_mixed(
    stage_formats: tuple[NMFormat | None, NMFormat | None, NMFormat | None, NMFormat | None],
    num_classes: int = 100,
    seed: int = 0,
) -> Graph:
    """ResNet18 with a *per-stage* N:M schedule (paper future work).

    The paper's conclusion proposes studying "variable sparsity
    patterns (e.g. per-layer or per-channel)"; the compiler already
    recognises formats layer by layer, so mixed schedules deploy with
    no further changes.  ``stage_formats`` assigns one format (or None
    for dense) to each of the four stages; the stem stays dense as
    always.  The usual schedule keeps early, parameter-light stages
    mild and pushes the parameter-heavy deep stages to 1:16.
    """
    if len(stage_formats) != len(STAGES):
        raise ValueError(f"need {len(STAGES)} stage formats")
    rng = make_rng(seed)
    label = "/".join(f.name if f else "dense" for f in stage_formats)
    g = Graph(f"resnet18-mixed[{label}]")
    x = g.add_input("input", (32, 32, 3))
    x = g.add_conv2d("stem", x, _he_conv(rng, 64, 3, 3, 3), s=1, p=1)
    x = g.add_elementwise("stem_relu", "relu", x)

    c_in = 64
    for stage, c_out in enumerate(STAGES):
        fmt = stage_formats[stage]
        for block in range(2):
            stride = 2 if (stage > 0 and block == 0) else 1
            prefix = f"s{stage}b{block}"
            identity = x
            w1 = _maybe_prune(_he_conv(rng, c_out, 3, 3, c_in), fmt)
            x = g.add_conv2d(f"{prefix}_conv1", x, w1, s=stride, p=1)
            x = g.add_elementwise(f"{prefix}_relu1", "relu", x)
            w2 = _maybe_prune(_he_conv(rng, c_out, 3, 3, c_out), fmt)
            x = g.add_conv2d(f"{prefix}_conv2", x, w2, s=1, p=1)
            if stride != 1 or c_in != c_out:
                wd = _he_conv(rng, c_out, 1, 1, c_in)
                identity = g.add_conv2d(
                    f"{prefix}_down", identity, wd, s=stride, p=0
                )
            x = g.add_add(f"{prefix}_add", x, identity)
            x = g.add_elementwise(f"{prefix}_relu2", "relu", x)
            c_in = c_out

    x = g.add_global_avgpool("pool", x)
    head = rng.normal(0, 0.01, size=(num_classes, 512)).astype(np.float32)
    g.add_dense("head", x, head, bias=np.zeros(num_classes, dtype=np.float32))
    g.validate()
    return g
