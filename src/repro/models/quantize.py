"""Post-training int8 quantisation (the Brevitas substitute, Sec. 5.1).

Symmetric per-tensor quantisation: each conv/dense node gets

- ``weights_q``: int8 weights, ``round(w / w_scale)`` — zeros stay
  exactly zero, so N:M patterns survive quantisation;
- ``w_scale``: ``max|w| / 127``;
- ``act_scale``: input activation scale from a float calibration pass.

The int8 executor (:func:`repro.compiler.executor.execute_graph` with
``mode="int8"``) consumes these to run the same int32-accumulate
arithmetic as the microcoded kernels.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.executor import execute_graph
from repro.compiler.ir import Graph

__all__ = ["quantize_graph", "calibrate_scales"]

_QUANTIZABLE = ("conv2d", "dense")


def _symmetric_scale(arr: np.ndarray) -> float:
    peak = float(np.abs(arr).max())
    return peak / 127.0 if peak > 0 else 1.0


def calibrate_scales(graph: Graph, samples: list[np.ndarray]) -> dict[str, float]:
    """Per-node input-activation scales from a float calibration run.

    Records, for every quantisable node, the max |input| observed over
    the calibration samples, mapped to an int8 scale.
    """
    if not samples:
        raise ValueError("calibration needs at least one sample")
    peaks: dict[str, float] = {}
    for x in samples:
        _, acts = execute_graph(graph, x, mode="float", return_acts=True)
        for node in graph:
            if node.op not in _QUANTIZABLE:
                continue
            src = acts[node.inputs[0]]
            peaks[node.name] = max(
                peaks.get(node.name, 0.0), float(np.abs(src).max())
            )
    return {
        name: (peak / 127.0 if peak > 0 else 1.0)
        for name, peak in peaks.items()
    }


def quantize_graph(graph: Graph, samples: list[np.ndarray]) -> Graph:
    """Attach int8 quantisation metadata to every conv/dense node.

    Modifies the graph in place and returns it.  Pruned (zero) weights
    quantise to exact zeros, preserving N:M patterns — asserted here as
    a safety net.
    """
    act_scales = calibrate_scales(graph, samples)
    for node in graph:
        if node.op not in _QUANTIZABLE:
            continue
        w = np.asarray(node.attrs["weights"], dtype=np.float64)
        w_scale = _symmetric_scale(w)
        wq = np.clip(np.rint(w / w_scale), -127, 127).astype(np.int8)
        if not ((w == 0) <= (wq == 0)).all():  # pragma: no cover
            raise AssertionError("quantisation broke the sparsity pattern")
        node.attrs["weights_q"] = wq
        node.attrs["w_scale"] = w_scale
        node.attrs["act_scale"] = act_scales[node.name]
    return graph
