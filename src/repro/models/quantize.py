"""Post-training int8 quantisation (the Brevitas substitute, Sec. 5.1).

Symmetric per-tensor quantisation: each conv/dense node gets

- ``weights_q``: int8 weights, ``round(w / w_scale)`` — zeros stay
  exactly zero, so N:M patterns survive quantisation;
- ``w_scale``: ``max|w| / 127``;
- ``act_scale``: input activation scale from a float calibration pass.

Calibration runs the samples **batched** through the
:class:`~repro.engine.InferenceEngine` (plan compiled once, samples
processed in memory-bounded chunks), and the int8 engine mode consumes
the attached metadata to run the same int32-accumulate arithmetic as
the microcoded kernels.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.compiler.ir import Graph
from repro.engine import get_default_engine

__all__ = ["quantize_graph", "calibrate_scales"]

_QUANTIZABLE = ("conv2d", "dense")

#: Calibration batch chunk: bounds activation memory during the
#: calibration sweep without changing the observed peaks.
_CALIB_CHUNK = 32

#: Monotonic stamp source for ``graph._quant_version`` — lets engine
#: plan caches detect (re-)quantisation without comparing object ids.
_QUANT_VERSIONS = itertools.count(1)


def _symmetric_scale(arr: np.ndarray) -> float:
    peak = float(np.abs(arr).max())
    return peak / 127.0 if peak > 0 else 1.0


def calibrate_scales(graph: Graph, samples: list[np.ndarray]) -> dict[str, float]:
    """Per-node input-activation scales from a float calibration run.

    Records, for every quantisable node, the max |input| observed over
    the calibration samples, mapped to an int8 scale.  The samples run
    batched through the engine's compiled float plan, in chunks of
    ``_CALIB_CHUNK`` so activation memory stays bounded.
    """
    if not samples:
        raise ValueError("calibration needs at least one sample")
    batch = np.stack([np.asarray(s) for s in samples]).astype(np.float32)
    engine = get_default_engine()
    watched = [
        (node.name, node.inputs[0])
        for node in graph
        if node.op in _QUANTIZABLE
    ]
    # Chunked so memory stays bounded by one chunk's activations (the
    # per-node max folds across chunks to the same peak).
    peaks: dict[str, float] = {}
    for i in range(0, len(batch), _CALIB_CHUNK):
        _, acts = engine.run_batch(
            graph, batch[i : i + _CALIB_CHUNK], mode="float", return_acts=True
        )
        for name, src in watched:
            peak = float(np.abs(acts[src]).max())
            peaks[name] = max(peaks.get(name, 0.0), peak)
    return {
        name: (peak / 127.0 if peak > 0 else 1.0)
        for name, peak in peaks.items()
    }


def quantize_graph(graph: Graph, samples: list[np.ndarray]) -> Graph:
    """Attach int8 quantisation metadata to every conv/dense node.

    Modifies the graph in place and returns it.  Pruned (zero) weights
    quantise to exact zeros, preserving N:M patterns — asserted here as
    a safety net.  Engines notice the new metadata on their next
    ``mode="int8"`` compile-cache lookup (the quantisation signature
    changes), so stale int8 fallback plans recompile automatically —
    on every engine, while cached float plans stay valid.
    """
    act_scales = calibrate_scales(graph, samples)
    for node in graph:
        if node.op not in _QUANTIZABLE:
            continue
        w = np.asarray(node.attrs["weights"], dtype=np.float64)
        w_scale = _symmetric_scale(w)
        wq = np.clip(np.rint(w / w_scale), -127, 127).astype(np.int8)
        if not ((w == 0) <= (wq == 0)).all():  # pragma: no cover
            raise AssertionError("quantisation broke the sparsity pattern")
        node.attrs["weights_q"] = wq
        node.attrs["w_scale"] = w_scale
        node.attrs["act_scale"] = act_scales[node.name]
    graph._quant_version = next(_QUANT_VERSIONS)
    return graph
