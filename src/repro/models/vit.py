"""ViT-Small for 224x224 inputs (Dosovitskiy et al., 2020).

Configuration: patch 16 (196 tokens), embed dim 384, depth 12, 6 heads,
MLP ratio 4.  Matching the paper's Sec. 5.1 setup, N:M pruning applies
*only* to the two FC layers of each feed-forward block (~65% of
parameters, ~60% of operations); attention projections and everything
else stay dense.  The class token is replaced by mean pooling over
tokens — a standard head variant that keeps the token count at 196
without changing any of the sparsified layers.

Attention blocks are deployed through the Deeploy fallback path (the
paper computes ViT latency layer-by-layer with Deeploy for attention
and MATCH for the feed-forward layers).
"""

from __future__ import annotations

import numpy as np

from repro.compiler.ir import Graph
from repro.sparsity.nm import NMFormat
from repro.sparsity.pruning import prune_fc_weights
from repro.utils.rng import make_rng

__all__ = ["vit_small", "VIT_SMALL_CONFIG"]

#: The ViT-Small hyper-parameters used throughout the evaluation.
VIT_SMALL_CONFIG = {
    "img": 224,
    "patch": 16,
    "dim": 384,
    "depth": 12,
    "heads": 6,
    "mlp_ratio": 4,
}


def _linear(rng, k, c, std=None):
    std = std or np.sqrt(2.0 / c)
    return rng.normal(0, std, size=(k, c)).astype(np.float32)


def vit_small(
    num_classes: int = 10,
    fmt: NMFormat | None = None,
    seed: int = 0,
    depth: int | None = None,
) -> Graph:
    """Build the ViT-Small graph, optionally with N:M-pruned FFNs.

    Parameters
    ----------
    num_classes:
        Classifier width (10 for the paper's CIFAR-10 setup).
    fmt:
        N:M format for the feed-forward FC layers, or None for dense.
    seed:
        Weight initialisation seed.
    depth:
        Override the number of encoder layers (useful for tests).
    """
    cfg = dict(VIT_SMALL_CONFIG)
    if depth is not None:
        cfg["depth"] = depth
    rng = make_rng(seed)
    dim = cfg["dim"]
    hidden = dim * cfg["mlp_ratio"]

    g = Graph(f"vit-small{'-' + fmt.name if fmt else ''}")
    x = g.add_input("input", (cfg["img"], cfg["img"], 3))

    # Patch embedding: a patch x patch stride-patch convolution.
    wp = rng.normal(
        0, 0.02, size=(dim, cfg["patch"], cfg["patch"], 3)
    ).astype(np.float32)
    x = g.add_conv2d("patch_embed", x, wp, s=cfg["patch"], p=0)
    x = g.add_tokens("to_tokens", x)

    ones = np.ones(dim, dtype=np.float32)
    zeros = np.zeros(dim, dtype=np.float32)
    for layer in range(cfg["depth"]):
        prefix = f"l{layer}"
        identity = x
        x = g.add_layernorm(f"{prefix}_ln1", x, ones, zeros)
        x = g.add_attention(
            f"{prefix}_attn",
            x,
            wq=_linear(rng, dim, dim, 0.02),
            wk=_linear(rng, dim, dim, 0.02),
            wv=_linear(rng, dim, dim, 0.02),
            wo=_linear(rng, dim, dim, 0.02),
            heads=cfg["heads"],
        )
        x = g.add_add(f"{prefix}_res1", x, identity)
        identity = x
        x = g.add_layernorm(f"{prefix}_ln2", x, ones, zeros)
        w1 = _linear(rng, hidden, dim)
        w2 = _linear(rng, dim, hidden)
        if fmt is not None:
            w1 = prune_fc_weights(w1, fmt).astype(np.float32)
            w2 = prune_fc_weights(w2, fmt).astype(np.float32)
        x = g.add_dense(f"{prefix}_fc1", x, w1)
        x = g.add_elementwise(f"{prefix}_gelu", "gelu", x)
        x = g.add_dense(f"{prefix}_fc2", x, w2)
        x = g.add_add(f"{prefix}_res2", x, identity)

    # Mean-pool tokens, then classify.
    x = g.add_layernorm("final_ln", x, ones, zeros)
    x = g.add_token_mean("token_mean", x)
    g.add_dense(
        "head",
        x,
        _linear(rng, num_classes, dim, 0.01),
        bias=np.zeros(num_classes, dtype=np.float32),
    )
    g.validate()
    return g
