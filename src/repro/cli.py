"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro fig8 conv
    python -m repro fig8 fc
    python -m repro table2 resnet
    python -m repro table2 vit
    python -m repro table3
    python -m repro peaks
    python -m repro memory
    python -m repro ablations
    python -m repro extensions
    python -m repro accuracy [--epochs N]
    python -m repro engine [--batch N] [--mode float|int8]
    python -m repro engine --sparse [--fmt 1:4|1:8|1:16] [--mode M] [--batch N]
    python -m repro engine --sparse --backend sw|isa|auto [--model demo|resnet18|vit]
    python -m repro engine --sparse --select-fmt [--budget B] [--batch N]
    python -m repro engine --autotune-k-chunk [--batch N]
    python -m repro serve [--host H] [--port P] [--workers N] [--max-weight-mb M]
    python -m repro loadgen [--requests N] [--qps Q] [--connect H:P]
    python -m repro loadgen --workers 2 --model A,B [--verify-identity]
    python -m repro loadgen --workers 2 --trace out.json [--stats-json S]
    python -m repro perfgate [--write] [--threshold PCT] [--window N]
    python -m repro check [--model demo|resnet18|vit] [--backend B] [--json]
    python -m repro lint [--rule ID] [--json] [paths ...]

Each command prints the corresponding table(s) with the paper's values
alongside where applicable.  ``table2 --verify`` additionally runs a
random batch through the batched inference engine in float and int8
modes and reports their agreement; ``engine`` benchmarks batched
against per-sample execution, and ``engine --sparse`` compares the
sparse and dense plans of an N:M-pruned demo model in ``--mode`` int8
or float (exiting non-zero unless int8 is bit-identical / float is
within the documented tolerance — the CI sparse-smoke gates).
``engine --sparse --select-fmt`` runs the cost model's per-layer
format selection on the mixed-format demo model and exits non-zero
unless the selected plan beats the fixed-1:4 packing on weight bytes
(and, at ``--budget 0``, matches the dense plan).  ``engine --sparse
--backend isa|auto`` compiles the sparse plan through the
ISA-extension emulation backend (or the cost model's per-layer
sw/isa/dense ranking) and additionally gates against the SW sparse
plan; ``--model resnet18|vit`` swaps the demo graph for the pruned
paper models.  ``engine --autotune-k-chunk`` sweeps the gather chunk
size on the compiled plan, applies the measured winner, and persists
it to the host-keyed tuning cache consulted by future plan compiles
(advisory — bit-identical across chunk sizes by construction).
``check`` runs the static plan verifier
(:mod:`repro.analyze.plancheck`) over a model's full knob matrix —
modes x sparse x backends — plus the plan-cache-key completeness
check, without serving a single request; ``lint`` runs the project
invariant linter (:mod:`repro.analyze.lint`) over ``src/repro`` (or
the given paths).  Both exit 0 when clean, 1 on error-severity
diagnostics, 2 on usage errors — the CI static-analysis job gates on
them.  Exit-code contracts for every subcommand are documented in
``docs/cli.md``.

``serve`` hosts the demo deployments (``resnet-float`` /
``resnet-int8`` / pruned ``resnet-sparse-int8`` /
``resnet-sparse-float`` / format-selected ``resnet-select-int8``)
behind the JSON-lines TCP front-end with dynamic
micro-batching; ``--workers N`` with N >= 2 shards them across worker
processes that share one copy of the packed weights.  ``loadgen``
replays deterministic synthetic traffic at a target QPS against either
an in-process server (the default — used by the CI smoke job; also
sharded under ``--workers N``) or a running ``repro serve`` via
``--connect``, then prints the run report and metrics snapshot and
exits non-zero if any request was dropped, the metrics are
inconsistent, or ``--verify-identity`` found a response that differs
from the single-process engine reference.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_fig8(args) -> int:
    from repro.eval.fig8 import fig8_conv, fig8_fc

    print((fig8_conv() if args.kind == "conv" else fig8_fc()).render())
    return 0


def _cmd_table2(args) -> int:
    from repro.eval.table2 import functional_check, table2_resnet, table2_vit

    print((table2_resnet() if args.model == "resnet" else table2_vit()).render())
    if args.verify:
        dev = functional_check(model=args.model)
        print(
            f"functional check ({args.model}, engine batch 4): "
            f"max |int8 - float| = {dev:.4f} of float peak"
        )
    return 0


def _cmd_table3(args) -> int:
    from repro.eval.table3 import table3_sota

    print(table3_sota().render())
    return 0


def _cmd_peaks(args) -> int:
    from repro.eval.peaks import peaks_table

    print(peaks_table().render())
    return 0


def _cmd_memory(args) -> int:
    from repro.eval.formats import break_even_table, format_memory_table

    print(format_memory_table().render())
    print()
    print(break_even_table().render())
    return 0


def _cmd_ablations(args) -> int:
    from repro.eval.ablations import (
        im2col_strategy_table,
        layout_interleaving_table,
        offset_duplication_table,
        tiling_awareness_table,
        unrolling_table,
    )

    for table in (
        im2col_strategy_table(),
        offset_duplication_table(),
        tiling_awareness_table(),
        layout_interleaving_table(),
        unrolling_table(),
    ):
        print(table.render())
        print()
    return 0


def _cmd_extensions(args) -> int:
    from repro.eval.extensions import (
        double_buffering_table,
        energy_table,
        mixed_sparsity_table,
        unstructured_comparison_table,
    )

    for table in (
        energy_table(),
        mixed_sparsity_table(),
        unstructured_comparison_table(),
        double_buffering_table(),
    ):
        print(table.render())
        print()
    return 0


def _write_trace(tracer, path: str | None, command: str) -> None:
    """Write a CLI run's trace file (no-op when tracing is off)."""
    if tracer is None or not path:
        return
    from repro.trace import run_manifest

    count = tracer.write(path, manifest=run_manifest({"command": command}))
    dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
    print(f"trace: wrote {count} events{dropped} to {path}")


def _cmd_engine(args) -> int:
    if args.batch < 1:
        print(f"error: --batch must be >= 1, got {args.batch}", file=sys.stderr)
        return 2
    if args.mode is None:
        # The sparse-smoke gates historically default to int8 (the
        # bit-identity contract); everything else defaults to float.
        args.mode = "int8" if (args.sparse or args.autotune_k_chunk) else "float"
    if args.k_chunk is not None:
        from repro.kernels.conv_sparse import set_k_chunk

        try:
            set_k_chunk(args.k_chunk)
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
    if args.autotune_k_chunk or args.select_fmt:
        # These paths measure fixed demo graphs; silently ignoring a
        # requested paper model would fake coverage in CI scripts.
        if args.model != "demo":
            which = "--autotune-k-chunk" if args.autotune_k_chunk else "--select-fmt"
            print(f"error: --model is not supported with {which}", file=sys.stderr)
            return 2
    if args.act_skip != "off":
        if not args.sparse:
            print("error: --act-skip requires --sparse", file=sys.stderr)
            return 2
        if args.autotune_k_chunk or args.select_fmt:
            which = (
                "--autotune-k-chunk" if args.autotune_k_chunk else "--select-fmt"
            )
            print(
                f"error: --act-skip is not supported with {which}",
                file=sys.stderr,
            )
            return 2
    tracer = None
    args.engine = None
    if args.trace:
        from repro.engine.engine import InferenceEngine
        from repro.trace import Tracer

        tracer = Tracer(process_name="repro-engine")
        args.engine = InferenceEngine(trace=tracer)
    if args.autotune_k_chunk:
        rc = _engine_autotune(args)
    elif args.select_fmt:
        if not args.sparse:
            print("error: --select-fmt requires --sparse", file=sys.stderr)
            return 2
        rc = _engine_select(args)
    elif args.sparse:
        rc = _engine_sparse(args)
    elif args.model != "demo":
        print("error: --model requires --sparse", file=sys.stderr)
        return 2
    else:
        rc = _engine_dense(args)
    _write_trace(tracer, args.trace, "engine")
    return rc


def _engine_dense(args) -> int:
    import numpy as np

    from repro.engine.bench import measure_throughput, resnet_style_graph
    from repro.utils.tables import Table

    graph = resnet_style_graph()
    if args.mode == "int8":
        # Attach quantisation metadata so the int8 benchmark exercises
        # the integer kernels rather than the float fallback.
        from repro.models.quantize import quantize_graph

        rng = np.random.default_rng(0)
        quantize_graph(graph, [rng.normal(size=(12, 12, 3)).astype(np.float32)])
    result = measure_throughput(
        graph, batch=args.batch, mode=args.mode, engine=args.engine
    )
    table = Table(
        f"Engine throughput on {result.graph_name} ({result.mode}, "
        f"batch {result.batch})",
        ["path", "latency ms", "samples/s"],
    )
    table.add_row(
        path="per-sample, per-call prep",
        **{
            "latency ms": result.uncached_s * 1e3,
            "samples/s": result.uncached_throughput,
        },
    )
    table.add_row(
        path="per-sample, cached plan",
        **{
            "latency ms": result.per_sample_s * 1e3,
            "samples/s": result.per_sample_throughput,
        },
    )
    table.add_row(
        path="batched plan",
        **{
            "latency ms": result.batched_s * 1e3,
            "samples/s": result.batched_throughput,
        },
    )
    print(table.render())
    print(
        f"batched speedup: {result.speedup:.2f}x vs per-call prep, "
        f"{result.warm_speedup:.2f}x vs cached per-sample loop"
    )
    return 0


def _sparse_model_graph(args, fmt):
    """Resolve ``--model``: None for the demo graph (built inside
    :func:`measure_sparse_throughput`), or a pruned + quantised paper
    model (ResNet18 / ViT-Small)."""
    if args.model == "demo":
        return None
    import numpy as np

    from repro.models.quantize import quantize_graph
    from repro.utils.rng import make_rng

    if args.model == "resnet18":
        from repro.models.resnet import resnet18_cifar

        graph, shape = resnet18_cifar(num_classes=10, fmt=fmt), (32, 32, 3)
    else:
        from repro.models.vit import vit_small

        graph, shape = vit_small(fmt=fmt, depth=1), (224, 224, 3)
    rng = make_rng(0)
    calib = [
        (rng.normal(size=shape) * 0.5).astype(np.float32) for _ in range(3)
    ]
    quantize_graph(graph, calib)
    return graph


def _engine_sparse(args) -> int:
    """Sparse-vs-dense plan comparison on the pruned demo model.

    The CI sparse-smoke jobs run this path: it exits non-zero when the
    sparse plan violates the mode's correctness contract — bit-identity
    for int8, the documented relative tolerance
    (:data:`repro.engine.bench.FLOAT_SPARSE_REL_TOL`) for float — or
    when a float sparse plan silently fell back dense.  With
    ``--backend isa`` / ``--backend auto`` the chosen backend's plan is
    additionally gated against the SW sparse plan (same contract), and
    ``--backend isa`` requires at least one layer bound to the ISA
    emulation kernels.
    """
    from repro.engine.bench import (
        FLOAT_SPARSE_REL_TOL,
        measure_sparse_throughput,
    )
    from repro.sparsity.nm import SUPPORTED_FORMATS
    from repro.utils.tables import Table

    fmt = SUPPORTED_FORMATS[args.fmt]
    result = measure_sparse_throughput(
        fmt,
        batch=args.batch,
        force_method="gather" if args.force_gather else None,
        mode=args.mode,
        backend=args.backend,
        graph=_sparse_model_graph(args, fmt),
        engine=getattr(args, "engine", None),
        act_skip=args.act_skip,
    )
    skip_layers = sum(
        1 for c in result.kernel_choices.values() if c.act_skip
    )
    table = Table(
        f"Sparse vs dense {result.mode} plans on {result.graph_name} "
        f"({result.fmt_name}, backend {result.backend}, "
        f"batch {result.batch}"
        f"{', forced gather' if args.force_gather else ''})",
        ["plan", "latency ms", "samples/s", "weight bytes"],
    )
    table.add_row(
        plan=f"dense {result.mode}",
        **{
            "latency ms": result.dense_s * 1e3,
            "samples/s": result.dense_throughput,
            "weight bytes": result.dense_weight_bytes,
        },
    )
    table.add_row(
        plan=f"sparse {result.mode} ({result.backend})",
        **{
            "latency ms": result.sparse_s * 1e3,
            "samples/s": result.sparse_throughput,
            "weight bytes": result.sparse_weight_bytes,
        },
    )
    if result.backend != "sw":
        table.add_row(
            plan=f"sparse {result.mode} (sw)",
            **{
                "latency ms": result.sw_s * 1e3,
                "samples/s": result.sw_throughput,
                "weight bytes": "-",
            },
        )
    print(table.render())
    print(_kernel_choice_table(result.kernel_choices).render())
    backends = ", ".join(
        f"{n} x {name}" for name, n in sorted(result.backend_layers.items())
    )
    print(
        f"{result.sparse_layers} N:M layers "
        f"({result.gather_layers} gather-bound; {backends}), "
        f"weight memory reduction {result.memory_reduction:.1%}, "
        f"sparse/dense wall-clock {result.speedup:.2f}x"
        + (
            f", vs sw sparse {result.speedup_vs_sw:.2f}x"
            if result.backend != "sw"
            else ""
        )
        + (
            f", {skip_layers} activation-skip layers"
            if args.act_skip != "off"
            else ""
        )
    )
    if args.act_skip == "force" and skip_layers == 0:
        print(
            "error: --act-skip force bound no layer to the "
            "activation-skipping path (no gather-bound layer?)",
            file=sys.stderr,
        )
        return 1
    if result.sparse_layers == 0:
        print(
            "error: no layer was routed sparse (dense fallback)",
            file=sys.stderr,
        )
        return 1
    if args.backend == "isa" and not result.backend_layers.get("sparse-isa"):
        print(
            "error: --backend isa bound no layer to the ISA emulation "
            "kernels",
            file=sys.stderr,
        )
        return 1
    if result.backend != "sw" and not result.matches_sw:
        print(
            f"error: {result.backend} backend output does not match the "
            "sw sparse plan",
            file=sys.stderr,
        )
        return 1
    if result.mode == "int8":
        if not result.identical:
            print(
                "error: sparse plan output is NOT bit-identical to the "
                "dense plan",
                file=sys.stderr,
            )
            return 1
        print(
            "sparse plan output bit-identical to dense plan"
            + (" and to the sw sparse plan" if result.backend != "sw" else "")
            + ": OK"
        )
        return 0
    if not result.within_tolerance:
        print(
            f"error: sparse float deviation {result.max_rel_dev:.2e} of "
            f"peak exceeds the documented tolerance "
            f"{FLOAT_SPARSE_REL_TOL:.0e}",
            file=sys.stderr,
        )
        return 1
    print(
        f"sparse float deviation {result.max_rel_dev:.2e} of peak "
        f"(tolerance {FLOAT_SPARSE_REL_TOL:.0e}): OK"
    )
    return 0


def _engine_autotune(args) -> int:
    """Measure the gather-chunk sweep and apply the winner (advisory).

    Exits non-zero only if outputs diverged across chunk sizes — a
    hard invariant violation, since chunking groups whole output
    channels and can never change numerics.
    """
    from repro.engine.bench import autotune_k_chunk
    from repro.kernels.conv_sparse import set_k_chunk
    from repro.kernels.tuning import save_k_chunk
    from repro.utils.tables import Table

    result = autotune_k_chunk(
        batch=args.batch, mode=args.mode, engine=getattr(args, "engine", None)
    )
    table = Table(
        f"Gather k-chunk sweep on {result.graph_name} ({result.mode}, "
        f"batch {result.batch}, forced gather)",
        ["k_chunk", "latency ms", "samples/s"],
    )
    for chunk, seconds in sorted(result.timings_s.items()):
        table.add_row(
            k_chunk=str(chunk) + (" *" if chunk == result.best else ""),
            **{
                "latency ms": seconds * 1e3,
                "samples/s": result.batch / seconds if seconds else 0.0,
            },
        )
    print(table.render())
    if not result.identical:
        print(
            "error: outputs diverged across chunk sizes (chunking must "
            "be bit-identical)",
            file=sys.stderr,
        )
        return 1
    # Apply the winner so an embedding caller (repro.cli.main from
    # Python) keeps it, and persist it to the host-keyed tuning cache
    # so future plan compiles on this machine pick it up automatically
    # (still advisory: --k-chunk / REPRO_K_CHUNK outrank the cache, and
    # the chunk size never changes numerics).
    set_k_chunk(result.best)
    cache_path = save_k_chunk(result.best)
    print(
        f"best k_chunk: {result.best} "
        f"({result.speedup_vs_default:.2f}x vs previous {result.previous}); "
        f"advisory — export REPRO_K_CHUNK={result.best} or pass "
        f"--k-chunk {result.best} to use it in future runs"
    )
    print(
        f"saved to {cache_path} (host-keyed; consulted automatically "
        "unless --k-chunk or REPRO_K_CHUNK overrides)"
    )
    return 0


def _kernel_choice_table(kernel_choices):
    from repro.utils.tables import Table

    choices = Table(
        "Compile-time kernel choices (sparse plan)",
        [
            "layer",
            "format",
            "method",
            "backend",
            "variant",
            "act skip",
            "weight bytes",
            "loss",
        ],
    )
    for name, c in kernel_choices.items():
        choices.add_row(
            layer=name,
            format=c.fmt or "dense",
            method=c.method,
            backend=c.backend or "-",
            variant=c.variant or "-",
            loss=f"{c.loss:.3f}" if c.loss is not None else "-",
            **{
                "act skip": (
                    f"@{c.act_density:.2f}" if c.act_skip else "-"
                ),
                "weight bytes": c.weight_bytes,
            },
        )
    return choices


def _engine_select(args) -> int:
    """Cost-model format selection vs fixed-1:4 packing (CI gate).

    Exits non-zero unless the selected plan's weight bytes beat the
    fixed-1:4 baseline, every recorded per-layer loss fits the budget,
    the outputs are finite — and, at ``--budget 0`` (lossless), the
    selected plan matches the dense plan (bit-identical for int8,
    within the documented tolerance for float).
    """
    from repro.engine.bench import measure_format_selection
    from repro.utils.tables import Table

    result = measure_format_selection(
        budget=args.budget,
        batch=args.batch,
        mode=args.mode,
        engine=getattr(args, "engine", None),
    )
    table = Table(
        f"Format selection on {result.graph_name} ({result.mode}, "
        f"budget {result.budget:g}, batch {result.batch})",
        ["plan", "weight bytes", "reduction vs fixed"],
    )
    table.add_row(
        plan="dense",
        **{"weight bytes": result.dense_weight_bytes, "reduction vs fixed": "-"},
    )
    table.add_row(
        plan="fixed 1:4",
        **{"weight bytes": result.fixed_weight_bytes, "reduction vs fixed": "0.0%"},
    )
    table.add_row(
        plan="selected",
        **{
            "weight bytes": result.selected_weight_bytes,
            "reduction vs fixed": f"{result.reduction_vs_fixed:.1%}",
        },
    )
    print(table.render())
    print(_kernel_choice_table(result.kernel_choices).render())
    print(
        f"selected plan: {result.selected_weight_bytes} weight bytes "
        f"({result.reduction_vs_fixed:.1%} below fixed 1:4), "
        f"max |Δ| vs dense = {result.max_rel_dev:.2e} of peak, "
        f"sparse/dense wall-clock {result.speedup:.2f}x"
    )
    problems = []
    if result.selected_weight_bytes >= result.fixed_weight_bytes:
        problems.append(
            f"selected plan ({result.selected_weight_bytes} B) does not "
            f"beat the fixed 1:4 packing ({result.fixed_weight_bytes} B)"
        )
    if not result.losses_within_budget:
        problems.append("a layer's recorded loss exceeds the budget")
    if not result.finite:
        problems.append("selected plan produced non-finite outputs")
    if result.budget == 0.0 and not result.within_tolerance:
        problems.append(
            "budget 0 selection must match the dense plan "
            f"(max dev {result.max_rel_dev:.2e} of peak)"
        )
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if problems:
        return 1
    print("format selection gates: OK")
    return 0


def _weight_budget_bytes(args) -> int | None:
    if args.max_weight_mb is None:
        return None
    return int(args.max_weight_mb * 2**20)


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve.batcher import BatchPolicy
    from repro.serve.demo import demo_server
    from repro.serve.errors import WeightBudgetExceeded
    from repro.serve.tcp import serve_tcp

    tracer = None
    if args.trace:
        from repro.trace import Tracer

        tracer = Tracer(process_name="repro-serve")

    async def _serve() -> None:
        server = demo_server(
            policy=BatchPolicy(args.max_batch_size, args.max_wait_ms),
            workers=args.threads,
            max_queue_depth=args.max_queue_depth,
            sparse=not args.no_sparse,
            max_weight_bytes=_weight_budget_bytes(args),
            processes=args.workers,
            tracer=tracer,
            act_skip=args.act_skip,
        )
        async with server:
            tcp = await serve_tcp(server, args.host, args.port)
            host, port = tcp.sockets[0].getsockname()[:2]
            sharding = (
                f"workers={args.workers} processes (shared weights), "
                if args.workers > 1
                else ""
            )
            print(
                f"serving {', '.join(server.registry.names())} "
                f"on {host}:{port} "
                f"({sharding}threads={args.threads}, "
                f"max_batch_size={args.max_batch_size}, "
                f"max_wait_ms={args.max_wait_ms})"
            )
            print(
                "protocol: one JSON object per line — "
                '{"op": "infer", "model": ..., "input": ...} | '
                '{"op": "stats"} | {"op": "describe"} | {"op": "ping"}'
            )
            try:
                await tcp.serve_forever()
            finally:
                tcp.close()
                await tcp.wait_closed()

    try:
        asyncio.run(_serve())
    except WeightBudgetExceeded as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("shutting down")
    _write_trace(tracer, args.trace, "serve")
    return 0


def _verify_identity(models: list[str], outputs: list, args) -> list[str]:
    """Replay the run's deterministic schedule through a fresh
    single-process engine and compare every response bit-for-bit.

    The serving contract — single-process or sharded — is that batching
    and process distribution never change numerics; this is the CLI
    gate for it (the CI multi-worker bit-identity step).  The reference
    registry is deliberately built with ``act_skip="off"``: a run under
    ``--act-skip auto/force`` is then gated against the plain kernels,
    proving the zero-skipping fast path bit-identical end to end rather
    than comparing two skipping stacks against each other.
    """
    import numpy as np

    from repro.serve.demo import demo_registrations
    from repro.serve.loadgen import mixed_schedule
    from repro.serve.registry import ModelRegistry

    registry = ModelRegistry()
    for name, graph, mode, kwargs in demo_registrations(
        sparse=not args.no_sparse
    ):
        if name in models:
            registry.register(name, graph, mode, **kwargs)
    shapes = {name: tuple(registry.get(name).input_shape) for name in models}
    schedule = mixed_schedule(shapes, models, args.requests, seed=args.seed)
    missing = 0
    mismatched = 0
    for (name, x), out in zip(schedule, outputs):
        if out is None:
            missing += 1
            continue
        ref = registry.get(name).run_batch(x[None])[0]
        if not np.array_equal(out, ref):
            mismatched += 1
    problems = []
    if missing:
        problems.append(
            f"identity check: {missing} requests returned no output"
        )
    if mismatched:
        problems.append(
            f"identity check: {mismatched} responses differ from the "
            "single-process engine reference"
        )
    return problems


def _cmd_loadgen(args) -> int:
    import asyncio

    from repro.serve.errors import WeightBudgetExceeded
    from repro.serve.loadgen import run_loadgen
    from repro.utils.tables import Table

    models = [m.strip() for m in args.model.split(",") if m.strip()]
    if not models:
        print("error: --model must name at least one deployment", file=sys.stderr)
        return 2
    if args.connect and args.trace:
        print(
            "error: --trace needs the in-process server (drop --connect)",
            file=sys.stderr,
        )
        return 2
    tracer = None
    if args.trace:
        from repro.trace import Tracer

        tracer = Tracer(process_name="repro-loadgen")
    identity_failures: list[str] = []

    async def _in_process():
        from repro.serve.batcher import BatchPolicy
        from repro.serve.demo import demo_server
        from repro.serve.tcp import snapshot_stats

        server = demo_server(
            policy=BatchPolicy(args.max_batch_size, args.max_wait_ms),
            workers=args.threads,
            sparse=not args.no_sparse,
            max_weight_bytes=_weight_budget_bytes(args),
            processes=args.workers,
            tracer=tracer,
            act_skip=args.act_skip,
        )
        async with server:
            report, outputs = await run_loadgen(
                server,
                models if len(models) > 1 else models[0],
                requests=args.requests,
                qps=args.qps,
                seed=args.seed,
                collect_outputs=args.verify_identity,
            )
            stats = await snapshot_stats(server)
        if args.verify_identity:
            identity_failures.extend(
                _verify_identity(models, outputs, args)
            )
        return report, stats

    async def _over_tcp(host: str, port: int):
        from repro.serve.tcp import TcpServeClient

        async with TcpServeClient(host, port) as client:
            report, _ = await run_loadgen(
                client,
                models if len(models) > 1 else models[0],
                requests=args.requests,
                qps=args.qps,
                seed=args.seed,
            )
            return report, await client.stats()

    if args.connect and args.verify_identity:
        print(
            "error: --verify-identity needs the in-process server "
            "(drop --connect)",
            file=sys.stderr,
        )
        return 2
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        try:
            port_num = int(port)
        except ValueError:
            print(
                f"error: --connect expects HOST:PORT, got {args.connect!r}",
                file=sys.stderr,
            )
            return 2
        report, stats = asyncio.run(_over_tcp(host or "127.0.0.1", port_num))
    else:
        try:
            report, stats = asyncio.run(_in_process())
        except WeightBudgetExceeded as err:
            print(f"error: {err}", file=sys.stderr)
            return 1

    quantiles = report.latency_quantiles()
    table = Table(
        f"Loadgen report ({report.model}, target {report.target_qps:g} qps)",
        ["metric", "value"],
    )
    for metric, value in [
        ("requests sent", report.requests),
        ("succeeded", report.succeeded),
        ("rejected", report.rejected),
        ("failed", report.failed),
        ("duration s", report.duration_s),
        ("achieved qps", report.achieved_qps),
        ("latency p50 ms", quantiles["p50_ms"]),
        ("latency p95 ms", quantiles["p95_ms"]),
        ("latency p99 ms", quantiles["p99_ms"]),
        ("server batches", stats["batches"]["count"]),
        ("server mean batch", stats["batches"]["mean_size"]),
        ("server queue depth", stats["queue_depth"]),
    ]:
        table.add_row(metric=metric, value=value)
    print(table.render())

    _write_trace(tracer, args.trace, "loadgen")
    if args.stats_json:
        import json

        from repro.trace import run_manifest

        payload = {
            "report": report.to_dict(),
            "stats": stats,
            "manifest": run_manifest({"command": "loadgen"}),
        }
        with open(args.stats_json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"stats: wrote report + metrics snapshot to {args.stats_json}")

    # Smoke-check (CI gate): every request served, counters consistent.
    problems = []
    if report.succeeded != report.requests:
        problems.append(
            f"{report.requests - report.succeeded} of {report.requests} "
            "requests not served"
        )
    if not args.connect:
        # The in-process server saw only this run's traffic, so its
        # counters must line up exactly with the report.
        if stats["requests"]["completed"] != report.succeeded:
            problems.append(
                f"metrics completed={stats['requests']['completed']} != "
                f"report succeeded={report.succeeded}"
            )
        if stats["queue_depth"] != 0:
            problems.append(
                f"queue depth {stats['queue_depth']} != 0 after drain"
            )
        if stats["batches"]["count"] < 1:
            problems.append("no batches recorded")
        served = sum(
            int(size) * n
            for size, n in stats["batches"]["histogram"].items()
        )
        if served != report.succeeded:
            problems.append(
                f"batch histogram covers {served} samples != "
                f"{report.succeeded} served"
            )
    problems.extend(identity_failures)
    if args.verify_identity and not identity_failures:
        print(
            f"identity check: all {report.succeeded} responses "
            "bit-identical to the single-process engine reference"
        )
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _cmd_perfgate(args) -> int:
    """Merge BENCH_*.json into TREND.json and gate on QPS regressions.

    Exit codes: 0 — every series within threshold (or trivially
    passing with a single point); 1 — at least one series regressed;
    2 — nothing to gate (no trend file and no BENCH results).
    """
    from repro.trace.trend import (
        DEFAULT_THRESHOLD_PCT,
        DEFAULT_WINDOW,
        evaluate_trend,
        load_trend,
        merge_bench_results,
        save_trend,
    )
    from repro.utils.tables import Table

    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD_PCT
    )
    window = args.window if args.window is not None else DEFAULT_WINDOW
    if threshold <= 0:
        print("error: --threshold must be > 0", file=sys.stderr)
        return 2
    if window < 1:
        print("error: --window must be >= 1", file=sys.stderr)
        return 2
    try:
        trend = load_trend(args.trend)
    except (ValueError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    try:
        added = merge_bench_results(trend, args.results_dir)
    except (ValueError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if not trend.get("series"):
        print(
            f"error: nothing to gate — no series in {args.trend} and no "
            f"BENCH_*.json under {args.results_dir} "
            "(run the perf benchmarks first)",
            file=sys.stderr,
        )
        return 2
    if args.write:
        save_trend(trend, args.trend)
    verdicts = evaluate_trend(trend, threshold_pct=threshold, window=window)
    table = Table(
        f"Perf gate: latest QPS vs trailing median of {window} "
        f"(threshold -{threshold:g}%)",
        ["series", "points", "latest qps", "baseline qps", "change", "verdict"],
    )
    for v in verdicts:
        table.add_row(
            series=v.series,
            points=v.points,
            **{
                "latest qps": f"{v.latest_qps:.1f}",
                "baseline qps": (
                    f"{v.baseline_qps:.1f}" if v.baseline_qps is not None else "-"
                ),
                "change": (
                    f"{v.change_pct:+.1f}%" if v.change_pct is not None else "-"
                ),
                "verdict": "REGRESSED" if v.regressed else "ok",
            },
        )
    print(table.render())
    merged = f"merged {added} new point(s)" + (
        f" into {args.trend}" if args.write else " (in memory; use --write)"
    )
    print(merged)
    regressed = [v for v in verdicts if v.regressed]
    for v in regressed:
        print(
            f"error: {v.series} regressed {v.change_pct:.1f}% "
            f"({v.latest_qps:.1f} qps vs baseline {v.baseline_qps:.1f})",
            file=sys.stderr,
        )
    if regressed:
        return 1
    print(f"perf gate: {len(verdicts)} series within threshold: OK")
    return 0


def _cmd_accuracy(args) -> int:
    from repro.eval.accuracy import accuracy_trend

    table, _ = accuracy_trend(epochs=args.epochs)
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig8", help="single-layer sweeps (Fig. 8)")
    p.add_argument("kind", choices=["conv", "fc"])
    p.set_defaults(func=_cmd_fig8)

    p = sub.add_parser("table2", help="end-to-end deployment (Table 2)")
    p.add_argument("model", choices=["resnet", "vit"])
    p.add_argument(
        "--verify",
        action="store_true",
        help="also run a batch through the engine in float+int8 and report agreement",
    )
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("table3", help="SotA comparison (Table 3)")
    p.set_defaults(func=_cmd_table3)

    p = sub.add_parser("peaks", help="analytical kernel peaks (Sec. 4)")
    p.set_defaults(func=_cmd_peaks)

    p = sub.add_parser("memory", help="format memory comparison (Sec. 2.1)")
    p.set_defaults(func=_cmd_memory)

    p = sub.add_parser("ablations", help="design-choice ablations")
    p.set_defaults(func=_cmd_ablations)

    p = sub.add_parser("extensions", help="future-work extensions")
    p.set_defaults(func=_cmd_extensions)

    p = sub.add_parser("accuracy", help="SR-STE accuracy trend")
    p.add_argument("--epochs", type=int, default=8)
    p.set_defaults(func=_cmd_accuracy)

    p = sub.add_parser(
        "engine", help="batched vs per-sample inference throughput"
    )
    p.add_argument("--batch", type=int, default=32)
    p.add_argument(
        "--mode",
        choices=["float", "int8"],
        default=None,
        help="numeric mode (default: float; int8 with --sparse, "
        "matching the historical sparse-smoke behaviour)",
    )
    p.add_argument(
        "--sparse",
        action="store_true",
        help="compare sparse vs dense plans on the pruned demo model; "
        "exits non-zero unless int8 is bit-identical / float is within "
        "the documented tolerance",
    )
    p.add_argument(
        "--fmt",
        choices=["1:4", "1:8", "1:16"],
        default="1:8",
        help="N:M format of the pruned demo model (with --sparse)",
    )
    p.add_argument(
        "--backend",
        choices=["sw", "isa", "auto"],
        default="sw",
        help="with --sparse: sparse execution backend — sw (software "
        "gather), isa (ISA-extension emulation kernels), or auto "
        "(cost-model per-layer ranking); isa/auto additionally gate "
        "against the sw sparse plan",
    )
    p.add_argument(
        "--model",
        choices=["demo", "resnet18", "vit"],
        default="demo",
        help="with --sparse: graph to measure — the ResNet-style demo "
        "(default), pruned ResNet18, or pruned ViT-Small (depth 1)",
    )
    p.add_argument(
        "--autotune-k-chunk",
        action="store_true",
        help="measure a gather chunk-size sweep on the compiled sparse "
        "plan, print the winner, and apply it via set_k_chunk "
        "(advisory; bit-identical across chunk sizes by construction)",
    )
    p.add_argument(
        "--force-gather",
        action="store_true",
        help="with --sparse: pin every N:M layer to the gather kernel "
        "instead of the cost model's per-layer choice, so the "
        "decimation path is exercised for every format",
    )
    p.add_argument(
        "--select-fmt",
        action="store_true",
        help="with --sparse: run the cost model's per-layer format "
        "selection on the mixed-format demo model against the fixed "
        "1:4 packing; exits non-zero unless it wins on weight bytes "
        "(and, at --budget 0, matches the dense plan)",
    )
    p.add_argument(
        "--budget",
        type=float,
        default=0.0,
        help="per-layer relative weight-energy loss budget of the "
        "format selection (0 = lossless)",
    )
    p.add_argument(
        "--k-chunk",
        type=int,
        default=None,
        help="gather chunk size (output channels per decimation chunk); "
        "overrides the REPRO_K_CHUNK environment variable for this run",
    )
    p.add_argument(
        "--act-skip",
        choices=["off", "auto", "force"],
        default="off",
        help="with --sparse: runtime activation zero-skipping on "
        "gather-bound layers — auto engages per layer when the cost "
        "model deems the measured activation density profitable, force "
        "engages every gather-bound layer; outputs stay bit-identical "
        "either way (the identity gates still apply)",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a chrome-tracing timeline of the run (per-layer "
        "kernel spans, plan compiles, cache hits) to PATH; open in "
        "Perfetto or chrome://tracing",
    )
    p.set_defaults(func=_cmd_engine)

    p = sub.add_parser(
        "serve",
        help="host the demo deployments over TCP with micro-batching",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8707)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker replica processes; >= 2 shards the deployments "
        "across a router + worker processes sharing one copy of the "
        "packed weights (default: 1, classic in-process server)",
    )
    p.add_argument(
        "--threads",
        type=int,
        default=2,
        help="per-worker asyncio execution tasks (default: 2)",
    )
    p.add_argument("--max-batch-size", type=int, default=32)
    p.add_argument("--max-wait-ms", type=float, default=5.0)
    p.add_argument("--max-queue-depth", type=int, default=256)
    p.add_argument(
        "--no-sparse",
        action="store_true",
        help="do not host the pruned resnet-sparse-int8 deployment",
    )
    p.add_argument(
        "--act-skip",
        choices=["off", "auto", "force"],
        default="off",
        help="activation zero-skipping knob of the sparse demo "
        "deployments (calibrated on the demo batch; off for dense "
        "deployments)",
    )
    p.add_argument(
        "--max-weight-mb",
        type=float,
        default=None,
        help="weight-memory budget (MiB) for the registry; the server "
        "refuses to start when the demo deployments' cumulative "
        "plan.weight_bytes() exceed it (exit code 1)",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a chrome-tracing timeline (request/batch spans, "
        "queue-depth counters, per-worker-process tracks) to PATH on "
        "shutdown",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="replay deterministic synthetic traffic at a target QPS",
    )
    p.add_argument(
        "--model",
        default="resnet-int8",
        help="deployment to target; a comma-separated list cycles the "
        "requests round-robin over the named deployments",
    )
    p.add_argument("--requests", type=int, default=100)
    p.add_argument("--qps", type=float, default=200.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="target a running `repro serve` instead of an in-process server",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="in-process server only: worker replica processes; >= 2 "
        "serves through the sharded router with shared weights "
        "(default: 1)",
    )
    p.add_argument(
        "--threads",
        type=int,
        default=2,
        help="in-process server only: per-worker asyncio tasks",
    )
    p.add_argument(
        "--verify-identity",
        action="store_true",
        help="in-process server only: re-run every request through a "
        "fresh single-process engine and exit non-zero unless all "
        "responses are bit-identical (the sharded bit-identity gate)",
    )
    p.add_argument("--max-batch-size", type=int, default=32)
    p.add_argument("--max-wait-ms", type=float, default=5.0)
    p.add_argument(
        "--no-sparse",
        action="store_true",
        help="in-process server only: skip the resnet-sparse-int8 deployment",
    )
    p.add_argument(
        "--act-skip",
        choices=["off", "auto", "force"],
        default="off",
        help="in-process server only: activation zero-skipping knob of "
        "the sparse demo deployments (pairs with --verify-identity for "
        "the skip-path bit-identity gate)",
    )
    p.add_argument(
        "--max-weight-mb",
        type=float,
        default=None,
        help="in-process server only: weight-memory budget (MiB); "
        "exits 1 with the typed rejection when the demo deployments "
        "do not fit (the CI weight-budget smoke)",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="in-process server only: write a chrome-tracing timeline "
        "of the run (request/queue-wait/batch spans, per-layer kernel "
        "spans, queue-depth counters; with --workers >= 2, one track "
        "per worker process) to PATH",
    )
    p.add_argument(
        "--stats-json",
        metavar="PATH",
        default=None,
        help="also dump the loadgen report, server metrics snapshot, "
        "and run manifest as JSON to PATH",
    )
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser(
        "perfgate",
        help="merge BENCH_*.json into TREND.json and gate for regressions",
    )
    p.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="directory holding the BENCH_*.json files (default: "
        "benchmarks/results)",
    )
    p.add_argument(
        "--trend",
        default="benchmarks/results/TREND.json",
        help="TREND.json accumulator to merge into and gate against",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="allowed QPS drop in percent vs the trailing baseline "
        "(default: 30)",
    )
    p.add_argument(
        "--window",
        type=int,
        default=None,
        help="trailing points the baseline median is computed over "
        "(default: 5)",
    )
    p.add_argument(
        "--write",
        action="store_true",
        help="persist the merged trend back to --trend (otherwise the "
        "merge is evaluated in memory only)",
    )
    p.set_defaults(func=_cmd_perfgate)

    p = sub.add_parser(
        "check",
        help="statically verify a model's plans across the knob matrix",
    )
    p.add_argument(
        "--model",
        choices=("demo", "resnet18", "vit"),
        default="demo",
        help="model to verify (default: demo)",
    )
    p.add_argument(
        "--backend",
        choices=("sw", "isa", "auto", "all"),
        default="all",
        help="sparse backend(s) to cover (default: all three)",
    )
    p.add_argument(
        "--fmt",
        choices=("1:4", "1:8", "1:16"),
        default="1:8",
        help="N:M pruning format of the checked model (default: 1:8)",
    )
    p.add_argument(
        "--max-weight-mb",
        type=float,
        default=None,
        help="also check every plan against this weight budget (MiB)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the structured diagnostics as JSON",
    )
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser(
        "lint",
        help="run the project-invariant linter over the source tree",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/repro)",
    )
    p.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="restrict to a rule id (repeatable; default: all rules)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the findings as JSON",
    )
    p.set_defaults(func=_cmd_lint)

    return parser


def _cmd_check(args) -> int:
    """Static plan verification over a model's compile-knob matrix.

    Exit codes: 0 every configuration verified clean, 1 error-severity
    diagnostics were emitted, 2 usage error.
    """
    import json

    from repro.analyze.diagnostics import ERROR
    from repro.analyze.plancheck import check_cache_keys, check_model
    from repro.sparsity.nm import SUPPORTED_FORMATS

    fmt = SUPPORTED_FORMATS[args.fmt]
    if args.model == "demo":
        from repro.engine.bench import _pruned_demo_graph

        graph = _pruned_demo_graph(fmt, seed=0)
    else:
        graph = _sparse_model_graph(args, fmt)
    backends = (
        ("sw", "isa", "auto") if args.backend == "all" else (args.backend,)
    )
    max_bytes = (
        int(args.max_weight_mb * 1024 * 1024)
        if args.max_weight_mb is not None
        else None
    )
    configs = [
        {"mode": mode, "sparse": False, "backend": "sw"}
        for mode in ("float", "int8")
    ] + [
        # act_skip="force" rides the sparse matrix so the verifier's
        # plan-act-skip rule sees actual skip-bound choices.
        {
            "mode": mode,
            "sparse": True,
            "backend": backend,
            "act_skip": act_skip,
        }
        for mode in ("float", "int8")
        for backend in backends
        for act_skip in ("off", "force")
    ]
    diagnostics = []
    results = []
    for cfg in configs:
        diags = check_model(graph, max_weight_bytes=max_bytes, **cfg)
        diagnostics.extend(diags)
        results.append(
            {**cfg, "diagnostics": [d.to_json() for d in diags]}
        )
    key_diags = check_cache_keys()
    diagnostics.extend(key_diags)
    errors = [d for d in diagnostics if d.severity == ERROR]
    if args.json:
        print(
            json.dumps(
                {
                    "model": args.model,
                    "configurations": results,
                    "cache_key": [d.to_json() for d in key_diags],
                    "errors": len(errors),
                    "ok": not errors,
                },
                indent=2,
            )
        )
    else:
        for d in diagnostics:
            print(d.format())
        print(
            f"check: {args.model}: {len(configs)} configurations, "
            f"{len(diagnostics)} diagnostic(s), {len(errors)} error(s)"
        )
    return 1 if errors else 0


def _cmd_lint(args) -> int:
    """Project-invariant linting over the source tree.

    Exit codes: 0 clean, 1 findings, 2 usage error (unknown rule id
    or missing path).
    """
    import json
    from pathlib import Path

    from repro.analyze.lint import lint_paths

    paths = args.paths or ["src/repro"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"lint: no such path(s): {missing}", file=sys.stderr)
        return 2
    try:
        findings = lint_paths(paths, rule_ids=args.rule or None)
    except ValueError as err:
        print(f"lint: {err}", file=sys.stderr)
        return 2
    if args.json:
        print(
            json.dumps(
                {
                    "findings": [d.to_json() for d in findings],
                    "ok": not findings,
                },
                indent=2,
            )
        )
    else:
        for d in findings:
            print(d.format())
        print(f"lint: {len(findings)} finding(s)")
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
