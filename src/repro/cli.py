"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro fig8 conv
    python -m repro fig8 fc
    python -m repro table2 resnet
    python -m repro table2 vit
    python -m repro table3
    python -m repro peaks
    python -m repro memory
    python -m repro ablations
    python -m repro extensions
    python -m repro accuracy [--epochs N]
    python -m repro engine [--batch N] [--mode float|int8]

Each command prints the corresponding table(s) with the paper's values
alongside where applicable.  ``table2 --verify`` additionally runs a
random batch through the batched inference engine in float and int8
modes and reports their agreement; ``engine`` benchmarks batched
against per-sample execution.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_fig8(args) -> int:
    from repro.eval.fig8 import fig8_conv, fig8_fc

    print((fig8_conv() if args.kind == "conv" else fig8_fc()).render())
    return 0


def _cmd_table2(args) -> int:
    from repro.eval.table2 import functional_check, table2_resnet, table2_vit

    print((table2_resnet() if args.model == "resnet" else table2_vit()).render())
    if args.verify:
        dev = functional_check(model=args.model)
        print(
            f"functional check ({args.model}, engine batch 4): "
            f"max |int8 - float| = {dev:.4f} of float peak"
        )
    return 0


def _cmd_table3(args) -> int:
    from repro.eval.table3 import table3_sota

    print(table3_sota().render())
    return 0


def _cmd_peaks(args) -> int:
    from repro.eval.peaks import peaks_table

    print(peaks_table().render())
    return 0


def _cmd_memory(args) -> int:
    from repro.eval.formats import break_even_table, format_memory_table

    print(format_memory_table().render())
    print()
    print(break_even_table().render())
    return 0


def _cmd_ablations(args) -> int:
    from repro.eval.ablations import (
        im2col_strategy_table,
        layout_interleaving_table,
        offset_duplication_table,
        tiling_awareness_table,
        unrolling_table,
    )

    for table in (
        im2col_strategy_table(),
        offset_duplication_table(),
        tiling_awareness_table(),
        layout_interleaving_table(),
        unrolling_table(),
    ):
        print(table.render())
        print()
    return 0


def _cmd_extensions(args) -> int:
    from repro.eval.extensions import (
        double_buffering_table,
        energy_table,
        mixed_sparsity_table,
        unstructured_comparison_table,
    )

    for table in (
        energy_table(),
        mixed_sparsity_table(),
        unstructured_comparison_table(),
        double_buffering_table(),
    ):
        print(table.render())
        print()
    return 0


def _cmd_engine(args) -> int:
    import numpy as np

    from repro.engine.bench import measure_throughput, resnet_style_graph
    from repro.utils.tables import Table

    if args.batch < 1:
        print(f"error: --batch must be >= 1, got {args.batch}", file=sys.stderr)
        return 2
    graph = resnet_style_graph()
    if args.mode == "int8":
        # Attach quantisation metadata so the int8 benchmark exercises
        # the integer kernels rather than the float fallback.
        from repro.models.quantize import quantize_graph

        rng = np.random.default_rng(0)
        quantize_graph(graph, [rng.normal(size=(12, 12, 3)).astype(np.float32)])
    result = measure_throughput(graph, batch=args.batch, mode=args.mode)
    table = Table(
        f"Engine throughput on {result.graph_name} ({result.mode}, "
        f"batch {result.batch})",
        ["path", "latency ms", "samples/s"],
    )
    table.add_row(
        path="per-sample, per-call prep",
        **{
            "latency ms": result.uncached_s * 1e3,
            "samples/s": result.uncached_throughput,
        },
    )
    table.add_row(
        path="per-sample, cached plan",
        **{
            "latency ms": result.per_sample_s * 1e3,
            "samples/s": result.per_sample_throughput,
        },
    )
    table.add_row(
        path="batched plan",
        **{
            "latency ms": result.batched_s * 1e3,
            "samples/s": result.batched_throughput,
        },
    )
    print(table.render())
    print(
        f"batched speedup: {result.speedup:.2f}x vs per-call prep, "
        f"{result.warm_speedup:.2f}x vs cached per-sample loop"
    )
    return 0


def _cmd_accuracy(args) -> int:
    from repro.eval.accuracy import accuracy_trend

    table, _ = accuracy_trend(epochs=args.epochs)
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig8", help="single-layer sweeps (Fig. 8)")
    p.add_argument("kind", choices=["conv", "fc"])
    p.set_defaults(func=_cmd_fig8)

    p = sub.add_parser("table2", help="end-to-end deployment (Table 2)")
    p.add_argument("model", choices=["resnet", "vit"])
    p.add_argument(
        "--verify",
        action="store_true",
        help="also run a batch through the engine in float+int8 and report agreement",
    )
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("table3", help="SotA comparison (Table 3)")
    p.set_defaults(func=_cmd_table3)

    p = sub.add_parser("peaks", help="analytical kernel peaks (Sec. 4)")
    p.set_defaults(func=_cmd_peaks)

    p = sub.add_parser("memory", help="format memory comparison (Sec. 2.1)")
    p.set_defaults(func=_cmd_memory)

    p = sub.add_parser("ablations", help="design-choice ablations")
    p.set_defaults(func=_cmd_ablations)

    p = sub.add_parser("extensions", help="future-work extensions")
    p.set_defaults(func=_cmd_extensions)

    p = sub.add_parser("accuracy", help="SR-STE accuracy trend")
    p.add_argument("--epochs", type=int, default=8)
    p.set_defaults(func=_cmd_accuracy)

    p = sub.add_parser(
        "engine", help="batched vs per-sample inference throughput"
    )
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--mode", choices=["float", "int8"], default="float")
    p.set_defaults(func=_cmd_engine)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
