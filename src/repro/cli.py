"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro fig8 conv
    python -m repro fig8 fc
    python -m repro table2 resnet
    python -m repro table2 vit
    python -m repro table3
    python -m repro peaks
    python -m repro memory
    python -m repro ablations
    python -m repro extensions
    python -m repro accuracy [--epochs N]

Each command prints the corresponding table(s) with the paper's values
alongside where applicable.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_fig8(args) -> int:
    from repro.eval.fig8 import fig8_conv, fig8_fc

    print((fig8_conv() if args.kind == "conv" else fig8_fc()).render())
    return 0


def _cmd_table2(args) -> int:
    from repro.eval.table2 import table2_resnet, table2_vit

    print((table2_resnet() if args.model == "resnet" else table2_vit()).render())
    return 0


def _cmd_table3(args) -> int:
    from repro.eval.table3 import table3_sota

    print(table3_sota().render())
    return 0


def _cmd_peaks(args) -> int:
    from repro.eval.peaks import peaks_table

    print(peaks_table().render())
    return 0


def _cmd_memory(args) -> int:
    from repro.eval.formats import break_even_table, format_memory_table

    print(format_memory_table().render())
    print()
    print(break_even_table().render())
    return 0


def _cmd_ablations(args) -> int:
    from repro.eval.ablations import (
        im2col_strategy_table,
        layout_interleaving_table,
        offset_duplication_table,
        tiling_awareness_table,
        unrolling_table,
    )

    for table in (
        im2col_strategy_table(),
        offset_duplication_table(),
        tiling_awareness_table(),
        layout_interleaving_table(),
        unrolling_table(),
    ):
        print(table.render())
        print()
    return 0


def _cmd_extensions(args) -> int:
    from repro.eval.extensions import (
        double_buffering_table,
        energy_table,
        mixed_sparsity_table,
        unstructured_comparison_table,
    )

    for table in (
        energy_table(),
        mixed_sparsity_table(),
        unstructured_comparison_table(),
        double_buffering_table(),
    ):
        print(table.render())
        print()
    return 0


def _cmd_accuracy(args) -> int:
    from repro.eval.accuracy import accuracy_trend

    table, _ = accuracy_trend(epochs=args.epochs)
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig8", help="single-layer sweeps (Fig. 8)")
    p.add_argument("kind", choices=["conv", "fc"])
    p.set_defaults(func=_cmd_fig8)

    p = sub.add_parser("table2", help="end-to-end deployment (Table 2)")
    p.add_argument("model", choices=["resnet", "vit"])
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("table3", help="SotA comparison (Table 3)")
    p.set_defaults(func=_cmd_table3)

    p = sub.add_parser("peaks", help="analytical kernel peaks (Sec. 4)")
    p.set_defaults(func=_cmd_peaks)

    p = sub.add_parser("memory", help="format memory comparison (Sec. 2.1)")
    p.set_defaults(func=_cmd_memory)

    p = sub.add_parser("ablations", help="design-choice ablations")
    p.set_defaults(func=_cmd_ablations)

    p = sub.add_parser("extensions", help="future-work extensions")
    p.set_defaults(func=_cmd_extensions)

    p = sub.add_parser("accuracy", help="SR-STE accuracy trend")
    p.add_argument("--epochs", type=int, default=8)
    p.set_defaults(func=_cmd_accuracy)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
