"""On-disk serialisation of N:M sparse weights.

A deployment artifact format: one ``.npz`` per model holding, per
layer, the packed values/offsets arrays plus the format metadata needed
to reconstruct an :class:`NMSparseMatrix` (or hand the blobs straight
to a C runtime).  Round-trips exactly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.sparsity.nm import NMFormat, NMSparseMatrix

__all__ = ["save_nm_weights", "load_nm_weights"]

_MAGIC = "repro-nm-v1"


def save_nm_weights(
    path: str | Path, layers: dict[str, NMSparseMatrix]
) -> None:
    """Write a dict of named N:M layers to ``path`` (.npz).

    Stored per layer: the values array (int8 or float32 — the dtype
    survives the round trip), uint8 offsets, and an int metadata triple
    ``(n, m, dense_cols)``.
    """
    if not layers:
        raise ValueError("nothing to save")
    arrays: dict[str, np.ndarray] = {
        "__magic__": np.array([_MAGIC]),
        "__names__": np.array(sorted(layers)),
    }
    for name, mat in layers.items():
        if "/" in name:
            raise ValueError(f"layer name {name!r} may not contain '/'")
        arrays[f"{name}/values"] = mat.values
        arrays[f"{name}/offsets"] = mat.offsets
        arrays[f"{name}/meta"] = np.array(
            [mat.fmt.n, mat.fmt.m, mat.dense_cols], dtype=np.int64
        )
    np.savez_compressed(Path(path), **arrays)


def load_nm_weights(path: str | Path) -> dict[str, NMSparseMatrix]:
    """Load layers written by :func:`save_nm_weights`."""
    with np.load(Path(path), allow_pickle=False) as data:
        if "__magic__" not in data or data["__magic__"][0] != _MAGIC:
            raise ValueError(f"{path} is not a repro N:M weight file")
        out: dict[str, NMSparseMatrix] = {}
        for name in data["__names__"]:
            n, m, dense_cols = (int(v) for v in data[f"{name}/meta"])
            out[str(name)] = NMSparseMatrix(
                values=data[f"{name}/values"],
                offsets=data[f"{name}/offsets"],
                fmt=NMFormat(n, m),
                dense_cols=dense_cols,
            )
        return out
