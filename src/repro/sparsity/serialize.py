"""On-disk serialisation of N:M sparse weights.

A deployment artifact format: one ``.npz`` per model holding, per
layer, the packed values/offsets arrays plus the format metadata needed
to reconstruct an :class:`NMSparseMatrix` (or hand the blobs straight
to a C runtime).  Round-trips exactly.

Two encodings per layer:

- the **logical** layout (the default): unpacked per-value offsets,
  exactly the PR-1 ``repro-nm-v1`` format — old artifacts keep
  loading, new logical saves stay byte-compatible;
- a **kernel** layout (``layouts={name: "isa-conv" | "isa-fc" |
  "sw"}``): the flat padded value array plus the packed OFFSETS byte
  stream a specific MCU kernel family consumes (built by the layout
  packers in :mod:`repro.kernels.microcode`), so a deployment artifact
  can carry the exact bytes the target streams from flash.  Loading
  decodes the stream back through
  :meth:`~repro.sparsity.nm.NMSparseMatrix.from_packed` — which also
  *verifies* it (offset duplication for ``isa-conv``, pair
  de-interleaving for ``isa-fc``, zero-valued padding), so a corrupted
  or mis-tagged artifact fails loudly instead of decoding to garbage.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.sparsity.nm import NMFormat, NMSparseMatrix

__all__ = ["KERNEL_LAYOUTS", "save_nm_weights", "load_nm_weights"]

_MAGIC = "repro-nm-v1"

#: Kernel layout tags a layer may be stored in (beyond the logical
#: default): the SW stream and the two ISA streams of Sec. 4.1.3/4.2.3.
KERNEL_LAYOUTS = ("sw", "isa-conv", "isa-fc")


def _pack_kernel_layout(
    mat: NMSparseMatrix, layout: str
) -> tuple[np.ndarray, np.ndarray, int]:
    # Lazy import: repro.kernels.microcode imports this package's nm
    # module; keeping the dependency call-time-only avoids any cycle.
    from repro.kernels import microcode as mc

    if layout == "sw":
        return mc.pack_sparse_rows_sw(mat)
    if layout == "isa-conv":
        return mc.pack_sparse_rows_isa_conv(mat)
    if layout == "isa-fc":
        return mc.pack_sparse_rows_isa_fc(mat)
    raise ValueError(
        f"unknown kernel layout {layout!r} (expected one of {KERNEL_LAYOUTS})"
    )


def save_nm_weights(
    path: str | Path,
    layers: dict[str, NMSparseMatrix],
    layouts: dict[str, str] | None = None,
) -> None:
    """Write a dict of named N:M layers to ``path`` (.npz).

    Stored per layer: the values array (int8 or float32 — the dtype
    survives the round trip), uint8 offsets, and an int metadata triple
    ``(n, m, dense_cols)``.  Layers named in ``layouts`` are instead
    stored in the given kernel layout: padded values, the packed
    OFFSETS byte stream, a four-entry meta ``(n, m, dense_cols,
    nnz_pad)`` and the layout tag.
    """
    if not layers:
        raise ValueError("nothing to save")
    layouts = layouts or {}
    unknown = set(layouts) - set(layers)
    if unknown:
        raise ValueError(f"layouts name unsaved layers: {sorted(unknown)}")
    arrays: dict[str, np.ndarray] = {
        "__magic__": np.array([_MAGIC]),
        "__names__": np.array(sorted(layers)),
    }
    for name, mat in layers.items():
        if "/" in name:
            raise ValueError(f"layer name {name!r} may not contain '/'")
        layout = layouts.get(name)
        if layout is None:
            arrays[f"{name}/values"] = mat.values
            arrays[f"{name}/offsets"] = mat.offsets
            arrays[f"{name}/meta"] = np.array(
                [mat.fmt.n, mat.fmt.m, mat.dense_cols], dtype=np.int64
            )
        else:
            flat, packed, nnz_pad = _pack_kernel_layout(mat, layout)
            arrays[f"{name}/values"] = flat.reshape(mat.rows, nnz_pad)
            arrays[f"{name}/offsets"] = packed
            arrays[f"{name}/meta"] = np.array(
                [mat.fmt.n, mat.fmt.m, mat.dense_cols, nnz_pad],
                dtype=np.int64,
            )
            arrays[f"{name}/layout"] = np.array([layout])
    np.savez_compressed(Path(path), **arrays)


def load_nm_weights(path: str | Path) -> dict[str, NMSparseMatrix]:
    """Load layers written by :func:`save_nm_weights`.

    Kernel-layout layers are decoded (and verified) back into logical
    :class:`NMSparseMatrix` objects, so a loaded model is usable by
    every backend regardless of the layout it shipped in.
    """
    with np.load(Path(path), allow_pickle=False) as data:
        if "__magic__" not in data or data["__magic__"][0] != _MAGIC:
            raise ValueError(f"{path} is not a repro N:M weight file")
        out: dict[str, NMSparseMatrix] = {}
        for name in data["__names__"]:
            meta = [int(v) for v in data[f"{name}/meta"]]
            n, m, dense_cols = meta[:3]
            fmt = NMFormat(n, m)
            if f"{name}/layout" in data:
                values = data[f"{name}/values"]
                out[str(name)] = NMSparseMatrix.from_packed(
                    values,
                    data[f"{name}/offsets"],
                    fmt,
                    dense_cols,
                    rows=values.shape[0],
                    layout=str(data[f"{name}/layout"][0]),
                )
            else:
                out[str(name)] = NMSparseMatrix(
                    values=data[f"{name}/values"],
                    offsets=data[f"{name}/offsets"],
                    fmt=fmt,
                    dense_cols=dense_cols,
                )
        return out
