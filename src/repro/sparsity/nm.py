"""The N:M packed sparse format (paper Fig. 1, Sec. 2.1 and 4).

A matrix with N:M sparsity has exactly N non-zero entries in every group
of M consecutive elements along each row.  The paper (and this library)
uses N=1 with M in {4, 8, 16}.  Storage is two arrays:

- ``values``: the non-zero weights, shape ``(rows, cols // M * N)`` —
  int8 for quantised deployments (the paper's MCU target) or float32
  for float serving (the value dtype is orthogonal to the offset
  layout: the decimation indices are identical, only the MAC width
  changes);
- ``offsets``: the relative index of each non-zero inside its M-block,
  stored in ``ceil(log2 M)`` bits rounded up to a power of two — 2 bits
  for M=4, 4 bits for M=8 and M=16 — and packed little-endian in bytes.

Two additional layouts feed the ISA-extended kernels (Sec. 4.1.3/4.2.3):

- **duplicated offsets** (conv): every offset appears twice, because the
  ``xDecimate`` instruction advances its block pointer only every second
  execution (the inner loop is unrolled over two im2col buffers);
- **channel-interleaved offsets** (FC): offsets of two consecutive output
  channels are interleaved ``o0_ch0, o0_ch1, o1_ch0, o1_ch1, ...`` so a
  single instruction flavour serves both layer types.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.bitpack import pack_bits, unpack_bits

__all__ = [
    "NMFormat",
    "NMSparseMatrix",
    "FORMAT_1_4",
    "FORMAT_1_8",
    "FORMAT_1_16",
    "SUPPORTED_FORMATS",
    "VALUE_DTYPES",
]


@dataclass(frozen=True)
class NMFormat:
    """An N:M sparsity pattern descriptor.

    Attributes
    ----------
    n:
        Non-zeros per block (always 1 for the paper's kernels).
    m:
        Block size (4, 8 or 16 for the paper's kernels).
    """

    n: int
    m: int

    def __post_init__(self) -> None:
        if self.n < 1 or self.m < 2 or self.n >= self.m:
            raise ValueError(f"invalid N:M format {self.n}:{self.m}")

    @property
    def name(self) -> str:
        """Human-readable name, e.g. ``"1:8"``."""
        return f"{self.n}:{self.m}"

    @property
    def sparsity(self) -> float:
        """Fraction of zero elements (e.g. 0.9375 for 1:16)."""
        return 1.0 - self.n / self.m

    @property
    def density(self) -> float:
        """Fraction of non-zero elements."""
        return self.n / self.m

    @property
    def offset_bits(self) -> int:
        """Storage bits per offset: ``ceil(log2 M)`` rounded to 2 or 4.

        The paper rounds index widths up to the nearest power-of-two
        number of bits so byte-level shift/mask unpacking stays cheap:
        M=4 -> 2 bits, M=8 and M=16 -> 4 bits.
        """
        raw = int(np.ceil(np.log2(self.m)))
        rounded = 1
        while rounded < raw:
            rounded *= 2
        return rounded

    def bits_per_dense_weight(self, duplicate_offsets: bool = False) -> float:
        """Storage bits per *dense-equivalent* weight position.

        This is the quantity MATCH's tiling engine reasons about
        (Sec. 4.4): e.g. 1:4 with duplicated offsets stores 8+4 bits per
        non-zero over 4 dense positions -> 3 bits/weight.
        """
        offset_bits = self.offset_bits * (2 if duplicate_offsets else 1)
        return self.n * (8 + offset_bits) / self.m

    def weight_memory_reduction(self, duplicate_offsets: bool = False) -> float:
        """Fractional reduction vs dense int8 storage.

        Reproduces the Sec. 4 numbers: 68.75% / 81.25% / 90.62% for the
        SW layouts of 1:4 / 1:8 / 1:16, and 62.5% / 75% / 87.5% for the
        ISA layouts with duplicated offsets.
        """
        return 1.0 - self.bits_per_dense_weight(duplicate_offsets) / 8.0

    def packed_bytes(
        self,
        rows: int,
        dense_cols: int,
        value_bytes: int = 1,
        duplicate_offsets: bool = False,
    ) -> int:
        """Exact storage of a ``(rows, dense_cols)`` matrix in this format.

        Matches :meth:`NMSparseMatrix.total_bytes` (values plus packed,
        per-row byte-rounded offsets) without materialising the packing
        — the format selector scores candidate formats with this.
        ``value_bytes`` is the stored value width: 1 for int8, 4 for
        float32.
        """
        if dense_cols % self.m:
            raise ValueError(
                f"dense_cols={dense_cols} not a multiple of M={self.m}"
            )
        nnz = dense_cols // self.m * self.n
        bits = nnz * self.offset_bits * (2 if duplicate_offsets else 1)
        return rows * (nnz * value_bytes + (bits + 7) // 8)


FORMAT_1_4 = NMFormat(1, 4)
FORMAT_1_8 = NMFormat(1, 8)
FORMAT_1_16 = NMFormat(1, 16)

#: The formats the kernel library supports, keyed by name.
SUPPORTED_FORMATS: dict[str, NMFormat] = {
    f.name: f for f in (FORMAT_1_4, FORMAT_1_8, FORMAT_1_16)
}


#: Value dtypes the packed format supports: int8 (quantised MCU
#: deployments) and float32 (float serving).
VALUE_DTYPES = (np.dtype(np.int8), np.dtype(np.float32))


class NMSparseMatrix:
    """An int8 or float32 matrix stored in the N:M packed format.

    Rows correspond to output channels; columns to the flattened reduce
    dimension (``FY*FX*C`` for conv in im2col order, ``C`` for FC).

    Parameters
    ----------
    values:
        Non-zero values, shape ``(rows, cols // M * N)``; int8 or
        float32 (any other dtype is narrowed to int8, the historical
        behaviour).
    offsets:
        Unpacked relative offsets in ``[0, M)``, same shape as
        ``values``, uint8.
    fmt:
        The :class:`NMFormat` descriptor.
    dense_cols:
        Number of columns of the equivalent dense matrix.
    """

    def __init__(
        self,
        values: np.ndarray,
        offsets: np.ndarray,
        fmt: NMFormat,
        dense_cols: int,
    ) -> None:
        values = np.asarray(values)
        if values.dtype not in VALUE_DTYPES:
            values = values.astype(np.int8)
        offsets = np.asarray(offsets, dtype=np.uint8)
        if values.shape != offsets.shape:
            raise ValueError(
                f"values {values.shape} and offsets {offsets.shape} differ"
            )
        if dense_cols % fmt.m != 0:
            raise ValueError(
                f"dense_cols={dense_cols} not a multiple of M={fmt.m}"
            )
        expected = dense_cols // fmt.m * fmt.n
        if values.ndim != 2 or values.shape[1] != expected:
            raise ValueError(
                f"expected values shape (*, {expected}), got {values.shape}"
            )
        if offsets.size and offsets.max() >= fmt.m:
            raise ValueError("offset out of block range")
        self.values = values
        self.offsets = offsets
        self.fmt = fmt
        self.dense_cols = dense_cols

    # -- construction -------------------------------------------------

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        fmt: NMFormat,
        dtype: np.dtype | type = np.int8,
    ) -> "NMSparseMatrix":
        """Encode a dense matrix that satisfies the N:M pattern.

        ``dtype`` selects the stored value width: ``np.int8`` (the
        default, matching the historical int8-only behaviour — float
        inputs are *narrowed*) or ``np.float32`` for the float-serving
        variant.

        Raises
        ------
        ValueError
            If any M-block holds more than N non-zeros.  Blocks with
            *fewer* than N non-zeros are allowed (zeros are stored
            explicitly with offset equal to their position), mirroring
            what a pruned-then-quantised network can produce.
        """
        dtype = np.dtype(dtype)
        if dtype not in VALUE_DTYPES:
            raise ValueError(
                f"unsupported value dtype {dtype} "
                f"(expected one of {[str(d) for d in VALUE_DTYPES]})"
            )
        dense = np.asarray(dense, dtype=dtype)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D matrix")
        rows, cols = dense.shape
        if cols % fmt.m != 0:
            raise ValueError(f"cols={cols} not a multiple of M={fmt.m}")
        blocks = dense.reshape(rows, cols // fmt.m, fmt.m)
        nnz_per_block = (blocks != 0).sum(axis=2)
        if (nnz_per_block > fmt.n).any():
            bad = int((nnz_per_block > fmt.n).sum())
            raise ValueError(
                f"{bad} blocks violate the {fmt.name} pattern "
                f"(max nnz/block = {int(nnz_per_block.max())})"
            )
        # Select the N stored positions per block: non-zeros first (by
        # position), then pad with leading zero positions so every block
        # contributes exactly N entries.  ``order[:, :, :n]`` is a view
        # into ``order`` — sorting it in place would also scramble the
        # slice of ``order`` it aliases, so copy before sorting.
        order = np.argsort(blocks == 0, axis=2, kind="stable")
        keep = order[:, :, : fmt.n].copy()
        keep.sort(axis=2)
        values = np.take_along_axis(blocks, keep, axis=2)
        values = values.reshape(rows, -1)
        offsets = keep.reshape(rows, -1).astype(np.uint8)
        return cls(values, offsets, fmt, cols)

    @classmethod
    def from_packed(
        cls,
        values: np.ndarray,
        packed_offsets: np.ndarray,
        fmt: NMFormat,
        dense_cols: int,
        rows: int,
        layout: str = "sw",
    ) -> "NMSparseMatrix":
        """Decode a kernel-consumable layout back into a matrix.

        The inverse of the layout builders in
        :mod:`repro.kernels.microcode` (``pack_sparse_rows_sw`` /
        ``pack_sparse_rows_isa_conv`` / ``pack_sparse_rows_isa_fc``):
        ``values`` is the flat (or ``(rows, nnz_pad)``) padded value
        array and ``packed_offsets`` the packed OFFSETS byte stream in
        one of the three encodings —

        - ``"sw"``: one offset per stored value;
        - ``"isa-conv"``: every offset duplicated (Sec. 4.1.3; the
          duplication is *verified*, a stream whose pairs disagree is
          rejected);
        - ``"isa-fc"``: offsets of channel pairs interleaved
          (Sec. 4.2.3; requires an even ``rows``).

        Padding entries past the logical NNZ are dropped after checking
        they carry value 0 (a non-zero pad means a corrupt artifact).
        """
        values = np.asarray(values)
        if rows < 1 or values.size % rows:
            raise ValueError(
                f"values of size {values.size} do not split into {rows} rows"
            )
        values = values.reshape(rows, -1)
        nnz_pad = values.shape[1]
        nnz = dense_cols // fmt.m * fmt.n
        if nnz_pad < nnz:
            raise ValueError(
                f"padded nnz {nnz_pad} < logical nnz {nnz} for "
                f"dense_cols={dense_cols} at {fmt.name}"
            )
        if (values[:, nnz:] != 0).any():
            raise ValueError("padding entries carry non-zero values")
        packed = np.asarray(packed_offsets, dtype=np.uint8).reshape(-1)
        if layout == "sw":
            stream_rows, per_row = rows, nnz_pad
        elif layout == "isa-conv":
            stream_rows, per_row = rows, 2 * nnz_pad
        elif layout == "isa-fc":
            if rows % 2:
                raise ValueError("isa-fc layout requires an even row count")
            stream_rows, per_row = rows // 2, 2 * nnz_pad
        else:
            raise ValueError(
                f"unknown layout {layout!r} "
                "(expected 'sw', 'isa-conv' or 'isa-fc')"
            )
        row_bytes = (per_row * fmt.offset_bits + 7) // 8
        if packed.size != stream_rows * row_bytes:
            raise ValueError(
                f"packed offsets of {packed.size} bytes != "
                f"{stream_rows} rows x {row_bytes} bytes ({layout})"
            )
        stream = np.stack(
            [
                unpack_bits(row, fmt.offset_bits, per_row)
                for row in packed.reshape(stream_rows, row_bytes)
            ],
            axis=0,
        )
        if layout == "sw":
            offsets = stream
        elif layout == "isa-conv":
            pairs = stream.reshape(rows, nnz_pad, 2)
            if (pairs[:, :, 0] != pairs[:, :, 1]).any():
                raise ValueError(
                    "isa-conv stream is not entry-duplicated "
                    "(corrupt or mis-tagged layout)"
                )
            offsets = pairs[:, :, 0]
        else:  # isa-fc: de-interleave channel pairs
            offsets = (
                stream.reshape(rows // 2, nnz_pad, 2)
                .transpose(0, 2, 1)
                .reshape(rows, nnz_pad)
            )
        return cls(values[:, :nnz], offsets[:, :nnz], fmt, dense_cols)

    def to_dense(self) -> np.ndarray:
        """Decode back to the dense matrix (same value dtype)."""
        rows = self.values.shape[0]
        n_blocks = self.dense_cols // self.fmt.m
        dense = np.zeros((rows, n_blocks, self.fmt.m), dtype=self.values.dtype)
        vals = self.values.reshape(rows, n_blocks, self.fmt.n)
        offs = self.offsets.reshape(rows, n_blocks, self.fmt.n).astype(np.int64)
        np.put_along_axis(dense, offs, vals, axis=2)
        return dense.reshape(rows, self.dense_cols)

    # -- packed views --------------------------------------------------

    def packed_offsets(self, duplicate: bool = False) -> np.ndarray:
        """Offsets packed into bytes, row-major; the kernels' OFFSETS array.

        With ``duplicate=True`` every offset is emitted twice, producing
        the conv ISA layout (Sec. 4.1.3).
        """
        offs = self.offsets
        if duplicate:
            offs = np.repeat(offs, 2, axis=1)
        return np.stack(
            [pack_bits(row, self.fmt.offset_bits) for row in offs], axis=0
        )

    def packed_offsets_fc_interleaved(self) -> np.ndarray:
        """The FC ISA layout: offsets of channel pairs interleaved.

        Row ``p`` of the result serves output channels ``2p`` and
        ``2p+1`` and holds ``o0_ch2p, o0_ch2p+1, o1_ch2p, o1_ch2p+1,
        ...`` (Fig. 6).  Requires an even number of rows.
        """
        rows = self.offsets.shape[0]
        if rows % 2:
            raise ValueError("FC interleaving requires an even channel count")
        pairs = self.offsets.reshape(rows // 2, 2, -1)
        interleaved = pairs.transpose(0, 2, 1).reshape(rows // 2, -1)
        return np.stack(
            [pack_bits(row, self.fmt.offset_bits) for row in interleaved],
            axis=0,
        )

    @staticmethod
    def unpack_offsets(
        packed_row: np.ndarray, fmt: NMFormat, count: int
    ) -> np.ndarray:
        """Unpack one row of a packed OFFSETS array (inverse helper)."""
        return unpack_bits(packed_row, fmt.offset_bits, count)

    # -- memory accounting ---------------------------------------------

    @property
    def rows(self) -> int:
        """Number of rows (output channels)."""
        return self.values.shape[0]

    @property
    def value_bytes(self) -> int:
        """Storage bytes per stored value (1 for int8, 4 for float32)."""
        return self.values.itemsize

    def values_bytes(self) -> int:
        """Bytes used by the non-zero value array."""
        return self.values.nbytes

    def offsets_bytes(self, duplicate: bool = False) -> int:
        """Bytes used by the packed offsets array."""
        per_row = self.offsets.shape[1] * (2 if duplicate else 1)
        bits = per_row * self.fmt.offset_bits
        return self.rows * ((bits + 7) // 8)

    def total_bytes(self, duplicate_offsets: bool = False) -> int:
        """Total storage (values + packed offsets)."""
        return self.values_bytes() + self.offsets_bytes(duplicate_offsets)

    def dense_bytes(self) -> int:
        """Storage of the equivalent dense matrix (same value dtype)."""
        return self.rows * self.dense_cols * self.value_bytes

    def memory_reduction(self, duplicate_offsets: bool = False) -> float:
        """Measured reduction vs dense; matches the format's analytical
        :meth:`NMFormat.weight_memory_reduction` for block-aligned
        shapes."""
        return 1.0 - self.total_bytes(duplicate_offsets) / self.dense_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NMSparseMatrix({self.fmt.name}, rows={self.rows}, "
            f"dense_cols={self.dense_cols}, dtype={self.values.dtype})"
        )
