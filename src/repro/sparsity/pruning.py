"""Magnitude-based N:M pruning.

The paper executes *already pruned* networks and is explicitly orthogonal
to the pruning strategy (Sec. 2.1).  This module provides the standard
magnitude criterion used by Zhou et al. (2021) — keep the N
largest-magnitude weights in every M-block — which is what the paper's
benchmark models were trained with (combined training+pruning; the
training-time counterpart lives in :mod:`repro.train.srste`).

Conv weights are pruned in the same ``(FY, FX, C)`` flattening order the
im2col buffer uses, so kernel offsets index the buffer directly.
"""

from __future__ import annotations

import numpy as np

from repro.sparsity.nm import NMFormat

__all__ = [
    "nm_prune_mask",
    "nm_prune",
    "prune_conv_weights",
    "prune_fc_weights",
]


def nm_prune_mask(weights: np.ndarray, fmt: NMFormat) -> np.ndarray:
    """Boolean keep-mask enforcing N:M sparsity along the last axis.

    In every group of M consecutive elements the N largest magnitudes
    are kept.  Ties break toward the lower index (stable sort), making
    the mask deterministic.

    Parameters
    ----------
    weights:
        Array whose last axis length is a multiple of ``fmt.m``.
    fmt:
        Target :class:`NMFormat`.
    """
    weights = np.asarray(weights)
    if weights.shape[-1] % fmt.m:
        raise ValueError(
            f"last axis {weights.shape[-1]} not a multiple of M={fmt.m}"
        )
    blocks = weights.reshape(*weights.shape[:-1], -1, fmt.m)
    # argsort ascending on -|w|: first N entries are the largest magnitudes.
    order = np.argsort(-np.abs(blocks), axis=-1, kind="stable")
    mask = np.zeros(blocks.shape, dtype=bool)
    np.put_along_axis(mask, order[..., : fmt.n], True, axis=-1)
    return mask.reshape(weights.shape)


def nm_prune(weights: np.ndarray, fmt: NMFormat) -> np.ndarray:
    """Return a copy of ``weights`` with the N:M mask applied."""
    return np.where(nm_prune_mask(weights, fmt), weights, 0)


def prune_conv_weights(weights: np.ndarray, fmt: NMFormat) -> np.ndarray:
    """Prune conv weights of shape ``(K, FY, FX, C)`` to N:M sparsity.

    Blocks are formed over the flattened ``(FY, FX, C)`` reduce
    dimension — the order in which the im2col buffer lays out the
    corresponding activations — so that offsets stored by the N:M
    encoder address the buffer directly.
    """
    weights = np.asarray(weights)
    if weights.ndim != 4:
        raise ValueError(f"expected (K, FY, FX, C) weights, got {weights.shape}")
    k = weights.shape[0]
    flat = weights.reshape(k, -1)
    return nm_prune(flat, fmt).reshape(weights.shape)


def prune_fc_weights(weights: np.ndarray, fmt: NMFormat) -> np.ndarray:
    """Prune FC weights of shape ``(K, C)`` to N:M sparsity."""
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ValueError(f"expected (K, C) weights, got {weights.shape}")
    return nm_prune(weights, fmt)
