"""Compressed Sparse Row format (paper Sec. 2.1).

CSR compresses COO's row coordinates into per-row extents.  As in the
paper, it is used for memory comparison against N:M: for a K x (FX*FY*C)
weight matrix it stores K row extents and nnz column indices at a
"minimum precision of 16-bit for reasonably sized layers", yielding less
than 25% compression at 75% sparsity (Sec. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CSRMatrix"]


@dataclass
class CSRMatrix:
    """A sparse int8 matrix in CSR form.

    Attributes
    ----------
    values:
        Non-zero values in row-major order (int8).
    col_idx:
        Column index of each non-zero.
    row_ptr:
        ``row_ptr[i]:row_ptr[i+1]`` spans row ``i``'s non-zeros.
    shape:
        Dense shape ``(rows, cols)``.
    col_bits, ptr_bits:
        Storage widths for column indices and row pointers.
    """

    values: np.ndarray
    col_idx: np.ndarray
    row_ptr: np.ndarray
    shape: tuple[int, int]
    col_bits: int = 16
    ptr_bits: int = 16

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, col_bits: int = 16, ptr_bits: int = 16
    ) -> "CSRMatrix":
        """Encode a dense int8 matrix."""
        dense = np.asarray(dense, dtype=np.int8)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D matrix")
        rows, cols = np.nonzero(dense)
        if cols.size and cols.max() >= 1 << col_bits:
            raise ValueError("columns exceed the configured index width")
        row_ptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.add.at(row_ptr, rows + 1, 1)
        row_ptr = np.cumsum(row_ptr)
        if row_ptr[-1] >= 1 << ptr_bits:
            raise ValueError("nnz exceeds the configured pointer width")
        return cls(
            values=dense[rows, cols],
            col_idx=cols.astype(np.int64),
            row_ptr=row_ptr,
            shape=dense.shape,
            col_bits=col_bits,
            ptr_bits=ptr_bits,
        )

    def to_dense(self) -> np.ndarray:
        """Decode back to dense int8."""
        dense = np.zeros(self.shape, dtype=np.int8)
        for r in range(self.shape[0]):
            lo, hi = self.row_ptr[r], self.row_ptr[r + 1]
            dense[r, self.col_idx[lo:hi]] = self.values[lo:hi]
        return dense

    def row(self, r: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(values, col_idx)`` of row ``r``."""
        lo, hi = self.row_ptr[r], self.row_ptr[r + 1]
        return self.values[lo:hi], self.col_idx[lo:hi]

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self.values.size)

    def total_bits(self) -> int:
        """Storage in bits: values + column indices + row pointers."""
        return (
            self.nnz * (8 + self.col_bits)
            + self.row_ptr.size * self.ptr_bits
        )

    def total_bytes(self) -> float:
        """Storage in bytes."""
        return self.total_bits() / 8

    def dense_bytes(self) -> int:
        """Storage of the equivalent dense int8 matrix."""
        return self.shape[0] * self.shape[1]

    @staticmethod
    def break_even_sparsity(col_bits: int = 16) -> float:
        """Minimum sparsity at which CSR beats dense int8 storage,
        ignoring the (small) row-pointer term.

        Solves ``(1 - s) * (8 + col_bits) = 8``: 66.7% for 16-bit column
        indices, 50% for the 8-bit relative-index variants the paper
        cites (Trommer et al.).
        """
        return 1.0 - 8.0 / (8 + col_bits)
