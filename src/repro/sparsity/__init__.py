"""Sparse tensor formats and N:M pruning.

This package implements the data-structure side of the paper:

- :mod:`repro.sparsity.nm` — the N:M packed format of Fig. 1 (values +
  sub-byte relative offsets), including the ISA-kernel layouts with
  duplicated (conv) and channel-interleaved (FC) offsets.
- :mod:`repro.sparsity.coo` / :mod:`repro.sparsity.csr` — the classic
  coordinate formats the paper compares against in Sec. 2.1.
- :mod:`repro.sparsity.pruning` — magnitude-based N:M pruning used to
  produce compliant weight tensors.
- :mod:`repro.sparsity.stats` — validation and sparsity statistics.
"""

from repro.sparsity.nm import (
    NMFormat,
    NMSparseMatrix,
    FORMAT_1_4,
    FORMAT_1_8,
    FORMAT_1_16,
    SUPPORTED_FORMATS,
)
from repro.sparsity.coo import COOMatrix
from repro.sparsity.csr import CSRMatrix
from repro.sparsity.pruning import (
    nm_prune_mask,
    nm_prune,
    prune_conv_weights,
    prune_fc_weights,
)
from repro.sparsity.stats import (
    sparsity_ratio,
    is_nm_sparse,
    nm_block_histogram,
)

__all__ = [
    "NMFormat",
    "NMSparseMatrix",
    "FORMAT_1_4",
    "FORMAT_1_8",
    "FORMAT_1_16",
    "SUPPORTED_FORMATS",
    "COOMatrix",
    "CSRMatrix",
    "nm_prune_mask",
    "nm_prune",
    "prune_conv_weights",
    "prune_fc_weights",
    "sparsity_ratio",
    "is_nm_sparse",
    "nm_block_histogram",
]
