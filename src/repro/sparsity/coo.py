"""COOrdinate sparse format (paper Sec. 2.1).

Stored as three parallel arrays: non-zero values and their (row, col)
positions.  Used only for memory-overhead comparison against the N:M
format; the kernels never consume COO.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["COOMatrix"]


@dataclass
class COOMatrix:
    """A sparse int8 matrix in COO form.

    Attributes
    ----------
    values:
        Non-zero values (int8).
    row_idx, col_idx:
        Coordinates of each non-zero.
    shape:
        Dense shape ``(rows, cols)``.
    row_bits, col_bits:
        Storage width of each coordinate.  The paper's Sec. 2.1
        discussion uses 16-bit indices; both widths are configurable so
        the break-even analysis can cover 8/16/24-bit encodings.
    """

    values: np.ndarray
    row_idx: np.ndarray
    col_idx: np.ndarray
    shape: tuple[int, int]
    row_bits: int = 16
    col_bits: int = 16

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, row_bits: int = 16, col_bits: int = 16
    ) -> "COOMatrix":
        """Encode a dense int8 matrix."""
        dense = np.asarray(dense, dtype=np.int8)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D matrix")
        rows, cols = np.nonzero(dense)
        if rows.size and (rows.max() >= 1 << row_bits or cols.max() >= 1 << col_bits):
            raise ValueError("matrix too large for the configured index widths")
        return cls(
            values=dense[rows, cols],
            row_idx=rows.astype(np.int64),
            col_idx=cols.astype(np.int64),
            shape=dense.shape,
            row_bits=row_bits,
            col_bits=col_bits,
        )

    def to_dense(self) -> np.ndarray:
        """Decode back to dense int8."""
        dense = np.zeros(self.shape, dtype=np.int8)
        dense[self.row_idx, self.col_idx] = self.values
        return dense

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self.values.size)

    def total_bits(self) -> int:
        """Storage in bits: 8 per value plus the coordinate widths."""
        return self.nnz * (8 + self.row_bits + self.col_bits)

    def total_bytes(self) -> float:
        """Storage in bytes (may be fractional for sub-byte packing)."""
        return self.total_bits() / 8

    def dense_bytes(self) -> int:
        """Storage of the equivalent dense int8 matrix."""
        return self.shape[0] * self.shape[1]

    @staticmethod
    def break_even_sparsity(row_bits: int = 16, col_bits: int = 16) -> float:
        """Minimum sparsity at which COO beats dense int8 storage.

        Solves ``(1 - s) * (8 + row_bits + col_bits) = 8``.  With the
        24 index bits per non-zero discussed in the paper this gives
        exactly 75%; with two full 16-bit coordinates it is 80%.
        """
        return 1.0 - 8.0 / (8 + row_bits + col_bits)
