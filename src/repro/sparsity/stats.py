"""Sparsity validation and statistics helpers."""

from __future__ import annotations

import numpy as np

from repro.sparsity.nm import NMFormat

__all__ = ["sparsity_ratio", "is_nm_sparse", "nm_block_histogram"]


def sparsity_ratio(weights: np.ndarray) -> float:
    """Fraction of exactly-zero elements."""
    weights = np.asarray(weights)
    if weights.size == 0:
        return 0.0
    return float((weights == 0).mean())


def is_nm_sparse(weights: np.ndarray, fmt: NMFormat) -> bool:
    """True when every M-block along the last axis has <= N non-zeros.

    This is the predicate the compiler's pattern matcher uses to decide
    whether a layer can be lowered to a sparse kernel (Sec. 4.4 item 1).
    Blocks with *fewer* than N non-zeros still satisfy the pattern.
    """
    weights = np.asarray(weights)
    if weights.shape[-1] % fmt.m:
        return False
    blocks = weights.reshape(*weights.shape[:-1], -1, fmt.m)
    return bool(((blocks != 0).sum(axis=-1) <= fmt.n).all())


def nm_block_histogram(weights: np.ndarray, m: int) -> np.ndarray:
    """Histogram of non-zeros per M-block along the last axis.

    Entry ``h[i]`` counts blocks holding exactly ``i`` non-zeros; useful
    for diagnosing how close a tensor is to a given N:M pattern.
    """
    weights = np.asarray(weights)
    if weights.shape[-1] % m:
        raise ValueError(f"last axis {weights.shape[-1]} not a multiple of {m}")
    blocks = weights.reshape(-1, m)
    nnz = (blocks != 0).sum(axis=1)
    return np.bincount(nnz, minlength=m + 1)
