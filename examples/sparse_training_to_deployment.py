"""Full pipeline: SR-STE training -> quantisation -> compilation.

The end-to-end story the paper tells, at laptop scale:

1. train a small CNN with the Zhou et al. (2021) combined
   training+pruning scheme (SR-STE) at 1:8 sparsity on synthetic data;
2. extract the masked weights — genuinely N:M sparse — and build a
   deployment graph;
3. post-training-quantise to int8 (patterns survive rounding);
4. let the compiler *recognise* the sparsity and lower the layers to
   the sparse kernels, then compare latency against a dense deployment
   of the same architecture.

Run:
    python examples/sparse_training_to_deployment.py
"""

import numpy as np

from repro.compiler.codegen import CompileConfig
from repro.compiler.deploy import deploy
from repro.compiler.ir import Graph
from repro.engine import get_default_engine
from repro.models.quantize import quantize_graph
from repro.sparsity.nm import FORMAT_1_8
from repro.train.data import make_synthetic_dataset
from repro.train.nn import AvgPool2x2, Conv2d, Flatten, Linear, ReLU, Sequential
from repro.train.srste import SparseConv2d, SparseLinear
from repro.train.trainer import evaluate, train_model


def build_model(fmt, seed=0):
    conv2 = SparseConv2d(32, 32, fmt, seed=seed + 1) if fmt else Conv2d(32, 32, seed=seed + 1)
    fc1 = SparseLinear(512, 96, fmt, seed=seed + 2) if fmt else Linear(512, 96, seed=seed + 2)
    return Sequential(
        Conv2d(3, 32, seed=seed),
        ReLU(),
        AvgPool2x2(),
        conv2,
        ReLU(),
        AvgPool2x2(),
        Flatten(),
        fc1,
        ReLU(),
        Linear(96, 8, seed=seed + 3),
    )


def to_graph(model: Sequential, name: str) -> Graph:
    """Export the trained model into the deployment IR."""
    g = Graph(name)
    x = g.add_input("in", (16, 16, 3))
    conv1, _, _, conv2, _, _, _, fc1, _, fc2 = model.layers
    x = g.add_conv2d(
        "conv1",
        x,
        conv1.weight.data.astype(np.float32),
        bias=conv1.bias.data.astype(np.float32),
    )
    x = g.add_elementwise("relu1", "relu", x)
    x = g.add_avgpool("pool1", x)
    w2 = (
        conv2.dense_weight() if isinstance(conv2, SparseConv2d) else conv2.weight.data
    )
    bias2 = conv2.inner.bias if isinstance(conv2, SparseConv2d) else conv2.bias
    x = g.add_conv2d(
        "conv2", x, w2.astype(np.float32), bias=bias2.data.astype(np.float32)
    )
    x = g.add_elementwise("relu2", "relu", x)
    x = g.add_avgpool("pool2", x)
    x = g.add_flatten("flat", x)
    w3 = fc1.dense_weight() if isinstance(fc1, SparseLinear) else fc1.weight.data
    bias3 = fc1.inner.bias if isinstance(fc1, SparseLinear) else fc1.bias
    x = g.add_dense(
        "fc1", x, w3.astype(np.float32), bias=bias3.data.astype(np.float32)
    )
    x = g.add_elementwise("relu3", "relu", x)
    g.add_dense(
        "fc2",
        x,
        fc2.weight.data.astype(np.float32),
        bias=fc2.bias.data.astype(np.float32),
    )
    return g


def main() -> None:
    data = make_synthetic_dataset(
        n_classes=8, n_train=512, n_test=256, hw=16, noise=1.1, seed=0
    )

    print("== training ==")
    results = {}
    for label, fmt in (("dense", None), ("1:8 SR-STE", FORMAT_1_8)):
        model = build_model(fmt)
        res = train_model(model, data, epochs=8, seed=0)
        results[label] = (model, res.test_accuracy)
        print(f"{label:11s}: test accuracy {res.test_accuracy:.3f}")

    print("\n== quantisation + compilation ==")
    calib = [data.x_train[i] for i in range(16)]
    engine = get_default_engine()
    for label, (model, acc) in results.items():
        graph = to_graph(model, label.replace(" ", "-"))
        quantize_graph(graph, calib)
        # One batched int8 pass through the compiled plan scores the
        # whole evaluation set at once.
        logits = engine.run_batch(graph, data.x_test[:128], mode="int8")
        q_acc = float(np.mean(logits.argmax(axis=-1) == data.y_test[:128]))
        for use_isa in (False, True):
            report = deploy(graph, CompileConfig(use_isa=use_isa))
            kernels = sorted({p.variant for p in report.plans if p.kind != "fallback"})
            print(
                f"{label:11s} isa={use_isa!s:5s}: int8 acc {q_acc:.3f}, "
                f"{report.total_cycles / 1e3:8.1f} kcycles, "
                f"weights {report.weight_memory_bytes / 1024:6.1f} kB, "
                f"kernels {kernels}"
            )


if __name__ == "__main__":
    main()
