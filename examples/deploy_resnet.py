"""End-to-end deployment: ResNet18 and ViT through the compiler.

Builds the Table 2 benchmark models at every sparsity level, compiles
them with the MATCH-substitute (pattern recognition, format-aware
tiling, interleaved layout), and prints the end-to-end tables next to
the paper's measured values — plus a per-layer plan for one variant.

Run:
    python examples/deploy_resnet.py [--vit] [--per-layer]
"""

import argparse
import sys

from repro.compiler.codegen import CompileConfig
from repro.compiler.deploy import deploy
from repro.eval.table2 import table2_resnet, table2_vit
from repro.models.resnet import resnet18_cifar
from repro.sparsity.nm import SUPPORTED_FORMATS


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--vit", action="store_true", help="also deploy the ViT")
    ap.add_argument(
        "--per-layer",
        action="store_true",
        help="print the per-layer plan of the 1:8 ISA ResNet",
    )
    args = ap.parse_args(argv)

    print(table2_resnet().render())
    if args.vit:
        print()
        print(table2_vit().render())
    if args.per_layer:
        graph = resnet18_cifar(fmt=SUPPORTED_FORMATS["1:8"])
        report = deploy(graph, CompileConfig(use_isa=True))
        print()
        print(report.layer_table().render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
