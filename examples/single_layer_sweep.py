"""Regenerate Fig. 8: single-layer conv and FC sweeps.

Prints the per-layer MAC/cycle and speedup tables for every kernel
variant, plus the average-speedup comparison against the numbers the
paper quotes in Sec. 5.2.

Run:
    python examples/single_layer_sweep.py
"""

from repro.eval.fig8 import average_speedup, fig8_conv, fig8_fc
from repro.eval.paper_values import FIG8_CONV_AVG_SPEEDUP, FIG8_FC_AVG_SPEEDUP
from repro.utils.tables import Table


def comparison(kind: str, paper: dict) -> Table:
    table = Table(
        f"Fig. 8 {kind} average speedups: paper vs this model",
        ["variant", "fmt", "paper", "model"],
    )
    for (variant, fmt_name), value in paper.items():
        table.add_row(
            variant=variant,
            fmt=fmt_name or "-",
            paper=value,
            model=average_speedup(kind, variant, fmt_name),
        )
    return table


def main() -> None:
    print(fig8_conv().render())
    print()
    print(comparison("conv", FIG8_CONV_AVG_SPEEDUP).render())
    print()
    print(fig8_fc().render())
    print()
    print(comparison("fc", FIG8_FC_AVG_SPEEDUP).render())


if __name__ == "__main__":
    main()
