"""Calibrate the latency model against the paper's reported averages.

The cost model (:mod:`repro.kernels.cost_model`) takes its *structure*
from the kernels — microcode-verified instruction counts, loop trip
counts, im2col/requant/DMA composition — and a handful of scalar
constants that stand in for effects a functional simulator cannot see
(TCDM bank conflicts, runtime marshalling).  This script fits those
constants to the single-layer averages the paper reports in the text of
Sec. 5.2, then prints the fitted values and the residuals.

Run:
    python examples/calibrate_cost_model.py [--search]

Without ``--search`` it evaluates the constants currently checked into
``CostParams`` (what EXPERIMENTS.md records); with ``--search`` it
re-runs the coordinate grid search used to derive them.

The end-to-end Table 2 figures are *not* fitted — they serve as the
validation set (see ``benchmarks/test_table2_*.py``).
"""

from __future__ import annotations

import argparse
import itertools
import math
import sys
from dataclasses import replace

import numpy as np

from repro.kernels.cost_model import (
    CostParams,
    DEFAULT_PARAMS,
    conv_layer_cycles,
    fc_layer_cycles,
)
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import SUPPORTED_FORMATS
from repro.utils.tables import Table

CONV_CS = (32, 64, 128, 256)
FC_CS = (256, 512, 1024, 2048)

#: Dense end-to-end anchors (Table 2, ResNet18): these pin the absolute
#: throughput of the platform; the sparse Table 2 rows are NOT used
#: anywhere in the fit and serve as the validation set.
DENSE_ANCHORS_MCYCLES = {"dense-1x2": 66.63, "dense-4x2": 49.71}

#: (kind, variant, format, paper average speedup vs the dense baseline).
TARGETS = [
    ("conv", "dense-4x2", None, 1.405),  # implied: 2.6x / 1.85x (Sec. 5.2)
    ("conv", "sparse-sw", "1:4", 1 / 1.23),  # "+23% cycles on average"
    ("conv", "sparse-sw", "1:16", 2.6),
    ("conv", "sparse-isa", "1:4", 1.50),
    ("conv", "sparse-isa", "1:8", 2.4),
    ("conv", "sparse-isa", "1:16", 3.9),
    ("fc", "sparse-sw", "1:4", 1.02),
    ("fc", "sparse-sw", "1:8", 1.6),
    ("fc", "sparse-sw", "1:16", 2.3),
    ("fc", "sparse-isa", "1:4", 1.8),
    ("fc", "sparse-isa", "1:8", 2.2),
    ("fc", "sparse-isa", "1:16", 2.9),
]


def conv_speedups(variant, fmt, params):
    out = []
    for c in CONV_CS:
        shape = ConvShape(iy=8, ix=8, c=c, k=256)
        base = conv_layer_cycles(shape, "dense-1x2", params=params).total
        out.append(base / conv_layer_cycles(shape, variant, fmt, params=params).total)
    return out


def fc_speedups(variant, fmt, params):
    out = []
    for c in FC_CS:
        shape = FcShape(c=c, k=256)
        base = fc_layer_cycles(shape, "dense", params=params).total
        out.append(base / fc_layer_cycles(shape, variant, fmt, params=params).total)
    return out


def average_speedup(kind, variant, fmt_name, params):
    fmt = SUPPORTED_FORMATS[fmt_name] if fmt_name else None
    series = (
        conv_speedups(variant, fmt, params)
        if kind == "conv"
        else fc_speedups(variant, fmt, params)
    )
    return float(np.mean(series))


_RESNET_GRAPH = None


def _resnet_dense_mcycles(variant: str, params: CostParams) -> float:
    """End-to-end dense ResNet18 cycles under the cost model."""
    global _RESNET_GRAPH
    if _RESNET_GRAPH is None:
        from repro.models.resnet import resnet18_cifar

        _RESNET_GRAPH = resnet18_cifar()
    from repro.compiler.codegen import CompileConfig
    from repro.compiler.deploy import deploy

    cfg = CompileConfig(dense_conv_variant=variant, cost_params=params)
    return deploy(_RESNET_GRAPH, cfg).total_cycles / 1e6


def loss(params: CostParams) -> float:
    """Sum of squared log-errors: Fig. 8 ratios + dense absolute anchors."""
    total = 0.0
    for kind, variant, fmt_name, target in TARGETS:
        got = average_speedup(kind, variant, fmt_name, params)
        total += math.log(got / target) ** 2
    for variant, target in DENSE_ANCHORS_MCYCLES.items():
        got = _resnet_dense_mcycles(variant, params)
        total += math.log(got / target) ** 2
    return total


def report(params: CostParams) -> Table:
    table = Table(
        "Cost-model calibration vs paper Sec. 5.2 averages",
        ["kind", "variant", "fmt", "paper", "model", "error %"],
    )
    for kind, variant, fmt_name, target in TARGETS:
        got = average_speedup(kind, variant, fmt_name, params)
        table.add_row(
            kind=kind,
            variant=variant,
            fmt=fmt_name or "-",
            paper=target,
            model=got,
            **{"error %": 100 * (got / target - 1)},
        )
    return table


def grid_search(base: CostParams) -> CostParams:
    """Coordinate grid search over the starred parameters."""
    best, best_loss = base, loss(base)
    grids = {
        "load_contention": np.arange(0.0, 1.01, 0.05),
        "dense_4x2_extra": np.arange(0.0, 5.01, 0.3),
        "gamma_sw_conv": np.arange(0.0, 1.01, 0.05),
        "gamma_isa_conv": np.arange(0.0, 1.01, 0.05),
        "gamma_sw_fc": np.arange(0.0, 1.61, 0.05),
        "gamma_isa_fc": np.arange(0.0, 1.61, 0.05),
        "im2col_cycles_per_byte": np.arange(0.5, 3.01, 0.25),
        "fc_stream_bandwidth": np.arange(4.0, 12.1, 1.0),
        "fc_fixed_overhead": np.arange(2000, 16001, 1000),
    }
    for _ in range(3):  # a few coordinate-descent sweeps
        for name, grid in grids.items():
            for value in grid:
                cand = replace(best, **{name: float(value)})
                cand_loss = loss(cand)
                if cand_loss < best_loss - 1e-9:
                    best, best_loss = cand, cand_loss
    return best


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--search", action="store_true", help="re-run the grid search")
    args = ap.parse_args(argv)
    params = DEFAULT_PARAMS
    if args.search:
        params = grid_search(params)
        print("fitted parameters:")
        for name in (
            "load_contention",
            "dense_4x2_extra",
            "gamma_sw_conv",
            "gamma_isa_conv",
            "gamma_sw_fc",
            "gamma_isa_fc",
            "im2col_cycles_per_byte",
            "fc_stream_bandwidth",
            "fc_fixed_overhead",
        ):
            print(f"  {name} = {getattr(params, name)}")
    print(report(params).render())
    for variant, target in DENSE_ANCHORS_MCYCLES.items():
        got = _resnet_dense_mcycles(variant, params)
        print(f"ResNet18 {variant}: {got:.2f} Mcyc (paper {target})")
    print(f"loss = {loss(params):.4f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
