"""Serving quickstart: dynamic micro-batching over the inference engine.

Walks the `repro.serve` subsystem in five steps:

1. host float and int8 deployments of one graph on a `ModelServer`
   (plans warm at registration);
2. fire concurrent single-sample requests and watch them coalesce into
   micro-batches;
3. verify the served responses are bit-identical to direct
   `InferenceEngine` runs;
4. trip the typed admission errors — oversized request, unknown model,
   queue-depth backpressure;
5. replay deterministic loadgen traffic and read the metrics snapshot.

Run:
    python examples/serve_quickstart.py
"""

import asyncio

import numpy as np

from repro.engine.bench import resnet_style_graph
from repro.engine.engine import InferenceEngine
from repro.models.quantize import quantize_graph
from repro.serve import (
    BatchPolicy,
    ModelServer,
    RequestTooLarge,
    ServerOverloaded,
    UnknownModel,
    run_loadgen,
)
from repro.serve.loadgen import generate_inputs
from repro.utils.rng import make_rng


async def main() -> None:
    # 1. One graph, two deployments: float and int8 side by side.
    graph = resnet_style_graph()
    rng = make_rng(0)
    quantize_graph(graph, [rng.normal(size=(12, 12, 3)).astype(np.float32)])

    server = ModelServer(
        policy=BatchPolicy(max_batch_size=16, max_wait_ms=2.0),
        workers=2,
        max_queue_depth=128,
    )
    server.register("resnet-float", graph, "float")
    server.register("resnet-int8", graph, "int8")
    print(f"hosting: {', '.join(server.registry.names())}")

    async with server:
        # 2. Concurrent single-sample requests coalesce into batches.
        xs = generate_inputs((12, 12, 3), 32, seed=1)
        outs = await asyncio.gather(
            *[server.infer("resnet-int8", x) for x in xs]
        )
        print(
            f"served {len(outs)} requests in "
            f"{server.metrics.snapshot()['batches']['count']} micro-batches "
            f"(mean batch {server.metrics.mean_batch_size():.1f})"
        )

        # 3. Responses match a direct engine run bit-for-bit.
        direct = InferenceEngine().run_batch(graph, xs, mode="int8")
        exact = all(np.array_equal(outs[i], direct[i]) for i in range(32))
        print(f"bit-identical to direct InferenceEngine runs: {exact}")

        # 4. Typed admission errors.
        try:
            server.submit("resnet-int8", np.zeros((17, 12, 12, 3), np.float32))
        except RequestTooLarge as err:
            print(f"oversized request  -> {err.code}: {err}")
        try:
            server.submit("resnet-int4", xs[0])
        except UnknownModel as err:
            print(f"unknown model      -> {err.code}: {err}")
        try:
            for x in generate_inputs((12, 12, 3), 256, seed=2):
                server.submit("resnet-float", x)
        except ServerOverloaded as err:
            print(f"queue-depth limit  -> {err.code}: {err}")

        # 5. Deterministic loadgen traffic + metrics snapshot.
        report, _ = await run_loadgen(
            server, "resnet-float", requests=100, qps=1000.0, seed=3
        )
        print(
            f"loadgen: {report.succeeded}/{report.requests} ok at "
            f"{report.achieved_qps:.0f} qps "
            f"(p50 {report.latency_quantiles()['p50_ms']:.1f} ms)"
        )
        snap = server.stats()
        print(
            f"metrics: {snap['requests']['completed']} completed, "
            f"queue depth {snap['queue_depth']}, "
            f"p99 {snap['latency']['p99_ms']:.1f} ms"
        )


if __name__ == "__main__":
    asyncio.run(main())
