"""Future-work extensions: variable per-stage sparsity and energy.

The paper's conclusion sketches two follow-ups: studying *variable
sparsity patterns* (per-layer) and estimating *energy savings*.  Both
are implemented in this repository; this example drives them:

1. deploy ResNet18 under per-stage N:M schedules (mild formats in the
   parameter-light early stages, aggressive 1:16 in the deep ones) and
   compare latency/memory against uniform schedules;
2. estimate per-variant energy for a representative conv layer,
   splitting core / L1 / L2 contributions;
3. quantify the unstructured-CSR comparator the paper argues against
   in Sec. 2.1.

Run:
    python examples/mixed_sparsity_and_energy.py
"""

from repro.eval.extensions import (
    double_buffering_table,
    energy_table,
    mixed_sparsity_table,
    unstructured_comparison_table,
)


def main() -> None:
    print(mixed_sparsity_table().render())
    print()
    print(energy_table().render())
    print()
    print(unstructured_comparison_table().render())
    print()
    print(double_buffering_table().render())


if __name__ == "__main__":
    main()
