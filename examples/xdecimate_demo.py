"""xDecimate under the microscope: datapath trace and cycle counts.

Executes a few iterations of the ISA-extended sparse kernel on the
instruction-level core model with XFU tracing enabled, printing, for
every xDecimate execution, the Sec. 4.3 datapath values (csr, decoded
offset, block index, generated address, write-back lane) — then
compares instruction/cycle counts against the SW-only kernel.

Run:
    python examples/xdecimate_demo.py
"""

import numpy as np

from repro.hw.cpu import Core
from repro.hw.xfu import XDecimateUnit
from repro.kernels import microcode as mc
from repro.kernels.micro_runner import MemoryImage, run_conv_pair
from repro.sparsity.nm import FORMAT_1_8, NMSparseMatrix
from repro.sparsity.pruning import nm_prune


def trace_one_channel() -> None:
    """One output channel, 8 blocks of M=8: trace every xDecimate."""
    rng = np.random.default_rng(0)
    r = 8 * 8  # 8 blocks
    buf1 = rng.integers(-128, 128, r).astype(np.int8)
    buf2 = rng.integers(-128, 128, r).astype(np.int8)
    w = nm_prune(rng.integers(-128, 128, (1, r)).astype(np.int8), FORMAT_1_8)
    mat = NMSparseMatrix.from_dense(w, FORMAT_1_8)

    img = MemoryImage()
    vals, offs, nnz_pad = mc.pack_sparse_rows_isa_conv(mat)
    w_addr = img.place(vals)
    off_addr = img.place(offs)
    b1 = img.alloc(r + mc.buffer_slack_bytes(FORMAT_1_8, "isa"))
    img.mem[b1 : b1 + r] = buf1.view(np.uint8)
    b2 = img.alloc(r + mc.buffer_slack_bytes(FORMAT_1_8, "isa"))
    img.mem[b2 : b2 + r] = buf2.view(np.uint8)
    out = img.alloc(8)
    prog = mc.conv_pair_sparse_isa(
        FORMAT_1_8, 1, nnz_pad, w_addr, off_addr, b1, b2, out
    )

    xfu = XDecimateUnit(record_trace=True)
    core = Core(img.mem, xfu=xfu)
    stats = core.run(prog)

    print("offsets per block:", mat.offsets[0].tolist())
    print(f"{'csr':>4} {'offset':>6} {'block':>5} {'addr':>6} {'lane':>4} {'byte':>5}")
    for e in xfu.trace:
        print(
            f"{e.csr_before:>4} {e.offset:>6} {e.block_index:>5} "
            f"{e.address:>6} {e.lane:>4} {e.byte:>5}"
        )
    print(
        f"\nchannel done in {stats.cycles} cycles / {stats.instructions} "
        f"instructions ({stats.op_counts['xdec']} xDecimate executions)"
    )


def compare_sw_isa() -> None:
    """Instruction/cycle comparison on a realistic channel count."""
    rng = np.random.default_rng(1)
    r = 9 * 64
    buf1 = rng.integers(-128, 128, r).astype(np.int8)
    buf2 = rng.integers(-128, 128, r).astype(np.int8)
    w = nm_prune(rng.integers(-128, 128, (32, r)).astype(np.int8), FORMAT_1_8)
    mat = NMSparseMatrix.from_dense(w, FORMAT_1_8)

    sw = run_conv_pair("sparse-sw", mat, buf1, buf2)
    isa = run_conv_pair("sparse-isa", mat, buf1, buf2)
    assert (sw.acc == isa.acc).all()
    print("\n== SW vs ISA kernels, K=32, C=64 (one output pair) ==")
    for name, res in (("SW-only", sw), ("xDecimate", isa)):
        print(
            f"{name:10s}: {res.stats.instructions:6d} instructions, "
            f"{res.stats.cycles:6d} cycles, "
            f"{res.stats.macs_per_instruction():.3f} MACs/instr"
        )
    print(f"ISA speedup: {sw.stats.cycles / isa.stats.cycles:.2f}x")


if __name__ == "__main__":
    trace_one_channel()
    compare_sw_isa()
