"""Quickstart: prune a layer, pack it, run the sparse kernels.

Walks the library's core loop in six steps:

1. magnitude-prune a conv layer's weights to 1:8 N:M sparsity;
2. encode them in the packed N:M format (values + 4-bit offsets);
3. run the functional sparse kernel and check it against the dense one;
4. execute the same computation instruction-by-instruction on the core
   model, with and without the xDecimate ISA extension;
5. estimate full-layer latency with the calibrated cost model;
6. serve a whole network through the batched inference engine —
   compile once, run many samples per call.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.engine import InferenceEngine
from repro.engine.bench import measure_throughput, resnet_style_graph
from repro.hw.cpu import Core
from repro.kernels.conv_dense import conv2d_dense
from repro.kernels.conv_sparse import conv2d_sparse
from repro.kernels.cost_model import conv_layer_cycles
from repro.kernels.micro_runner import run_conv_pair
from repro.kernels.shapes import ConvShape
from repro.sparsity.nm import FORMAT_1_8, NMSparseMatrix
from repro.sparsity.pruning import prune_conv_weights


def main() -> None:
    rng = np.random.default_rng(0)
    shape = ConvShape(iy=8, ix=8, c=64, k=64, fy=3, fx=3, s=1, p=1)

    # 1. Prune: keep the largest-magnitude weight in every 8-block.
    weights = rng.integers(-128, 128, (shape.k, 3, 3, shape.c)).astype(np.int8)
    pruned = prune_conv_weights(weights, FORMAT_1_8)
    print(f"sparsity after 1:8 pruning: {(pruned == 0).mean():.4f}")

    # 2. Encode in the packed N:M format.
    mat = NMSparseMatrix.from_dense(pruned.reshape(shape.k, -1), FORMAT_1_8)
    print(
        f"weight memory: dense {mat.dense_bytes()} B -> "
        f"sparse {mat.total_bytes()} B "
        f"({100 * mat.memory_reduction():.2f}% reduction)"
    )

    # 3. Functional kernels: sparse result == dense result on the same
    # (pruned) weights, bit for bit.
    x = rng.integers(-128, 128, (shape.iy, shape.ix, shape.c)).astype(np.int8)
    out_sparse = conv2d_sparse(x, mat, shape)
    out_dense = conv2d_dense(x, pruned, shape)
    assert (out_sparse == out_dense).all()
    print(f"functional check: sparse == dense on {out_sparse.shape} output")

    # 4. Instruction-level execution on the core model (one output pair).
    buf1 = rng.integers(-128, 128, shape.reduce_dim).astype(np.int8)
    buf2 = rng.integers(-128, 128, shape.reduce_dim).astype(np.int8)
    sw = run_conv_pair("sparse-sw", mat, buf1, buf2)
    isa = run_conv_pair("sparse-isa", mat, buf1, buf2)
    assert (sw.acc == isa.acc).all()
    print(
        f"core model: SW kernel {sw.stats.cycles} cycles, "
        f"ISA kernel {isa.stats.cycles} cycles "
        f"({sw.stats.cycles / isa.stats.cycles:.2f}x from xDecimate)"
    )

    # 5. Full-layer latency from the calibrated cost model.
    for variant, fmt in (
        ("dense-4x2", None),
        ("sparse-sw", FORMAT_1_8),
        ("sparse-isa", FORMAT_1_8),
    ):
        bd = conv_layer_cycles(shape, variant, fmt)
        print(
            f"{variant:11s}: {bd.total / 1e3:8.1f} kcycles, "
            f"{bd.macs_per_cycle:5.2f} dense-equivalent MAC/cyc"
        )

    # 6. Whole-network inference through the batched engine: the graph
    # is compiled into an ExecutionPlan once (cached per (graph, mode))
    # and then serves (B, ...) batches.
    engine = InferenceEngine()
    graph = resnet_style_graph()
    batch = rng.normal(size=(32, 12, 12, 3)).astype(np.float32)
    logits = engine.run_batch(graph, batch)
    assert engine.compile_count == 1  # second call reuses the plan
    engine.run_batch(graph, batch)
    assert engine.compile_count == 1
    result = measure_throughput(graph, batch=32, engine=engine)
    print(
        f"engine: batch {logits.shape} in one call, "
        f"{result.batched_throughput:,.0f} samples/s "
        f"({result.speedup:.1f}x the per-sample executor loop)"
    )


if __name__ == "__main__":
    main()
