"""The JSON-lines TCP front-end: protocol ops, errors, pipelining."""

import asyncio

import numpy as np
import pytest

from repro.engine.bench import resnet_style_graph
from repro.engine.engine import InferenceEngine
from repro.serve.batcher import BatchPolicy
from repro.serve.errors import BadRequest, UnknownModel
from repro.serve.server import ModelServer
from repro.serve.tcp import TcpServeClient, serve_tcp


@pytest.fixture(scope="module")
def graph():
    return resnet_style_graph()


async def _with_tcp(graph, fn, policy=None):
    """Run ``fn(client, server)`` against a freshly served TCP endpoint."""
    server = ModelServer(policy=policy or BatchPolicy(8, 2.0))
    server.register("m", graph)
    async with server:
        tcp = await serve_tcp(server, port=0)
        port = tcp.sockets[0].getsockname()[1]
        try:
            async with TcpServeClient(port=port) as client:
                return await fn(client, server)
        finally:
            tcp.close()
            await tcp.wait_closed()


class TestProtocol:
    def test_ping_models_describe_stats(self, graph):
        async def fn(client, server):
            pong = await client.request({"op": "ping"})
            models = await client.request({"op": "models"})
            described = await client.describe()
            stats = await client.stats()
            return pong, models, described, stats

        pong, models, described, stats = asyncio.run(_with_tcp(graph, fn))
        assert pong == {"ok": True, "pong": True}
        assert models == {"ok": True, "models": ["m"]}
        assert described["m"]["mode"] == "float"
        assert described["m"]["input_shape"] == [12, 12, 3]
        assert described["m"]["sparse"] is False
        assert described["m"]["select_fmt"] is False
        assert described["m"]["act_skip"] == "off"
        assert described["m"]["weight_bytes"] == described["m"]["dense_weight_bytes"] > 0
        assert stats["server"]["running"] is True

    def test_infer_matches_direct_engine(self, graph):
        x = np.linspace(-1, 1, 12 * 12 * 3, dtype=np.float32).reshape(
            12, 12, 3
        )

        async def fn(client, server):
            single = await client.infer("m", x)
            batch = await client.infer("m", np.stack([x, x]))
            return single, batch

        single, batch = asyncio.run(_with_tcp(graph, fn))
        direct = InferenceEngine().run(graph, x)
        # JSON round-trips float32 exactly (decimal repr is faithful).
        assert np.array_equal(single, direct)
        assert batch.shape == (2, 10)
        assert np.array_equal(batch[0], direct)

    def test_pipelined_requests_share_micro_batches(self, graph):
        async def fn(client, server):
            x = np.zeros((12, 12, 3), np.float32)
            futs = [client.submit_infer("m", x) for _ in range(8)]
            outs = await asyncio.gather(*futs)
            return outs, server.metrics.mean_batch_size()

        outs, mean_batch = asyncio.run(
            _with_tcp(graph, fn, policy=BatchPolicy(8, 30.0))
        )
        assert len(outs) == 8
        assert mean_batch > 1.0  # one connection still coalesces


class TestErrors:
    def test_unknown_model_comes_back_typed(self, graph):
        async def fn(client, server):
            with pytest.raises(UnknownModel):
                await client.infer("ghost", np.zeros((12, 12, 3)))
            return await client.request(
                {"op": "infer", "model": "ghost", "input": [[0.0]]}
            )

        resp = asyncio.run(_with_tcp(graph, fn))
        assert resp["ok"] is False
        assert resp["error"] == "unknown_model"

    def test_malformed_lines_keep_connection_usable(self, graph):
        async def fn(client, server):
            bad_json = await client.request({"op": "ping"})  # sanity first
            # Raw garbage line, then a valid request on the same socket.
            client._writer.write(b"this is not json\n")
            fut = asyncio.get_running_loop().create_future()
            client._pending.append(fut)
            error_resp = await fut
            pong = await client.request({"op": "ping"})
            return bad_json, error_resp, pong

        bad_json, error_resp, pong = asyncio.run(_with_tcp(graph, fn))
        assert bad_json["ok"] is True
        assert error_resp["ok"] is False
        assert error_resp["error"] == "bad_request"
        assert pong["ok"] is True

    def test_unexpected_engine_error_still_answers(self, graph):
        """A non-ServeError failure (engine blew up) must come back as a
        serve_error response, leaving the connection usable."""

        async def fn(client, server):
            def boom(batch):
                raise RuntimeError("kernel exploded")

            server.registry.get("m").run_batch = boom
            resp = await client.request(
                {
                    "op": "infer",
                    "model": "m",
                    "input": np.zeros((12, 12, 3)).tolist(),
                }
            )
            pong = await client.request({"op": "ping"})
            return resp, pong

        resp, pong = asyncio.run(_with_tcp(graph, fn))
        assert resp["ok"] is False
        assert resp["error"] == "serve_error"
        assert "kernel exploded" in resp["detail"]
        assert pong["ok"] is True

    def test_missing_fields_and_unknown_op(self, graph):
        async def fn(client, server):
            no_model = await client.request({"op": "infer", "input": [1.0]})
            no_input = await client.request({"op": "infer", "model": "m"})
            bad_op = await client.request({"op": "explode"})
            with pytest.raises(BadRequest):
                await client.infer("m", np.zeros((7, 7), np.float32))
            return no_model, no_input, bad_op

        no_model, no_input, bad_op = asyncio.run(_with_tcp(graph, fn))
        for resp in (no_model, no_input, bad_op):
            assert resp["ok"] is False
            assert resp["error"] == "bad_request"


class TestShardedFrontend:
    """The same TCP protocol served by a RouterServer backend."""

    def test_router_behind_tcp(self, graph):
        from repro.serve.router import RouterServer

        x = np.linspace(-1, 1, 12 * 12 * 3, dtype=np.float32).reshape(
            12, 12, 3
        )

        async def run():
            router = RouterServer(workers=2, policy=BatchPolicy(8, 2.0))
            router.register("m", graph, "float")
            async with router:
                tcp = await serve_tcp(router, port=0)
                port = tcp.sockets[0].getsockname()[1]
                try:
                    async with TcpServeClient(port=port) as client:
                        out = await client.infer("m", x)
                        stats = await client.stats()
                        resp = await client.request({"op": "describe"})
                        with pytest.raises(UnknownModel):
                            await client.infer("nope", x)
                finally:
                    tcp.close()
                    await tcp.wait_closed()
            return out, stats, resp

        out, stats, resp = asyncio.run(run())
        direct = InferenceEngine().run(graph, x)
        assert np.array_equal(out, direct)
        # The coroutine stats() path aggregated the worker processes.
        assert stats["server"]["sharded"] is True
        assert stats["requests"]["completed"] == 1
        # describe keeps the per-model payload and adds sharding info.
        assert resp["models"]["m"]["input_shape"] == [12, 12, 3]
        assert resp["sharding"]["workers"] == 2
        assert resp["sharding"]["assignment"] == {"m": 0}
        assert resp["sharding"]["shm"]["segments"] > 0
