"""Serving weight-memory budgeting (ModelRegistry(max_weight_bytes=...)).

The multi-model analogue of an MCU's fixed weight memory: cumulative
compiled ``plan.weight_bytes()`` across hosted deployments may not
exceed the budget; violations raise the typed
:class:`~repro.serve.errors.WeightBudgetExceeded` at registration time
and leave the registry untouched.  Surfaced through the TCP
``describe`` op and ``repro serve --max-weight-mb``.
"""

import asyncio

import numpy as np
import pytest

from repro.engine.bench import resnet_style_graph
from repro.models.quantize import quantize_graph
from repro.serve.errors import WeightBudgetExceeded
from repro.serve.registry import ModelRegistry
from repro.serve.server import ModelServer
from repro.sparsity.nm import FORMAT_1_8
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def demo_graph():
    g = resnet_style_graph()
    rng = make_rng(0)
    quantize_graph(
        g, [rng.normal(size=(12, 12, 3)).astype(np.float32) for _ in range(4)]
    )
    return g


@pytest.fixture(scope="module")
def pruned_graph():
    g = resnet_style_graph(fmt=FORMAT_1_8)
    rng = make_rng(0)
    quantize_graph(
        g, [rng.normal(size=(12, 12, 3)).astype(np.float32) for _ in range(4)]
    )
    return g


class TestRegistryBudget:
    def test_unbudgeted_by_default(self, demo_graph):
        reg = ModelRegistry()
        assert reg.max_weight_bytes is None
        reg.register("a", demo_graph, "int8")
        reg.register("b", demo_graph, "float")
        assert reg.weight_bytes_used() == sum(
            reg.get(n).plan.weight_bytes() for n in ("a", "b")
        )

    def test_over_budget_registration_rejected_and_registry_untouched(
        self, demo_graph
    ):
        reg = ModelRegistry(max_weight_bytes=1)
        with pytest.raises(WeightBudgetExceeded) as exc:
            reg.register("a", demo_graph, "int8")
        assert exc.value.code == "weight_budget_exceeded"
        assert exc.value.name == "a"
        assert exc.value.max_weight_bytes == 1
        assert len(reg) == 0
        assert reg.weight_bytes_used() == 0

    def test_cumulative_accounting(self, demo_graph):
        reg = ModelRegistry()
        first = reg.register("a", demo_graph, "int8").plan.weight_bytes()
        budgeted = ModelRegistry(max_weight_bytes=first + first // 2)
        budgeted.register("a", demo_graph, "int8")
        # The second int8 deployment of the same graph needs `first`
        # more bytes — only half of that remains.
        with pytest.raises(WeightBudgetExceeded) as exc:
            budgeted.register("b", demo_graph, "int8")
        assert exc.value.used == first
        assert exc.value.needed == first
        assert list(budgeted.names()) == ["a"]

    def test_sparse_plan_fits_where_dense_does_not(self, pruned_graph):
        """The packed layout's smaller footprint is what the budget
        charges — a pruned model can fit where its dense plan cannot."""
        reg = ModelRegistry()
        dense_bytes = reg.register(
            "dense", pruned_graph, "int8"
        ).plan.weight_bytes()
        sparse_bytes = reg.register(
            "sparse", pruned_graph, "int8", sparse=True
        ).plan.weight_bytes()
        assert sparse_bytes < dense_bytes
        tight = ModelRegistry(max_weight_bytes=(sparse_bytes + dense_bytes) // 2)
        tight.register("sparse", pruned_graph, "int8", sparse=True)
        with pytest.raises(WeightBudgetExceeded):
            tight.register("dense", pruned_graph, "int8")

    def test_replacing_a_name_charges_the_delta(self, demo_graph):
        reg = ModelRegistry()
        bytes_int8 = reg.register("m", demo_graph, "int8").plan.weight_bytes()
        budgeted = ModelRegistry(max_weight_bytes=bytes_int8)
        budgeted.register("m", demo_graph, "int8")
        # Re-registering the same name frees the old plan's bytes first:
        # the replacement fits even though used == budget.
        budgeted.register("m", demo_graph, "int8")
        assert budgeted.weight_bytes_used() == bytes_int8

    def test_unregister_frees_budget(self, demo_graph):
        reg = ModelRegistry(
            max_weight_bytes=ModelRegistry()
            .register("probe", demo_graph, "int8")
            .plan.weight_bytes()
        )
        reg.register("a", demo_graph, "int8")
        with pytest.raises(WeightBudgetExceeded):
            reg.register("b", demo_graph, "int8")
        reg.unregister("a")
        reg.register("b", demo_graph, "int8")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="max_weight_bytes"):
            ModelRegistry(max_weight_bytes=-1)


class TestServerSurface:
    def test_server_ctor_passthrough(self, demo_graph):
        server = ModelServer(max_weight_bytes=1)
        with pytest.raises(WeightBudgetExceeded):
            server.register("a", demo_graph, "int8")

    def test_explicit_registry_plus_budget_rejected(self):
        with pytest.raises(ValueError, match="max_weight_bytes"):
            ModelServer(registry=ModelRegistry(), max_weight_bytes=1)

    def test_describe_reports_budget_and_backend(self, pruned_graph):
        from repro.serve.tcp import TcpServeClient, serve_tcp

        async def run():
            server = ModelServer(max_weight_bytes=10 * 2**20)
            server.register("isa", pruned_graph, "int8", sparse=True, backend="isa")
            async with server:
                tcp = await serve_tcp(server, port=0)
                port = tcp.sockets[0].getsockname()[1]
                try:
                    async with TcpServeClient(port=port) as client:
                        described = await client.describe()
                        budget = await client.weight_budget()
                finally:
                    tcp.close()
                    await tcp.wait_closed()
            return described, budget

        described, budget = asyncio.run(run())
        assert described["isa"]["backend"] == "isa"
        assert described["isa"]["sparse"] is True
        assert budget["max_weight_bytes"] == 10 * 2**20
        assert (
            budget["used_weight_bytes"] == described["isa"]["weight_bytes"] > 0
        )

    def test_demo_server_budget_knob(self):
        from repro.serve.demo import demo_server

        with pytest.raises(WeightBudgetExceeded):
            demo_server(max_weight_bytes=16)
