"""RouterServer: cross-process contract, crash recovery, clean shutdown.

Worker processes are spawned for real (spawn context), so each test
builds small deployments to keep compile time down.  The typed-error,
bit-identity, and drain contracts asserted here are the single-process
``ModelServer`` contracts — preserved across the process boundary.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.engine.bench import resnet_style_graph
from repro.serve.batcher import BatchPolicy
from repro.serve.errors import (
    BadRequest,
    RequestTooLarge,
    ServerClosed,
    ServerOverloaded,
    UnknownModel,
    WorkerCrashed,
)
from repro.serve.router import RouterServer
from repro.serve.server import ModelServer
from repro.serve.shm import leaked_segments
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def graph():
    return resnet_style_graph()


def make_inputs(n, seed=0):
    return make_rng(seed).normal(size=(n, 12, 12, 3)).astype(np.float32)


async def _wait_for(predicate, timeout=15.0, interval=0.05):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition not reached before timeout")
        await asyncio.sleep(interval)


class TestEndToEnd:
    def test_bit_identity_stats_and_clean_unlink(self, graph):
        """Mixed dense/sparse traffic over two workers: responses are
        bit-identical to single-process serving, stats aggregate with
        per-worker views, and no shm segment survives shutdown."""
        from repro.serve.demo import demo_registrations

        regs = [
            r
            for r in demo_registrations()
            if r[0] in ("resnet-int8", "resnet-sparse-isa")
        ]
        xs = make_inputs(12, seed=5)
        names = [regs[i % 2][0] for i in range(12)]

        async def sharded():
            router = RouterServer(workers=2, threads_per_worker=2)
            for name, g, mode, kw in regs:
                router.register(name, g, mode, **kw)
            namespace = router.shared_store.namespace
            async with router:
                outs = await asyncio.gather(
                    *[router.submit(names[i], xs[i]) for i in range(12)]
                )
                stats = await router.stats()
                extra = router.describe_extra()
            return outs, stats, extra, namespace

        async def single():
            server = ModelServer()
            for name, g, mode, kw in regs:
                server.register(name, g, mode, **kw)
            async with server:
                return await asyncio.gather(
                    *[server.submit(names[i], xs[i]) for i in range(12)]
                )

        outs, stats, extra, namespace = asyncio.run(sharded())
        refs = asyncio.run(single())
        for out, ref in zip(outs, refs):
            assert np.array_equal(out, ref)
        # Aggregate snapshot keeps the single-process shape (the
        # loadgen CLI consistency checks read these keys verbatim).
        assert stats["requests"]["completed"] == 12
        assert stats["queue_depth"] == 0
        assert stats["batches"]["count"] >= 1
        assert stats["server"]["sharded"] is True
        assert stats["server"]["workers"] == 2
        assert sorted(stats["per_worker"]) == ["0", "1"]
        # Both workers actually served (one deployment each).
        per_worker_done = [
            stats["per_worker"][i]["requests"]["completed"] for i in "01"
        ]
        assert all(done > 0 for done in per_worker_done)
        assert sum(per_worker_done) == 12
        # Shared weights: one namespace, both models interned, and the
        # segments are gone after shutdown.
        assert extra["sharding"]["shm"]["segments"] > 0
        assert sorted(extra["sharding"]["assignment"]) == [
            "resnet-int8",
            "resnet-sparse-isa",
        ]
        assert leaked_segments(namespace) == []

    def test_weight_budget_enforced_once_globally(self, graph):
        """A too-small budget raises the typed rejection at register
        time and rolls back that deployment's shm segments."""
        from repro.serve.errors import WeightBudgetExceeded

        router = RouterServer(workers=2, max_weight_bytes=16)
        try:
            with pytest.raises(WeightBudgetExceeded):
                router.register("m", graph, "float")
            assert router.shared_store.keys() == ()
        finally:
            router.shared_store.unlink()
        assert leaked_segments(router.shared_store.namespace) == []


class TestTypedErrors:
    def test_admission_errors_preserved(self, graph):
        async def run():
            router = RouterServer(
                workers=1,
                policy=BatchPolicy(max_batch_size=4),
                max_queue_depth=4,
            )
            router.register("m", graph, "float")
            async with router:
                with pytest.raises(UnknownModel):
                    router.submit("nope", make_inputs(1)[0])
                with pytest.raises(BadRequest):
                    router.submit("m", np.zeros((3, 3), np.float32))
                with pytest.raises(RequestTooLarge):
                    router.submit("m", make_inputs(5))
                first = router.submit("m", make_inputs(4))
                with pytest.raises(ServerOverloaded):
                    router.submit("m", make_inputs(1)[0])
                await first
                # Registration is pre-start only on the sharded server.
                with pytest.raises(RuntimeError):
                    router.register("late", graph, "float")
            with pytest.raises(ServerClosed):
                router.submit("m", make_inputs(1)[0])

        asyncio.run(run())

    def test_rejections_counted_in_stats(self, graph):
        async def run():
            router = RouterServer(workers=1)
            router.register("m", graph, "float")
            async with router:
                with pytest.raises(UnknownModel):
                    router.submit("nope", make_inputs(1)[0])
                return await router.stats()

        stats = asyncio.run(run())
        assert stats["requests"]["rejected"] == {"unknown_model": 1}


class TestCrashRecovery:
    def test_inflight_fails_typed_and_survivors_take_over(self, graph):
        """Kill a wedged worker mid-request: its in-flight request
        fails with WorkerCrashed, its deployments re-route to the
        survivor, and later requests still serve bit-identically."""

        async def run():
            router = RouterServer(workers=2, threads_per_worker=1)
            router.register("a", graph, "float")
            router.register("b", graph, "float")
            async with router:
                victim = router._assignment["a"]
                survivor = 1 - victim
                # Wedge the victim's event loop, then land a request on
                # it — the request cannot complete.
                router._hang_worker(victim, 60.0)
                await asyncio.sleep(0.3)
                doomed = router.submit("a", make_inputs(1)[0])
                router._workers[victim].proc.kill()
                with pytest.raises(WorkerCrashed):
                    await asyncio.wait_for(doomed, timeout=15.0)
                await _wait_for(
                    lambda: not router._workers[victim].alive
                )
                # Deployment "a" re-routed to the survivor.
                assert router._assignment["a"] == survivor
                out = await asyncio.wait_for(
                    router.infer("a", make_inputs(1)[0]), timeout=15.0
                )
                stats = await router.stats()
                assert stats["server"]["alive_workers"] == 1
                assert stats["requests"]["failed"] >= 1
            return out, router.shared_store.namespace

        out, namespace = asyncio.run(run())

        async def reference():
            server = ModelServer()
            server.register("a", graph, "float")
            async with server:
                return await server.infer("a", make_inputs(1)[0])

        assert np.array_equal(out, asyncio.run(reference()))
        assert leaked_segments(namespace) == []

    def test_all_workers_dead_raises_sync(self, graph):
        async def run():
            router = RouterServer(workers=1)
            router.register("m", graph, "float")
            async with router:
                router._workers[0].proc.kill()
                await _wait_for(lambda: not router._workers[0].alive)
                with pytest.raises(WorkerCrashed):
                    router.submit("m", make_inputs(1)[0])

        asyncio.run(run())


class TestShutdown:
    def test_accepted_requests_drain_before_close(self, graph):
        async def run():
            router = RouterServer(workers=2)
            router.register("m", graph, "float")
            async with router:
                futs = [
                    router.submit("m", x) for x in make_inputs(8, seed=2)
                ]
            # __aexit__ drained: every accepted request resolved.
            assert all(f.done() for f in futs)
            return [f.result() for f in futs]

        outs = asyncio.run(run())
        assert len(outs) == 8

    def test_hung_worker_killed_and_reported_never_orphaned(self, graph):
        async def run():
            router = RouterServer(workers=1, drain_timeout_s=0.5)
            router.register("m", graph, "float")
            await router.start()
            proc = router._workers[0].proc
            pid = proc.pid
            router._hang_worker(0, 120.0)
            await asyncio.sleep(0.3)  # let the worker eat the frame
            await asyncio.wait_for(router.shutdown(), timeout=30.0)
            assert router.killed_workers == [0]
            return pid, router.shared_store.namespace

        pid, namespace = asyncio.run(run())
        # The killed worker is really gone (no orphan process) ...
        with pytest.raises(OSError):
            os.kill(pid, 0)
        # ... and its shared segments were unlinked regardless.
        assert leaked_segments(namespace) == []

    def test_stats_before_start_and_restartless_contract(self, graph):
        """stats() works pre-start (running: False) and shutdown on a
        never-started router still releases its segments."""

        async def run():
            router = RouterServer(workers=1)
            router.register("m", graph, "float")
            stats = await router.stats()
            assert stats["server"]["running"] is False
            await router.shutdown()
            return router.shared_store.namespace

        namespace = asyncio.run(run())
        assert leaked_segments(namespace) == []


class TestActSkipServing:
    """The act_skip knob through sharded serving: bit-identity against
    a non-skipping single-process reference, and off/auto/force never
    share a shared-memory prefix (the plan-cache key reaches the shm
    namespace)."""

    def test_sharded_force_matches_plain_single_process(self):
        from repro.serve.demo import demo_registrations

        skip_regs = [
            r
            for r in demo_registrations(act_skip="force")
            if r[0] == "resnet-sparse-isa"
        ]
        plain_regs = [
            r
            for r in demo_registrations()
            if r[0] == "resnet-sparse-isa"
        ]
        assert skip_regs[0][3]["act_skip"] == "force"
        # Zero the lower spatial half so the skip path actually engages
        # on served traffic (bias-free convs propagate the zeros).
        xs = make_inputs(8, seed=11)
        xs[:, 6:, :, :] = 0.0

        async def sharded():
            router = RouterServer(workers=2, threads_per_worker=2)
            for name, g, mode, kw in skip_regs:
                router.register(name, g, mode, **kw)
            assert router._specs["resnet-sparse-isa"].act_skip == "force"
            assert "askip-force" in router._specs["resnet-sparse-isa"].shm_prefix
            async with router:
                return await asyncio.gather(
                    *[
                        router.submit("resnet-sparse-isa", xs[i])
                        for i in range(len(xs))
                    ]
                )

        async def single_plain():
            server = ModelServer()
            for name, g, mode, kw in plain_regs:
                server.register(name, g, mode, **kw)
            async with server:
                return await asyncio.gather(
                    *[
                        server.submit("resnet-sparse-isa", xs[i])
                        for i in range(len(xs))
                    ]
                )

        outs = asyncio.run(sharded())
        refs = asyncio.run(single_plain())
        for out, ref in zip(outs, refs):
            assert np.array_equal(out, ref)

    def test_knob_values_never_share_shm_prefix(self):
        from repro.serve.demo import demo_registrations

        name, g, mode, kw = next(
            r
            for r in demo_registrations()
            if r[0] == "resnet-sparse-int8"
        )
        router = RouterServer(workers=2)
        try:
            prefixes = {}
            for knob in ("off", "auto", "force"):
                dep = router.register(
                    f"m-{knob}", g, mode, **{**kw, "act_skip": knob}
                )
                assert dep.act_skip == knob
                prefixes[knob] = router._specs[f"m-{knob}"].shm_prefix
            keys = [p.split(":", 1)[1] for p in prefixes.values()]
            assert len(set(keys)) == 3, keys
        finally:
            router.shared_store.unlink()
