"""Loadgen determinism and accounting (all sampling via repro.utils.rng)."""

import asyncio

import numpy as np
import pytest

from repro.engine.bench import resnet_style_graph
from repro.serve.batcher import BatchPolicy
from repro.serve.loadgen import generate_inputs, run_loadgen
from repro.serve.server import ModelServer


@pytest.fixture(scope="module")
def graph():
    return resnet_style_graph()


def _run(graph, policy=None, **loadgen_kwargs):
    async def main():
        server = ModelServer(
            policy=policy or BatchPolicy(16, 2.0),
            **loadgen_kwargs.pop("server_kwargs", {}),
        )
        server.register("m", graph)
        async with server:
            return await run_loadgen(server, "m", **loadgen_kwargs)

    return asyncio.run(main())


class TestDeterminism:
    def test_inputs_reproducible_per_seed(self):
        a = generate_inputs((12, 12, 3), 8, seed=5)
        b = generate_inputs((12, 12, 3), 8, seed=5)
        c = generate_inputs((12, 12, 3), 8, seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_two_runs_serve_identical_outputs(self, graph):
        """Same seed → same payloads → bit-identical responses, even
        though batch composition may differ between runs."""
        kwargs = dict(
            requests=32, qps=5000.0, seed=9, collect_outputs=True
        )
        report1, outs1 = _run(graph, **dict(kwargs))
        report2, outs2 = _run(graph, **dict(kwargs))
        assert report1.succeeded == report2.succeeded == 32
        for o1, o2 in zip(outs1, outs2):
            assert np.array_equal(o1, o2)


class TestAccounting:
    def test_report_counts_are_consistent(self, graph):
        report, outs = _run(
            graph, requests=20, qps=2000.0, collect_outputs=True
        )
        assert report.requests == 20
        assert report.succeeded + report.rejected + report.failed == 20
        assert report.succeeded == 20
        assert len(report.latencies_ms) == report.succeeded
        assert sum(out is not None for out in outs) == report.succeeded
        d = report.to_dict()
        assert d["achieved_qps"] > 0
        assert d["latency"]["p50_ms"] <= d["latency"]["p99_ms"]

    def test_overload_counts_as_rejected(self, graph):
        """With a tiny queue and a long deadline, the burst overflows:
        overflowed requests count as rejected, accepted ones succeed."""
        report, _ = _run(
            graph,
            policy=BatchPolicy(max_batch_size=2, max_wait_ms=100.0),
            server_kwargs=dict(max_queue_depth=2),
            requests=12,
            qps=100_000.0,
        )
        assert report.rejected > 0
        assert report.succeeded >= 2
        assert report.succeeded + report.rejected + report.failed == 12

    def test_input_validation(self, graph):
        with pytest.raises(ValueError):
            _run(graph, requests=0)
        with pytest.raises(ValueError):
            _run(graph, requests=1, qps=0.0)


class TestMixedModels:
    def test_round_robin_over_model_list(self, graph):
        """A model list cycles deterministically and the report carries
        the joined model names."""

        async def main():
            server = ModelServer(policy=BatchPolicy(16, 2.0))
            server.register("a", graph)
            server.register("b", graph)
            async with server:
                report, outs = await run_loadgen(
                    server,
                    ["a", "b"],
                    requests=10,
                    qps=10_000.0,
                    seed=3,
                    collect_outputs=True,
                )
            return report, outs

        report, outs = asyncio.run(main())
        assert report.model == "a,b"
        assert report.succeeded == 10
        assert all(out is not None for out in outs)

    def test_single_model_traffic_unchanged_by_multi_support(self, graph):
        """A 1-element list sends byte-identical traffic to the plain
        string form (seed offsets only kick in for later models)."""
        from repro.serve.loadgen import mixed_schedule

        shapes = {"m": (12, 12, 3)}
        single = generate_inputs((12, 12, 3), 6, seed=9)
        sched = mixed_schedule(shapes, ["m"], 6, seed=9)
        for i, (name, x) in enumerate(sched):
            assert name == "m"
            assert np.array_equal(x, single[i])

    def test_mixed_schedule_matches_run_loadgen_outputs(self, graph):
        """Replaying mixed_schedule through the engine reproduces the
        collected outputs bit-for-bit — the identity-check contract."""
        from repro.engine.engine import InferenceEngine
        from repro.serve.loadgen import mixed_schedule

        async def main():
            server = ModelServer(policy=BatchPolicy(16, 2.0))
            server.register("a", graph)
            server.register("b", graph)
            async with server:
                _, outs = await run_loadgen(
                    server,
                    ["a", "b"],
                    requests=8,
                    qps=10_000.0,
                    seed=4,
                    collect_outputs=True,
                )
            return outs

        outs = asyncio.run(main())
        shapes = {"a": (12, 12, 3), "b": (12, 12, 3)}
        schedule = mixed_schedule(shapes, ["a", "b"], 8, seed=4)
        engine = InferenceEngine()
        for out, (name, x) in zip(outs, schedule):
            assert np.array_equal(out, engine.run(graph, x))
