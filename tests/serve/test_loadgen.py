"""Loadgen determinism and accounting (all sampling via repro.utils.rng)."""

import asyncio

import numpy as np
import pytest

from repro.engine.bench import resnet_style_graph
from repro.serve.batcher import BatchPolicy
from repro.serve.loadgen import generate_inputs, run_loadgen
from repro.serve.server import ModelServer


@pytest.fixture(scope="module")
def graph():
    return resnet_style_graph()


def _run(graph, policy=None, **loadgen_kwargs):
    async def main():
        server = ModelServer(
            policy=policy or BatchPolicy(16, 2.0),
            **loadgen_kwargs.pop("server_kwargs", {}),
        )
        server.register("m", graph)
        async with server:
            return await run_loadgen(server, "m", **loadgen_kwargs)

    return asyncio.run(main())


class TestDeterminism:
    def test_inputs_reproducible_per_seed(self):
        a = generate_inputs((12, 12, 3), 8, seed=5)
        b = generate_inputs((12, 12, 3), 8, seed=5)
        c = generate_inputs((12, 12, 3), 8, seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_two_runs_serve_identical_outputs(self, graph):
        """Same seed → same payloads → bit-identical responses, even
        though batch composition may differ between runs."""
        kwargs = dict(
            requests=32, qps=5000.0, seed=9, collect_outputs=True
        )
        report1, outs1 = _run(graph, **dict(kwargs))
        report2, outs2 = _run(graph, **dict(kwargs))
        assert report1.succeeded == report2.succeeded == 32
        for o1, o2 in zip(outs1, outs2):
            assert np.array_equal(o1, o2)


class TestAccounting:
    def test_report_counts_are_consistent(self, graph):
        report, outs = _run(
            graph, requests=20, qps=2000.0, collect_outputs=True
        )
        assert report.requests == 20
        assert report.succeeded + report.rejected + report.failed == 20
        assert report.succeeded == 20
        assert len(report.latencies_ms) == report.succeeded
        assert sum(out is not None for out in outs) == report.succeeded
        d = report.to_dict()
        assert d["achieved_qps"] > 0
        assert d["latency"]["p50_ms"] <= d["latency"]["p99_ms"]

    def test_overload_counts_as_rejected(self, graph):
        """With a tiny queue and a long deadline, the burst overflows:
        overflowed requests count as rejected, accepted ones succeed."""
        report, _ = _run(
            graph,
            policy=BatchPolicy(max_batch_size=2, max_wait_ms=100.0),
            server_kwargs=dict(max_queue_depth=2),
            requests=12,
            qps=100_000.0,
        )
        assert report.rejected > 0
        assert report.succeeded >= 2
        assert report.succeeded + report.rejected + report.failed == 12

    def test_input_validation(self, graph):
        with pytest.raises(ValueError):
            _run(graph, requests=0)
        with pytest.raises(ValueError):
            _run(graph, requests=1, qps=0.0)
