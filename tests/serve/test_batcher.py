"""Batching-policy edge cases: deadlines, flush-when-full, atomicity."""

import asyncio

import numpy as np
import pytest

from repro.engine.bench import resnet_style_graph
from repro.serve.batcher import BatchPolicy
from repro.serve.server import ModelServer


@pytest.fixture(scope="module")
def graph():
    return resnet_style_graph()


def make_server(graph, policy, **kwargs) -> ModelServer:
    server = ModelServer(policy=policy, **kwargs)
    server.register("m", graph, "float")
    return server


class TestBatchPolicy:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_ms=-1.0)

    def test_wait_seconds(self):
        assert BatchPolicy(max_wait_ms=250.0).max_wait_s == 0.25


class TestDeadlineFlush:
    def test_lone_request_flushes_at_max_wait(self, graph):
        """A lone request is released at the deadline — never stuck."""
        policy = BatchPolicy(max_batch_size=64, max_wait_ms=80.0)

        async def run():
            loop = asyncio.get_running_loop()
            async with make_server(graph, policy) as server:
                t0 = loop.time()
                x = np.zeros(server.registry.get("m").input_shape, np.float32)
                out = await asyncio.wait_for(server.infer("m", x), timeout=5.0)
                return loop.time() - t0, out

        elapsed, out = asyncio.run(run())
        # Released at ~80 ms: after the deadline, but not multiples of it.
        assert elapsed >= 0.05
        assert elapsed < 2.0
        assert out.shape == (10,)

    def test_zero_wait_flushes_immediately(self, graph):
        policy = BatchPolicy(max_batch_size=64, max_wait_ms=0.0)

        async def run():
            loop = asyncio.get_running_loop()
            async with make_server(graph, policy) as server:
                t0 = loop.time()
                x = np.zeros(server.registry.get("m").input_shape, np.float32)
                await asyncio.wait_for(server.infer("m", x), timeout=5.0)
                return loop.time() - t0

        assert asyncio.run(run()) < 1.0


class TestFullFlush:
    def test_full_batch_does_not_wait_for_deadline(self, graph):
        """max_batch_size pending samples flush immediately, long before
        a (deliberately huge) max_wait_ms deadline."""
        policy = BatchPolicy(max_batch_size=8, max_wait_ms=10_000.0)

        async def run():
            loop = asyncio.get_running_loop()
            async with make_server(graph, policy) as server:
                shape = server.registry.get("m").input_shape
                t0 = loop.time()
                futs = [
                    server.submit("m", np.zeros(shape, np.float32))
                    for _ in range(8)
                ]
                await asyncio.gather(*futs)
                return loop.time() - t0, dict(server.metrics.batch_sizes)

        elapsed, sizes = asyncio.run(run())
        assert elapsed < 5.0  # nowhere near the 10 s deadline
        assert sizes == {8: 1}  # one full micro-batch

    def test_overfull_backlog_splits_into_full_batches(self, graph):
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=50.0)

        async def run():
            async with make_server(graph, policy) as server:
                shape = server.registry.get("m").input_shape
                futs = [
                    server.submit("m", np.zeros(shape, np.float32))
                    for _ in range(10)
                ]
                await asyncio.gather(*futs)
                return dict(server.metrics.batch_sizes)

        sizes = asyncio.run(run())
        # 10 singles under a 4-sample ceiling: two full batches plus a
        # deadline-flushed remainder of 2.
        assert sizes == {4: 2, 2: 1}


class TestRequestAtomicity:
    def test_requests_never_split_across_micro_batches(self, graph):
        """Two 3-sample requests under a 4-sample ceiling must form two
        3-sample batches — a request's samples stay together."""
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=20.0)

        async def run():
            async with make_server(graph, policy) as server:
                shape = server.registry.get("m").input_shape
                xs = np.zeros((3, *shape), np.float32)
                futs = [server.submit("m", xs) for _ in range(2)]
                outs = await asyncio.gather(*futs)
                return dict(server.metrics.batch_sizes), outs

        sizes, outs = asyncio.run(run())
        assert sizes == {3: 2}
        assert all(out.shape == (3, 10) for out in outs)
