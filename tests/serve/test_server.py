"""Server admission control, backpressure, shutdown drain, failures."""

import asyncio

import numpy as np
import pytest

from repro.engine.bench import resnet_style_graph
from repro.serve.batcher import BatchPolicy
from repro.serve.errors import (
    BadRequest,
    RequestTooLarge,
    ServerClosed,
    ServerOverloaded,
    UnknownModel,
)
from repro.serve.server import ModelServer


@pytest.fixture(scope="module")
def graph():
    return resnet_style_graph()


def zeros(server, n=None):
    shape = server.registry.get("m").input_shape
    return (
        np.zeros(shape, np.float32)
        if n is None
        else np.zeros((n, *shape), np.float32)
    )


class TestAdmission:
    def test_request_larger_than_max_batch_rejected_typed(self, graph):
        async def run():
            policy = BatchPolicy(max_batch_size=4, max_wait_ms=1.0)
            async with ModelServer(policy=policy) as server:
                server.register("m", graph)
                with pytest.raises(RequestTooLarge) as exc:
                    server.submit("m", zeros(server, n=5))
                assert exc.value.samples == 5
                assert exc.value.max_batch_size == 4
                assert exc.value.code == "request_too_large"
                # ... and a max-sized request is still accepted.
                out = await server.infer("m", zeros(server, n=4))
                assert out.shape == (4, 10)
                return server.metrics.requests_rejected

        rejected = asyncio.run(run())
        assert rejected["request_too_large"] == 1

    def test_unknown_model_typed(self, graph):
        async def run():
            async with ModelServer() as server:
                server.register("m", graph)
                with pytest.raises(UnknownModel) as exc:
                    server.submit("nope", np.zeros((1,), np.float32))
                assert "nope" in str(exc.value)
                assert "m" in str(exc.value)

        asyncio.run(run())

    def test_bad_shape_typed(self, graph):
        async def run():
            async with ModelServer() as server:
                server.register("m", graph)
                with pytest.raises(BadRequest):
                    server.submit("m", np.zeros((5, 5), np.float32))

        asyncio.run(run())

    def test_submit_before_start_raises_closed(self, graph):
        async def run():
            server = ModelServer()
            server.register("m", graph)
            with pytest.raises(ServerClosed):
                server.submit("m", zeros(server))

        asyncio.run(run())


class TestBackpressure:
    def test_overload_fast_fails_and_recovers(self, graph):
        """The depth-limit rejection is synchronous (fast-fail), leaves
        accepted requests untouched, and clears once they complete."""

        async def run():
            # A long deadline keeps the accepted requests pending in the
            # batcher, so the depth stays occupied deterministically.
            policy = BatchPolicy(max_batch_size=2, max_wait_ms=300.0)
            server = ModelServer(policy=policy, max_queue_depth=4)
            server.register("m", graph)
            async with server:
                accepted = [server.submit("m", zeros(server)) for _ in range(4)]
                with pytest.raises(ServerOverloaded) as exc:
                    server.submit("m", zeros(server))
                assert exc.value.code == "server_overloaded"
                assert exc.value.max_queue_depth == 4
                await asyncio.gather(*accepted)  # backlog drains...
                out = await server.infer("m", zeros(server))  # ...and recovers
                assert out.shape == (10,)
                snap = server.stats()
                return snap

        snap = asyncio.run(run())
        assert snap["requests"]["rejected"]["server_overloaded"] == 1
        assert snap["requests"]["completed"] == 5
        assert snap["queue_depth"] == 0


class TestShutdown:
    def test_shutdown_drains_accepted_requests(self, graph):
        """Shutdown flushes pending batches immediately — accepted
        requests resolve (long before their 10 s deadline), none drop."""

        async def run():
            policy = BatchPolicy(max_batch_size=64, max_wait_ms=10_000.0)
            server = ModelServer(policy=policy, workers=2)
            server.register("m", graph)
            loop = asyncio.get_running_loop()
            await server.start()
            futs = [server.submit("m", zeros(server)) for _ in range(5)]
            t0 = loop.time()
            await server.shutdown()
            elapsed = loop.time() - t0
            outs = await asyncio.gather(*futs)
            return elapsed, outs, server.stats()

        elapsed, outs, snap = asyncio.run(run())
        assert elapsed < 5.0  # did not wait out the 10 s deadline
        assert len(outs) == 5
        assert all(out.shape == (10,) for out in outs)
        assert snap["requests"]["completed"] == 5
        assert snap["queue_depth"] == 0

    def test_reregistration_drains_displaced_batcher(self, graph):
        """Re-registering a name must not drop requests accepted by the
        displaced batcher — shutdown drains both old and new."""

        async def run():
            policy = BatchPolicy(max_batch_size=64, max_wait_ms=10_000.0)
            server = ModelServer(policy=policy)
            server.register("m", graph)
            await server.start()
            old_fut = server.submit("m", zeros(server))
            server.register("m", graph)  # displaces the first deployment
            new_fut = server.submit("m", zeros(server))
            await server.shutdown()
            return await asyncio.gather(old_fut, new_fut)

        outs = asyncio.run(run())
        assert all(out.shape == (10,) for out in outs)

    def test_submit_after_shutdown_raises_closed(self, graph):
        async def run():
            server = ModelServer()
            server.register("m", graph)
            async with server:
                pass
            with pytest.raises(ServerClosed):
                server.submit("m", zeros(server))

        asyncio.run(run())

    def test_dead_worker_tasks_cannot_drop_queued_requests(self, graph):
        """Regression for the ServerClosed race: if the worker tasks
        die (cancellation, bug) with requests still queued, shutdown
        must resolve those futures typed — never leave them pending or
        drop them silently."""

        async def run():
            policy = BatchPolicy(max_batch_size=64, max_wait_ms=10_000.0)
            server = ModelServer(policy=policy, workers=2)
            server.register("m", graph)
            await server.start()
            futs = [server.submit("m", zeros(server)) for _ in range(4)]
            # Kill the entire worker pool out from under the queue.
            for task in server._worker_tasks:
                task.cancel()
            await asyncio.wait_for(server.shutdown(), timeout=5.0)
            return futs, server.stats()

        futs, snap = asyncio.run(run())
        assert all(f.done() for f in futs)
        resolved = {type(f.exception()).__name__ for f in futs if f.exception()}
        completed = sum(1 for f in futs if f.exception() is None)
        # Every accepted request resolved: either it ran before the
        # cancellation landed, or it failed typed at shutdown.
        assert resolved <= {"ServerClosed", "CancelledError"}
        assert completed + sum(
            1 for f in futs if f.exception() is not None
        ) == 4
        assert snap["queue_depth"] == 0

    def test_restart_after_shutdown(self, graph):
        async def run():
            server = ModelServer(policy=BatchPolicy(4, 1.0))
            server.register("m", graph)
            async with server:
                await server.infer("m", zeros(server))
            async with server:
                return await server.infer("m", zeros(server))

        assert asyncio.run(run()).shape == (10,)


class TestExecutionFailure:
    def test_engine_error_fails_the_whole_micro_batch(self, graph):
        async def run():
            policy = BatchPolicy(max_batch_size=4, max_wait_ms=5.0)
            server = ModelServer(policy=policy)
            server.register("m", graph)
            dep = server.registry.get("m")

            def boom(batch):
                raise RuntimeError("kernel exploded")

            dep.run_batch = boom  # shadow the method on this deployment
            async with server:
                futs = [server.submit("m", zeros(server)) for _ in range(3)]
                results = await asyncio.gather(*futs, return_exceptions=True)
            return results, server.stats()

        results, snap = asyncio.run(run())
        assert len(results) == 3
        assert all(isinstance(r, RuntimeError) for r in results)
        assert snap["requests"]["failed"] == 3
        assert snap["queue_depth"] == 0


class TestResponses:
    def test_single_sample_comes_back_unbatched(self, graph):
        async def run():
            async with ModelServer(policy=BatchPolicy(8, 1.0)) as server:
                server.register("m", graph)
                single = await server.infer("m", zeros(server))
                batch = await server.infer("m", zeros(server, n=2))
                return single, batch

        single, batch = asyncio.run(run())
        assert single.shape == (10,)
        assert batch.shape == (2, 10)

    def test_mixed_deployments_share_one_engine(self, graph):
        """Float and int8 deployments of one graph serve side by side."""
        from repro.models.quantize import quantize_graph
        from repro.utils.rng import make_rng

        qgraph = resnet_style_graph(seed=3)
        rng = make_rng(3)
        quantize_graph(qgraph, [rng.normal(size=(12, 12, 3)).astype(np.float32)])

        async def run():
            async with ModelServer(policy=BatchPolicy(8, 1.0)) as server:
                server.register("f", qgraph, "float")
                server.register("q", qgraph, "int8")
                x = np.zeros((12, 12, 3), np.float32)
                f, q = await asyncio.gather(
                    server.infer("f", x), server.infer("q", x)
                )
                return f, q, server.registry.engine.compile_count

        f, q, compiles = asyncio.run(run())
        assert f.shape == q.shape == (10,)
        assert compiles == 2  # one plan per mode, warmed at registration
