"""Regression tests for weighted latency-reservoir pooling.

``Metrics.merge`` used to concatenate reservoirs verbatim, which
mis-weighted the pooled quantiles whenever a part's reservoir had
overflowed (a busy worker's retained window under-represents its
traffic) or was empty-but-counted (the router's counter-only state).
These tests pin the traffic-weighted pooling semantics and the
uniform-weight fast path that keeps single-collector numbers
bit-identical to ``np.percentile``.
"""

import numpy as np
import pytest

from repro.serve.metrics import Metrics


def _filled(latencies, window=10_000):
    m = Metrics(latency_window=window)
    for v in latencies:
        m.record_accepted(1)
        m.record_completed(1, v)
    return m


class TestUniformPath:
    def test_live_collector_matches_np_percentile(self):
        lats = [0.001 * (i + 1) for i in range(97)]
        m = _filled(lats)
        q = m.latency_quantiles()
        p50, p95, p99 = np.percentile(np.asarray(lats), [50, 95, 99]) * 1e3
        assert q["p50_ms"] == pytest.approx(float(p50), abs=0)
        assert q["p95_ms"] == pytest.approx(float(p95), abs=0)
        assert q["p99_ms"] == pytest.approx(float(p99), abs=0)

    def test_merge_of_non_overflowed_parts_stays_uniform(self):
        # Neither reservoir overflowed -> no up-weighting -> exact
        # np.percentile over the union, as before the fix.
        a = _filled([0.001 * v for v in range(1, 51)])
        b = _filled([0.001 * v for v in range(51, 101)])
        q = Metrics.merge([a, b]).latency_quantiles()
        expect = np.percentile(np.arange(1, 101) / 1e3, [50, 95, 99]) * 1e3
        assert q["p50_ms"] == pytest.approx(float(expect[0]), abs=0)
        assert q["p99_ms"] == pytest.approx(float(expect[2]), abs=0)


class TestWeightedPooling:
    def test_overflowed_reservoir_is_upweighted(self):
        # Busy worker: 1000 completed, window of 10 retains only its
        # last 10 observations (all 5 ms).  Quiet worker: 10 completed,
        # all retained (all 50 ms).  Naive concatenation would say the
        # pool is half 5 ms / half 50 ms (p50 midway); traffic
        # weighting says ~99% of requests saw 5 ms.
        busy = Metrics(latency_window=10)
        for _ in range(1000):
            busy.record_accepted(1)
            busy.record_completed(1, 0.005)
        quiet = _filled([0.050] * 10)
        q = Metrics.merge([busy, quiet]).latency_quantiles()
        assert q["p50_ms"] == pytest.approx(5.0, rel=1e-6)
        assert q["p95_ms"] == pytest.approx(5.0, rel=1e-6)

    def test_empty_reservoir_contributes_counters_only(self):
        # The router's own state carries failure/rejection counters but
        # no latencies; a crashed worker may report completed requests
        # with an empty reservoir.  Neither may move the quantiles.
        counted_empty = {
            "requests_accepted": 5,
            "requests_completed": 5,
            "requests_failed": 2,
            "requests_rejected": {"overloaded": 3},
            "samples_completed": 5,
            "queue_depth": 0,
            "batch_sizes": {},
            "latencies_s": [],
            "latency_weights": [],
            "latency_window": 1,
        }
        real = _filled([0.010] * 20)
        merged = Metrics.merge([real, counted_empty])
        assert merged.requests_completed == 25
        assert merged.requests_failed == 2
        assert merged.requests_rejected["overloaded"] == 3
        q = merged.latency_quantiles()
        assert q["p50_ms"] == pytest.approx(10.0, rel=1e-6)
        assert q["p99_ms"] == pytest.approx(10.0, rel=1e-6)

    def test_short_reservoir_single_observation(self):
        # A single retained observation for 100 completed requests must
        # carry the full 100-request mass, not weight 1.
        short = {
            "requests_accepted": 100,
            "requests_completed": 100,
            "requests_failed": 0,
            "requests_rejected": {},
            "samples_completed": 100,
            "queue_depth": 0,
            "batch_sizes": {},
            "latencies_s": [0.002],
            "latency_weights": [1.0],
            "latency_window": 1,
        }
        other = _filled([0.200] * 3)
        q = Metrics.merge([short, other]).latency_quantiles()
        assert q["p50_ms"] == pytest.approx(2.0, rel=1e-6)

    def test_missing_weights_defaults_to_uniform(self):
        # Pre-fix state payloads (no latency_weights key) still merge:
        # retained observations count 1 each, then scale by traffic.
        legacy = {
            "requests_accepted": 10,
            "requests_completed": 10,
            "requests_failed": 0,
            "requests_rejected": {},
            "samples_completed": 10,
            "queue_depth": 0,
            "batch_sizes": {},
            "latencies_s": [0.001] * 10,
            "latency_window": 100,
        }
        merged = Metrics.merge([legacy])
        assert merged.latency_quantiles()["p50_ms"] == pytest.approx(1.0)

    def test_remerge_is_idempotent(self):
        # Router stats are computed repeatedly from fresh worker states;
        # merging a merged state again must not re-scale the weights
        # (completed == existing mass -> no-op).
        busy = Metrics(latency_window=10)
        for _ in range(500):
            busy.record_accepted(1)
            busy.record_completed(1, 0.004)
        quiet = _filled([0.040] * 8)
        once = Metrics.merge([busy, quiet])
        twice = Metrics.merge([once.state()])
        assert once.latency_quantiles() == twice.latency_quantiles()

    def test_weights_survive_state_roundtrip(self):
        busy = Metrics(latency_window=4)
        for _ in range(100):
            busy.record_accepted(1)
            busy.record_completed(1, 0.003)
        merged = Metrics.merge([busy, _filled([0.300] * 4)])
        state = merged.state()
        assert len(state["latency_weights"]) == len(state["latencies_s"])
        rebuilt = Metrics.from_state(state)
        assert rebuilt.latency_quantiles() == merged.latency_quantiles()


class TestRecordingLockstep:
    def test_weights_track_latencies_under_window_rollover(self):
        m = Metrics(latency_window=5)
        for i in range(12):
            m.record_accepted(1)
            m.record_completed(1, 0.001 * (i + 1))
        assert len(m._latencies) == 5
        assert len(m._latency_weights) == 5
        assert all(w == 1.0 for w in m._latency_weights)
