"""SharedWeightStore: intern/attach round-trips, rollback, leak checks."""

import numpy as np
import pytest

from repro.kernels.backend import (
    get_backend,
    intern_layout,
    layout_interning,
)
from repro.serve.shm import SharedWeightStore, leaked_segments
from repro.sparsity.nm import FORMAT_1_4, NMSparseMatrix
from repro.sparsity.pruning import nm_prune
from repro.utils.rng import make_rng


@pytest.fixture
def store():
    s = SharedWeightStore(create=True)
    yield s
    s.unlink()
    assert s.leaked() == []


def _arrays():
    rng = make_rng(0)
    return {
        "a": rng.normal(size=(16, 8)).astype(np.float32),
        "b": (rng.integers(-100, 100, size=(32,))).astype(np.int8),
    }


class TestIntern:
    def test_round_trip_bit_identical(self, store):
        arrays = _arrays()
        views = store.intern("k1", arrays)
        for tag, arr in arrays.items():
            assert np.array_equal(views[tag], arr)
            assert views[tag].dtype == arr.dtype

    def test_views_read_only(self, store):
        views = store.intern("k1", _arrays())
        with pytest.raises(ValueError):
            views["a"][0, 0] = 1.0

    def test_attacher_maps_owner_segments(self, store):
        arrays = _arrays()
        store.intern("k1", arrays)
        attach = SharedWeightStore(store.namespace, create=False)
        try:
            views = attach.intern("k1", arrays)
            for tag, arr in arrays.items():
                assert np.array_equal(views[tag], arr)
            assert attach.attach_misses == 0
            assert attach.stats()["owner"] is False
        finally:
            attach.close()

    def test_attach_miss_falls_back_private(self, store):
        attach = SharedWeightStore(store.namespace, create=False)
        try:
            arrays = _arrays()
            views = attach.intern("never-published", arrays)
            for tag, arr in arrays.items():
                assert np.array_equal(views[tag], arr)
            assert attach.attach_misses == 1
        finally:
            attach.close()

    def test_intern_is_cached_per_key(self, store):
        arrays = _arrays()
        v1 = store.intern("k1", arrays)
        v2 = store.intern("k1", arrays)
        assert v1["a"] is v2["a"]
        assert store.stats()["segments"] == 1

    def test_total_bytes_counts_payload_once(self, store):
        arrays = _arrays()
        store.intern("k1", arrays)
        store.intern("k1", arrays)
        payload = sum(a.nbytes for a in arrays.values())
        assert store.total_bytes() >= payload


class TestCaptureRollback:
    def test_release_unlinks_only_captured_keys(self, store):
        store.intern("keep", _arrays())
        with store.capture() as created:
            store.intern("rollback", _arrays())
        assert created == ["rollback"]
        store.release(created)
        assert "keep" in store.keys()
        assert "rollback" not in store.keys()
        # The keep segment is still attachable; the rolled-back one not.
        attach = SharedWeightStore(store.namespace, create=False)
        try:
            attach.intern("keep", _arrays())
            assert attach.attach_misses == 0
            attach.intern("rollback", _arrays())
            assert attach.attach_misses == 1
        finally:
            attach.close()

    def test_unlink_leaves_no_segments(self):
        store = SharedWeightStore(create=True)
        store.intern("k1", _arrays())
        namespace = store.namespace
        store.unlink()
        assert leaked_segments(namespace) == []


class TestLayoutInterning:
    def _sparse_layout(self):
        rng = make_rng(1)
        w = (rng.normal(size=(16, 32)) * 20).astype(np.float32)
        matrix = NMSparseMatrix.from_dense(
            nm_prune(w, FORMAT_1_4), FORMAT_1_4
        )
        return get_backend("sparse-sw").pack(matrix, None, "conv")

    def test_intern_layout_round_trip(self, store):
        layout = self._sparse_layout()
        shared = store.intern_layout("dep/sw", layout)
        assert shared.shared_key == "dep/sw"
        assert np.array_equal(shared.values, layout.values)
        assert np.array_equal(shared.matrix.values, layout.matrix.values)
        assert np.array_equal(shared.matrix.offsets, layout.matrix.offsets)
        assert shared.matrix.fmt == layout.matrix.fmt

    def test_thread_local_hook_identity_without_store(self):
        layout = self._sparse_layout()
        assert intern_layout("dep/sw", layout) is layout

    def test_thread_local_hook_interns_with_store(self, store):
        layout = self._sparse_layout()
        with layout_interning(store, "pre"):
            shared = intern_layout("dep/sw", layout)
        assert shared.shared_key == "pre/dep/sw"
        assert np.array_equal(shared.values, layout.values)

    def test_attacher_rebuilds_same_layout(self, store):
        layout = self._sparse_layout()
        store.intern_layout("dep/sw", layout)
        attach = SharedWeightStore(store.namespace, create=False)
        try:
            twin = attach.intern_layout("dep/sw", layout)
            assert attach.attach_misses == 0
            assert np.array_equal(twin.values, layout.values)
            assert np.array_equal(twin.matrix.offsets, layout.matrix.offsets)
        finally:
            attach.close()
