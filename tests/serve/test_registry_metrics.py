"""Registry warm-up semantics and the metrics collector."""

import numpy as np
import pytest

from repro.engine.bench import resnet_style_graph
from repro.engine.engine import InferenceEngine
from repro.serve.errors import BadRequest, UnknownModel
from repro.serve.metrics import Metrics
from repro.serve.registry import ModelRegistry


@pytest.fixture(scope="module")
def graph():
    return resnet_style_graph()


class TestRegistry:
    def test_registration_warms_the_plan(self, graph):
        engine = InferenceEngine()
        registry = ModelRegistry(engine)
        assert engine.compile_count == 0
        dep = registry.register("m", graph)
        assert engine.compile_count == 1  # compiled at registration...
        engine.run(graph, np.zeros(dep.input_shape, np.float32))
        assert engine.compile_count == 1  # ...so serving hits the cache

    def test_unknown_model_lists_available(self, graph):
        registry = ModelRegistry()
        registry.register("hosted", graph)
        with pytest.raises(UnknownModel) as exc:
            registry.get("ghost")
        assert exc.value.available == ("hosted",)

    def test_bad_mode_and_name_rejected(self, graph):
        registry = ModelRegistry()
        with pytest.raises(ValueError):
            registry.register("m", graph, mode="int4")
        with pytest.raises(ValueError):
            registry.register("", graph)

    def test_container_protocol(self, graph):
        registry = ModelRegistry()
        registry.register("a", graph)
        registry.register("b", graph, "float")
        assert "a" in registry and len(registry) == 2
        assert registry.names() == ("a", "b")
        registry.unregister("a")
        assert "a" not in registry and len(registry) == 1

    def test_coerce_request_shapes(self, graph):
        registry = ModelRegistry()
        dep = registry.register("m", graph)
        single, batched = dep.coerce_request(
            np.zeros(dep.input_shape, np.float64)
        )
        assert single.shape == (1, *dep.input_shape)
        assert single.dtype == np.float32
        assert not batched
        batch, batched = dep.coerce_request(np.zeros((3, *dep.input_shape)))
        assert batch.shape == (3, *dep.input_shape)
        assert batched
        for bad in [
            np.zeros((5, 5), np.float32),
            np.zeros((0, *dep.input_shape), np.float32),  # empty batch
        ]:
            with pytest.raises(BadRequest):
                dep.coerce_request(bad)


class TestMetrics:
    def test_counters_and_depth(self):
        metrics = Metrics()
        metrics.record_accepted(3)
        metrics.record_accepted(1)
        assert metrics.queue_depth == 4
        metrics.record_batch(4)
        metrics.record_completed(3, 0.010)
        metrics.record_failed(1)
        assert metrics.queue_depth == 0
        snap = metrics.snapshot()
        assert snap["requests"] == {
            "accepted": 2,
            "completed": 1,
            "failed": 1,
            "rejected": {},
        }
        assert snap["samples_completed"] == 3
        assert snap["batches"]["histogram"] == {"4": 1}

    def test_rejection_codes_counted(self):
        metrics = Metrics()
        metrics.record_rejected("server_overloaded")
        metrics.record_rejected("server_overloaded")
        metrics.record_rejected("request_too_large")
        snap = metrics.snapshot()
        assert snap["requests"]["rejected"] == {
            "server_overloaded": 2,
            "request_too_large": 1,
        }

    def test_latency_quantiles_ordering(self):
        metrics = Metrics()
        for ms in range(1, 101):  # 1..100 ms
            metrics.record_completed(1, ms / 1e3)
        q = metrics.latency_quantiles()
        assert q["p50_ms"] <= q["p95_ms"] <= q["p99_ms"]
        assert q["p50_ms"] == pytest.approx(50.5, abs=1.0)
        assert q["p99_ms"] == pytest.approx(99.01, abs=1.0)

    def test_latency_window_bounds_memory(self):
        metrics = Metrics(latency_window=10)
        for _ in range(100):
            metrics.record_completed(1, 0.001)
        assert len(metrics._latencies) == 10

    def test_empty_quantiles_are_zero(self):
        assert Metrics().latency_quantiles() == {
            "p50_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
        }

    def test_mean_batch_size(self):
        metrics = Metrics()
        assert metrics.mean_batch_size() == 0.0
        metrics.record_batch(2)
        metrics.record_batch(6)
        assert metrics.mean_batch_size() == 4.0


class TestMetricsMerge:
    """Cross-worker aggregation: the sharded router's stats() path."""

    def _worker(self, latencies_ms, rejected=None):
        metrics = Metrics()
        for ms in latencies_ms:
            metrics.record_accepted(1)
            metrics.record_batch(1)
            metrics.record_completed(1, ms / 1e3)
        for code in rejected or []:
            metrics.record_rejected(code)
        return metrics

    def test_counters_and_histograms_add(self):
        a = self._worker([1, 2], rejected=["server_overloaded"])
        b = self._worker([3], rejected=["server_overloaded", "unknown_model"])
        merged = Metrics.merge([a, b])
        snap = merged.snapshot()
        assert snap["requests"]["accepted"] == 3
        assert snap["requests"]["completed"] == 3
        assert snap["requests"]["rejected"] == {
            "server_overloaded": 2,
            "unknown_model": 1,
        }
        assert snap["batches"]["count"] == 3
        assert snap["batches"]["histogram"] == {"1": 3}

    def test_quantiles_computed_over_pooled_reservoirs(self):
        # Worker quantiles alone would be 25.5 / 75.5; the pooled p50
        # over 1..100 must land near 50 — reservoirs merge, not
        # quantiles of quantiles.
        a = self._worker(range(1, 51))
        b = self._worker(range(51, 101))
        q = Metrics.merge([a, b]).latency_quantiles()
        assert q["p50_ms"] == pytest.approx(50.5, abs=1.0)
        assert q["p99_ms"] == pytest.approx(99.01, abs=1.0)

    def test_merge_accepts_state_dicts(self):
        # The router merges pickled state() payloads from workers, not
        # live objects — and the merged window sums the parts' windows
        # so nothing is dropped.
        parts = [self._worker([5]).state(), self._worker([7])]
        merged = Metrics.merge(parts)
        assert merged.requests_completed == 2
        assert merged._latencies.maxlen == 20_000

    def test_from_state_round_trips_snapshot(self):
        metrics = self._worker([1, 2, 3], rejected=["bad_request"])
        rebuilt = Metrics.from_state(metrics.state())
        assert rebuilt.snapshot() == metrics.snapshot()

    def test_state_is_json_safe(self):
        import json

        state = self._worker([1.5]).state()
        assert json.loads(json.dumps(state)) == state
