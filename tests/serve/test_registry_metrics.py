"""Registry warm-up semantics and the metrics collector."""

import numpy as np
import pytest

from repro.engine.bench import resnet_style_graph
from repro.engine.engine import InferenceEngine
from repro.serve.errors import BadRequest, UnknownModel
from repro.serve.metrics import Metrics
from repro.serve.registry import ModelRegistry


@pytest.fixture(scope="module")
def graph():
    return resnet_style_graph()


class TestRegistry:
    def test_registration_warms_the_plan(self, graph):
        engine = InferenceEngine()
        registry = ModelRegistry(engine)
        assert engine.compile_count == 0
        dep = registry.register("m", graph)
        assert engine.compile_count == 1  # compiled at registration...
        engine.run(graph, np.zeros(dep.input_shape, np.float32))
        assert engine.compile_count == 1  # ...so serving hits the cache

    def test_unknown_model_lists_available(self, graph):
        registry = ModelRegistry()
        registry.register("hosted", graph)
        with pytest.raises(UnknownModel) as exc:
            registry.get("ghost")
        assert exc.value.available == ("hosted",)

    def test_bad_mode_and_name_rejected(self, graph):
        registry = ModelRegistry()
        with pytest.raises(ValueError):
            registry.register("m", graph, mode="int4")
        with pytest.raises(ValueError):
            registry.register("", graph)

    def test_container_protocol(self, graph):
        registry = ModelRegistry()
        registry.register("a", graph)
        registry.register("b", graph, "float")
        assert "a" in registry and len(registry) == 2
        assert registry.names() == ("a", "b")
        registry.unregister("a")
        assert "a" not in registry and len(registry) == 1

    def test_coerce_request_shapes(self, graph):
        registry = ModelRegistry()
        dep = registry.register("m", graph)
        single, batched = dep.coerce_request(
            np.zeros(dep.input_shape, np.float64)
        )
        assert single.shape == (1, *dep.input_shape)
        assert single.dtype == np.float32
        assert not batched
        batch, batched = dep.coerce_request(np.zeros((3, *dep.input_shape)))
        assert batch.shape == (3, *dep.input_shape)
        assert batched
        for bad in [
            np.zeros((5, 5), np.float32),
            np.zeros((0, *dep.input_shape), np.float32),  # empty batch
        ]:
            with pytest.raises(BadRequest):
                dep.coerce_request(bad)


class TestMetrics:
    def test_counters_and_depth(self):
        metrics = Metrics()
        metrics.record_accepted(3)
        metrics.record_accepted(1)
        assert metrics.queue_depth == 4
        metrics.record_batch(4)
        metrics.record_completed(3, 0.010)
        metrics.record_failed(1)
        assert metrics.queue_depth == 0
        snap = metrics.snapshot()
        assert snap["requests"] == {
            "accepted": 2,
            "completed": 1,
            "failed": 1,
            "rejected": {},
        }
        assert snap["samples_completed"] == 3
        assert snap["batches"]["histogram"] == {"4": 1}

    def test_rejection_codes_counted(self):
        metrics = Metrics()
        metrics.record_rejected("server_overloaded")
        metrics.record_rejected("server_overloaded")
        metrics.record_rejected("request_too_large")
        snap = metrics.snapshot()
        assert snap["requests"]["rejected"] == {
            "server_overloaded": 2,
            "request_too_large": 1,
        }

    def test_latency_quantiles_ordering(self):
        metrics = Metrics()
        for ms in range(1, 101):  # 1..100 ms
            metrics.record_completed(1, ms / 1e3)
        q = metrics.latency_quantiles()
        assert q["p50_ms"] <= q["p95_ms"] <= q["p99_ms"]
        assert q["p50_ms"] == pytest.approx(50.5, abs=1.0)
        assert q["p99_ms"] == pytest.approx(99.01, abs=1.0)

    def test_latency_window_bounds_memory(self):
        metrics = Metrics(latency_window=10)
        for _ in range(100):
            metrics.record_completed(1, 0.001)
        assert len(metrics._latencies) == 10

    def test_empty_quantiles_are_zero(self):
        assert Metrics().latency_quantiles() == {
            "p50_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
        }

    def test_mean_batch_size(self):
        metrics = Metrics()
        assert metrics.mean_batch_size() == 0.0
        metrics.record_batch(2)
        metrics.record_batch(6)
        assert metrics.mean_batch_size() == 4.0
