"""Lint-rule tests over the fixture corpus (repro.analyze.lint)."""

from pathlib import Path

import pytest

from repro.analyze.lint import (
    LINT_RULES,
    lint_file,
    lint_paths,
    parse_suppressions,
)

FIXTURES = Path(__file__).parent / "fixtures"


def lines(diags):
    return [int(d.where.rsplit(":", 1)[-1]) for d in diags]


def rules(diags):
    return [d.rule for d in diags]


class TestSuppressions:
    def test_parse(self):
        src = "x = 1\n# repro: allow(tracer-guard, bare-except)\ny = 2\n"
        assert parse_suppressions(src) == {
            2: {"tracer-guard", "bare-except"}
        }

    def test_allow_on_same_and_previous_line(self):
        src = (
            "def f(items=[]):  # repro: allow(mutable-default)\n"
            "    return items\n"
            "\n"
            "# repro: allow(mutable-default)\n"
            "def g(items=[]):\n"
            "    return items\n"
            "\n"
            "def h(items=[]):\n"
            "    return items\n"
        )
        diags = lint_file("inline.py", source=src)
        assert rules(diags) == ["mutable-default"]
        assert lines(diags) == [8]

    def test_wrong_rule_does_not_suppress(self):
        src = "def f(items=[]):  # repro: allow(bare-except)\n    pass\n"
        assert rules(lint_file("inline.py", source=src)) == [
            "mutable-default"
        ]


class TestTracerGuard:
    def test_fixture(self):
        diags = lint_file(
            FIXTURES / "lint_tracer.py",
            rules=[LINT_RULES["tracer-guard"]],
        )
        assert rules(diags) == ["tracer-guard"] * 2
        assert lines(diags) == [9, 27]  # guarded/early-return/allow silent

    def test_trace_span_helper_not_flagged(self):
        src = (
            "from repro.trace.tracer import trace_span\n"
            "def f(tracer):\n"
            "    with trace_span(tracer, 'x'):\n"
            "        pass\n"
        )
        assert lint_file("inline.py", source=src) == []


class TestServeTypedErrors:
    def test_fixture(self):
        diags = lint_file(
            FIXTURES / "serve" / "lint_raises.py",
            rules=[LINT_RULES["serve-typed-errors"]],
        )
        assert rules(diags) == ["serve-typed-errors"]
        assert lines(diags) == [10]  # ValueError/OSError/re-raise/allow ok

    def test_rule_is_path_scoped(self):
        src = "def f():\n    raise RuntimeError('fine outside serve/')\n"
        assert lint_file("engine/plan.py", source=src) == []


class TestTraceWalltime:
    def test_fixture(self):
        diags = lint_file(
            FIXTURES / "trace" / "lint_walltime.py",
            rules=[LINT_RULES["trace-walltime"]],
        )
        assert rules(diags) == ["trace-walltime"]
        assert lines(diags) == [11]  # _now_us body + allow twin silent


class TestKernelLoopAlloc:
    def test_fixture(self):
        diags = lint_file(
            FIXTURES / "conv_sparse.py",
            rules=[LINT_RULES["kernel-loop-alloc"]],
        )
        assert rules(diags) == ["kernel-loop-alloc"]
        assert lines(diags) == [15]  # hoisted / allow / cold-path silent

    def test_rule_is_basename_scoped(self):
        src = (
            "import numpy as np\n"
            "def gather_matmul_batch(xs):\n"
            "    for x in xs:\n"
            "        np.zeros(3)\n"
        )
        assert lint_file("somewhere/else.py", source=src) == []


class TestMiscRules:
    def test_fixture(self):
        diags = lint_file(FIXTURES / "lint_misc.py")
        assert rules(diags) == ["mutable-default", "bare-except"]
        assert lines(diags) == [4, 20]


class TestDriver:
    def test_shipped_tree_is_clean(self):
        src_root = Path(__file__).parents[2] / "src" / "repro"
        assert lint_paths([src_root]) == []

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="no-such-rule"):
            lint_paths([FIXTURES], rule_ids=["no-such-rule"])

    def test_syntax_error_reported_not_raised(self):
        diags = lint_file("broken.py", source="def f(:\n")
        assert rules(diags) == ["syntax"]

    def test_every_lint_rule_has_a_fixture_finding(self):
        found = {d.rule for d in lint_paths([FIXTURES])}
        assert set(LINT_RULES) <= found
