"""Verifier integration: registry rejection, wire round-trip, and the
clean-implies-executable property (repro.analyze <-> engine <-> serve)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analyze.diagnostics import PlanVerificationError
from repro.analyze.plancheck import check_model
from repro.engine.bench import resnet_style_graph
from repro.engine.plan import compile_plan
from repro.serve.errors import ServeError, error_from_code
from repro.serve.registry import ModelRegistry

from fixtures import illegal_116_fc_graph, shape_mismatch_graph


class TestRegistryRejection:
    def test_corrupt_deployment_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(PlanVerificationError, match="plan-sparse-format"):
            registry.register(
                "bad", illegal_116_fc_graph(), mode="float", sparse=True
            )
        assert "bad" not in registry
        assert len(registry) == 0

    def test_shape_corrupt_deployment_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(PlanVerificationError, match="plan-shape"):
            registry.register("bad", shape_mismatch_graph())
        assert len(registry) == 0

    def test_rejection_is_a_value_error(self):
        """Callers with pre-verifier except ValueError handlers keep working."""
        registry = ModelRegistry()
        with pytest.raises(ValueError):
            registry.register("bad", shape_mismatch_graph())


class TestWireRoundTrip:
    """The typed rejection survives a TCP describe-style error payload."""

    def capture(self):
        try:
            ModelRegistry().register(
                "bad", illegal_116_fc_graph(), mode="float", sparse=True
            )
        except PlanVerificationError as err:
            return err
        pytest.fail("registration unexpectedly succeeded")

    def test_round_trip_preserves_type_and_detail(self):
        err = self.capture()
        # what tcp.py's generic handler would put on the wire
        payload = {"ok": False, "error": err.code, "detail": str(err)}
        assert payload["error"] == "plan_verification"

        decoded = error_from_code(payload["error"], payload["detail"])
        assert isinstance(decoded, PlanVerificationError)
        assert isinstance(decoded, ValueError)
        assert not isinstance(decoded, ServeError)
        assert decoded.code == "plan_verification"
        assert "plan-sparse-format" in str(decoded)
        # structured diagnostics don't travel; the class fallback keeps
        # `except PlanVerificationError as e: e.diagnostics` safe remotely
        assert decoded.diagnostics == ()

    def test_unknown_code_still_degrades(self):
        assert type(error_from_code("no_such_code", "x")) is ServeError


class TestCleanImpliesExecutable:
    """Property: a verifier-clean demo graph executes without kernel
    exceptions — the verifier's pass is a real safety guarantee, not a
    vacuous one."""

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        fmt_name=st.sampled_from(["1:4", "1:8", "1:16"]),
        mode=st.sampled_from(["float", "int8"]),
        backend=st.sampled_from(["sw", "isa"]),
    )
    def test_clean_graph_executes(self, seed, fmt_name, mode, backend):
        from repro.sparsity.nm import SUPPORTED_FORMATS

        graph = resnet_style_graph(
            seed=seed, fmt=SUPPORTED_FORMATS[fmt_name]
        )
        diags = check_model(graph, mode, sparse=True, backend=backend)
        assert [d for d in diags if d.severity == "error"] == []

        plan = compile_plan(graph, mode, sparse=True, backend=backend)
        assert plan.verified
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 12, 12, 3)).astype(np.float32)
        out = plan.execute(x)
        assert out.shape == (1, 10)
        assert np.all(np.isfinite(out))
