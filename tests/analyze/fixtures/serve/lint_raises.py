"""Lint fixture: serve-typed-errors (path-scoped to serve/)."""


class ServerClosed(Exception):
    code = "server_closed"


def untyped(closing):
    if closing:
        raise RuntimeError("batcher is closed")  # finding


def typed(closing):
    if closing:
        raise ServerClosed("batcher is closed")


def validation(x):
    if x < 0:
        raise ValueError("x must be >= 0")  # validation is allowed


def transport():
    raise ConnectionError("client is not connected")  # OSError family


def reraise():
    try:
        untyped(True)
    except ServerClosed as err:
        raise err


def allowed(closing):
    if closing:
        # lifecycle guard, never crosses the wire
        # repro: allow(serve-typed-errors)
        raise RuntimeError("owner-only teardown")
