"""Lint fixture: tracer-guard (data file — linted, never imported)."""


class Worker:
    def __init__(self, tracer):
        self.tracer = tracer

    def unguarded(self, depth):
        self.tracer.counter("queue_depth", {"samples": depth})  # finding

    def guarded(self, depth):
        if self.tracer is not None:
            self.tracer.counter("queue_depth", {"samples": depth})

    def early_return(self, depth):
        if self.tracer is None:
            return
        self.tracer.counter("queue_depth", {"samples": depth})

    def allowed(self, depth):
        # caller guarantees a live tracer
        # repro: allow(tracer-guard)
        self.tracer.counter("queue_depth", {"samples": depth})


def local_unguarded(tracer):
    tracer.instant("boom")  # finding


def local_guarded(tracer):
    if tracer is not None:
        tracer.instant("fine")
