"""Lint fixture: mutable-default + bare-except."""


def mutable(items=[]):  # finding: mutable-default
    items.append(1)
    return items


def fixed(items=None):
    return list(items or ())


def allowed_mutable(cache={}):  # repro: allow(mutable-default)
    return cache


def swallow():
    try:
        return 1 / 0
    except:  # finding: bare-except
        return None


def narrow():
    try:
        return 1 / 0
    except ZeroDivisionError:
        return None


def allowed_swallow():
    try:
        return 1 / 0
    # last-resort reply path must never die
    except:  # repro: allow(bare-except)
        return None
