"""Lint fixture: trace-walltime (path-scoped to trace/)."""

import time


def _now_us():
    return time.time_ns() // 1_000  # the sanctioned clock


def skewed_span_start():
    return int(time.time() * 1e6)  # finding


def fine_span_start():
    return _now_us()


def allowed_drift_probe():
    # deliberate second clock for drift measurement
    # repro: allow(trace-walltime)
    return time.monotonic()
