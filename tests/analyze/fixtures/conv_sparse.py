"""Lint fixture: kernel-loop-alloc (basename-scoped to conv_sparse.py).

Mirrors the real kernel's shape: the hot function allocating inside
its chunk loop is the defect; the hoisted variant is the fix.
"""

import numpy as np


def gather_matmul_batch(cols, values, gather_idx, out_dtype):
    b, p, _ = cols.shape
    k_total, _ = values.shape
    out_chunks = []
    for k0 in range(0, k_total, 8):
        acc = np.zeros((b, p, min(8, k_total - k0)), dtype=out_dtype)  # finding
        out_chunks.append(acc)
    return out_chunks


def _sparse_matmul_batch(cols, values, gather_idx, out_dtype):
    b, p, _ = cols.shape
    k_total, _ = values.shape
    acc = np.empty((b, p, k_total), dtype=out_dtype)  # hoisted: fine
    for k0 in range(0, k_total, 8):
        acc[:, :, k0 : k0 + 8] = 0
    return acc


def sparse_matmul_acc_batch(cols, values, gather_idx, out_dtype):
    for k0 in range(0, 64, 8):
        # staging buffer measured as harmless for this path
        # repro: allow(kernel-loop-alloc)
        _ = np.empty((1, 1, 8), dtype=out_dtype)
    return None


def cold_path_helper(rows):
    out = []
    for r in rows:  # not a registered hot function: allocation is fine
        out.append(np.zeros_like(r))
    return out
