"""Defect corpus for the static analyzers.

Each builder returns a deliberately-broken graph or plan exercising
exactly one plancheck rule; the tests assert each yields its diagnostic
and nothing else.  The lint fixtures live alongside as ``.py`` data
files (under ``serve/`` / ``trace/`` subdirs where a rule is
path-scoped) — they are linted, never imported.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.ir import Graph
from repro.engine.bench import _pruned_demo_graph, resnet_style_graph
from repro.engine.plan import compile_plan
from repro.sparsity.nm import FORMAT_1_8, FORMAT_1_16


def clean_demo_graph():
    """The verifier-clean pruned+quantised demo graph (control)."""
    return _pruned_demo_graph(FORMAT_1_8, 0)


def illegal_116_fc_graph() -> Graph:
    """A 1:16 annotation on an FC too narrow for it (plan-sparse-format).

    The head FC reduces over 24 inputs; 24 % 16 != 0, so the 1:16
    pattern cannot tile the rows.  Without the verifier this crashes
    inside ``NMSparseMatrix.from_dense`` mid-compile.
    """
    g = Graph("illegal-1-16")
    x = g.add_input("x", (24,))
    rng = np.random.default_rng(0)
    w = rng.normal(size=(10, 24)).astype(np.float32)
    g.add_dense("head", x, w, bias=np.zeros(10, dtype=np.float32))
    g.node("head").attrs["sparse_fmt"] = FORMAT_1_16
    return g


def shape_mismatch_graph() -> Graph:
    """A recorded out_shape the ops cannot produce (plan-shape)."""
    g = resnet_style_graph()
    g.node("head").out_shape = (11,)  # the weights produce (10,)
    return g


def bad_quant_dtype_graph() -> Graph:
    """int8 metadata whose weights_q is not int8 (plan-quant)."""
    g = clean_demo_graph()
    node = g.node("head")
    node.attrs["weights_q"] = node.attrs["weights_q"].astype(np.int16)
    return g


def partial_quant_graph() -> Graph:
    """A node with scales but no quantised weights (plan-quant)."""
    g = clean_demo_graph()
    del g.node("head").attrs["weights_q"]
    return g


def _sparse_layout(plan, need_gather=False):
    """First (name, layout) with packed N:M metadata, layer order."""
    for name, layout in plan._layouts.items():
        if layout.matrix is None:
            continue
        if need_gather and layout.gather_idx is None:
            continue
        return name, layout
    raise AssertionError("demo plan bound no sparse layer")


def out_of_bounds_offsets_plan():
    """A compiled plan whose packed offsets escape their M-block
    (plan-offset-bounds).

    ``NMSparseMatrix`` validates offsets at construction, so the
    corruption is applied in place *after* the compile — modelling a
    corrupted deployment artifact, which is exactly what the verifier
    must catch without executing.
    """
    plan = compile_plan(
        clean_demo_graph(), "int8", sparse=True, verify=False
    )
    _, layout = _sparse_layout(plan)
    layout.matrix.offsets.flags.writeable = True
    layout.matrix.offsets[0, 0] = layout.matrix.fmt.m  # escapes the block
    return plan


def out_of_bounds_gather_plan():
    """A plan whose decoded gather addresses escape the reduce dim."""
    plan = compile_plan(
        clean_demo_graph(), "int8", sparse=True, verify=False
    )
    _, layout = _sparse_layout(plan, need_gather=True)
    layout.gather_idx.flags.writeable = True
    layout.gather_idx[0, 0] = layout.matrix.dense_cols  # one past the end
    return plan


def byte_mismatch_plan():
    """A plan whose kernel-choice bytes disagree with its packed layout
    (plan-bytes)."""
    from dataclasses import replace

    plan = compile_plan(
        clean_demo_graph(), "int8", sparse=True, verify=False
    )
    choice = plan.kernel_choices["head"]
    plan.kernel_choices["head"] = replace(
        choice, weight_bytes=choice.weight_bytes + 1
    )
    return plan


def budget_exceeding_plan():
    """A verifier-clean plan checked against an impossible budget
    (plan-budget)."""
    return compile_plan(
        clean_demo_graph(), "int8", sparse=True, verify=False
    )


def bad_act_density_plan():
    """A skip-bound plan whose recorded density estimate is not a
    density (plan-act-skip).

    Compiled with ``act_skip="force"`` on the ISA backend (so gather
    layers actually bind the skip path), then one choice's
    ``act_density`` is corrupted past 1 — modelling a stale or
    miscomputed calibration stamp reaching a deployment artifact.
    """
    from dataclasses import replace

    plan = compile_plan(
        clean_demo_graph(),
        "int8",
        sparse=True,
        backend="isa",
        act_skip="force",
        verify=False,
    )
    name = next(
        n for n, c in plan.kernel_choices.items() if c.act_skip
    )
    plan.kernel_choices[name] = replace(
        plan.kernel_choices[name], act_density=1.5
    )
    return plan


def key_fn_missing_accum_dtype(
    mode,
    sparse,
    select_fmt=False,
    accuracy_budget=0.0,
    backend="sw",
    accum_dtype=None,
    act_skip="off",
):
    """A fake plan-cache key that forgets ``accum_dtype`` — the
    historical ``+acc64`` bug class (plan-cache-key)."""
    key = mode
    if sparse:
        key += "+sparse"
    if select_fmt:
        key += f"+select@{accuracy_budget:g}"
    if backend != "sw":
        key += f"+{backend}"
    if act_skip != "off":
        key += f"+askip-{act_skip}"
    return key
