"""Defect-corpus tests: each broken fixture yields exactly its
diagnostic (repro.analyze.plancheck)."""

import numpy as np
import pytest

from repro.analyze.diagnostics import (
    ERROR,
    Diagnostic,
    PlanVerificationError,
    errors_only,
)
from repro.analyze.plancheck import (
    PLAN_RULES,
    check_cache_keys,
    check_graph,
    check_model,
    verify_plan,
)
from repro.engine.plan import PLAN_KNOBS, PlanKnob, compile_plan

from fixtures import (
    bad_act_density_plan,
    bad_quant_dtype_graph,
    budget_exceeding_plan,
    byte_mismatch_plan,
    clean_demo_graph,
    illegal_116_fc_graph,
    key_fn_missing_accum_dtype,
    out_of_bounds_gather_plan,
    out_of_bounds_offsets_plan,
    partial_quant_graph,
    shape_mismatch_graph,
)


def rules(diags):
    return [d.rule for d in diags]


class TestDiagnostics:
    def test_format_carries_rule_and_hint(self):
        d = Diagnostic("plan-shape", ERROR, "conv1", "bad", hint="fix it")
        assert d.format() == "conv1: error [plan-shape] bad (hint: fix it)"
        assert d.to_json()["rule"] == "plan-shape"

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Diagnostic("r", "fatal", "x", "m")

    def test_error_joins_diagnostics(self):
        d = Diagnostic("plan-budget", ERROR, "g", "too big")
        err = PlanVerificationError([d])
        assert err.code == "plan_verification"
        assert "plan-budget" in str(err)
        assert err.diagnostics == (d,)
        assert isinstance(err, ValueError)


class TestCleanTree:
    """The control: the shipped demo graph verifies clean everywhere."""

    def test_demo_graph_clean(self):
        g = clean_demo_graph()
        assert check_graph(g, "int8", sparse=True) == []
        assert errors_only(check_model(g, "int8", sparse=True)) == []

    def test_compile_marks_verified(self):
        plan = compile_plan(clean_demo_graph(), "int8", sparse=True)
        assert plan.verified
        assert verify_plan(plan) == []

    def test_verify_false_skips(self):
        plan = compile_plan(
            clean_demo_graph(), "int8", sparse=True, verify=False
        )
        assert not plan.verified

    def test_real_cache_key_is_complete(self):
        assert check_cache_keys() == []


class TestDefectCorpus:
    """One broken artifact per rule; exactly that rule fires."""

    def test_illegal_1_16_on_narrow_fc(self):
        diags = check_graph(illegal_116_fc_graph(), "float", sparse=True)
        assert rules(diags) == ["plan-sparse-format"]
        assert "1:16" in diags[0].message and "16" in diags[0].message
        # and the in-line verifier rejects the compile with the typed error
        with pytest.raises(PlanVerificationError, match="plan-sparse-format"):
            compile_plan(illegal_116_fc_graph(), "float", sparse=True)

    def test_shape_mismatch(self):
        diags = check_graph(shape_mismatch_graph(), "float")
        assert rules(diags) == ["plan-shape"]
        assert diags[0].where == "head"

    def test_quant_dtype(self):
        assert rules(check_graph(bad_quant_dtype_graph(), "int8")) == [
            "plan-quant"
        ]

    def test_quant_partial_metadata(self):
        assert rules(check_graph(partial_quant_graph(), "int8")) == [
            "plan-quant"
        ]

    def test_quant_ignored_in_float_mode(self):
        assert check_graph(bad_quant_dtype_graph(), "float") == []

    def test_out_of_bounds_offset(self):
        diags = verify_plan(out_of_bounds_offsets_plan())
        assert rules(diags) == ["plan-offset-bounds"]

    def test_out_of_bounds_gather(self):
        diags = verify_plan(out_of_bounds_gather_plan())
        assert rules(diags) == ["plan-offset-bounds"]

    def test_byte_mismatch(self):
        diags = verify_plan(byte_mismatch_plan())
        assert set(rules(diags)) == {"plan-bytes"}

    def test_budget_exceeded(self):
        plan = budget_exceeding_plan()
        diags = verify_plan(plan, max_weight_bytes=16)
        assert rules(diags) == ["plan-budget"]
        assert verify_plan(plan, max_weight_bytes=plan.weight_bytes()) == []

    def test_bad_act_density(self):
        diags = verify_plan(bad_act_density_plan())
        assert rules(diags) == ["plan-act-skip"]
        assert "1.5" in diags[0].message

    def test_act_density_without_skip(self):
        from dataclasses import replace

        plan = compile_plan(
            clean_demo_graph(), "int8", sparse=True, verify=False
        )
        name = next(iter(plan.kernel_choices))
        plan.kernel_choices[name] = replace(
            plan.kernel_choices[name], act_density=0.5
        )
        diags = verify_plan(plan)
        assert rules(diags) == ["plan-act-skip"]
        assert "not skip-bound" in diags[0].message

    def test_knob_missing_from_cache_key(self):
        """The PR-5 +acc64 regression, caught mechanically."""
        diags = check_cache_keys(key_fn=key_fn_missing_accum_dtype)
        assert rules(diags) == ["plan-cache-key"]
        assert diags[0].where == "accum_dtype"

    def test_undeclared_compile_parameter(self):
        knobs = tuple(k for k in PLAN_KNOBS if k.name != "backend")
        diags = check_cache_keys(knobs=knobs)
        assert rules(diags) == ["plan-cache-key"]
        assert "backend" in diags[0].where

    def test_key_neutral_knob_needs_reason(self):
        knobs = PLAN_KNOBS + (PlanKnob("mystery", key_relevant=False),)
        diags = check_cache_keys(knobs=knobs)
        assert rules(diags) == ["plan-cache-key"]
        assert diags[0].where == "mystery"


class TestCatalog:
    def test_every_plan_rule_documented(self):
        assert set(PLAN_RULES) == {
            "plan-shape",
            "plan-quant",
            "plan-sparse-format",
            "plan-kernel-choice",
            "plan-offset-bounds",
            "plan-bytes",
            "plan-budget",
            "plan-cache-key",
            "plan-act-skip",
        }


class TestShapeInference:
    """The abstract inference agrees with the builders' formulas."""

    def test_mutated_conv_weights_caught(self):
        g = clean_demo_graph()
        node = g.node("stem")
        w = np.asarray(node.attrs["weights"])
        node.attrs["weights"] = w[:, :1]  # now a 1-row kernel
        diags = check_graph(g, "float")
        assert "plan-shape" in rules(diags)

    def test_unknown_op(self):
        from repro.compiler.ir import Node

        g = clean_demo_graph()
        g._add(Node("mystery", "mystery_op", ["head"], {}, (5,)))
        diags = check_graph(g, "float")
        assert rules(diags) == ["plan-shape"]
        assert "mystery_op" in diags[0].message
