"""Intra-repo markdown link checking (the CI docs job).

Walks ``README.md`` and every file under ``docs/``, extracts inline
markdown links, and asserts that every relative link resolves to a file
in the repository — and, when it carries a ``#anchor``, that the target
file actually contains a heading with that GitHub-style slug.  External
(``http(s)://``, ``mailto:``) links are out of scope.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files whose links are contract: the top-level README plus all docs.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor slug (enough for our headings)."""
    text = heading.strip().lower().replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def iter_links():
    for doc in DOC_FILES:
        # Strip fenced code blocks: URLs/paths in examples are not links.
        body = re.sub(r"```.*?```", "", doc.read_text(), flags=re.DOTALL)
        for match in _LINK.finditer(body):
            yield doc, match.group(1)


def test_doc_files_exist():
    assert (REPO_ROOT / "README.md").is_file()
    names = {p.name for p in DOC_FILES}
    assert {"cli.md", "engine.md", "serving.md", "sparse_engine.md", "sparsity.md"} <= names


@pytest.mark.parametrize(
    "doc,target",
    [(d, t) for d, t in iter_links()],
    ids=[f"{d.name}:{t}" for d, t in iter_links()],
)
def test_intra_repo_links_resolve(doc, target):
    if target.startswith(("http://", "https://", "mailto:")):
        pytest.skip("external link")
    path_part, _, anchor = target.partition("#")
    target_path = doc.parent / path_part if path_part else doc
    assert target_path.exists(), f"{doc.name}: broken link -> {target}"
    if anchor:
        assert target_path.suffix == ".md", f"{doc.name}: anchor on non-md {target}"
        slugs = {
            github_slug(h) for h in _HEADING.findall(target_path.read_text())
        }
        assert anchor in slugs, (
            f"{doc.name}: anchor #{anchor} not found in {target_path.name} "
            f"(known: {sorted(slugs)})"
        )
