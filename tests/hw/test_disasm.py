"""Tests for the disassembler (repro.hw.disasm)."""

from repro.hw.disasm import disassemble, format_instr
from repro.hw.isa import Asm, Instr
from repro.kernels.microcode import conv_pair_sparse_isa
from repro.sparsity.nm import FORMAT_1_8


class TestFormatInstr:
    def test_alu(self):
        assert format_instr(Instr("add", rd=3, rs1=1, rs2=2)) == "add   x3, x1, x2"

    def test_load_post_increment(self):
        text = format_instr(Instr("lw", rd=5, rs1=6, post=4))
        assert text == "lw    x5, 4(x6!)"

    def test_plain_load(self):
        assert format_instr(Instr("lbu", rd=2, rs1=1, imm=8)) == "lbu   x2, 8(x1)"

    def test_sdotp(self):
        assert "pv.sdotsp.b" in format_instr(Instr("sdotp", rd=1, rs1=2, rs2=3))

    def test_xdec(self):
        text = format_instr(Instr("xdec", rd=1, rs1=2, rs2=3, imm=16))
        assert text == "xdecimate.m16 x1, x2, x3"

    def test_lbu_ins(self):
        text = format_instr(Instr("lbu_ins", rd=8, rs1=10, rs2=27, imm=(16 << 2) | 2))
        assert "x8[2]" in text and "16+" in text

    def test_lp_setup(self):
        assert (
            format_instr(Instr("lp_setup", imm=7, label="end"))
            == "lp.setup 7, end"
        )

    def test_all_opcodes_format(self):
        """Every opcode must render without falling through."""
        from repro.hw.isa import OPCODES

        for op in OPCODES:
            ins = Instr(op, rd=1, rs1=2, rs2=3, imm=4 if op != "xdec" else 8,
                        label="l" if "label" in OPCODES[op] else None)
            text = format_instr(ins)
            assert text and text != op or op in ("halt", "xdec_clear")


class TestDisassemble:
    def test_labels_rendered(self):
        a = Asm()
        a.li(1, 0)
        a.label("loop")
        a.addi(1, 1, 1)
        a.blt(1, 2, "loop")
        a.halt()
        listing = disassemble(a.build())
        assert "loop:" in listing
        assert "blt" in listing

    def test_real_kernel_listing(self):
        prog = conv_pair_sparse_isa(FORMAT_1_8, 2, 8, 0, 64, 128, 256, 512)
        listing = disassemble(prog)
        assert "xdecimate.m8" in listing
        assert "xdecimate.clear" in listing
        assert "lp.setup" in listing
        assert listing.count("\n") + 1 >= len(prog.instrs)
